//! Every array variant in the workspace — RCUArray under both schemes and
//! all five comparators — must compute identical results for identical
//! deterministic workloads. Performance differs; semantics must not.

use rcuarray_repro::prelude::*;
use std::sync::Arc;

/// A uniform driver over each variant's inherent API.
struct Variant {
    name: &'static str,
    read: Box<dyn Fn(usize) -> u64>,
    write: Box<dyn Fn(usize, u64)>,
    resize: Box<dyn Fn(usize)>,
    capacity: Box<dyn Fn() -> usize>,
}

fn variants(cluster: &Arc<Cluster>) -> Vec<Variant> {
    let cfg = Config {
        block_size: 16,
        account_comm: false,
        ..Config::default()
    };
    let ebr = Arc::new(EbrArray::<u64>::with_config(cluster, cfg));
    let qsbr = Arc::new(QsbrArray::<u64>::with_config(cluster, cfg));
    let unsafe_a = Arc::new(UnsafeArray::<u64>::with_accounting(cluster, false));
    let sync_a = Arc::new(SyncArray::<u64>::with_accounting(cluster, false));
    let rw = Arc::new(RwLockArray::<u64>::with_accounting(cluster, false));
    let hz = Arc::new(HazardArray::<u64>::new(cluster, 16, false));
    let lf = Arc::new(LockFreeVector::<u64>::new());

    vec![
        Variant {
            name: "EbrArray",
            read: {
                let a = Arc::clone(&ebr);
                Box::new(move |i| a.read(i))
            },
            write: {
                let a = Arc::clone(&ebr);
                Box::new(move |i, v| a.write(i, v))
            },
            resize: {
                let a = Arc::clone(&ebr);
                Box::new(move |n| {
                    a.resize(n);
                })
            },
            capacity: {
                let a = ebr;
                Box::new(move || a.capacity())
            },
        },
        Variant {
            name: "QsbrArray",
            read: {
                let a = Arc::clone(&qsbr);
                Box::new(move |i| a.read(i))
            },
            write: {
                let a = Arc::clone(&qsbr);
                Box::new(move |i, v| a.write(i, v))
            },
            resize: {
                let a = Arc::clone(&qsbr);
                Box::new(move |n| {
                    a.resize(n);
                })
            },
            capacity: {
                let a = qsbr;
                Box::new(move || a.capacity())
            },
        },
        Variant {
            name: "UnsafeArray",
            read: {
                let a = Arc::clone(&unsafe_a);
                Box::new(move |i| a.read(i))
            },
            write: {
                let a = Arc::clone(&unsafe_a);
                Box::new(move |i, v| a.write(i, v))
            },
            // Match RCUArray's block rounding so capacities line up.
            resize: {
                let a = Arc::clone(&unsafe_a);
                Box::new(move |n| {
                    a.resize(n.div_ceil(16) * 16);
                })
            },
            capacity: {
                let a = unsafe_a;
                Box::new(move || a.capacity())
            },
        },
        Variant {
            name: "SyncArray",
            read: {
                let a = Arc::clone(&sync_a);
                Box::new(move |i| a.read(i))
            },
            write: {
                let a = Arc::clone(&sync_a);
                Box::new(move |i, v| a.write(i, v))
            },
            resize: {
                let a = Arc::clone(&sync_a);
                Box::new(move |n| {
                    a.resize(n.div_ceil(16) * 16);
                })
            },
            capacity: {
                let a = sync_a;
                Box::new(move || a.capacity())
            },
        },
        Variant {
            name: "RwLockArray",
            read: {
                let a = Arc::clone(&rw);
                Box::new(move |i| a.read(i))
            },
            write: {
                let a = Arc::clone(&rw);
                Box::new(move |i, v| a.write(i, v))
            },
            resize: {
                let a = Arc::clone(&rw);
                Box::new(move |n| {
                    a.resize(n.div_ceil(16) * 16);
                })
            },
            capacity: {
                let a = rw;
                Box::new(move || a.capacity())
            },
        },
        Variant {
            name: "HazardArray",
            read: {
                let a = Arc::clone(&hz);
                Box::new(move |i| a.read(i))
            },
            write: {
                let a = Arc::clone(&hz);
                Box::new(move |i, v| a.write(i, v))
            },
            resize: {
                let a = Arc::clone(&hz);
                Box::new(move |n| {
                    a.resize(n);
                })
            },
            capacity: {
                let a = hz;
                Box::new(move || a.capacity())
            },
        },
        Variant {
            name: "LockFreeVector",
            read: {
                let a = Arc::clone(&lf);
                Box::new(move |i| a.read(i))
            },
            write: {
                let a = Arc::clone(&lf);
                Box::new(move |i, v| a.write(i, v))
            },
            resize: {
                let a = Arc::clone(&lf);
                Box::new(move |n| a.extend_default(n.div_ceil(16) * 16))
            },
            capacity: {
                let a = lf;
                Box::new(move || a.len())
            },
        },
    ]
}

#[test]
fn all_seven_variants_agree_on_a_deterministic_workload() {
    let cluster = Cluster::new(Topology::new(2, 1));
    let vs = variants(&cluster);

    // The workload: interleaved growth, writes and reads.
    let mut logs: Vec<Vec<u64>> = vec![Vec::new(); vs.len()];
    for (k, v) in vs.iter().enumerate() {
        (v.resize)(32);
        for step in 0..400u64 {
            let cap = (v.capacity)();
            let idx = (step as usize * 13) % cap;
            match step % 5 {
                0 | 1 => (v.write)(idx, step * 7),
                2 | 3 => logs[k].push((v.read)(idx)),
                _ => {
                    if cap < 256 {
                        (v.resize)(16);
                        logs[k].push((v.capacity)() as u64);
                    }
                }
            }
        }
    }

    for (k, v) in vs.iter().enumerate().skip(1) {
        assert_eq!(logs[0], logs[k], "{} disagrees with {}", v.name, vs[0].name);
        assert_eq!((vs[0].capacity)(), (v.capacity)(), "{} capacity", v.name);
    }

    // Full-content comparison.
    let reference: Vec<u64> = (0..(vs[0].capacity)()).map(|i| (vs[0].read)(i)).collect();
    for v in vs.iter().skip(1) {
        let content: Vec<u64> = (0..(v.capacity)()).map(|i| (v.read)(i)).collect();
        assert_eq!(reference, content, "{} content mismatch", v.name);
    }
}

#[test]
fn zero_initialization_is_universal() {
    let cluster = Cluster::new(Topology::new(3, 1));
    for v in variants(&cluster) {
        (v.resize)(48);
        for i in 0..48 {
            assert_eq!((v.read)(i), 0, "{}[{i}] not zero-initialized", v.name);
        }
    }
}

#[test]
fn growth_preserves_content_in_every_variant() {
    let cluster = Cluster::new(Topology::new(2, 1));
    for v in variants(&cluster) {
        (v.resize)(16);
        for i in 0..16 {
            (v.write)(i, 1000 + i as u64);
        }
        (v.resize)(64);
        for i in 0..16 {
            assert_eq!((v.read)(i), 1000 + i as u64, "{} lost data on grow", v.name);
        }
    }
}
