//! Property-based tests of the core invariants the paper proves as
//! lemmas, checked against reference models under randomized inputs.

use proptest::prelude::*;
use rcuarray_qsbr::DeferList;
use rcuarray_repro::prelude::*;
use rcuarray_runtime::{BlockCyclicDist, BlockDist, RoundRobinCounter};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Lemma 4: the defer list is sorted by safe epoch in descending order,
// and pop_less_equal splits exactly at the boundary.
// ---------------------------------------------------------------------
proptest! {
    #[test]
    fn defer_list_matches_model(
        increments in prop::collection::vec(0u64..5, 1..80),
        min_offsets in prop::collection::vec(0u64..10, 1..8),
    ) {
        let mut list = DeferList::new();
        let mut model: Vec<u64> = Vec::new();
        let mut epoch = 0u64;
        for inc in increments {
            epoch += inc; // non-decreasing, like StateEpoch-derived epochs
            list.push(epoch, || {});
            model.push(epoch);
        }
        // Descending from head (Lemma 4).
        let epochs = list.epochs();
        prop_assert!(epochs.windows(2).all(|w| w[0] >= w[1]));

        for off in min_offsets {
            let min = epoch.saturating_sub(off * 3);
            let expect_cut = model.iter().filter(|&&e| e <= min).count();
            let chain = list.pop_less_equal(min);
            prop_assert_eq!(chain.len(), expect_cut);
            model.retain(|&e| e > min);
            prop_assert_eq!(list.len(), model.len());
            let epochs = list.epochs();
            prop_assert!(epochs.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}

// ---------------------------------------------------------------------
// Lemma 2: epoch parity selects the right reader counter across any
// sequence of advances, including wrap-around from u64::MAX.
// ---------------------------------------------------------------------
proptest! {
    #[test]
    fn epoch_parity_model(start in prop::num::u64::ANY, advances in 0usize..50) {
        let zone = EpochZone::new();
        zone.set_epoch_for_test(start);
        let mut expected = start;
        for _ in 0..advances {
            let t = zone.pin();
            prop_assert_eq!(t.epoch(), expected);
            prop_assert_eq!(t.parity(), (expected & 1) as usize);
            prop_assert_eq!(zone.readers_on(t.parity()), 1);
            zone.unpin(t);
            let old = zone.advance();
            prop_assert_eq!(old, expected);
            expected = expected.wrapping_add(1);
            // The drained parity must be empty: a writer would proceed.
            zone.wait_for_readers(old);
        }
        prop_assert_eq!(zone.epoch(), expected);
    }
}

// ---------------------------------------------------------------------
// Distribution math: BlockDist chunks partition the index space and
// BlockCyclic round-robin covers all locales within a spread of one.
// ---------------------------------------------------------------------
proptest! {
    #[test]
    fn block_dist_partitions(n in 0usize..2000, locales in 1usize..16) {
        let d = BlockDist::new(n, locales);
        let mut total = 0usize;
        let mut next_start = 0usize;
        for l in 0..locales {
            let chunk = d.chunk_of(LocaleId::new(l as u32));
            prop_assert_eq!(chunk.start, next_start);
            next_start = chunk.end;
            total += chunk.len();
        }
        prop_assert_eq!(total, n);
        for idx in (0..n).step_by(7.max(n / 50 + 1)) {
            let owner = d.locale_of(idx);
            prop_assert!(d.chunk_of(owner).contains(&idx));
        }
    }

    #[test]
    fn round_robin_spread_within_one(blocks in 1usize..200, locales in 1usize..12) {
        let rr = RoundRobinCounter::new(locales);
        let mut hist = vec![0usize; locales];
        for _ in 0..blocks {
            hist[rr.take().index()] += 1;
        }
        let max = *hist.iter().max().unwrap();
        let min = *hist.iter().min().unwrap();
        prop_assert!(max - min <= 1, "hist {:?}", hist);
    }

    #[test]
    fn block_cyclic_locate_round_trips(
        idx in 0usize..100_000,
        block_size in 1usize..5000,
        locales in 1usize..9,
    ) {
        let d = BlockCyclicDist::new(block_size, locales);
        let b = d.block_of(idx);
        let off = d.offset_of(idx);
        prop_assert_eq!(b * block_size + off, idx);
        prop_assert!(off < block_size);
        let loc = d.locale_of_block(b, LocaleId::ZERO);
        prop_assert!(loc.index() < locales);
    }
}

// ---------------------------------------------------------------------
// The array against a Vec model under arbitrary op sequences
// (single-threaded determinism; concurrency is covered by stress tests).
// ---------------------------------------------------------------------
#[derive(Debug, Clone)]
enum Op {
    Read(usize),
    Write(usize, u64),
    Resize(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4096).prop_map(Op::Read),
        ((0usize..4096), prop::num::u64::ANY).prop_map(|(i, v)| Op::Write(i, v)),
        (1usize..64).prop_map(Op::Resize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn array_matches_vec_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let cluster = Cluster::new(Topology::new(2, 1));
        let cfg = Config { block_size: 16, account_comm: false, ..Config::default() };
        let ebr: EbrArray<u64> = EbrArray::with_config(&cluster, cfg);
        let qsbr: QsbrArray<u64> = QsbrArray::with_config(&cluster, cfg);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Read(i) => {
                    let i = if model.is_empty() { continue } else { i % model.len() };
                    let m = model[i];
                    prop_assert_eq!(ebr.read(i), m);
                    prop_assert_eq!(qsbr.read(i), m);
                }
                Op::Write(i, v) => {
                    if model.is_empty() { continue }
                    let i = i % model.len();
                    model[i] = v;
                    ebr.write(i, v);
                    qsbr.write(i, v);
                }
                Op::Resize(n) => {
                    let add = n.div_ceil(16) * 16;
                    model.resize(model.len() + add, 0);
                    prop_assert_eq!(ebr.resize(n), model.len());
                    prop_assert_eq!(qsbr.resize(n), model.len());
                }
            }
        }
        prop_assert_eq!(ebr.to_vec(), model.clone());
        prop_assert_eq!(qsbr.to_vec(), model);
        qsbr.checkpoint();
    }
}

// ---------------------------------------------------------------------
// QSBR end-to-end: any defer/checkpoint interleaving on one thread frees
// everything exactly once, never early.
// ---------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn qsbr_frees_exactly_once(script in prop::collection::vec(prop::bool::ANY, 1..60)) {
        let domain = QsbrDomain::new();
        let freed = Arc::new(AtomicUsize::new(0));
        let mut deferred = 0usize;
        for do_defer in script {
            if do_defer {
                let f = Arc::clone(&freed);
                domain.defer(move || { f.fetch_add(1, Ordering::SeqCst); });
                deferred += 1;
                // Never freed at defer time.
                prop_assert!(freed.load(Ordering::SeqCst) < deferred + 1);
            } else {
                domain.checkpoint();
                // Sole participant: everything deferred so far is freed.
                prop_assert_eq!(freed.load(Ordering::SeqCst), deferred);
            }
        }
        domain.checkpoint();
        prop_assert_eq!(freed.load(Ordering::SeqCst), deferred);
    }
}

// ---------------------------------------------------------------------
// Lemma 6 as a property: updates through references taken at any point
// survive any subsequent resize schedule.
// ---------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn refs_survive_any_resize_schedule(
        take_at in prop::collection::vec(0usize..64, 1..10),
        resizes in 1usize..8,
    ) {
        let cluster = Cluster::new(Topology::new(2, 1));
        let a: QsbrArray<u64> = QsbrArray::with_config(
            &cluster,
            Config { block_size: 16, account_comm: false, ..Config::default() },
        );
        a.resize(64);
        let refs: Vec<(usize, ElemRef<'_, u64>)> =
            take_at.iter().map(|&i| (i, a.get_ref(i))).collect();
        for _ in 0..resizes {
            a.resize(16);
        }
        for (i, r) in &refs {
            r.set(*i as u64 + 7);
        }
        for (i, _) in &refs {
            prop_assert_eq!(a.read(*i), *i as u64 + 7);
        }
        a.checkpoint();
    }
}
