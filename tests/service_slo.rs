//! SLO acceptance tests for the serving layer (DESIGN.md §11): under a
//! byte-capped reclaim backlog the service answers `Overloaded` instead
//! of wedging; floods shed past the deadline but every ticket resolves;
//! fault injection (`read.kill`, slow locales) degrades answers, never
//! the service; and the queue-depth gauge returns to baseline once load
//! stops.
//!
//! The SLO counters and gauges are process-wide, so every test holds
//! `SERIAL` — assertions on deltas and baselines need exclusive use.

use rcuarray_repro::prelude::*;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

/// Seed for the probabilistic schedules; override with `RCU_FAULT_SEED`
/// (the nightly chaos job loops this suite over many seeds).
fn seed() -> u64 {
    std::env::var("RCU_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn cluster(locales: usize) -> Arc<Cluster> {
    Cluster::new(Topology::new(locales, 2))
}

fn small_cfg() -> Config {
    Config {
        block_size: 8,
        account_comm: false,
        ..Config::default()
    }
}

/// Poll `checkpoint` until the reclaim backlog fully drains.
fn drain<T: Element, S: Scheme>(a: &RcuArray<T, S>) -> bool {
    for _ in 0..1000 {
        a.checkpoint();
        if a.stats().reclaim.pending == 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

/// The tentpole acceptance scenario: a stalled EBR pin drives the
/// byte-capped backlog to its cap while clients keep asking for growth.
/// The service must answer `Response::Overloaded` (not wedge, not
/// panic), keep serving reads throughout, and once the pin drops the
/// backlog and the queue-depth gauge must both return to baseline.
#[test]
fn backpressure_surfaces_as_overloaded_and_service_recovers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cap = 2048u64;
    let c = cluster(2);
    let array: EbrArray<u64> = EbrArray::with_config(
        &c,
        Config {
            pressure: PressureConfig::bounded(cap),
            stall: StallPolicy::after(1, 64),
            ..small_cfg()
        },
    );
    array.resize(8);
    array.write(0, 5);

    let service = Service::start(
        array,
        ServiceConfig {
            // Generous deadline: this test is about refusal, not shedding.
            deadline: Duration::from_secs(5),
            ..ServiceConfig::default()
        },
    );
    let client = service.client();

    std::thread::scope(|s| {
        let (ready_tx, ready_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        s.spawn(|| {
            // Hold a read-side pin open indefinitely: every retirement
            // from the grows below must be evacuated, not freed.
            service.array().with_view(move |v| {
                assert_eq!(v.get(0), 5);
                ready_tx.send(()).unwrap();
                done_rx.recv().unwrap();
            });
        });
        ready_rx.recv().unwrap();

        let mut refusal = None;
        for _ in 0..400 {
            match client.call(Request::Grow { additional: 8 }) {
                Response::Grown(_) => {
                    // Reads keep working while the backlog builds.
                    assert_eq!(
                        client.call(Request::Get { idx: 0 }),
                        Response::Value(Some(5))
                    );
                }
                Response::Overloaded { retry_after } => {
                    refusal = Some(retry_after);
                    break;
                }
                other => panic!("unexpected grow response: {other:?}"),
            }
        }
        let retry_after = refusal.expect("capped backlog never refused growth");
        assert!(retry_after > Duration::ZERO, "retry hint must be usable");

        // Refused growth is not a dead service: reads still answer.
        assert_eq!(
            client.call(Request::Get { idx: 0 }),
            Response::Value(Some(5))
        );

        done_tx.send(()).unwrap();
    });

    // Pin dropped: the evacuated backlog must drain to zero...
    assert!(
        drain(service.array()),
        "backlog failed to drain after the stalled pin released"
    );
    assert_eq!(service.array().stats().reclaim.pending_bytes, 0);
    // ...growth must resume...
    match client.call(Request::Grow { additional: 8 }) {
        Response::Grown(_) => {}
        other => panic!("growth did not resume after recovery: {other:?}"),
    }
    service.shutdown();

    // ...and the gauges are back at baseline with the load gone.
    let snap = slo_snapshot();
    assert_eq!(snap.queue_depth, 0, "queue-depth gauge must return to 0");
    assert!(snap.overloaded >= 1, "the refusal must be counted");
    assert!(
        snap.pins < snap.requests,
        "batch execution must pin less than once per request: {snap}"
    );
}

/// A flood against a tiny admission queue and a nanosecond deadline:
/// requests shed (and possibly refuse) under pressure, but every single
/// ticket resolves — the service never wedges — and the queue-depth
/// gauge returns to zero once the flood stops.
#[test]
fn flood_sheds_past_deadline_but_every_ticket_resolves() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let c = cluster(1);
    let array: QsbrArray<u64> = QsbrArray::with_config(&c, small_cfg());
    array.resize(64);

    let service = Service::start(
        array,
        ServiceConfig {
            queue_capacity: 8,
            // Every admitted request has, by construction, waited
            // longer than this by the time a worker dequeues it.
            deadline: Duration::from_nanos(1),
            max_delay: Duration::from_micros(50),
            ..ServiceConfig::default()
        },
    );
    let client = service.client();
    let shed_before = slo_snapshot().shed;

    let tickets: Vec<_> = (0..500)
        .map(|i| client.submit(Request::Get { idx: i % 64 }))
        .collect();
    let mut resolved = 0usize;
    for t in tickets {
        match t.wait_timeout(Duration::from_secs(10)) {
            Ok(resp) => {
                assert!(
                    matches!(
                        resp,
                        Response::Value(_) | Response::Shed { .. } | Response::Overloaded { .. }
                    ),
                    "unexpected flood response: {resp:?}"
                );
                resolved += 1;
            }
            Err(_) => panic!("a flooded ticket never resolved — the service wedged"),
        }
    }
    assert_eq!(resolved, 500);

    let snap = slo_snapshot();
    assert!(
        snap.shed > shed_before,
        "a nanosecond deadline must shed admitted requests: {snap}"
    );
    service.shutdown();
    assert_eq!(
        slo_snapshot().queue_depth,
        0,
        "queue-depth gauge must return to 0 after the flood"
    );
}

/// Chaos: `read.kill` unwinds the worker's read section mid-batch. The
/// worker's `catch_unwind` turns each kill into `Response::Failed`, the
/// guard's unwind path releases the pin (no wedged reclamation), and the
/// service keeps serving once the trigger exhausts.
#[test]
fn read_kill_fault_degrades_answers_but_service_keeps_serving() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let kills = 3;
    let plan = FaultPlan::new(seed()).trigger("read.kill", 0, kills, FaultAction::Panic);
    let c = Cluster::builder()
        .topology(Topology::new(2, 2))
        .fault_plan(plan)
        .build();
    let array: EbrArray<u64> = EbrArray::with_config(&c, small_cfg());
    array.resize(32);

    let service = Service::start(
        array,
        ServiceConfig {
            deadline: Duration::from_secs(5),
            ..ServiceConfig::default()
        },
    );
    let client = service.client();

    let mut failed = 0usize;
    let mut served = 0usize;
    for i in 0..20 {
        match client.call(Request::Get { idx: i % 32 }) {
            Response::Failed => failed += 1,
            Response::Value(Some(0)) => served += 1,
            other => panic!("unexpected response under read.kill: {other:?}"),
        }
    }
    assert_eq!(
        failed, kills as usize,
        "each armed kill fails exactly one sequential single-request batch"
    );
    assert_eq!(served, 20 - kills as usize, "the service must keep serving");
    assert!(
        service.array().stats().reclaim.guard_panics >= kills,
        "killed read sections must release their guards via unwind"
    );
    // A wedged (leaked) pin would hang this growth forever.
    match client.call(Request::Grow { additional: 8 }) {
        Response::Grown(_) => {}
        other => panic!("growth wedged after killed readers: {other:?}"),
    }
    let snap = slo_snapshot();
    assert!(snap.failures >= kills, "kills must be counted: {snap}");
    service.shutdown();
    assert_eq!(slo_snapshot().queue_depth, 0);
}

/// Chaos: one locale turns slow (every remote charge spins). Batches
/// touching its memory stall long enough that later arrivals blow the
/// deadline and shed; turning the locale healthy again restores normal
/// service, and every ticket resolves throughout.
#[test]
fn slow_locale_causes_sheds_then_service_recovers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let plan = FaultPlan::new(seed()).slow_delay(Duration::from_millis(2));
    let c = Cluster::builder()
        .topology(Topology::new(2, 2))
        .fault_plan(plan)
        .build();
    let array: EbrArray<u64> = EbrArray::with_config(
        &c,
        Config {
            account_comm: true,
            ..small_cfg()
        },
    );
    array.resize(32);

    let service = Service::start(
        array,
        ServiceConfig {
            queue_capacity: 256,
            // Deadline comfortably above the batching delay (a lone
            // request ages ~max_delay before it flushes) but far below
            // the 2ms slow-locale charge.
            max_delay: Duration::from_micros(50),
            deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    let client = service.client();
    let shed_before = slo_snapshot().shed;

    c.fault().set_slow(LocaleId::new(1), true);
    // Route through the locale-0 pool (first index 0) but touch memory
    // homed on the slow locale (index 9, block 1): every executing batch
    // pays the 2ms remote charge, so queued successors outwait the
    // 1ms deadline and shed.
    let tickets: Vec<_> = (0..64)
        .map(|_| {
            client.submit(Request::BatchGet {
                indices: vec![0, 9],
            })
        })
        .collect();
    for t in tickets {
        assert!(
            t.wait_timeout(Duration::from_secs(10)).is_ok(),
            "a ticket never resolved under the slow locale"
        );
    }
    assert!(
        slo_snapshot().shed > shed_before,
        "a slow locale must shed deadline-blown requests"
    );

    // Healthy again: reads answer normally. The 1ms deadline can still
    // shed an unlucky probe on scheduler jitter, so retry a few times.
    c.fault().set_slow(LocaleId::new(1), false);
    let recovered =
        (0..50).any(|_| client.call(Request::Get { idx: 9 }) == Response::Value(Some(0)));
    assert!(recovered, "service must recover once the locale is healthy");
    service.shutdown();
    assert_eq!(slo_snapshot().queue_depth, 0);
}
