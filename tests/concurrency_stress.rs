//! System-level concurrency stress: readers, updaters and resizers
//! hammering one array from every locale, checking the paper's safety
//! claims end to end.

use rcuarray_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        block_size: 32,
        account_comm: false,
        ..Config::default()
    }
}

/// Readers verify a per-slot invariant (value is either 0 or encodes its
/// own index) while resizers grow the array — any torn snapshot, lost
/// update or use-after-free breaks the invariant or crashes.
fn stress<S: rcuarray::Scheme>(make: impl Fn(&Arc<Cluster>) -> RcuArray<u64, S>) {
    let cluster = Cluster::new(Topology::new(2, 2));
    let array = make(&cluster);
    array.resize(256);
    let stop = AtomicBool::new(false);
    let reads_done = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Updaters: slot i always holds i * 2 + 1.
        for t in 0..2 {
            let array = array.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut k = t * 17;
                while !stop.load(Ordering::Relaxed) {
                    let cap = array.capacity();
                    let i = k % cap;
                    array.write(i, (i as u64) * 2 + 1);
                    k += 13;
                }
                array.checkpoint();
            });
        }
        // Readers: every slot is still-zero or self-consistent.
        for _ in 0..2 {
            let array = array.clone();
            let stop = &stop;
            let reads_done = &reads_done;
            s.spawn(move || {
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let cap = array.capacity();
                    let i = (k * 7) % cap;
                    let v = array.read(i);
                    assert!(v == 0 || v == (i as u64) * 2 + 1, "slot {i} corrupted: {v}");
                    k += 1;
                    reads_done.fetch_add(1, Ordering::Relaxed);
                }
                array.checkpoint();
            });
        }
        // Resizer: grows the array 60 times while all of that runs.
        let array2 = array.clone();
        let stop2 = &stop;
        s.spawn(move || {
            for _ in 0..60 {
                array2.resize(32);
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    assert_eq!(array.capacity(), 256 + 60 * 32);
    assert!(reads_done.load(Ordering::Relaxed) > 0);
    // Final sweep: every slot intact.
    for i in 0..array.capacity() {
        let v = array.read(i);
        assert!(v == 0 || v == (i as u64) * 2 + 1);
    }
    array.checkpoint();
}

#[test]
fn ebr_array_survives_full_stress() {
    stress(|c| EbrArray::<u64>::with_config(c, cfg()));
}

#[test]
fn qsbr_array_survives_full_stress() {
    stress(|c| QsbrArray::<u64>::with_config(c, cfg()));
}

#[test]
fn updates_through_stale_refs_race_resizes_without_loss() {
    // Lemma 6 under fire: take references, resize, write through them
    // concurrently; every write must land.
    let cluster = Cluster::new(Topology::new(2, 2));
    let array: QsbrArray<u64> = QsbrArray::with_config(&cluster, cfg());
    array.resize(128);
    std::thread::scope(|s| {
        let refs: Vec<ElemRef<'_, u64>> = (0..128).map(|i| array.get_ref(i)).collect();
        let a2 = array.clone();
        let resizer = s.spawn(move || {
            for _ in 0..20 {
                a2.resize(32);
            }
        });
        for (i, r) in refs.iter().enumerate() {
            r.set(i as u64 + 1000);
        }
        resizer.join().unwrap();
    });
    for i in 0..128 {
        assert_eq!(array.read(i), i as u64 + 1000, "update through ref lost");
    }
    array.checkpoint();
}

#[test]
fn many_arrays_share_one_cluster() {
    let cluster = Cluster::new(Topology::new(2, 2));
    let arrays: Vec<QsbrArray<u64>> = (0..8)
        .map(|_| QsbrArray::with_config(&cluster, cfg()))
        .collect();
    std::thread::scope(|s| {
        for (i, a) in arrays.iter().enumerate() {
            s.spawn(move || {
                a.resize(64);
                a.fill(i as u64);
                a.checkpoint();
            });
        }
    });
    for (i, a) in arrays.iter().enumerate() {
        assert!(a.iter().all(|v| v == i as u64), "array {i} cross-talk");
    }
}

#[test]
fn concurrent_resizes_from_every_locale_serialize_correctly() {
    let cluster = Cluster::new(Topology::new(3, 1));
    let array: EbrArray<u64> = EbrArray::with_config(&cluster, cfg());
    cluster.forall_tasks(|_, _| {
        for _ in 0..10 {
            array.resize(32);
        }
    });
    assert_eq!(array.capacity(), 3 * 10 * 32);
    let stats = array.stats();
    assert_eq!(stats.num_blocks, 30);
    assert!(
        stats.block_imbalance() <= 1,
        "round-robin held under contention"
    );
}
