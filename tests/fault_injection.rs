//! Chaos suite for the seeded fault-injection layer: transient comm
//! faults, downed locales, aborted-and-retried resizes, injected panics
//! mid-publish, and schedule determinism.
//!
//! The seed defaults to a fixed value so CI is reproducible; the nightly
//! chaos job loops this suite with `RCU_FAULT_SEED=<n>` to walk distinct
//! deterministic schedules.

use rcuarray_repro::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Seed for the probabilistic schedules; override with `RCU_FAULT_SEED`.
fn seed() -> u64 {
    std::env::var("RCU_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn faulty_cluster(locales: usize, plan: FaultPlan) -> Arc<Cluster> {
    Cluster::builder()
        .topology(Topology::new(locales, 2))
        .fault_plan(plan)
        .build()
}

fn cfg() -> Config {
    Config {
        block_size: 8,
        account_comm: true,
        retry: RetryPolicy::new(8, Duration::from_secs(5)),
        ..Config::default()
    }
}

#[test]
fn transient_faults_are_retried_and_workload_completes() {
    let plan = FaultPlan::new(seed()).fail_gets(0.2).fail_puts(0.2);
    let c = faulty_cluster(3, plan);
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(48);
    for i in 0..48 {
        a.write(i, i as u64 + 1);
    }
    for i in 0..48 {
        assert_eq!(a.read(i), i as u64 + 1, "value torn by transient faults");
    }
    let s = a.stats();
    assert!(s.fault.failed() > 0, "p=0.2 over 96 ops must fault: {s:?}");
    assert!(s.retries() > 0, "failures must be retried: {s:?}");
    // The retry budget (8 attempts at p=0.2) makes exhaustion essentially
    // impossible: nothing should have degraded.
    assert_eq!(s.fallback_reads, 0, "{s:?}");
    assert_eq!(s.degraded_writes, 0, "{s:?}");
    assert!(c.fault().fault_count() > 0);
    a.checkpoint();
}

#[test]
fn downed_locale_degrades_reads_to_local_snapshot() {
    // No probabilistic faults; the plan exists to flip locales down.
    let c = faulty_cluster(2, FaultPlan::new(seed()));
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(16); // block 0 on L0, block 1 on L1
    for i in 0..16 {
        a.write(i, 100 + i as u64);
    }
    c.fault().set_down(LocaleId::new(1), true);
    // Remote charges against L1 fail fast (LocaleDown is not retryable);
    // the reads fall back to the locale-local snapshot and stay correct.
    for i in 0..16 {
        assert_eq!(a.read(i), 100 + i as u64, "wrong value while L1 down");
    }
    let s = a.stats();
    assert!(
        s.fallback_reads > 0,
        "reads of L1 blocks must degrade: {s:?}"
    );
    assert_eq!(s.fault.retries, 0, "LocaleDown must not be retried: {s:?}");
    // Writes land too (shared-memory simulation), but are counted.
    a.write(8, 7);
    assert_eq!(a.read(8), 7);
    assert!(a.stats().degraded_writes > 0);
    // Revive and verify the fast path is clean again.
    c.fault().set_down(LocaleId::new(1), false);
    let before = a.stats();
    for i in 0..16 {
        let _ = a.read(i);
    }
    assert_eq!(a.stats().fallback_reads, before.fallback_reads);
    a.checkpoint();
}

#[test]
fn aborted_resizes_roll_back_and_retry_until_success() {
    // Three consecutive attempts die at the lock trigger, the fourth
    // succeeds — all inside one `resize` call's retry loop.
    let plan = FaultPlan::new(seed()).trigger("resize.lock", 0, 3, FaultAction::Error);
    let c = faulty_cluster(3, plan);
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(24);
    for i in 0..24 {
        a.write(i, i as u64 * 2);
    }
    let r = a.get_ref(5); // Lemma 6 reference held across the aborts
    assert_eq!(a.resize(8), 32);
    r.set(999);
    let s = a.stats();
    assert_eq!(s.aborted_resizes, 3, "{s:?}");
    assert_eq!(s.resizes, 2, "only successful attempts count: {s:?}");
    assert!(s.retries() >= 3, "aborted attempts must be retried: {s:?}");
    assert_eq!(a.capacity(), 32);
    assert_eq!(a.read(5), 999, "Lemma 6 update lost across aborted resizes");
    for i in 0..24 {
        if i != 5 {
            assert_eq!(a.read(i), i as u64 * 2, "value torn by aborted resize");
        }
    }
    assert_eq!(a.read(31), 0, "new region must be zeroed");
    a.checkpoint();
}

#[test]
fn publish_fault_rolls_back_partially_installed_snapshots() {
    // The fault fires mid-publish: some locales have already swapped in
    // the grown snapshot when one fails. The rollback guard must restore
    // them to the old block count before the lock is released.
    for times in 1..=3u64 {
        let plan = FaultPlan::new(seed()).trigger("resize.publish", 0, times, FaultAction::Error);
        let c = faulty_cluster(3, plan);
        let a: EbrArray<u64> = EbrArray::with_config(&c, cfg());
        a.resize(24);
        for i in 0..24 {
            a.write(i, 7 + i as u64);
        }
        assert_eq!(a.resize(16), 40);
        let s = a.stats();
        assert!(
            s.aborted_resizes >= 1 && s.aborted_resizes <= times,
            "times={times}: {s:?}"
        );
        assert_eq!(a.capacity(), 40);
        // Every locale must agree on the final snapshot.
        for l in 0..3u32 {
            rcuarray_runtime::task::with_locale(LocaleId::new(l), || {
                for i in 0..24 {
                    assert_eq!(a.read(i), 7 + i as u64, "locale {l} torn at {i}");
                }
                let _ = a.read(39);
            });
        }
    }
}

#[test]
fn injected_panic_mid_publish_leaves_array_usable() {
    // Skip the 3 publish hits of the setup resize (one per locale) so the
    // panic fires inside the resize under test.
    let plan = FaultPlan::new(seed()).trigger("resize.publish", 3, 1, FaultAction::Panic);
    let c = faulty_cluster(3, plan);
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(24);
    for i in 0..24 {
        a.write(i, 50 + i as u64);
    }
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        a.resize(8);
    }));
    assert!(panicked.is_err(), "the panic trigger must fire");
    // The attempt rolled back: old capacity, old values, all locales
    // consistent, and — critically — the write lock was released.
    assert_eq!(a.capacity(), 24);
    assert_eq!(a.stats().aborted_resizes, 1);
    for i in 0..24 {
        assert_eq!(a.read(i), 50 + i as u64, "value torn by panicked resize");
    }
    // Lock free ⇒ the next resize (trigger now exhausted) succeeds.
    assert_eq!(a.resize(8), 32);
    assert_eq!(a.stats().resizes, 2);
    a.checkpoint();
}

#[test]
fn timed_out_lock_acquisition_aborts_cleanly() {
    // Mark locale 1 slow so a competing resize — whose allocation and
    // publish both touch it — holds the write lock for a long, bounded
    // window; a zero-retry, 10ms-budget attempt against that window must
    // time out instead of hanging.
    let plan = FaultPlan::new(seed()).slow_delay(Duration::from_millis(400));
    let c = faulty_cluster(2, plan);
    let cfg = Config {
        retry: RetryPolicy::new(0, Duration::from_millis(10)),
        ..cfg()
    };
    let a: Arc<QsbrArray<u64>> = Arc::new(QsbrArray::with_config(&c, cfg));
    a.resize(8);
    c.fault().set_slow(LocaleId::new(1), true);
    let holder = {
        let a = Arc::clone(&a);
        std::thread::spawn(move || {
            a.resize(16); // crawls through slow locale 1 under the lock
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let err = a.try_resize(8).expect_err("lock is held; must time out");
    assert!(
        matches!(err, CommError::Timeout { .. }),
        "expected a timeout, got {err}"
    );
    holder.join().unwrap();
    c.fault().set_slow(LocaleId::new(1), false);
    assert_eq!(a.capacity(), 24, "only the holder's resize landed");
    assert_eq!(a.stats().aborted_resizes, 1);
    // With the lock free, the same zero-retry policy succeeds.
    assert_eq!(a.try_resize(8).unwrap(), 32);
    a.checkpoint();
}

#[test]
fn same_seed_reproduces_the_same_fault_schedule() {
    let run = |s: u64| {
        let plan = FaultPlan::new(s).fail_gets(0.25).fail_puts(0.25);
        let c = faulty_cluster(2, plan);
        let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
        a.resize(32);
        for i in 0..32 {
            a.write(i, i as u64);
        }
        let mut sum = 0u64;
        for i in 0..32 {
            sum += a.read(i);
        }
        assert_eq!(sum, (0..32).sum::<u64>());
        a.checkpoint();
        (
            c.fault().fingerprint(),
            c.fault().fault_count(),
            c.fault().events(),
            a.stats().fault,
        )
    };
    let (fp1, n1, ev1, st1) = run(seed());
    let (fp2, n2, ev2, st2) = run(seed());
    assert!(n1 > 0, "schedule must contain faults for the test to bite");
    assert_eq!(fp1, fp2, "same seed must reproduce the same schedule");
    assert_eq!(n1, n2);
    assert_eq!(ev1, ev2, "single-task run must replay event-for-event");
    assert_eq!(st1, st2, "fault accounting must replay exactly");
    // And a different seed walks a different schedule.
    let (fp3, _, _, _) = run(seed() ^ 0x9E37_79B9_7F4A_7C15);
    assert_ne!(fp1, fp3, "distinct seeds should diverge");
}

#[test]
fn concurrent_chaos_loses_no_updates() {
    // Transient faults on every op kind while writers, readers and
    // resizers race: the RCU invariants must hold regardless.
    let plan = FaultPlan::new(seed()).fail_all(0.05);
    let c = faulty_cluster(3, plan);
    let a: Arc<EbrArray<u64>> = Arc::new(EbrArray::with_config(&c, cfg()));
    a.resize(64);
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let a = Arc::clone(&a);
            s.spawn(move || {
                // Each thread owns a disjoint slot range.
                for round in 1..=50u64 {
                    for i in 0..16 {
                        let idx = (t * 16 + i) as usize;
                        a.write(idx, t * 1_000_000 + round * 100 + i);
                    }
                    for i in 0..16 {
                        let idx = (t * 16 + i) as usize;
                        assert_eq!(a.read(idx), t * 1_000_000 + round * 100 + i);
                    }
                }
            });
        }
        let a2 = Arc::clone(&a);
        s.spawn(move || {
            for _ in 0..10 {
                a2.resize(8);
            }
        });
    });
    assert_eq!(a.capacity(), 64 + 10 * 8);
    let s = a.stats();
    assert!(s.fault.failed() > 0, "chaos must actually inject: {s:?}");
    assert_eq!(s.fallback_reads, 0, "budget should absorb p=0.05: {s:?}");
}

#[test]
fn dist_vector_push_survives_faulty_growth() {
    let plan =
        FaultPlan::new(seed())
            .fail_puts(0.1)
            .trigger("resize.lock", 0, 2, FaultAction::Error);
    let c = faulty_cluster(2, plan);
    let v: DistVector<u64> = DistVector::with_config(&c, cfg());
    for i in 0..40u64 {
        assert_eq!(v.try_push(i * 3).unwrap(), i as usize);
    }
    for i in 0..40u64 {
        assert_eq!(v.get(i as usize), i * 3);
    }
    assert!(v.backing().stats().aborted_resizes >= 1);
    v.checkpoint();
}

#[test]
fn dist_table_grow_aborts_cleanly_when_allocation_faults() {
    let c = faulty_cluster(2, FaultPlan::new(seed()));
    let mut t: DistTable = DistTable::with_config(&c, 16, cfg());
    for k in 1..=10u64 {
        t.insert(k, k * 5).unwrap();
    }
    // Down a locale: growth (which must allocate there) fails fast and
    // leaves the original table untouched.
    c.fault().set_down(LocaleId::new(1), true);
    let before = t.capacity();
    assert!(t.try_grow().is_err(), "growth onto a down locale must fail");
    assert_eq!(t.capacity(), before, "failed grow must not install");
    for k in 1..=10u64 {
        assert_eq!(t.get(k), Some(k * 5), "failed grow corrupted the table");
    }
    // Revived, the same grow succeeds.
    c.fault().set_down(LocaleId::new(1), false);
    t.try_grow().unwrap();
    assert_eq!(t.capacity(), before * 2);
    for k in 1..=10u64 {
        assert_eq!(t.get(k), Some(k * 5));
    }
    t.checkpoint();
}

#[test]
fn disabled_plan_keeps_healthy_semantics_and_zero_fault_counters() {
    let c = Cluster::builder().topology(Topology::new(2, 2)).build();
    assert!(!c.fault().is_enabled());
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(32);
    for i in 0..32 {
        a.write(i, i as u64);
        assert_eq!(a.read(i), i as u64);
    }
    let s = a.stats();
    assert_eq!(
        s.fault,
        FaultStats::default(),
        "healthy path must not count"
    );
    assert_eq!(s.aborted_resizes, 0);
    assert_eq!(s.fallback_reads, 0);
    assert_eq!(s.degraded_writes, 0);
    a.checkpoint();
}

#[test]
fn reader_killed_mid_critical_section_releases_its_guard() {
    // The `read.kill` trigger dies *inside* the read-side critical
    // section, after the guard is acquired — the harshest place to
    // unwind. The guard's Drop must still release the pin so the next
    // read on the same thread works and writers are never wedged.
    let plan = FaultPlan::new(seed()).trigger_once("read.kill", FaultAction::Panic);
    let c = faulty_cluster(2, plan);
    let a: EbrArray<u64> = EbrArray::with_config(&c, cfg());
    a.resize(16);

    // First snapshot access fires the trigger and unwinds.
    let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.read(0)));
    assert!(killed.is_err(), "armed read.kill must unwind the reader");

    // One-shot trigger: the same thread reads again immediately...
    a.write(0, 9);
    assert_eq!(a.read(0), 9, "guard leaked by the killed reader");
    // ...and a resize completes (a leaked EBR pin would hang the drain).
    let before = a.capacity();
    a.resize(16);
    assert_eq!(a.capacity(), before + 16);
    assert!(
        a.stats().reclaim.guard_panics >= 1,
        "killed reader's guard was not counted"
    );
    assert_eq!(c.fault().fault_count(), 1);
    a.checkpoint();
}

#[test]
fn reader_kill_by_error_unwinds_and_recovers_under_qsbr() {
    // FaultAction::Error surfaces as an expect() panic in the read path;
    // QSBR readers carry no release obligation, but the registered
    // participant must not gate reclamation after the unwind.
    let plan = FaultPlan::new(seed()).trigger("read.kill", 1, 1, FaultAction::Error);
    let c = faulty_cluster(2, plan);
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(16);
    a.write(1, 7); // first snapshot access passes (skip = 1)...
    let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.read(1)));
    assert!(killed.is_err(), "second snapshot access must die");
    assert_eq!(a.read(1), 7, "trigger exhausted; reads recover");
    a.resize(16);
    for _ in 0..1000 {
        a.checkpoint();
        if a.qsbr_domain().unwrap().stats().pending == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        a.qsbr_domain().unwrap().stats().pending,
        0,
        "killed reader wedged reclamation"
    );
}
