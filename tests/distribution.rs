//! Cross-crate integration of the distribution story: block placement,
//! communication locality and cluster-wide lock accounting (§III-D).

use rcuarray_repro::prelude::*;
use std::sync::Arc;

#[test]
fn rcuarray_blocks_round_robin_across_many_resizes() {
    let cluster = Cluster::new(Topology::new(5, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(
        &cluster,
        Config {
            block_size: 8,
            account_comm: false,
            ..Config::default()
        },
    );
    // 13 resizes of varying block counts.
    for n in 1..=13usize {
        a.resize(8 * (n % 3 + 1));
    }
    let stats = a.stats();
    assert!(
        stats.block_imbalance() <= 1,
        "round-robin must balance within 1: {:?}",
        stats.blocks_per_locale
    );
    assert_eq!(
        stats.blocks_per_locale.iter().sum::<usize>(),
        stats.num_blocks
    );
    a.checkpoint();
}

#[test]
fn allocation_accounting_attributes_to_home_locales() {
    let cluster = Cluster::new(Topology::new(4, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(
        &cluster,
        Config {
            block_size: 16,
            account_comm: false,
            ..Config::default()
        },
    );
    a.resize(16 * 8); // 8 blocks over 4 locales: 2 each
                      // Bytes per cell is the size of the element representation, which is
                      // larger than the payload when instrumentation is compiled in.
    let cell = std::mem::size_of::<<u64 as Element>::Repr>();
    for locale in cluster.locales() {
        assert_eq!(locale.allocations(), 2, "locale {}", locale.id());
        assert_eq!(locale.allocated_bytes(), (2 * 16 * cell) as u64);
    }
    a.checkpoint();
}

#[test]
fn reads_of_local_blocks_stay_local() {
    let cluster = Cluster::new(Topology::new(2, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    a.resize(32); // blocks: L0, L1, L0, L1
    cluster.comm().reset();
    // From locale 0, read only indices in locale-0 blocks (0..8, 16..24).
    rcuarray_runtime::task::with_locale(LocaleId::ZERO, || {
        for i in (0..8).chain(16..24) {
            let _ = a.read(i);
        }
    });
    let s = cluster.comm_stats();
    assert_eq!(s.gets, 0, "locale-local reads must not GET");
    assert_eq!(s.local_accesses, 16);
    a.checkpoint();
}

#[test]
fn remote_updates_are_puts_of_element_size() {
    let cluster = Cluster::new(Topology::new(2, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    a.resize(16); // block 0 on L0, block 1 on L1
    cluster.comm().reset();
    rcuarray_runtime::task::with_locale(LocaleId::ZERO, || {
        for i in 8..16 {
            a.write(i, 1); // all in L1's block
        }
    });
    let s = cluster.comm_stats();
    assert_eq!(s.puts, 8);
    assert_eq!(s.bytes_moved, 8 * 8, "u64 elements move 8 bytes each");
    a.checkpoint();
}

#[test]
fn resize_cost_is_dominated_by_writer_not_readers() {
    // §III-D: replication means readers touch node-local metadata only;
    // the resize itself does the cross-locale work.
    let cluster = Cluster::new(Topology::new(4, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    cluster.comm().reset();
    a.resize(8 * 4);
    let resize_comm = cluster.comm_stats();
    assert!(
        resize_comm.remote_executes >= 3,
        "resize must replicate across locales: {resize_comm:?}"
    );
    a.checkpoint();
}

#[test]
fn sync_array_lock_contention_grows_with_remote_tasks() {
    let cluster = Cluster::new(Topology::new(4, 1));
    let a: SyncArray<u64> = SyncArray::new(&cluster);
    a.resize(64);
    cluster.comm().reset();
    cluster.forall_tasks(|_, _| {
        for i in 0..16 {
            let _ = a.read(i);
        }
    });
    let s = cluster.comm_stats();
    // 3 of 4 locales are remote to the lock; every one of their 16 ops
    // pays a lock round trip (2 puts + 1 get) beyond any element traffic.
    assert!(s.puts >= 3 * 16 * 2, "remote lock traffic missing: {s:?}");
}

#[test]
fn unsafe_array_chunks_match_block_dist_math() {
    let cluster = Cluster::new(Topology::new(3, 1));
    let a: UnsafeArray<u64> = UnsafeArray::new(&cluster);
    a.resize(10);
    let dist = rcuarray_runtime::BlockDist::new(10, 3);
    cluster.comm().reset();
    // Visit each index from its *owning* locale: zero remote traffic.
    for i in 0..10 {
        let owner = dist.locale_of(i);
        rcuarray_runtime::task::with_locale(owner, || {
            let _ = a.read(i);
        });
    }
    assert_eq!(cluster.comm_stats().gets, 0);
    assert_eq!(cluster.comm_stats().local_accesses, 10);
}

#[test]
fn cluster_wide_write_lock_charges_remote_acquirers() {
    let cluster = Cluster::new(Topology::new(2, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    cluster.comm().reset();
    // Resize from locale 1: write lock homed on locale 0.
    rcuarray_runtime::task::with_locale(LocaleId::new(1), || {
        a.resize(8);
    });
    let s = cluster.comm_stats();
    assert!(s.gets >= 1 && s.puts >= 2, "remote lock round trip: {s:?}");
    a.checkpoint();
}

#[test]
fn latency_model_makes_remote_access_measurably_slower() {
    use std::time::Instant;
    let slow = Cluster::with_latency(Topology::new(2, 1), LatencyModel::SpinNanos(50_000));
    let a: QsbrArray<u64> = QsbrArray::with_config(&slow, Config::with_block_size(8));
    a.resize(16);
    let t_local = {
        let start = Instant::now();
        rcuarray_runtime::task::with_locale(LocaleId::ZERO, || {
            for i in 0..8 {
                let _ = a.read(i); // block 0: local
            }
        });
        start.elapsed()
    };
    let t_remote = {
        let start = Instant::now();
        rcuarray_runtime::task::with_locale(LocaleId::ZERO, || {
            for i in 8..16 {
                let _ = a.read(i); // block 1: remote, 50µs each
            }
        });
        start.elapsed()
    };
    assert!(
        t_remote > t_local * 5,
        "remote {t_remote:?} should dwarf local {t_local:?}"
    );
    a.checkpoint();
}

#[test]
fn arc_cluster_shared_by_all_structures() {
    let cluster = Cluster::new(Topology::new(2, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    let b: UnsafeArray<u64> = UnsafeArray::new(&cluster);
    let c2: SyncArray<u64> = SyncArray::new(&cluster);
    a.resize(8);
    b.resize(8);
    c2.resize(8);
    assert!(
        Arc::strong_count(&cluster) >= 4,
        "structures share the cluster"
    );
}

#[test]
fn retries_are_charged_to_the_initiating_locale() {
    // Every remote GET fails; the retry budget is spent by whichever
    // locale initiated the access, not the (innocent) block owner.
    let plan = FaultPlan::new(11).fail_gets(1.0);
    let cluster = Cluster::builder()
        .topology(Topology::new(2, 1))
        .fault_plan(plan)
        .build();
    let retry = RetryPolicy::new(3, std::time::Duration::from_secs(5));
    let a: QsbrArray<u64> = QsbrArray::with_config(
        &cluster,
        Config {
            block_size: 8,
            retry,
            ..Config::default()
        },
    );
    a.resize(16); // block 0 homed on L0, block 1 on L1
    rcuarray_runtime::task::with_locale(LocaleId::new(1), || {
        let _ = a.read(0); // remote GET against L0: fails, retried, degrades
    });
    let l1 = cluster.comm().fault_stats_for(LocaleId::new(1));
    let l0 = cluster.comm().fault_stats_for(LocaleId::ZERO);
    assert_eq!(
        l1.retries,
        u64::from(retry.max_retries),
        "initiator pays the whole retry budget: {l1:?}"
    );
    assert_eq!(l0.retries, 0, "the block owner pays nothing: {l0:?}");
    assert_eq!(l1.gets_attempted, l1.gets_failed, "p=1.0: every GET fails");
    assert_eq!(
        l1.gets_attempted,
        u64::from(retry.max_retries) + 1,
        "first attempt + retries are all attributed to the initiator"
    );
    assert_eq!(a.stats().fallback_reads, 1, "the read degraded locally");
    a.checkpoint();
}

#[test]
fn fault_accounting_balances_attempted_against_failed_per_locale() {
    let plan = FaultPlan::new(23).fail_gets(0.3).fail_puts(0.3);
    let cluster = Cluster::builder()
        .topology(Topology::new(3, 1))
        .fault_plan(plan)
        .build();
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    a.resize(24);
    for l in 0..3u32 {
        rcuarray_runtime::task::with_locale(LocaleId::new(l), || {
            for i in 0..24 {
                a.write(i, i as u64);
                let _ = a.read(i);
            }
        });
    }
    // Attempted counters only include fault-checked (plan-enabled) ops,
    // so completed + failed must reconcile exactly per locale.
    let comm = cluster.comm();
    let totals = comm.fault_totals();
    assert!(
        totals.failed() > 0,
        "p=0.3 must inject something: {totals:?}"
    );
    let per: Vec<_> = (0..3u32)
        .map(|l| comm.fault_stats_for(LocaleId::new(l)))
        .collect();
    let sum_attempted: u64 = per
        .iter()
        .map(|s| s.gets_attempted + s.puts_attempted)
        .sum();
    assert_eq!(sum_attempted, totals.gets_attempted + totals.puts_attempted);
    a.checkpoint();
}
