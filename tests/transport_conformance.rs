//! Transport conformance suite: the contract every backend must honor
//! (DESIGN.md §14), run against both `ShmemTransport` and
//! `MeshTransport`.
//!
//! The contract, in order of appearance:
//!
//! * per-link delivery is FIFO (send order == delivery order) unless a
//!   reorder fault rule says otherwise;
//! * faults surface as `CommError` — a partitioned link *refuses*
//!   promptly instead of hanging;
//! * accounting is backend-independent: the same workload yields
//!   identical `CommStats` / `FaultStats` on every backend, and the
//!   conservation invariant `attempted = completed + failed` holds per
//!   operation kind;
//! * per-link fault rules (partition, one-way delay, drop-with-retry)
//!   are directed: the reverse link is unaffected;
//! * the serving layer degrades *answers*, not availability, when a
//!   link partitions under it.

use rcuarray_repro::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BOTH: [TransportKind; 2] = [TransportKind::Shmem, TransportKind::Mesh];

fn l(i: u32) -> LocaleId {
    LocaleId::new(i)
}

fn cluster_on(kind: TransportKind, locales: usize, plan: FaultPlan) -> Arc<Cluster> {
    Cluster::builder()
        .topology(Topology::new(locales, 2))
        .backend(kind)
        .fault_plan(plan)
        .build()
}

/// A fixed message script exercising the whole vocabulary, attributed
/// to several initiating locales. Used by the cross-backend equality
/// tests: both backends must account it identically.
fn run_script(c: &Cluster) -> Vec<Result<(), CommError>> {
    let msgs: [(u32, u32, CommMessage); 8] = [
        (0, 1, CommMessage::Get { bytes: 64 }),
        (0, 2, CommMessage::Put { bytes: 32 }),
        (1, 0, CommMessage::RemoteExec),
        (1, 2, CommMessage::LockAcquire),
        (1, 2, CommMessage::LockRelease),
        (
            2,
            0,
            CommMessage::Collective {
                kind: CollectiveKind::Broadcast,
                bytes: 24,
            },
        ),
        (
            2,
            1,
            CommMessage::Collective {
                kind: CollectiveKind::Reduce,
                bytes: 16,
            },
        ),
        (
            0,
            1,
            CommMessage::Collective {
                kind: CollectiveKind::BarrierArrive,
                bytes: 8,
            },
        ),
    ];
    msgs.iter()
        .map(|&(from, to, msg)| c.comm().send(l(from), l(to), msg))
        .collect()
}

#[test]
fn backend_selection_is_visible_on_the_cluster() {
    for kind in BOTH {
        let c = cluster_on(kind, 2, FaultPlan::disabled());
        assert_eq!(c.backend(), kind);
        assert_eq!(c.comm().transport().kind(), kind);
    }
}

#[test]
fn per_link_delivery_is_fifo_on_every_backend() {
    for kind in BOTH {
        let c = cluster_on(kind, 3, FaultPlan::disabled());
        let t = c.comm().transport();
        t.enable_delivery_log();
        // Interleave two links; each must stay FIFO independently.
        for i in 0..8 {
            c.comm()
                .send(l(0), l(1), CommMessage::Put { bytes: i })
                .unwrap();
            c.comm()
                .send(l(0), l(2), CommMessage::Get { bytes: i })
                .unwrap();
        }
        for dst in [1, 2] {
            let log = t.delivery_log(l(0), l(dst));
            assert_eq!(
                log,
                (0..8).collect::<Vec<u64>>(),
                "{kind}: link 0→{dst} must deliver in send order"
            );
        }
    }
}

#[test]
fn link_stats_meter_messages_and_bytes_per_directed_link() {
    for kind in BOTH {
        let c = cluster_on(kind, 2, FaultPlan::disabled());
        c.comm()
            .send(l(0), l(1), CommMessage::Put { bytes: 100 })
            .unwrap();
        c.comm().send(l(0), l(1), CommMessage::LockAcquire).unwrap();
        let t = c.comm().transport();
        let fwd = t.link_stats(l(0), l(1));
        assert_eq!(fwd.messages, 2, "{kind}");
        assert_eq!(fwd.bytes, 116, "{kind}: 100 + 16 (lock round trip)");
        let rev = t.link_stats(l(1), l(0));
        assert_eq!(
            (rev.messages, rev.bytes),
            (0, 0),
            "{kind}: links are directed"
        );
    }
}

#[test]
fn clean_script_accounts_identically_on_every_backend() {
    let mut per_backend = Vec::new();
    for kind in BOTH {
        let c = cluster_on(kind, 3, FaultPlan::disabled());
        let results = run_script(&c);
        assert!(results.iter().all(Result::is_ok), "{kind}: clean plan");
        let per_locale: Vec<(CommStats, FaultStats)> = (0..3)
            .map(|i| (c.comm().stats_for(l(i)), c.comm().fault_stats_for(l(i))))
            .collect();
        per_backend.push((kind, per_locale));
    }
    let (_, ref reference) = per_backend[0];
    for (kind, per_locale) in &per_backend[1..] {
        assert_eq!(
            per_locale, reference,
            "{kind}: per-locale accounting must match ShmemTransport exactly"
        );
    }
}

#[test]
fn faulty_script_accounts_identically_and_conserves_attempts() {
    // Same seed → same deterministic fault streams on both backends:
    // outcomes, stats and the event-log fingerprint must all agree.
    let mut per_backend = Vec::new();
    for kind in BOTH {
        let plan = FaultPlan::new(0xFEED).fail_gets(0.4).fail_puts(0.4);
        let c = cluster_on(kind, 3, plan);
        let results: Vec<bool> = run_script(&c).iter().map(Result::is_ok).collect();
        let totals = (c.comm().total(), c.comm().fault_totals());
        let f = totals.1;
        assert!(f.failed() > 0, "{kind}: p=0.4 over the script must fault");
        assert_eq!(
            f.gets_attempted,
            totals.0.gets + f.gets_failed,
            "{kind}: GET conservation"
        );
        assert_eq!(
            f.puts_attempted,
            totals.0.puts + f.puts_failed,
            "{kind}: PUT conservation"
        );
        assert_eq!(
            f.ons_attempted,
            totals.0.remote_executes + f.ons_failed,
            "{kind}: remote-exec conservation"
        );
        per_backend.push((kind, results, totals, c.fault().fingerprint()));
    }
    let (_, ref results0, totals0, fp0) = per_backend[0];
    for (kind, results, totals, fp) in &per_backend[1..] {
        assert_eq!(results, results0, "{kind}: per-message outcomes must match");
        assert_eq!(*totals, totals0, "{kind}: cluster totals must match");
        assert_eq!(*fp, fp0, "{kind}: fault event fingerprints must match");
    }
}

#[test]
fn workload_stats_match_across_backends() {
    // A real upper-layer workload (remote writes + reads through the
    // array, comm accounting on) must be backend-invariant too.
    let mut per_backend = Vec::new();
    for kind in BOTH {
        let c = cluster_on(kind, 2, FaultPlan::disabled());
        let a: QsbrArray<u64> = QsbrArray::with_config(
            &c,
            Config {
                block_size: 8,
                account_comm: true,
                ..Config::default()
            },
        );
        a.resize(32);
        for i in 0..32 {
            a.write(i, i as u64);
        }
        for i in 0..32 {
            assert_eq!(a.read(i), i as u64, "{kind}");
        }
        a.checkpoint();
        per_backend.push((kind, c.comm().total()));
    }
    let (_, s0) = per_backend[0];
    for (kind, s) in &per_backend[1..] {
        assert_eq!(*s, s0, "{kind}: workload accounting must match shmem");
    }
    assert!(s0.remote_ops() > 0, "the workload must actually go remote");
}

#[test]
fn partitioned_link_refuses_promptly_in_one_direction_and_heals() {
    for kind in BOTH {
        let c = cluster_on(kind, 2, FaultPlan::new(7).partition_link(l(0), l(1)));
        let start = Instant::now();
        let err = c
            .comm()
            .send(l(0), l(1), CommMessage::Get { bytes: 8 })
            .unwrap_err();
        assert!(
            matches!(err, CommError::Partitioned { .. }),
            "{kind}: expected Partitioned, got {err:?}"
        );
        assert!(!err.is_retryable(), "{kind}: a partition is standing");
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "{kind}: partition must refuse fast, not block until a timeout"
        );
        // The reverse link is unaffected — partitions are directed.
        c.comm()
            .send(l(1), l(0), CommMessage::Get { bytes: 8 })
            .expect("reverse direction must stay up");
        // Heal at runtime; traffic resumes.
        c.fault().set_link_partitioned(l(0), l(1), false);
        c.comm()
            .send(l(0), l(1), CommMessage::Get { bytes: 8 })
            .expect("healed link must carry traffic again");
    }
}

#[test]
fn one_way_delay_is_asymmetric() {
    for kind in BOTH {
        let delay = Duration::from_millis(3);
        let c = cluster_on(kind, 2, FaultPlan::new(7).delay_link(l(0), l(1), delay));
        let start = Instant::now();
        c.comm()
            .send(l(0), l(1), CommMessage::Put { bytes: 8 })
            .unwrap();
        let slow = start.elapsed();
        assert!(
            slow >= delay,
            "{kind}: delayed link must pay its extra latency ({slow:?})"
        );
        let start = Instant::now();
        for _ in 0..8 {
            c.comm()
                .send(l(1), l(0), CommMessage::Put { bytes: 8 })
                .unwrap();
        }
        assert!(
            start.elapsed() < delay * 8,
            "{kind}: the reverse link must not pay the one-way delay"
        );
    }
}

#[test]
fn dropped_link_surfaces_transient_errors_that_retries_absorb() {
    for kind in BOTH {
        let c = cluster_on(kind, 2, FaultPlan::new(11).drop_link(l(0), l(1), 0.5));
        let mut failures = 0u32;
        for _ in 0..64 {
            // Drop-with-retry: each refusal is Transient (retryable);
            // a bounded retry loop always gets through at p=0.5.
            let mut attempts = 0;
            loop {
                match c.comm().send(l(0), l(1), CommMessage::Put { bytes: 8 }) {
                    Ok(()) => break,
                    Err(e) => {
                        assert!(
                            matches!(e, CommError::Transient { .. }),
                            "{kind}: drops surface as Transient, got {e:?}"
                        );
                        assert!(e.is_retryable(), "{kind}");
                        failures += 1;
                        attempts += 1;
                        assert!(attempts < 100, "{kind}: p=0.5 cannot fail 100 times");
                    }
                }
            }
        }
        assert!(failures > 0, "{kind}: p=0.5 over 64 sends must drop some");
        let f = c.comm().fault_totals();
        assert_eq!(f.puts_failed, failures as u64, "{kind}");
        assert_eq!(
            f.puts_attempted,
            64 + failures as u64,
            "{kind}: conservation"
        );
    }
}

#[test]
fn mesh_reorder_rule_perturbs_delivery_order_only() {
    // Reordering is a mesh-only behaviour: shmem's send *is* delivery.
    let plan = FaultPlan::new(3).reorder_link(l(0), l(1));
    let c = cluster_on(TransportKind::Mesh, 2, plan);
    let t = c.comm().transport();
    t.enable_delivery_log();
    for i in 0..4 {
        c.comm()
            .send(l(0), l(1), CommMessage::Put { bytes: i })
            .unwrap();
    }
    assert_eq!(
        t.delivery_log(l(0), l(1)),
        vec![1, 0, 3, 2],
        "adjacent sends on a reordered link swap delivery order"
    );
    // Completion accounting is untouched: all four sends succeeded.
    assert_eq!(c.comm().total().puts, 4);
}

/// Satellite: the serving layer under a partition. Requests whose
/// worker pool sits across the cut get an immediate `Response::Failed`
/// (degraded answer); local requests and the service itself stay fully
/// available, and healing the link restores remote answers.
#[test]
fn service_degrades_answers_not_availability_under_partition() {
    let c = cluster_on(TransportKind::Mesh, 2, FaultPlan::new(5));
    let array: EbrArray<u64> = EbrArray::with_config(
        &c,
        Config {
            block_size: 8,
            account_comm: true,
            ..Config::default()
        },
    );
    array.resize(16); // block 0 → L0, block 1 → L1
    for i in 0..16 {
        array.write(i, 100 + i as u64);
    }
    let service = Service::start(array, ServiceConfig::default());
    let client = service.client();

    // Healthy: both locales answer.
    assert_eq!(
        client.call(Request::Get { idx: 1 }),
        Response::Value(Some(101))
    );
    assert_eq!(
        client.call(Request::Get { idx: 9 }),
        Response::Value(Some(109))
    );

    c.fault().set_link_partitioned(l(0), l(1), true);
    // The dispatch to L1's worker pool crosses the cut: degraded answer,
    // returned promptly — never a hang.
    let start = Instant::now();
    let denied = client.call(Request::Get { idx: 9 });
    assert_eq!(denied, Response::Failed, "cross-cut request must degrade");
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "degraded answer must be prompt, not a timeout"
    );
    // Availability is intact: locale-0 requests still answer.
    assert_eq!(
        client.call(Request::Get { idx: 1 }),
        Response::Value(Some(101))
    );
    assert_eq!(
        client.call(Request::Put { idx: 2, value: 42 }),
        Response::Done { applied: 1 }
    );
    // Growth replicates blocks across the cut, so it degrades too — but
    // as a prompt retryable answer, not a wedged worker.
    let start = Instant::now();
    let grow = client.call(Request::Grow { additional: 16 });
    assert!(
        grow.is_retryable(),
        "growth across the cut must degrade, got {grow:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(1));

    c.fault().set_link_partitioned(l(0), l(1), false);
    assert_eq!(
        client.call(Request::Get { idx: 9 }),
        Response::Value(Some(109)),
        "healing the link restores remote answers"
    );
    assert!(matches!(
        client.call(Request::Grow { additional: 16 }),
        Response::Grown(n) if n >= 32
    ));
    service.shutdown();
}
