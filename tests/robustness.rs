//! Robust-reclamation chaos tests (DESIGN.md §9): stalled readers are
//! detected and quarantined, defer backlogs respect their byte caps, and
//! the array degrades gracefully — refusing growth with a retryable
//! [`CommError::Backpressure`] — instead of wedging or ballooning.
//!
//! The acceptance scenario from the issue: one reader stalled
//! indefinitely while writers retire continuously must leave the backlog
//! bounded by the configured cap (plus one retire of slack) with every
//! other reader and writer still progressing, and gauges must return to
//! baseline once the staller rejoins or exits.

use rcuarray_repro::prelude::*;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const CAP_BYTES: u64 = 64 * 1024;

fn cluster(locales: usize) -> Arc<Cluster> {
    Cluster::new(Topology::new(locales, 2))
}

fn bounded_cfg(cap: u64, stall: StallPolicy) -> Config {
    Config {
        block_size: 8,
        account_comm: false,
        pressure: PressureConfig::bounded(cap),
        stall,
        ..Config::default()
    }
}

/// Poll `checkpoint` until the backlog fully drains (coforall worker
/// threads orphan their defer chains from TLS destructors, which land a
/// beat after the resize itself returns).
fn drain<T: Element, S: Scheme>(a: &RcuArray<T, S>) -> bool {
    for _ in 0..1000 {
        a.checkpoint();
        if a.stats().reclaim.pending == 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

/// One QSBR reader registers and then stalls forever (never
/// checkpointing) while the writer resizes continuously: stall detection
/// must quarantine it, the byte-capped backlog must stay bounded, and
/// everything must return to baseline after the staller rejoins.
#[test]
fn stalled_qsbr_reader_is_quarantined_and_backlog_stays_bounded() {
    let c = cluster(2);
    let a: Arc<QsbrArray<u64>> = Arc::new(QsbrArray::with_config(
        &c,
        bounded_cfg(CAP_BYTES, StallPolicy::after(1, 2)),
    ));
    a.resize(8);
    a.write(0, 7);

    let (ready_tx, ready_rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let staller = {
        let a = Arc::clone(&a);
        std::thread::spawn(move || {
            // Registers this thread as a domain participant...
            assert_eq!(a.read(0), 7);
            ready_tx.send(()).unwrap();
            // ...then stalls: no checkpoint, no park, epoch never observed
            // again until the domain force-parks us.
            done_rx.recv().unwrap();
            // Rejoin: the next checkpoint clears the quarantine flag.
            a.checkpoint();
        })
    };
    ready_rx.recv().unwrap();

    let mut peak_bytes = 0u64;
    for _ in 0..50 {
        a.resize(8);
        a.checkpoint();
        peak_bytes = peak_bytes.max(a.stats().reclaim.pending_bytes);
        // Other readers and writers must progress despite the staller.
        assert_eq!(a.read(0), 7);
        a.write(1, 9);
    }
    assert!(
        peak_bytes <= CAP_BYTES,
        "backlog exceeded its byte cap: peak {peak_bytes} > {CAP_BYTES}"
    );

    let d = a.qsbr_domain().unwrap();
    assert!(
        d.stats().quarantines >= 1,
        "staller was never quarantined: {:?}",
        d.stats()
    );
    assert!(
        a.stats().reclaim.stalled >= 1,
        "ReclaimStats must surface it"
    );
    // With the staller force-parked the backlog drains *while it is still
    // stalled* — that is the point of quarantine.
    assert!(
        drain(&a),
        "backlog failed to drain around the quarantined reader"
    );

    done_tx.send(()).unwrap();
    staller.join().unwrap();
    // Gauges back to baseline: nothing pending, nobody quarantined.
    assert!(drain(&a));
    assert_eq!(
        d.stats().quarantined,
        0,
        "rejoin/exit must clear quarantine"
    );
}

/// The amortized scheme runs the same quarantine protocol while paying
/// for the backlog a bounded slice per checkpoint.
#[test]
fn amortized_scheme_quarantines_stalled_reader_and_still_drains() {
    let c = cluster(2);
    let cfg = Config {
        drain_budget: 2,
        ..bounded_cfg(CAP_BYTES, StallPolicy::after(1, 2))
    };
    let a: Arc<AmortizedArray<u64>> = Arc::new(AmortizedArray::with_config(&c, cfg));
    a.resize(8);
    a.write(0, 3);

    let (ready_tx, ready_rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let staller = {
        let a = Arc::clone(&a);
        std::thread::spawn(move || {
            assert_eq!(a.read(0), 3);
            ready_tx.send(()).unwrap();
            done_rx.recv().unwrap();
        })
    };
    ready_rx.recv().unwrap();

    for _ in 0..40 {
        a.resize(8);
        a.checkpoint();
        assert!(
            a.stats().reclaim.pending_bytes <= CAP_BYTES,
            "amortized backlog exceeded its cap"
        );
        assert_eq!(a.read(0), 3);
    }
    assert!(
        a.qsbr_domain().unwrap().stats().quarantines >= 1,
        "amortized domain never quarantined the staller"
    );
    // Budgeted checkpoints still drain to zero — just over more calls.
    assert!(drain(&a), "amortized backlog failed to drain");

    done_tx.send(()).unwrap();
    staller.join().unwrap();
    assert!(drain(&a));
}

/// EBR has no checkpoint to miss, so a stalled reader is a guard held
/// forever. Writers must evacuate retirements instead of spinning, then
/// refuse growth with `CommError::Backpressure` once the evacuation list
/// hits the byte cap — and recover completely when the guard drops.
#[test]
fn stalled_ebr_pin_evacuates_then_refuses_at_cap_then_recovers() {
    let cap = 2048u64;
    let c = cluster(2);
    let a: Arc<EbrArray<u64>> = Arc::new(EbrArray::with_config(
        &c,
        bounded_cfg(cap, StallPolicy::after(1, 64)),
    ));
    a.resize(8);
    a.write(0, 5);

    let (ready_tx, ready_rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let staller = {
        let a = Arc::clone(&a);
        std::thread::spawn(move || {
            // Hold the read-side critical section open indefinitely.
            a.with_view(|v| {
                assert_eq!(v.get(0), 5);
                ready_tx.send(()).unwrap();
                done_rx.recv().unwrap();
            });
        })
    };
    ready_rx.recv().unwrap();

    let mut refusal = None;
    for _ in 0..400 {
        match a.try_resize(8) {
            Ok(_) => {
                // Reads keep working while the backlog builds.
                assert_eq!(a.read(0), 5);
            }
            Err(e) => {
                refusal = Some(e);
                break;
            }
        }
    }
    let err = refusal.expect("bounded evacuation never refused a resize");
    assert!(
        matches!(err, CommError::Backpressure { .. }),
        "wrong refusal: {err}"
    );
    assert!(err.is_retryable(), "backpressure must be retryable");
    assert!(
        a.stats().reclaim.stalled >= 1,
        "writer drains never recorded the stalled reader"
    );
    // The cap bounds the backlog to one retire of slack past the limit.
    let pending = a.stats().reclaim.pending_bytes;
    assert!(
        pending <= cap + 1024,
        "evacuation backlog far exceeds its cap: {pending} > {cap} + slack"
    );
    // Readers still progress while growth is refused.
    assert_eq!(a.read(0), 5);

    // Drop the stalled guard: the refusal must clear.
    done_tx.send(()).unwrap();
    staller.join().unwrap();
    assert!(
        drain(&a),
        "evacuated retirements failed to free after unpin"
    );
    let before = a.capacity();
    a.resize(8);
    assert_eq!(
        a.capacity(),
        before + 8,
        "growth must resume after recovery"
    );
    assert!(drain(&a));
}

/// Under `LeakScheme` nothing is ever freed, so a byte-capped pressure
/// config acts as a *retirement budget*: growth is refused once the
/// accumulated (never-reclaimed) snapshots reach the cap. Writers help
/// along the way — forced drains fire past the watermark even though
/// they cannot free anything here.
#[test]
fn leak_scheme_bounded_pressure_acts_as_a_retirement_budget() {
    let cap = 2048u64;
    let (forced_before, _, _) = rcuarray_repro::rcuarray_reclaim::pressure_event_totals();
    let c = cluster(2);
    let a: LeakArray<u64> = LeakArray::with_config(&c, bounded_cfg(cap, StallPolicy::disabled()));
    a.resize(8);
    a.write(0, 2);

    let mut refusal = None;
    for _ in 0..400 {
        match a.try_resize(8) {
            Ok(_) => {}
            Err(e) => {
                refusal = Some(e);
                break;
            }
        }
    }
    let err = refusal.expect("leak scheme never exhausted its retirement budget");
    assert!(
        matches!(err, CommError::Backpressure { .. }),
        "wrong refusal: {err}"
    );
    // The budget is spent and can never drain.
    assert!(a.stats().reclaim.pending_bytes >= cap);
    assert_eq!(a.checkpoint(), 0, "leak scheme frees nothing");
    // The array itself stays fully usable at its reached capacity.
    assert_eq!(a.read(0), 2);
    a.write(1, 4);
    assert_eq!(a.read(1), 4);
    // Watermark crossings made writers help (process-wide counter, so
    // other tests can only push it further up).
    let (forced_after, _, _) = rcuarray_repro::rcuarray_reclaim::pressure_event_totals();
    assert!(
        forced_after > forced_before,
        "no forced drain recorded past the watermark"
    );
}

/// A `DistVector` over a byte-capped leak array surfaces the exhausted
/// budget as `Err(Backpressure)` from `try_push` instead of panicking —
/// the collections write path consumes the same contract as `resize`.
#[test]
fn dist_vector_try_push_surfaces_backpressure() {
    let c = cluster(2);
    let cfg = Config {
        retry: RetryPolicy::new(2, Duration::from_millis(200)),
        ..bounded_cfg(1024, StallPolicy::disabled())
    };
    let v: DistVector<u64, rcuarray::LeakScheme> = DistVector::with_config(&c, cfg);
    let mut refused = None;
    for i in 0..4000 {
        match v.try_push(i) {
            Ok(_) => {}
            Err(e) => {
                refused = Some(e);
                break;
            }
        }
    }
    let err = refused.expect("try_push never hit the retirement budget");
    assert!(
        matches!(err, CommError::Backpressure { .. }),
        "wrong error: {err}"
    );
    // Everything appended before the refusal is intact.
    assert!(!v.is_empty());
    assert_eq!(v.get(0), 0);
}
