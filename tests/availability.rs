//! Availability acceptance suite (DESIGN.md §15): locale death under
//! replication, on both transport backends.
//!
//! The contract under test, per ISSUE 10: with `replication_factor = 2`,
//! a seeded plan that kills one locale mid-workload loses nothing —
//! every acknowledged write stays readable (served from a replica),
//! replicated reads never degrade to `Failed`, gauges return to
//! baseline after repair and heal, and a *second* kill beyond the
//! replication factor degrades the answer without corrupting it.
//!
//! The seed defaults to a fixed value so CI is reproducible; the nightly
//! chaos job loops this suite with `RCU_FAULT_SEED=<n>` across both
//! `RCUARRAY_BACKEND` values.

use rcuarray_repro::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Seed for the fault schedules; override with `RCU_FAULT_SEED`.
fn seed() -> u64 {
    std::env::var("RCU_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// Every scenario runs on both transports, whatever `RCUARRAY_BACKEND`
/// says — the availability contract is backend-independent.
fn on_both_backends(f: impl Fn(TransportKind)) {
    for kind in [TransportKind::Shmem, TransportKind::Mesh] {
        f(kind);
    }
}

fn rf2_cluster(kind: TransportKind, plan: FaultPlan) -> Arc<Cluster> {
    Cluster::builder()
        .topology(Topology::new(3, 2))
        .fault_plan(plan)
        .backend(kind)
        .build()
}

fn rf2_cfg() -> Config {
    Config {
        block_size: 8,
        account_comm: true,
        replication_factor: 2,
        retry: RetryPolicy::new(8, Duration::from_secs(5)),
        ..Config::default()
    }
}

/// Kill `l` and let the deadline detector notice: one missed probe
/// suspects, the second downs. Probes run from the calling locale
/// (locale 0 in these tests), which observes every peer but itself.
fn evict(c: &Cluster, l: LocaleId) {
    c.fault().set_down(l, true);
    c.probe_membership();
    c.probe_membership();
    assert!(!c.membership().is_up(l), "detector must mark {l:?} Down");
}

#[test]
fn acked_writes_survive_one_locale_death() {
    on_both_backends(|kind| {
        let c = rf2_cluster(kind, FaultPlan::new(seed()));
        let a: QsbrArray<u64> = QsbrArray::with_config(&c, rf2_cfg());
        a.resize(24); // blocks 0,1,2 homed on locales 0,1,2
        for i in 0..24 {
            a.write(i, 100 + i as u64); // acknowledged
        }
        evict(&c, LocaleId::new(1));
        // Every acked write stays readable; reads of locale-1 blocks
        // fail over to their replica instead of degrading.
        for i in 0..24 {
            assert_eq!(a.read(i), 100 + i as u64, "[{}] lost at {i}", kind.name());
        }
        let s = a.stats();
        assert!(s.failover_reads > 0, "[{}] {s:?}", kind.name());
        assert_eq!(
            s.fallback_reads,
            0,
            "[{}] replicated reads must not degrade: {s:?}",
            kind.name()
        );
        // Writes mid-death re-route their ack to the live replica.
        for i in 8..16 {
            a.write(i, 200 + i as u64);
        }
        for i in 8..16 {
            assert_eq!(
                a.read(i),
                200 + i as u64,
                "[{}] acked write lost at {i}",
                kind.name()
            );
        }
        assert_eq!(
            a.stats().degraded_writes,
            0,
            "[{}] one dead locale must lose no acked write",
            kind.name()
        );
        a.checkpoint();
    });
}

#[test]
fn gauges_return_to_baseline_after_repair_and_heal() {
    on_both_backends(|kind| {
        let c = rf2_cluster(kind, FaultPlan::new(seed()));
        let a: QsbrArray<u64> = QsbrArray::with_config(&c, rf2_cfg());
        a.resize(24);
        for i in 0..24 {
            a.write(i, 7 + i as u64);
        }
        evict(&c, LocaleId::new(1));
        // Re-replicate the copies stranded on locale 1 to survivors.
        let repaired = a.repair_replicas();
        assert!(
            repaired > 0,
            "[{}] under-replicated groups must heal",
            kind.name()
        );
        assert!(a.stats().rereplicated_bytes > 0, "[{}]", kind.name());
        // A second pass finds nothing left to do.
        assert_eq!(
            a.repair_replicas(),
            0,
            "[{}] repair must be idempotent",
            kind.name()
        );
        // Replica lag drains to zero at the checkpoint — the gauge is
        // back to baseline.
        a.checkpoint();
        assert_eq!(a.stats().replica_lag_bytes, 0, "[{}]", kind.name());

        // Heal: the locale answers probes again, rejoins as Rejoining,
        // and catches up (stale snapshot + stale copies) before
        // re-entering views.
        c.fault().set_down(LocaleId::new(1), false);
        a.resize(8); // grow while locale 1 is still out — it misses this
        c.probe_membership();
        assert!(
            !c.membership().is_up(LocaleId::new(1)),
            "[{}] a rejoining locale must not re-enter views before catch-up",
            kind.name()
        );
        a.rejoin_catch_up(LocaleId::new(1));
        assert!(c.membership().is_up(LocaleId::new(1)), "[{}]", kind.name());
        assert_eq!(c.membership().view().num_members(), 3, "[{}]", kind.name());
        // The healed locale serves the post-death state, including the
        // resize it missed.
        rcuarray_runtime::task::with_locale(LocaleId::new(1), || {
            for i in 0..24 {
                assert_eq!(a.read(i), 7 + i as u64, "[{}] stale at {i}", kind.name());
            }
            assert_eq!(
                a.read(30),
                0,
                "[{}] missed resize not caught up",
                kind.name()
            );
        });
        a.checkpoint();
        assert_eq!(a.stats().replica_lag_bytes, 0, "[{}]", kind.name());
    });
}

#[test]
fn second_kill_beyond_rf_degrades_but_never_corrupts() {
    on_both_backends(|kind| {
        let c = rf2_cluster(kind, FaultPlan::new(seed()));
        let a: EbrArray<u64> = EbrArray::with_config(&c, rf2_cfg());
        a.resize(24);
        for i in 0..24 {
            a.write(i, 40 + i as u64);
        }
        // Two concurrent kills: more than rf - 1 = 1 replica can cover.
        evict(&c, LocaleId::new(1));
        evict(&c, LocaleId::new(2));
        // Blocks whose whole replica set is dead degrade to the
        // locale-local snapshot — served, counted, and *correct*.
        for i in 0..24 {
            assert_eq!(
                a.read(i),
                40 + i as u64,
                "[{}] degraded read corrupted at {i}",
                kind.name()
            );
        }
        let s = a.stats();
        assert!(
            s.fallback_reads > 0,
            "[{}] beyond-rf loss must be visible as degraded reads: {s:?}",
            kind.name()
        );
        // Repair has nowhere to put new copies (one survivor hosts the
        // primaries already); it must skip, not corrupt or panic.
        let _ = a.repair_replicas();
        for i in 0..24 {
            assert_eq!(
                a.read(i),
                40 + i as u64,
                "[{}] repair corrupted {i}",
                kind.name()
            );
        }
        a.checkpoint();
    });
}

#[test]
fn replicated_service_reads_never_fail_for_one_dead_locale() {
    on_both_backends(|kind| {
        let c = rf2_cluster(kind, FaultPlan::new(seed()));
        let a: QsbrArray<u64> = QsbrArray::with_config(&c, rf2_cfg());
        a.resize(24);
        let service = Service::start(a, ServiceConfig::default());
        let client = service.client();
        for i in 0..24usize {
            assert_eq!(
                client.call(Request::Put {
                    idx: i,
                    value: 500 + i as u64
                }),
                Response::Done { applied: 1 },
                "[{}] pre-death put refused",
                kind.name()
            );
        }
        evict(&c, LocaleId::new(1));
        let failovers_before = slo_snapshot().failovers;
        // Zero `Response::Failed` for replicated reads, single dead
        // locale — the ISSUE 10 acceptance bar.
        for i in 0..24usize {
            match client.call(Request::Get { idx: i }) {
                Response::Value(Some(v)) => {
                    assert_eq!(v, 500 + i as u64, "[{}] lost acked write {i}", kind.name())
                }
                other => panic!("[{}] get {i} degraded: {other:?}", kind.name()),
            }
        }
        match client.call(Request::BatchGet {
            indices: (8..16).collect(),
        }) {
            Response::Values(vs) => {
                for (off, v) in vs.into_iter().enumerate() {
                    assert_eq!(v, Some(500 + (8 + off) as u64), "[{}]", kind.name());
                }
            }
            other => panic!("[{}] batch get degraded: {other:?}", kind.name()),
        }
        // Writes keep landing too, acked through the surviving pool.
        assert_eq!(
            client.call(Request::Put { idx: 9, value: 999 }),
            Response::Done { applied: 1 },
            "[{}]",
            kind.name()
        );
        assert_eq!(
            client.call(Request::Get { idx: 9 }),
            Response::Value(Some(999)),
            "[{}]",
            kind.name()
        );
        assert!(
            slo_snapshot().failovers > failovers_before,
            "[{}] re-routes must be visible in the SLO snapshot",
            kind.name()
        );
        service.shutdown();
    });
}

#[test]
fn same_seed_kill_schedule_fingerprint_is_bit_stable() {
    let run = |s: u64, kind: TransportKind| {
        let plan = FaultPlan::new(s).fail_gets(0.05).fail_puts(0.05);
        let c = rf2_cluster(kind, plan);
        let a: QsbrArray<u64> = QsbrArray::with_config(&c, rf2_cfg());
        a.resize(24);
        for i in 0..24 {
            a.write(i, i as u64);
        }
        evict(&c, LocaleId::new(1));
        let mut sum = 0u64;
        for i in 0..24 {
            sum += a.read(i);
        }
        assert_eq!(sum, (0..24).sum::<u64>(), "kill schedule lost a write");
        for i in 8..16 {
            a.write(i, i as u64 * 10);
        }
        a.repair_replicas();
        a.checkpoint();
        (
            c.fault().fingerprint(),
            c.fault().fault_count(),
            a.stats().fault,
        )
    };
    on_both_backends(|kind| {
        let (fp1, n1, st1) = run(seed(), kind);
        let (fp2, n2, st2) = run(seed(), kind);
        assert!(n1 > 0, "[{}] schedule must contain faults", kind.name());
        assert_eq!(
            fp1,
            fp2,
            "[{}] same seed must reproduce the same fault schedule",
            kind.name()
        );
        assert_eq!(n1, n2, "[{}]", kind.name());
        assert_eq!(
            st1,
            st2,
            "[{}] fault accounting must replay exactly",
            kind.name()
        );
        let (fp3, _, _) = run(seed() ^ 0x9E37_79B9_7F4A_7C15, kind);
        assert_ne!(fp1, fp3, "[{}] distinct seeds should diverge", kind.name());
    });
}

#[test]
fn rf1_preserves_the_old_degradation_contract() {
    // At replication_factor = 1 (the default) nothing of the paper's
    // behavior changes: a dead locale degrades reads to the local
    // snapshot, exactly as before this layer existed.
    on_both_backends(|kind| {
        let c = Cluster::builder()
            .topology(Topology::new(2, 2))
            .fault_plan(FaultPlan::new(seed()))
            .backend(kind)
            .build();
        let a: QsbrArray<u64> = QsbrArray::with_config(
            &c,
            Config {
                replication_factor: 1,
                ..rf2_cfg()
            },
        );
        a.resize(16);
        for i in 0..16 {
            a.write(i, 100 + i as u64);
        }
        evict(&c, LocaleId::new(1));
        for i in 0..16 {
            assert_eq!(a.read(i), 100 + i as u64, "[{}]", kind.name());
        }
        let s = a.stats();
        assert!(s.fallback_reads > 0, "[{}] {s:?}", kind.name());
        assert_eq!(
            s.failover_reads,
            0,
            "[{}] rf=1 has no replicas: {s:?}",
            kind.name()
        );
        assert_eq!(a.repair_replicas(), 0, "[{}]", kind.name());
        a.checkpoint();
    });
}
