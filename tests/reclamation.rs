//! End-to-end reclamation behaviour: EBR's synchronous drain, QSBR's
//! deferred checkpoints, parking, thread exit, and the generic layer.

use rcuarray_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn ebr_writer_waits_for_pinned_reader_through_rcucell() {
    let cell = Arc::new(RcuCell::new(vec![1u8, 2, 3]));
    let writer_done = Arc::new(AtomicBool::new(false));

    // A reader that holds the read-side critical section open.
    let cell2 = Arc::clone(&cell);
    let done2 = Arc::clone(&writer_done);
    let reader = std::thread::spawn(move || {
        cell2.read(|v| {
            std::thread::sleep(Duration::from_millis(80));
            // The writer must still be blocked while we are in here.
            assert!(
                !done2.load(Ordering::SeqCst),
                "writer finished while reader was in its critical section"
            );
            v.len()
        })
    });

    std::thread::sleep(Duration::from_millis(20));
    cell.write(|v| {
        let mut v = v.clone();
        v.push(4);
        v
    });
    writer_done.store(true, Ordering::SeqCst);
    assert_eq!(reader.join().unwrap(), 3, "reader saw the old snapshot");
    assert_eq!(cell.read(|v| v.len()), 4);
}

#[test]
fn qsbr_defers_free_exactly_once_with_canaries() {
    struct Canary {
        drops: Arc<AtomicUsize>,
    }
    impl Drop for Canary {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    let domain = QsbrDomain::new();
    let drops = Arc::new(AtomicUsize::new(0));
    const N: usize = 100;
    for _ in 0..N {
        domain.defer_drop(Canary {
            drops: Arc::clone(&drops),
        });
    }
    assert_eq!(drops.load(Ordering::SeqCst), 0);
    domain.checkpoint();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        N,
        "each canary dropped exactly once"
    );
    domain.checkpoint();
    assert_eq!(drops.load(Ordering::SeqCst), N, "no double drops");
}

#[test]
fn qsbr_array_snapshot_count_is_bounded_by_checkpointing() {
    // A resizer that checkpoints keeps pending snapshots bounded even
    // under continuous growth (the Fig. 4 memory-vs-throughput story).
    let cluster = Cluster::new(Topology::new(2, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(
        &cluster,
        Config {
            block_size: 8,
            account_comm: false,
            ..Config::default()
        },
    );
    for i in 0..100 {
        a.resize(8);
        if i % 4 == 3 {
            a.checkpoint();
        }
        let pending = a.qsbr_domain().unwrap().stats().pending;
        assert!(
            pending <= 64,
            "pending snapshots unbounded: {pending} at resize {i}"
        );
    }
    // Drain (poll for coforall TLS destructors).
    for _ in 0..1000 {
        a.checkpoint();
        if a.qsbr_domain().unwrap().stats().pending == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(a.qsbr_domain().unwrap().stats().pending, 0);
}

#[test]
fn parked_thread_never_gates_array_reclamation() {
    let cluster = Cluster::new(Topology::new(1, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    a.resize(8);
    let domain = a.qsbr_domain().unwrap().clone();

    let parked = Arc::new(std::sync::Barrier::new(2));
    let release = Arc::new(std::sync::Barrier::new(2));
    let a2 = a.clone();
    let parked2 = Arc::clone(&parked);
    let release2 = Arc::clone(&release);
    let idler = std::thread::spawn(move || {
        let _ = a2.read(0); // participate
        a2.qsbr_domain().unwrap().park(); // then go idle
        parked2.wait();
        release2.wait();
        a2.qsbr_domain().unwrap().unpark();
        let _ = a2.read(0); // safe again after unpark
    });

    parked.wait();
    // With the idler parked, this thread's checkpoint alone reclaims.
    a.resize(8);
    let before = domain.stats().reclaimed;
    a.checkpoint();
    assert!(
        domain.stats().reclaimed > before,
        "parked thread must not block reclamation"
    );
    release.wait();
    idler.join().unwrap();
}

#[test]
fn generic_rcu_ptr_reclaims_under_both_backends() {
    struct Canary(Arc<AtomicUsize>);
    impl Drop for Canary {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    // Canary payloads are only dropped via retire/quiesce or final drop.
    let drops_ebr = Arc::new(AtomicUsize::new(0));
    {
        let p = RcuPtr::new(Canary(Arc::clone(&drops_ebr)), Arc::new(EbrReclaim::new()));
        p.replace(Canary(Arc::clone(&drops_ebr)));
        assert_eq!(drops_ebr.load(Ordering::SeqCst), 1, "EBR frees at retire");
    }
    assert_eq!(drops_ebr.load(Ordering::SeqCst), 2);

    let drops_qsbr = Arc::new(AtomicUsize::new(0));
    {
        let reclaim = Arc::new(QsbrReclaim::new());
        let p = RcuPtr::new(Canary(Arc::clone(&drops_qsbr)), Arc::clone(&reclaim));
        p.replace(Canary(Arc::clone(&drops_qsbr)));
        assert_eq!(drops_qsbr.load(Ordering::SeqCst), 0, "QSBR defers");
        reclaim.quiesce();
        assert_eq!(drops_qsbr.load(Ordering::SeqCst), 1);
    }
    assert_eq!(drops_qsbr.load(Ordering::SeqCst), 2);
}

#[test]
fn exited_reader_threads_do_not_leak_or_wedge_the_domain() {
    let cluster = Cluster::new(Topology::new(1, 1));
    let a: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(8));
    a.resize(8);
    // Threads that read (registering as participants) and exit without
    // ever checkpointing.
    for _ in 0..8 {
        let a2 = a.clone();
        std::thread::spawn(move || {
            let _ = a2.read(0);
        })
        .join()
        .unwrap();
    }
    a.resize(8);
    // The exited threads must not be counted in the minimum.
    for _ in 0..1000 {
        a.checkpoint();
        if a.qsbr_domain().unwrap().stats().pending == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(a.qsbr_domain().unwrap().stats().pending, 0);
}

#[test]
fn epoch_zone_overflow_safety_through_the_cell() {
    // Lemma 2 at the API level: a cell whose zone sits at the epoch
    // ceiling keeps functioning across the wrap.
    let cell = RcuCell::new(0u64);
    cell.zone().set_epoch_for_test(u64::MAX - 1);
    for i in 1..=10 {
        cell.write(|v| v + i);
        assert_eq!(cell.read(|v| *v), (1..=i).sum::<u64>());
    }
    // 10 writes from MAX-1 wrapped past 0.
    assert!(cell.zone().epoch() < 16);
}
