//! Cross-crate integration: the EBR and QSBR configurations of RCUArray
//! must be observably equivalent — same results for the same operation
//! sequence — differing only in *how* old snapshots are reclaimed.

use rcuarray_repro::prelude::*;
use std::sync::Arc;

fn cluster() -> Arc<Cluster> {
    Cluster::new(Topology::new(3, 2))
}

fn cfg() -> Config {
    Config {
        block_size: 16,
        account_comm: false,
        ..Config::default()
    }
}

/// A deterministic mixed op sequence applied to any array-like object.
fn drive(
    read: impl Fn(usize) -> u64,
    write: impl Fn(usize, u64),
    resize: impl Fn(usize) -> usize,
) -> Vec<u64> {
    let mut log = Vec::new();
    let mut cap = resize(32);
    for step in 0..500u64 {
        let idx = (step as usize * 31) % cap;
        match step % 7 {
            0..=2 => log.push(read(idx)),
            3..=5 => write(idx, step * 3 + 1),
            _ => {
                if cap < 512 {
                    cap = resize(16);
                    log.push(cap as u64);
                }
            }
        }
    }
    log
}

#[test]
fn ebr_and_qsbr_arrays_agree_with_each_other_and_a_vec_model() {
    let c = cluster();
    let ebr: EbrArray<u64> = EbrArray::with_config(&c, cfg());
    let qsbr: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());

    let log_e = drive(|i| ebr.read(i), |i, v| ebr.write(i, v), |n| ebr.resize(n));
    let log_q = drive(
        |i| qsbr.read(i),
        |i, v| qsbr.write(i, v),
        |n| qsbr.resize(n),
    );
    assert_eq!(log_e, log_q, "schemes must be observably identical");

    // Model: a plain Vec with the same rounding-up growth rule.
    let model = std::cell::RefCell::new(vec![0u64; 0]);
    let log_m = drive(
        |i| model.borrow()[i],
        |i, v| model.borrow_mut()[i] = v,
        |n| {
            let mut m = model.borrow_mut();
            let add = n.div_ceil(16) * 16;
            let new_len = m.len() + add;
            m.resize(new_len, 0);
            new_len
        },
    );
    assert_eq!(log_e, log_m, "arrays must match the sequential model");

    assert_eq!(ebr.to_vec(), qsbr.to_vec());
    assert_eq!(ebr.to_vec(), *model.borrow());
    qsbr.checkpoint();
}

#[test]
fn generic_code_runs_under_either_scheme() {
    fn sum_all<S: rcuarray::Scheme>(a: &RcuArray<u64, S>) -> u64 {
        a.iter().sum()
    }
    let c = cluster();
    let e: EbrArray<u64> = EbrArray::with_config(&c, cfg());
    let q: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    let _ = &e as &dyn std::any::Any; // type-level point only
    e.resize(32);
    q.resize(32);
    e.fill(2);
    q.fill(2);
    assert_eq!(sum_all(&e), 64);
    assert_eq!(sum_all(&q), 64);
}

#[test]
fn elem_refs_survive_resizes_under_both_schemes() {
    fn check<S: rcuarray::Scheme>(name: &str, a: &RcuArray<u64, S>) {
        a.resize(16);
        let r = a.get_ref(3);
        a.resize(16); // clone + recycle while the reference is live
        r.set(99);
        assert_eq!(a.read(3), 99, "{name}: Lemma 6 violated");
    }
    let c = cluster();
    check("ebr", &EbrArray::<u64>::with_config(&c, cfg()));
    check("qsbr", &QsbrArray::<u64>::with_config(&c, cfg()));
}

#[test]
fn scheme_specific_reclamation_behaviour() {
    let c = cluster();
    // EBR reclaims synchronously inside resize: nothing pending after.
    let e: EbrArray<u64> = EbrArray::with_config(&c, cfg());
    for _ in 0..5 {
        e.resize(16);
    }
    assert!(
        e.qsbr_domain().is_none(),
        "EBR must not carry a QSBR domain"
    );
    let es = e.stats().reclaim;
    assert_eq!(es.pending, 0, "EBR leaves nothing pending");
    assert_eq!(es.retired, es.reclaimed);
    assert_eq!(es.advances, 5 * c.num_locales() as u64);

    // QSBR defers: snapshots pend until quiescence.
    let q: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    for _ in 0..5 {
        q.resize(16);
    }
    assert_eq!(q.stats().reclaim.guards, 0, "QSBR reads must never pin");
    assert!(q.stats().reclaim.retired > 0);
    // Poll: resize tasks' TLS destructors may still be orphaning.
    for _ in 0..1000 {
        q.checkpoint();
        if q.stats().reclaim.pending == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(q.stats().reclaim.pending, 0);
}
