//! Integration of the higher layers: the §VI collections on the RCUArray
//! backbone, owner-computes iteration, bulk transfers, atomic element
//! RMW, and the runtime's collectives — all on one shared cluster.

use rcuarray_repro::prelude::*;
use rcuarray_runtime::{all_reduce, broadcast, reduce, ClusterBarrier};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cluster() -> Arc<Cluster> {
    Cluster::new(Topology::new(4, 2))
}

fn cfg() -> Config {
    Config {
        block_size: 16,
        account_comm: false,
        ..Config::default()
    }
}

#[test]
fn owner_computes_sum_equals_global_sum() {
    let c = cluster();
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(16 * 8);
    for i in 0..a.capacity() {
        a.write(i, i as u64);
    }
    // Per-locale partial sums via owner-computes iteration, folded with a
    // reduce collective — a miniature distributed aggregation pipeline.
    let partials: Arc<parking_lot_mutex::Mutex<Vec<u64>>> = Default::default();
    a.forall_local(|idx, r| {
        assert_eq!(r.get(), idx as u64);
    });
    // Gather per-locale sums with the collective.
    let total = reduce(
        &c,
        LocaleId::ZERO,
        |_| {
            a.local_blocks()
                .iter()
                .flat_map(|(bi, _)| {
                    let start = bi * 16;
                    (start..start + 16).map(|i| a.read(i))
                })
                .sum::<u64>()
        },
        |acc, x| acc + x,
        0u64,
    );
    let n = a.capacity() as u64;
    assert_eq!(total, n * (n - 1) / 2);
    drop(partials);
    a.checkpoint();
}

// Tiny local alias so the test above can use a default mutex without
// importing parking_lot at the test level.
mod parking_lot_mutex {
    pub type Mutex<T> = std::sync::Mutex<T>;
}

#[test]
fn atomic_rmw_through_array_refs_is_exact_under_contention() {
    let c = cluster();
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(16);
    c.forall_tasks(|_, _| {
        let r = a.get_ref(7);
        for _ in 0..500 {
            r.fetch_update(|v| v + 1);
        }
        a.checkpoint();
    });
    let expected = (c.topology().total_tasks() * 500) as u64;
    assert_eq!(a.read(7), expected, "fetch_update must not lose increments");
}

#[test]
fn bulk_ops_interoperate_with_dist_vector() {
    let c = cluster();
    let v: DistVector<u64> = DistVector::with_config(&c, cfg());
    for i in 0..40 {
        v.push(i);
    }
    // Bulk-read the backing array directly.
    let window = v.backing().read_range(8..24);
    assert_eq!(window, (8..24).collect::<Vec<u64>>());
    // Bulk-overwrite a window and read it back through the vector.
    v.backing().write_slice(8, &[99; 4]);
    for i in 8..12 {
        assert_eq!(v.get(i), 99);
    }
    v.checkpoint();
}

#[test]
fn barrier_coordinates_phases_across_locales() {
    let c = cluster();
    let a: QsbrArray<u64> = QsbrArray::with_config(&c, cfg());
    a.resize(c.topology().total_tasks());
    let barrier = ClusterBarrier::new(LocaleId::ZERO, c.topology().total_tasks());
    let phase2_sum = AtomicUsize::new(0);
    c.forall_tasks(|loc, task| {
        let slot = loc.index() * c.topology().tasks_per_locale() + task;
        // Phase 1: every task writes its slot.
        a.write(slot, slot as u64 + 1);
        barrier.wait(&c);
        // Phase 2: every task's write must be visible to everyone.
        // (Capacity is block-rounded; unwritten slots stay zero.)
        let sum: u64 = (0..a.capacity()).map(|i| a.read(i)).sum();
        let t = c.topology().total_tasks() as u64;
        assert_eq!(sum, t * (t + 1) / 2, "phase-1 writes missing after barrier");
        phase2_sum.fetch_add(1, Ordering::Relaxed);
        a.checkpoint();
    });
    assert_eq!(
        phase2_sum.load(Ordering::Relaxed),
        c.topology().total_tasks()
    );
}

#[test]
fn broadcast_and_all_reduce_round_trip() {
    let c = cluster();
    let copies = broadcast(&c, LocaleId::new(2), &"config-v2".to_string());
    assert_eq!(copies.len(), 4);
    assert!(copies.iter().all(|s| s == "config-v2"));

    let totals = all_reduce(&c, |loc| loc.index() as u64 + 1, |a, b| a + b, 0);
    assert_eq!(totals, vec![10, 10, 10, 10]);
}

#[test]
fn dist_table_and_vector_share_a_cluster_with_arrays() {
    let c = cluster();
    let table: DistTable = DistTable::with_capacity(&c, 1 << 10);
    let vec: DistVector<u64> = DistVector::with_config(&c, cfg());
    let array: EbrArray<u64> = EbrArray::with_config(&c, cfg());
    array.resize(64);

    c.forall_tasks(|loc, task| {
        let id = (loc.index() * 8 + task) as u64;
        table.insert(id + 1, id * 100).unwrap();
        vec.push(id);
        array.write((id as usize) % 64, id);
        table.checkpoint();
        vec.checkpoint();
    });

    assert_eq!(table.len(), c.topology().total_tasks());
    assert_eq!(vec.len(), c.topology().total_tasks());
    for loc in 0..c.num_locales() {
        for task in 0..c.topology().tasks_per_locale() {
            let id = (loc * 8 + task) as u64;
            assert_eq!(table.get(id + 1), Some(id * 100));
        }
    }
}
