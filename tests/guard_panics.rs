//! Panic-safety of read-side guards (DESIGN.md §9): a reader that panics
//! while pinned must release its guard on unwind — never poisoning the
//! scheme or wedging epoch advancement. For every scheme the same thread
//! must be able to read again immediately, and a subsequent resize must
//! complete (under EBR a leaked pin would stall the writer's drain
//! forever, so completion *is* the proof).

use rcuarray_repro::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        block_size: 8,
        account_comm: false,
        ..Config::default()
    }
}

fn panicking_pinned_reader_recovers<S: Scheme>() {
    let c = Cluster::new(Topology::new(2, 2));
    let a: RcuArray<u64, S> = RcuArray::with_config(&c, cfg());
    a.resize(16);
    a.write(3, 11);

    // The out-of-bounds panic fires *inside* the read-side critical
    // section, while the guard is live.
    let r = catch_unwind(AssertUnwindSafe(|| a.read(1_000_000)));
    assert!(r.is_err(), "out-of-bounds read must panic");

    // The guard was released on unwind: the same thread reads again.
    assert_eq!(a.read(3), 11, "{}: read after guard panic", a.scheme_name());

    // And epoch advancement is not wedged: a resize retires the old
    // snapshot and completes. (A leaked EBR pin would hang right here.)
    let before = a.capacity();
    a.resize(16);
    assert_eq!(
        a.capacity(),
        before + 16,
        "{}: resize after guard panic",
        a.scheme_name()
    );
    a.checkpoint();
}

#[test]
fn ebr_guard_panic_releases_pin() {
    panicking_pinned_reader_recovers::<rcuarray::EbrScheme>();
}

#[test]
fn qsbr_guard_panic_releases_registration() {
    panicking_pinned_reader_recovers::<rcuarray::QsbrScheme>();
}

#[test]
fn amortized_guard_panic_releases_registration() {
    panicking_pinned_reader_recovers::<rcuarray::AmortizedScheme>();
}

#[test]
fn leak_guard_panic_is_harmless() {
    panicking_pinned_reader_recovers::<rcuarray::LeakScheme>();
}

/// EBR surfaces the unwind in its stats: the guard's `Drop` notices
/// `std::thread::panicking()` and bumps the panicked-guard counter.
#[test]
fn ebr_counts_panicked_guards() {
    let c = Cluster::new(Topology::new(1, 1));
    let a: EbrArray<u64> = EbrArray::with_config(&c, cfg());
    a.resize(8);
    assert_eq!(a.stats().reclaim.guard_panics, 0);
    let r = catch_unwind(AssertUnwindSafe(|| a.read(999)));
    assert!(r.is_err());
    assert!(
        a.stats().reclaim.guard_panics >= 1,
        "panicked guard was not counted"
    );
    // The zone still functions: pin again, resize, drain.
    assert_eq!(a.read(0), 0);
    a.resize(8);
    a.checkpoint();
}

/// The hazard-pointer baseline releases its slot on unwind too — the
/// next reader on the same thread reacquires it and a resize scan sees
/// no stale protection.
#[test]
fn hazard_baseline_guard_panic_releases_slot() {
    let c = Cluster::new(Topology::new(2, 2));
    let a: HazardArray<u64> = HazardArray::new(&c, 8, false);
    a.resize(16);
    a.write(2, 6);

    let r = catch_unwind(AssertUnwindSafe(|| a.read(1_000_000)));
    assert!(r.is_err(), "out-of-bounds hazard read must panic");
    assert!(
        a.domain().reclaim_stats().guard_panics >= 1,
        "hazard domain did not count the panicked guard"
    );

    // Slot released: same thread reads again and resize completes (a
    // stale hazard would keep old snapshots alive, not block, so also
    // check the domain drains to zero).
    assert_eq!(a.read(2), 6);
    a.resize(16);
    assert_eq!(a.read(2), 6);
    let _ = a.domain().quiesce();
    assert_eq!(
        a.domain().reclaim_stats().pending,
        0,
        "stale hazard protection kept retired snapshots alive"
    );
}

/// A panicking reader must not poison reclamation for *other* threads:
/// after one thread's guard unwinds, a different thread's writer makes
/// progress and readers everywhere see consistent data.
#[test]
fn guard_panic_does_not_poison_other_threads() {
    let c = Cluster::new(Topology::new(2, 2));
    let a: Arc<EbrArray<u64>> = Arc::new(EbrArray::with_config(&c, cfg()));
    a.resize(16);
    a.fill(1);

    let panicker = {
        let a = Arc::clone(&a);
        std::thread::spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(|| a.read(1_000_000)));
            assert!(r.is_err());
        })
    };
    panicker.join().unwrap();

    let writer = {
        let a = Arc::clone(&a);
        std::thread::spawn(move || {
            for _ in 0..10 {
                a.resize(8);
            }
        })
    };
    writer.join().unwrap();
    assert_eq!(a.read(0), 1);
    assert_eq!(a.capacity(), 96);
    a.checkpoint();
}
