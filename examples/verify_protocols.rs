//! Run the protocol model checker interactively: exhaustively explore
//! every interleaving of the paper's EBR and QSBR protocols, then show
//! the counterexamples the checker produces when the load-bearing steps
//! are removed — including the epoch-wrap bug this reproduction found in
//! the "load the snapshot early" variant.
//!
//! ```text
//! cargo run --release --example verify_protocols
//! ```

use rcuarray_model::ebr_model::{EbrModel, EPOCH_MOD};
use rcuarray_model::qsbr_model::QsbrModel;
use rcuarray_model::{explore, CheckOutcome};

fn show_ok(name: &str, stats: rcuarray_model::Explored) {
    println!(
        "  ✓ {name}: safe in all {} states ({} transitions, {} terminal)",
        stats.states, stats.transitions, stats.terminal_states
    );
}

fn show_violation<M: rcuarray_model::Model>(name: &str, outcome: CheckOutcome<M>) {
    match outcome {
        CheckOutcome::Ok(stats) => println!(
            "  ?! {name}: unexpectedly clean over {} states",
            stats.states
        ),
        CheckOutcome::Violation {
            reason,
            trace,
            stats,
        } => {
            println!(
                "  ✗ {name}: VIOLATION after exploring {} states\n      {reason}\n      shortest schedule ({} steps):",
                stats.states,
                trace.len()
            );
            for (i, a) in trace.iter().enumerate() {
                println!("        {:>2}. {a:?}", i + 1);
            }
        }
    }
}

fn main() {
    println!(
        "== EBR (Algorithm 1): 1 writer x {} writes, 2 readers, epoch mod {} ==",
        EPOCH_MOD + 1,
        EPOCH_MOD
    );
    show_ok(
        "paper protocol (incl. epoch wrap)",
        explore(&EbrModel::default(), 5_000_000).expect_ok(),
    );
    show_violation(
        "mutation: reader skips the verify (line 13)",
        explore(
            &EbrModel {
                skip_verify: true,
                ..EbrModel::default()
            },
            5_000_000,
        ),
    );
    show_violation(
        "mutation: writer skips the drain (line 7)",
        explore(
            &EbrModel {
                skip_drain: true,
                ..EbrModel::default()
            },
            5_000_000,
        ),
    );
    show_violation(
        "mutation: snapshot loaded before verify — breaks only across the wrap",
        explore(
            &EbrModel {
                early_snapshot_load: true,
                ..EbrModel::default()
            },
            5_000_000,
        ),
    );
    show_ok(
        "same early-load variant below the wrap (safe: bug is overflow-only)",
        explore(
            &EbrModel {
                early_snapshot_load: true,
                writes: EPOCH_MOD - 1,
                ..EbrModel::default()
            },
            5_000_000,
        )
        .expect_ok(),
    );

    println!("\n== QSBR (Algorithm 2): 1 updater x 3 updates, 2 readers ==");
    show_ok(
        "paper protocol",
        explore(&QsbrModel::default(), 5_000_000).expect_ok(),
    );
    show_violation(
        "mutation: free by local epoch instead of the minimum (Lemma 5)",
        explore(
            &QsbrModel {
                ignore_minimum: true,
                ..QsbrModel::default()
            },
            5_000_000,
        ),
    );
    show_violation(
        "mutation: hold a reference across one's own checkpoint (the §III-B contract)",
        explore(
            &QsbrModel {
                hold_across_checkpoint: true,
                ..QsbrModel::default()
            },
            5_000_000,
        ),
    );
    println!("\nall expected outcomes observed");
}
