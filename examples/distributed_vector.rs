//! A distributed, parallel-safe growable vector built on RCUArray —
//! the paper's conclusion names exactly this use case: "RCUArray can
//! serve as the ideal backbone for a random-access data structure such as
//! a distributed vector or table which both benefit from the ability to
//! be resized and indexed with parallel-safety."
//!
//! `DistVector` adds a length counter and an append path on top of the
//! array: `push` claims a slot with one fetch-add and, when the claimed
//! slot is past the current capacity, triggers a resize. Readers index
//! concurrently with pushes and with the resizes they trigger.
//!
//! ```text
//! cargo run --release --example distributed_vector
//! ```

use rcuarray_repro::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A growable distributed vector of `u64`.
struct DistVector {
    array: QsbrArray<u64>,
    len: AtomicUsize,
}

impl DistVector {
    fn new(cluster: &Arc<Cluster>, block_size: usize) -> Self {
        DistVector {
            array: QsbrArray::with_config(cluster, Config::with_block_size(block_size)),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of pushed elements.
    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Append `v`, growing the backing array when the claimed slot is
    /// beyond capacity. Returns the element's index.
    fn push(&self, v: u64) -> usize {
        let idx = self.len.fetch_add(1, Ordering::AcqRel);
        // Grow until the slot exists. `resize` is parallel-safe, so many
        // pushers racing here is fine: whoever wins the write lock grows,
        // the rest observe the new capacity and proceed.
        while idx >= self.array.capacity() {
            self.array.resize(self.array.config().block_size);
        }
        self.array.write(idx, v);
        idx
    }

    /// Read element `i` (must be `< len()`).
    fn get(&self, i: usize) -> u64 {
        assert!(i < self.len(), "index {i} out of bounds");
        self.array.read(i)
    }

    /// Quiesce the calling thread (QSBR checkpoint).
    fn checkpoint(&self) {
        self.array.checkpoint();
    }
}

fn main() {
    let cluster = Cluster::new(Topology::new(4, 4));
    let vec = Arc::new(DistVector::new(&cluster, 256));

    // Every locale pushes its own tagged values concurrently; pushes race
    // with the resizes they trigger and with readers validating the data.
    const PER_TASK: usize = 2_000;
    cluster.forall_tasks(|loc, task| {
        let tag = ((loc.index() as u64) << 32) | (task as u64) << 24;
        for k in 0..PER_TASK {
            vec.push(tag | k as u64);
            if k % 64 == 0 {
                // Interleave reads of what we already pushed.
                let len = vec.len();
                if len > 0 {
                    let _ = vec.get(k % len);
                }
            }
        }
        vec.checkpoint();
    });

    let total = cluster.topology().total_tasks() * PER_TASK;
    assert_eq!(vec.len(), total);

    // Verify no push was lost: every tagged value appears exactly once.
    let mut seen = std::collections::HashSet::with_capacity(total);
    for i in 0..vec.len() {
        assert!(seen.insert(vec.get(i)), "duplicate value at {i}");
    }
    assert_eq!(seen.len(), total);
    vec.checkpoint();

    let stats = vec.array.stats();
    println!(
        "pushed {} elements from {} tasks",
        total,
        cluster.topology().total_tasks()
    );
    println!(
        "backing array: {} elements in {} blocks, {} resizes, blocks/locale {:?}",
        stats.capacity, stats.num_blocks, stats.resizes, stats.blocks_per_locale
    );
    println!(
        "reclamation: {} snapshots retired, {} reclaimed, {} pending",
        stats.reclaim.retired, stats.reclaim.reclaimed, stats.reclaim.pending
    );
    println!(
        "every push present exactly once — no updates lost across {} resizes",
        stats.resizes
    );
}
