//! A distributed key-value table on the RCUArray backbone — the other
//! half of the paper's conclusion ("a distributed vector **or table**").
//!
//! A fleet of ingestion tasks, spread over every locale, writes session
//! records into a `DistTable` while reader tasks look sessions up
//! concurrently. When the table saturates, the coordinator grows it —
//! the `&mut self` growth API makes "no concurrent operations" a
//! compile-time fact rather than a runbook note.
//!
//! ```text
//! cargo run --release --example distributed_table
//! ```

use rcuarray_repro::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cluster = Cluster::new(Topology::new(4, 2));
    println!("cluster: {}", cluster.topology());

    // Phase 1: concurrent ingestion + lookups at the initial capacity.
    let mut table: DistTable = DistTable::with_capacity(&cluster, 1 << 12);
    println!("table capacity: {} slots", table.capacity());

    let start = Instant::now();
    {
        let table = &table;
        cluster.forall_tasks(|loc, task| {
            let worker = (loc.index() * 8 + task) as u64;
            for k in 0..256u64 {
                let key = worker * 1000 + k + 1;
                table
                    .insert(key, key * 2)
                    .expect("capacity sized for phase 1");
                // Interleaved lookups of our own writes.
                if k % 8 == 7 {
                    assert_eq!(table.get(key), Some(key * 2));
                }
            }
            table.checkpoint();
        });
    }
    println!(
        "phase 1: {} entries ingested concurrently in {:?}",
        table.len(),
        start.elapsed()
    );

    // Phase 2: growth. Holding `&mut table` proves quiescence.
    let before = table.capacity();
    let start = Instant::now();
    table.grow();
    println!(
        "phase 2: grew {} -> {} slots in {:?} (tombstones compacted)",
        before,
        table.capacity(),
        start.elapsed()
    );

    // Phase 3: verify every record survived the rehash, in parallel,
    // then churn with removals.
    let table = Arc::new(table);
    {
        let table = &table;
        cluster.forall_tasks(|loc, task| {
            let worker = (loc.index() * 8 + task) as u64;
            for k in 0..256u64 {
                let key = worker * 1000 + k + 1;
                assert_eq!(table.get(key), Some(key * 2), "lost {key} in grow");
                if k % 2 == 0 {
                    assert_eq!(table.remove(key), Some(key * 2));
                }
            }
            table.checkpoint();
        });
    }
    println!("phase 3: verified all entries post-grow; removed half");
    println!(
        "final: {} live entries of {} slots",
        table.len(),
        table.capacity()
    );
}
