//! A cluster-wide telemetry histogram: the read-mostly, grow-occasionally
//! workload the paper's introduction motivates.
//!
//! Each locale ingests a stream of metric samples and bumps per-metric-id
//! counters in a shared RCUArray. New metric ids appear over time, so the
//! id space grows — with a mutex- or rwlock-protected array every
//! ingestion would serialize against growth; with RCUArray, ingestion
//! never blocks while an operator task expands the array.
//!
//! The example runs the same workload against `QsbrArray` and the
//! `SyncArray` baseline and prints both runtimes: a miniature Figure 2.
//!
//! ```text
//! cargo run --release --example telemetry_histogram
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcuarray_repro::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SAMPLES_PER_TASK: usize = 20_000;
const INITIAL_IDS: usize = 1 << 12;
const FINAL_IDS: usize = 1 << 14;

/// Drive the ingestion workload against any histogram-ish sink.
fn ingest(
    cluster: &Arc<Cluster>,
    id_space: &AtomicUsize,
    bump: impl Fn(usize) + Sync,
    grow: impl Fn(usize) + Sync,
) {
    cluster.forall_tasks(|loc, task| {
        let mut rng = StdRng::seed_from_u64((loc.index() * 64 + task) as u64);
        for k in 0..SAMPLES_PER_TASK {
            // Occasionally the id space expands (a deploy ships new
            // metrics) — one task performs the growth, everyone else keeps
            // ingesting right through it.
            if k % 4096 == 0 && loc.index() == 0 && task == 0 {
                let cur = id_space.load(Ordering::Acquire);
                if cur < FINAL_IDS {
                    grow(cur); // grow by one increment
                    id_space.store(cur + 1024, Ordering::Release);
                }
            }
            let ids = id_space.load(Ordering::Acquire);
            let id = rng.random_range(0..ids);
            bump(id);
        }
    });
}

fn main() {
    let cluster = Cluster::new(Topology::new(4, 4));
    println!(
        "ingesting {} samples/task on {} ({} samples total), id space {} -> {}",
        SAMPLES_PER_TASK,
        cluster.topology(),
        cluster.topology().total_tasks() * SAMPLES_PER_TASK,
        INITIAL_IDS,
        FINAL_IDS
    );

    // --- RCUArray (QSBR) ---
    let hist: QsbrArray<u64> =
        QsbrArray::with_capacity(&cluster, Config::with_block_size(1024), INITIAL_IDS);
    let ids = AtomicUsize::new(INITIAL_IDS);
    let start = Instant::now();
    ingest(
        &cluster,
        &ids,
        |id| {
            // An exact counter bump: atomic read-modify-write through a
            // reference (a CAS loop; see ElemRef::fetch_update).
            let r = hist.get_ref(id);
            r.fetch_update(|v| v + 1);
        },
        |_| {
            hist.resize(1024);
        },
    );
    hist.checkpoint();
    let rcu_time = start.elapsed();
    let total: u64 = hist.iter().sum();
    let expected = (cluster.topology().total_tasks() * SAMPLES_PER_TASK) as u64;
    assert_eq!(total, expected, "atomic bumps must all be recorded");
    println!(
        "QSBRArray : {:>8.1?} | {} ids | {} bumps recorded (exact) | {} resizes mid-ingest",
        rcu_time,
        hist.capacity(),
        total,
        hist.stats().resizes
    );

    // --- SyncArray baseline: every bump takes the cluster-wide lock ---
    let sync_hist: SyncArray<u64> = SyncArray::with_capacity(&cluster, INITIAL_IDS);
    let ids = AtomicUsize::new(INITIAL_IDS);
    let start = Instant::now();
    ingest(
        &cluster,
        &ids,
        |id| {
            let v = sync_hist.read(id);
            sync_hist.write(id, v + 1);
        },
        |_| {
            sync_hist.resize(1024);
        },
    );
    let sync_time = start.elapsed();
    println!(
        "SyncArray : {:>8.1?} | {} ids | {} lock acquisitions",
        sync_time,
        sync_hist.capacity(),
        sync_hist.acquisitions()
    );

    println!(
        "speedup: {:.1}x (ingestion never blocked on growth under RCU)",
        sync_time.as_secs_f64() / rcu_time.as_secs_f64()
    );
}
