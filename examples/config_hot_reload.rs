//! Hot-reloading shared configuration with the *decoupled* RCU layer —
//! the paper's future-work item ("the decoupling of EBR from RCUArray can
//! be performed easily"), shipped here as the `rcuarray-rcu` crate.
//!
//! A routing table is read on every "request" by worker threads and
//! occasionally replaced wholesale by a control thread. The same generic
//! code runs under both reclamation back-ends:
//!
//! * **EBR** — workers pay the two-counter announcement per read; the
//!   control thread reclaims old tables synchronously.
//! * **QSBR** — reads are free; workers checkpoint between requests
//!   (a natural quiescent point), deferring reclamation there.
//!
//! ```text
//! cargo run --release --example config_hot_reload
//! ```

use rcuarray_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The hot-reloaded configuration: a generation stamp plus a routing map.
#[derive(Clone)]
struct RoutingTable {
    generation: u64,
    routes: Vec<u32>, // shard -> backend
}

impl RoutingTable {
    fn initial(shards: usize) -> Self {
        RoutingTable {
            generation: 0,
            routes: (0..shards as u32).collect(),
        }
    }

    fn route(&self, shard: usize) -> u32 {
        self.routes[shard % self.routes.len()]
    }
}

/// Serve requests against an RCU-protected table until `stop`, returning
/// the number served. Scheme-generic: the whole point of the decoupling.
fn serve<R: Reclaim>(
    table: &RcuPtr<RoutingTable, R>,
    stop: &AtomicBool,
    served: &AtomicU64,
    quiesce_every: usize,
) {
    let mut n = 0usize;
    while !stop.load(Ordering::Relaxed) {
        // One "request": route a shard through the current table and
        // sanity-check the snapshot's internal consistency.
        let (generation, backend) = table.read(|t| (t.generation, t.route(n)));
        assert!(u64::from(backend) < generation + 1024, "torn table");
        n += 1;
        if n.is_multiple_of(quiesce_every) {
            // Between requests: a natural quiescent point. A checkpoint
            // under QSBR, a no-op under EBR.
            table.reclaimer().quiesce();
        }
    }
    served.fetch_add(n as u64, Ordering::Relaxed);
}

fn run<R: Reclaim>(name: &str, reclaim: Arc<R>, reloads: u64) {
    let table = Arc::new(RcuPtr::new(RoutingTable::initial(64), reclaim));
    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..3 {
            let table = Arc::clone(&table);
            let stop = &stop;
            let served = &served;
            s.spawn(move || serve(table.as_ref(), stop, served, 256));
        }
        // The control plane hot-reloads the table `reloads` times.
        let table2 = Arc::clone(&table);
        let stop2 = &stop;
        s.spawn(move || {
            for g in 1..=reloads {
                table2.update(|old| {
                    let mut routes = old.routes.clone();
                    // Re-home one shard per reload.
                    let victim = (g as usize * 7) % routes.len();
                    routes[victim] = routes[victim].wrapping_add(1);
                    RoutingTable {
                        generation: g,
                        routes,
                    }
                });
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });
    let final_gen = table.read(|t| t.generation);
    // Final quiesce so QSBR's deferred tables are freed before we report.
    table.reclaimer().quiesce();
    println!(
        "{name:<5}: served {:>9} requests during {} reloads in {:>7.1?} (final generation {})",
        served.load(Ordering::Relaxed),
        reloads,
        start.elapsed(),
        final_gen
    );
}

fn main() {
    println!("hot-reloading a routing table under both reclamation back-ends\n");
    run("ebr", Arc::new(EbrReclaim::new()), 500);
    run("qsbr", Arc::new(QsbrReclaim::new()), 500);
    println!(
        "\nsame serve() code ran under both schemes — the paper's `isQSBR` as a type parameter"
    );
}
