//! Fault injection: run an RCUArray workload on a cluster that drops
//! messages, downs a locale mid-run, and aborts resizes at named trigger
//! points — then show that every update survived.
//!
//! ```text
//! cargo run --release --example fault_chaos [seed]
//! ```
//!
//! The same seed reproduces the same fault schedule (DESIGN.md §5c);
//! the printed fingerprint makes that visible across runs.

use rcuarray_repro::prelude::*;
use std::time::Duration;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    // 10% of remote GETs/PUTs fail with retryable transient errors, and
    // the fourth write-lock acquisition inside resize errors twice.
    let cluster = Cluster::builder()
        .topology(Topology::new(4, 2))
        .fault_plan(FaultPlan::new(seed).fail_gets(0.1).fail_puts(0.1).trigger(
            "resize.lock",
            3,
            2,
            FaultAction::Error,
        ))
        .build();
    println!("cluster: {} (fault seed {seed})", cluster.topology());

    // Small blocks so the 512-element workload spans all four locales.
    let config = Config {
        block_size: 64,
        retry: RetryPolicy::new(8, Duration::from_millis(100)),
        account_comm: true,
        ..Config::default()
    };
    let array: QsbrArray<u64> = QsbrArray::with_config(&cluster, config);

    // Grow in steps so several resizes run under fire; the trigger aborts
    // attempts, the retry loop rolls back and tries again.
    for _ in 0..4 {
        array.resize(1024);
    }
    println!("capacity after 4 faulty resizes: {}", array.capacity());

    // A write/read workload across all locales while faults fire.
    cluster.forall_tasks(|_, _| {
        for i in 0..512 {
            array.write(i, i as u64 + 1);
            assert_eq!(array.read(i), i as u64 + 1);
            array.checkpoint();
        }
    });

    // Down locale 1: reads degrade to the local snapshot instead of
    // failing; writes are recorded as degraded but still land.
    cluster.fault().set_down(LocaleId::new(1), true);
    for i in 0..512 {
        assert_eq!(array.read(i), i as u64 + 1);
    }
    cluster.fault().set_down(LocaleId::new(1), false);

    let s = array.stats();
    println!(
        "injected faults: {} (fingerprint {:#018x})",
        cluster.fault().fault_count(),
        cluster.fault().fingerprint()
    );
    println!(
        "retries={} aborted_resizes={} fallback_reads={} degraded_writes={}",
        s.retries(),
        s.aborted_resizes,
        s.fallback_reads,
        s.degraded_writes
    );
    assert!(
        s.aborted_resizes >= 2,
        "the resize.lock trigger fired twice"
    );
    println!("all 512 updates intact despite faults, aborts and a downed locale");
}
