//! Fault injection: run an RCUArray workload on a cluster that drops
//! messages, downs a locale mid-run, and aborts resizes at named trigger
//! points — then show that every update survived.
//!
//! ```text
//! cargo run --release --example fault_chaos [seed] [-- --backend shmem|mesh]
//! ```
//!
//! The same seed reproduces the same fault schedule (DESIGN.md §5c);
//! the printed fingerprint makes that visible across runs — and across
//! transport backends: it hashes each fault's decision-stream
//! coordinates, which are a pure function of the seed, so swapping
//! shmem for mesh changes delivery timing but not the fingerprint.

use rcuarray_repro::prelude::*;
use std::time::Duration;

fn main() {
    let mut seed = 42u64;
    let mut backend = TransportKind::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let v = args.next().expect("--backend needs a value");
                backend = v.parse().unwrap_or_else(|e| panic!("--backend: {e}"));
            }
            other => {
                if let Ok(s) = other.parse() {
                    seed = s;
                }
            }
        }
    }

    // 10% of remote GETs/PUTs fail with retryable transient errors, the
    // fourth write-lock acquisition inside resize errors twice, and the
    // 0→2 link's mesh delivery order is perturbed (a per-link rule —
    // observation only, so it cannot disturb the fault schedule; the
    // shmem backend, where send *is* delivery, ignores it).
    let cluster = Cluster::builder()
        .topology(Topology::new(4, 2))
        .backend(backend)
        .fault_plan(
            FaultPlan::new(seed)
                .fail_gets(0.1)
                .fail_puts(0.1)
                .reorder_link(LocaleId::new(0), LocaleId::new(2))
                .trigger("resize.lock", 3, 2, FaultAction::Error),
        )
        .build();
    println!(
        "cluster: {} over the {backend} transport (fault seed {seed})",
        cluster.topology()
    );

    // Small blocks so the 512-element workload spans all four locales.
    let config = Config {
        block_size: 64,
        retry: RetryPolicy::new(8, Duration::from_millis(100)),
        account_comm: true,
        ..Config::default()
    };
    let array: QsbrArray<u64> = QsbrArray::with_config(&cluster, config);

    // Grow in steps so several resizes run under fire; the trigger aborts
    // attempts, the retry loop rolls back and tries again.
    for _ in 0..4 {
        array.resize(1024);
    }
    println!("capacity after 4 faulty resizes: {}", array.capacity());

    // A write/read workload across all locales while faults fire.
    cluster.forall_tasks(|_, _| {
        for i in 0..512 {
            array.write(i, i as u64 + 1);
            assert_eq!(array.read(i), i as u64 + 1);
            array.checkpoint();
        }
    });

    // Down locale 1: reads degrade to the local snapshot instead of
    // failing; writes are recorded as degraded but still land.
    cluster.fault().set_down(LocaleId::new(1), true);
    for i in 0..512 {
        assert_eq!(array.read(i), i as u64 + 1);
    }
    cluster.fault().set_down(LocaleId::new(1), false);

    let s = array.stats();
    println!(
        "injected faults: {} (fingerprint {:#018x})",
        cluster.fault().fault_count(),
        cluster.fault().fingerprint()
    );
    println!(
        "retries={} aborted_resizes={} fallback_reads={} degraded_writes={}",
        s.retries(),
        s.aborted_resizes,
        s.fallback_reads,
        s.degraded_writes
    );
    assert!(
        s.aborted_resizes >= 2,
        "the resize.lock trigger fired twice"
    );
    println!("all 512 updates intact despite faults, aborts and a downed locale");
}
