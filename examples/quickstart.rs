//! Quickstart: create a simulated cluster, build an RCUArray, and watch
//! reads, updates and resizes run concurrently.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rcuarray_repro::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    // A simulated cluster: 4 locales (nodes), 4 tasks per locale.
    let cluster = Cluster::new(Topology::new(4, 4));
    println!("cluster: {}", cluster.topology());

    // A QSBR-backed RCUArray of u64 with the paper's 1024-element blocks.
    let array: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::default());
    array.resize(8192);
    println!(
        "resized to {} elements in {} blocks",
        array.capacity(),
        array.num_blocks()
    );

    // Plain reads and updates, from any task on any locale.
    array.write(4096, 42);
    assert_eq!(array.read(4096), 42);

    // References survive resizes (the paper's Lemma 6): obtain one, grow
    // the array, then write through the old reference — nothing is lost.
    let r = array.get_ref(100);
    array.resize(8192);
    r.set(7);
    assert_eq!(array.read(100), 7);
    println!(
        "update through a pre-resize reference survived: {}",
        array.read(100)
    );

    // Reads, updates and resizes all at once, from every locale.
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // A resizer task keeps growing the array...
        let a = array.clone();
        let stop_ref = &stop;
        s.spawn(move || {
            for _ in 0..16 {
                a.resize(1024);
                std::thread::yield_now();
            }
            stop_ref.store(true, Ordering::Relaxed);
        });
        // ...while reader/updater tasks on every locale hammer it.
        for _ in 0..3 {
            let a = array.clone();
            let stop_ref = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop_ref.load(Ordering::Relaxed) {
                    a.write(i % 8192, i as u64);
                    let _ = a.read((i * 7) % 8192);
                    i += 1;
                }
                // QSBR contract: quiesce when done so old snapshots free.
                a.checkpoint();
            });
        }
    });
    array.checkpoint();

    let stats = array.stats();
    println!(
        "final capacity {} | blocks/locale {:?} (imbalance {}) | resizes {}",
        stats.capacity,
        stats.blocks_per_locale,
        stats.block_imbalance(),
        stats.resizes
    );
    println!(
        "qsbr: {} retired, {} reclaimed, {} pending",
        stats.reclaim.retired, stats.reclaim.reclaimed, stats.reclaim.pending
    );
    println!(
        "comm: {} remote ops, locality {:.1}%",
        stats.comm.remote_ops(),
        stats.comm.locality() * 100.0
    );

    // The same API runs under the paper's TLS-free EBR scheme.
    let ebr: EbrArray<u64> = EbrArray::with_config(&cluster, Config::default());
    ebr.resize(1024);
    ebr.write(0, 1);
    println!("EBR variant works identically: read(0) = {}", ebr.read(0));
    println!("ebr protocol: {:?}", ebr.stats().reclaim);
}
