//! A four-locale cluster serving mixed Get/Put/Grow traffic through the
//! request-serving front-end (`rcuarray-service`, DESIGN.md §11).
//!
//! Three kinds of clients hammer the service concurrently:
//!
//! * **readers** issue point `Get`s and coalesced `BatchGet`s;
//! * **writers** issue `Put`s and `BatchPut`s;
//! * one **grower** keeps extending the array under the live load.
//!
//! Every request flows through admission control (bounded per-worker
//! queues — overload answers `Overloaded` with a retry hint instead of
//! wedging) and adaptive batching (a worker coalesces up to `max_batch`
//! requests and serves them under a *single* read guard). The SLO
//! snapshot printed at the end shows the effect: `pins` well below
//! `requests` is the paper's read-side amortization surfaced as a
//! service metric, and the queue-wait vs execute histograms split
//! end-to-end latency into its two halves.
//!
//! ```text
//! cargo run --release --example serve [-- --backend shmem|mesh]
//! ```
//!
//! `--backend` selects the transport the cluster rides (default: the
//! `RCUARRAY_BACKEND` environment variable, else `shmem`).

use rcuarray_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const LOCALES: usize = 4;
const READERS: usize = 4;
const WRITERS: usize = 2;
const OPS_PER_CLIENT: usize = 2_000;
const START_CAPACITY: usize = 4_096;

/// Parse `--backend <shmem|mesh>` from the command line, falling back
/// to `RCUARRAY_BACKEND`, then `shmem`.
fn backend_from_args() -> TransportKind {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--backend" {
            let v = args.next().expect("--backend needs a value");
            return v.parse().unwrap_or_else(|e| panic!("--backend: {e}"));
        }
    }
    TransportKind::from_env()
}

fn main() {
    let backend = backend_from_args();
    let cluster = Cluster::builder()
        .topology(Topology::new(LOCALES, 2))
        .backend(backend)
        .build();
    let array: EbrArray<u64> = EbrArray::new(&cluster);
    array.resize(START_CAPACITY);

    let service = Service::start(
        array,
        ServiceConfig {
            workers_per_locale: 1,
            queue_capacity: 512,
            max_batch: 32,
            max_delay: Duration::from_micros(200),
            deadline: Duration::from_millis(250),
            ..ServiceConfig::default()
        },
    );
    println!(
        "serving on {LOCALES} locales over the {backend} transport \
         ({READERS} readers, {WRITERS} writers, 1 grower)\n"
    );

    let served = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let capacity = Arc::new(AtomicU64::new(START_CAPACITY as u64));

    std::thread::scope(|s| {
        for r in 0..READERS {
            let client = service.client();
            let capacity = Arc::clone(&capacity);
            let (served, retried) = (&served, &retried);
            s.spawn(move || {
                let mut x = 0x9E37_79B9u64.wrapping_add(r as u64);
                for k in 0..OPS_PER_CLIENT {
                    // xorshift: a cheap deterministic index stream.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let cap = capacity.load(Ordering::Relaxed);
                    let req = if k % 8 == 0 {
                        // One coalesced lookup per eight: a batch rides
                        // the same guard pin as its neighbors.
                        Request::BatchGet {
                            indices: (0..4).map(|i| ((x >> (8 * i)) % cap) as usize).collect(),
                        }
                    } else {
                        Request::Get {
                            idx: (x % cap) as usize,
                        }
                    };
                    // call_with_retry honors Overloaded's retry_after
                    // hint and backs off instead of hammering.
                    match client.call_with_retry(&req) {
                        Ok(_) => served.fetch_add(1, Ordering::Relaxed),
                        Err(_) => retried.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
        for w in 0..WRITERS {
            let client = service.client();
            let capacity = Arc::clone(&capacity);
            let (served, retried) = (&served, &retried);
            s.spawn(move || {
                let mut x = 0xC0FF_EE00u64.wrapping_add(w as u64);
                for k in 0..OPS_PER_CLIENT {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let cap = capacity.load(Ordering::Relaxed);
                    let req = if k % 8 == 0 {
                        Request::BatchPut {
                            entries: (0..4)
                                .map(|i| ((((x >> (8 * i)) % cap) as usize), x ^ i))
                                .collect(),
                        }
                    } else {
                        Request::Put {
                            idx: (x % cap) as usize,
                            value: x,
                        }
                    };
                    match client.call_with_retry(&req) {
                        Ok(_) => served.fetch_add(1, Ordering::Relaxed),
                        Err(_) => retried.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
        {
            // The grower: steady capacity extension under live traffic —
            // the paper's resize path exercised through the front door.
            let client = service.client();
            let capacity = Arc::clone(&capacity);
            s.spawn(move || {
                for _ in 0..24 {
                    if let Ok(Response::Grown(cap)) =
                        client.call_with_retry(&Request::Grow { additional: 1_024 })
                    {
                        capacity.store(cap as u64, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
    });

    let final_cap = service.array().capacity();
    service.shutdown();

    let snap = slo_snapshot();
    println!(
        "clients done: {} served, {} gave up after retries",
        served.load(Ordering::Relaxed),
        retried.load(Ordering::Relaxed)
    );
    println!("array grew to {final_cap} elements under load\n");
    println!("SLO snapshot:\n{snap}");
    println!(
        "\namortization: {} requests rode {} guard pins ({:.1} requests/pin)",
        snap.requests,
        snap.pins,
        snap.amortization()
    );
    assert!(
        snap.pins < snap.requests,
        "batching must pin less than once per request"
    );
}
