//! Blocks: the fixed-size element storage units of RCUArray.
//!
//! "RCUArray allocates memory in blocks of a predetermined size that can
//! be distributed across multiple locales, enabling the recycling of
//! memory" (paper §VI). Each block is homed on one locale; element
//! accesses from other locales are charged as PUT/GET through the
//! simulated communication layer.
//!
//! Block lifetime is the linchpin of Lemma 6: blocks are *recycled*
//! (shared by pointer) between successive snapshots and are never freed by
//! a resize — only the array's final drop releases them. That is what
//! makes references handed out by `Index` remain valid across resizes and
//! keeps updates through old snapshots visible in new ones.

use crate::element::Element;
use rcuarray_runtime::LocaleId;
use std::ptr::NonNull;

/// A fixed-capacity block of element cells, homed on one locale.
pub struct Block<T: Element> {
    home: LocaleId,
    cells: Box<[T::Repr]>,
}

impl<T: Element> Block<T> {
    /// Allocate a zero-initialized block of `capacity` cells homed on
    /// `home`.
    pub fn new(home: LocaleId, capacity: usize) -> Self {
        assert!(capacity > 0, "blocks cannot be empty");
        Block {
            home,
            cells: (0..capacity).map(|_| T::new_repr(T::default())).collect(),
        }
    }

    /// The locale this block's memory lives on.
    #[inline]
    pub fn home(&self) -> LocaleId {
        self.home
    }

    /// Number of element cells.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Approximate bytes this block occupies (for allocation accounting).
    pub fn byte_size(&self) -> usize {
        self.cells.len() * std::mem::size_of::<T::Repr>()
    }

    /// The cell at `offset`.
    ///
    /// # Panics
    /// Panics when `offset >= capacity()`.
    #[inline]
    pub fn cell(&self, offset: usize) -> &T::Repr {
        &self.cells[offset]
    }

    /// Read the element at `offset`.
    #[inline]
    pub fn load(&self, offset: usize) -> T {
        T::load(&self.cells[offset])
    }

    /// Write the element at `offset`.
    #[inline]
    pub fn store(&self, offset: usize, v: T) {
        T::store(&self.cells[offset], v)
    }

    /// Copy every element value from `src` (used only by the deep-copy
    /// ablation and the baseline arrays; RCUArray itself never copies
    /// blocks — it recycles them).
    pub fn copy_from(&self, src: &Block<T>) {
        assert_eq!(self.capacity(), src.capacity(), "block size mismatch");
        for i in 0..self.capacity() {
            self.store(i, src.load(i));
        }
    }
}

impl<T: Element> std::fmt::Debug for Block<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block")
            .field("home", &self.home)
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// A non-owning reference to a block, shared by every snapshot that
/// recycles it. The pointee is owned by the array's block registry and
/// outlives all snapshots and element references.
pub struct BlockRef<T: Element> {
    ptr: NonNull<Block<T>>,
}

impl<T: Element> Clone for BlockRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Element> Copy for BlockRef<T> {}

// SAFETY: `Block` only contains atomics (plus a LocaleId); shared access
// from any thread is safe, and `BlockRef` never frees.
unsafe impl<T: Element> Send for BlockRef<T> {}
unsafe impl<T: Element> Sync for BlockRef<T> {}

impl<T: Element> BlockRef<T> {
    /// Wrap a pointer to a registry-owned block.
    ///
    /// # Safety
    /// `ptr` must point to a `Block<T>` that stays alive (and unmoved) for
    /// as long as any copy of this `BlockRef` can be dereferenced — in
    /// RCUArray, until the owning array drops.
    pub unsafe fn from_owner(ptr: NonNull<Block<T>>) -> Self {
        BlockRef { ptr }
    }

    /// Borrow the block.
    ///
    /// # Safety
    /// The owner (the array's block registry) must still be alive. All
    /// call sites inside the crate are reached through a live array
    /// reference, which guarantees that.
    #[inline]
    pub unsafe fn get(&self) -> &Block<T> {
        unsafe { self.ptr.as_ref() }
    }

    /// Identity (for tests asserting that recycling shares blocks).
    #[inline]
    pub fn as_ptr(&self) -> *const Block<T> {
        self.ptr.as_ptr()
    }
}

impl<T: Element> std::fmt::Debug for BlockRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockRef({:p})", self.ptr.as_ptr())
    }
}

/// Owns every block the array ever allocated. Blocks are appended under
/// the write lock during resizes and freed only when the registry drops
/// with the array.
pub struct BlockRegistry<T: Element> {
    // Each block stays in its own `Box`: `BlockRef`s are raw pointers to
    // these allocations, so the vector may reallocate but the blocks must
    // never move.
    #[allow(clippy::vec_box)]
    owned: rcuarray_analysis::sync::Mutex<Vec<Box<Block<T>>>>,
}

impl<T: Element> Default for BlockRegistry<T> {
    fn default() -> Self {
        BlockRegistry {
            owned: rcuarray_analysis::sync::Mutex::new(Vec::new()),
        }
    }
}

impl<T: Element> BlockRegistry<T> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take ownership of `block`, returning a shareable [`BlockRef`].
    pub fn adopt(&self, block: Block<T>) -> BlockRef<T> {
        let boxed = Box::new(block);
        let ptr = NonNull::from(&*boxed);
        self.owned.lock().push(boxed);
        // SAFETY: the box lives in `owned` until the registry drops; boxes
        // never move their heap contents.
        unsafe { BlockRef::from_owner(ptr) }
    }

    /// Number of blocks owned.
    pub fn len(&self) -> usize {
        self.owned.lock().len()
    }

    /// True when no blocks were allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of blocks homed per locale (index = locale id), for tests of
    /// the round-robin distribution.
    pub fn per_locale_histogram(&self, num_locales: usize) -> Vec<usize> {
        let mut hist = vec![0usize; num_locales];
        for b in self.owned.lock().iter() {
            hist[b.home().index()] += 1;
        }
        hist
    }
}

impl<T: Element> std::fmt::Debug for BlockRegistry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockRegistry")
            .field("blocks", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_zero_initialized() {
        let b: Block<u64> = Block::new(LocaleId::new(1), 8);
        assert_eq!(b.capacity(), 8);
        assert_eq!(b.home(), LocaleId::new(1));
        for i in 0..8 {
            assert_eq!(b.load(i), 0);
        }
    }

    #[test]
    fn block_store_load() {
        let b: Block<i32> = Block::new(LocaleId::ZERO, 4);
        b.store(2, -7);
        assert_eq!(b.load(2), -7);
        assert_eq!(b.load(0), 0);
    }

    #[test]
    #[should_panic]
    fn block_oob_panics() {
        let b: Block<u8> = Block::new(LocaleId::ZERO, 2);
        b.load(2);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_block_rejected() {
        let _: Block<u8> = Block::new(LocaleId::ZERO, 0);
    }

    #[test]
    fn copy_from_copies_values() {
        let a: Block<u16> = Block::new(LocaleId::ZERO, 3);
        a.store(0, 1);
        a.store(1, 2);
        a.store(2, 3);
        let b: Block<u16> = Block::new(LocaleId::ZERO, 3);
        b.copy_from(&a);
        assert_eq!((b.load(0), b.load(1), b.load(2)), (1, 2, 3));
    }

    #[test]
    fn byte_size_accounts_cells() {
        let b: Block<u64> = Block::new(LocaleId::ZERO, 16);
        // Repr is at least the payload; under `check` it also carries
        // instrumentation metadata, so compare against the actual size.
        let cell = std::mem::size_of::<<u64 as Element>::Repr>();
        assert!(cell >= 8);
        assert_eq!(b.byte_size(), 16 * cell);
    }

    #[test]
    fn registry_adopt_and_share() {
        let reg: BlockRegistry<u32> = BlockRegistry::new();
        let r1 = reg.adopt(Block::new(LocaleId::ZERO, 4));
        let r2 = r1; // Copy
                     // SAFETY: registry alive.
        unsafe {
            r1.get().store(1, 42);
            assert_eq!(r2.get().load(1), 42, "copies alias the same block");
        }
        assert_eq!(r1.as_ptr(), r2.as_ptr());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_histogram_counts_homes() {
        let reg: BlockRegistry<u8> = BlockRegistry::new();
        for i in 0..5u32 {
            reg.adopt(Block::new(LocaleId::new(i % 2), 1));
        }
        assert_eq!(reg.per_locale_histogram(2), vec![3, 2]);
    }

    #[test]
    fn registry_blocks_stable_across_growth() {
        // Adopting many blocks must not invalidate earlier refs (boxes do
        // not move when the registry's vec reallocates).
        let reg: BlockRegistry<u64> = BlockRegistry::new();
        let first = reg.adopt(Block::new(LocaleId::ZERO, 2));
        // SAFETY: the registry outlives every ref taken in this test.
        unsafe { first.get().store(0, 99) };
        let mut refs = vec![first];
        for _ in 0..100 {
            refs.push(reg.adopt(Block::new(LocaleId::ZERO, 2)));
        }
        // SAFETY: the registry outlives every ref taken in this test.
        unsafe {
            assert_eq!(refs[0].get().load(0), 99);
        }
    }
}
