//! Element iteration.
//!
//! Each element is read under the scheme's own read protocol, so the
//! iterator never blocks resizes and a resize never invalidates it; the
//! sequence as a whole is *not* one atomic snapshot (elements may change
//! mid-iteration), matching how a Chapel `forall` over the paper's array
//! would behave.

use crate::array::RcuArray;
use crate::element::Element;
use crate::scheme::Scheme;

/// Iterator over current element values; see [module docs](self).
pub struct Iter<'a, T: Element, S: Scheme> {
    array: &'a RcuArray<T, S>,
    next: usize,
    /// Capacity captured at creation: elements appended by concurrent
    /// resizes are not visited.
    len: usize,
}

impl<'a, T: Element, S: Scheme> Iter<'a, T, S> {
    pub(crate) fn new(array: &'a RcuArray<T, S>) -> Self {
        Iter {
            next: 0,
            len: array.capacity(),
            array,
        }
    }
}

impl<T: Element, S: Scheme> Iterator for Iter<'_, T, S> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        if self.next >= self.len {
            return None;
        }
        let v = self.array.read(self.next);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.next;
        (rem, Some(rem))
    }
}

impl<T: Element, S: Scheme> ExactSizeIterator for Iter<'_, T, S> {}

#[cfg(test)]
mod tests {
    use crate::array::QsbrArray;
    use crate::config::Config;
    use rcuarray_runtime::Cluster;

    fn array(cap: usize) -> QsbrArray<u32> {
        let c = Cluster::with_locales(2);
        let a = QsbrArray::with_config(
            &c,
            Config {
                block_size: 4,
                account_comm: false,
                ..Config::default()
            },
        );
        a.resize(cap);
        a
    }

    #[test]
    fn yields_every_element_in_order() {
        let a = array(8);
        for i in 0..8 {
            a.write(i, i as u32 * 10);
        }
        let v: Vec<u32> = a.iter().collect();
        assert_eq!(v, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn empty_array_yields_nothing() {
        let c = Cluster::with_locales(1);
        let a = QsbrArray::<u32>::with_config(&c, Config::with_block_size(4));
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let a = array(8);
        let mut it = a.iter();
        assert_eq!(it.size_hint(), (8, Some(8)));
        assert_eq!(it.len(), 8);
        it.next();
        assert_eq!(it.len(), 7);
    }

    #[test]
    fn concurrent_resize_does_not_extend_iteration() {
        let a = array(4);
        let mut it = a.iter();
        it.next();
        a.resize(4); // grow mid-iteration
        assert_eq!(it.count(), 3, "iterator visits the captured length only");
        assert_eq!(a.capacity(), 8);
    }
}
