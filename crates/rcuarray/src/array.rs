//! `RcuArray`: the paper's contribution — a parallel-safe distributed
//! resizable array whose reads and updates run concurrently with resizes.
//!
//! The structure follows Listing 1 exactly:
//!
//! * per-locale **privatized metadata** ([`LocaleState`]: `GlobalSnapshot`,
//!   `GlobalEpoch`, and `EpochReaders`), registered in the cluster's
//!   privatization table under a `PID`;
//! * a cluster-wide **`WriteLock`** homed on locale 0;
//! * a **`NextLocaleId`** round-robin counter driving block distribution;
//! * fixed-size **blocks** owned by a registry that frees them only when
//!   the array drops — which is what lets snapshots recycle them and lets
//!   element references survive resizes (Lemma 6).
//!
//! `Index` (here [`read`](RcuArray::read) / [`write`](RcuArray::write) /
//! [`get_ref`](RcuArray::get_ref)) and `Resize`
//! ([`resize`](RcuArray::resize)) implement Algorithm 3, with the
//! `isQSBR` conditional realized by the [`Scheme`] type parameter: the
//! array calls the scheme's [`Reclaim`] engine (`read_lock` / `retire` /
//! `quiesce`) and never branches on which scheme it runs under.

use crate::block::{Block, BlockRef, BlockRegistry};
use crate::config::Config;
use crate::elem_ref::ElemRef;
use crate::element::Element;
use crate::handle::LocaleState;
use crate::iter::Iter;
use crate::placement::PlacementMap;
use crate::scheme::{AmortizedScheme, EbrScheme, LeakScheme, QsbrScheme, Scheme};
use crate::snapshot::{reclaim_box, Snapshot};
use crate::stats::ArrayStats;
use rcuarray_analysis::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use rcuarray_obs::{LazyCounter, LazyGauge, LazyHistogram};
use rcuarray_qsbr::QsbrDomain;
use rcuarray_reclaim::{Reclaim, ReclaimStats, Retired};
use rcuarray_runtime::{
    Cluster, CommError, GlobalLock, LocaleId, MembershipView, OpKind, PrivHandle,
};
use std::ptr::NonNull;
use std::sync::{Arc, Mutex};

// Telemetry (DESIGN.md §7): process-wide totals across every array.
// Per-array counts remain on `Shared` and surface through `stats()`.
static OBS_RESIZES: LazyCounter =
    LazyCounter::new("rcuarray_resizes_total", "completed resize operations");
static OBS_RESIZE_ABORTS: LazyCounter = LazyCounter::new(
    "rcuarray_resize_aborts_total",
    "resize attempts rolled back after a fault, timeout or panic",
);
static OBS_BLOCKS_RECYCLED: LazyCounter = LazyCounter::new(
    "rcuarray_blocks_recycled_total",
    "block references recycled (pointer-copied, not moved) into successor snapshots",
);
static OBS_RESIZE_NS: LazyHistogram = LazyHistogram::new(
    "rcuarray_resize_ns",
    "wall-clock duration of successful resize operations in nanoseconds",
);
static OBS_CAPACITY: LazyGauge = LazyGauge::new(
    "rcuarray_capacity",
    "current element capacity (last array to finish a resize wins)",
);
static OBS_FAILOVER_READS: LazyCounter = LazyCounter::new(
    "rcuarray_failover_reads_total",
    "reads served from a replica because the primary's home was not Up",
);
static OBS_FAILOVER_NS: LazyHistogram = LazyHistogram::new(
    "rcuarray_failover_latency_ns",
    "wall-clock latency of replica-failover reads in nanoseconds",
);
static OBS_REREPLICATION_BYTES: LazyCounter = LazyCounter::new(
    "rcuarray_rereplication_bytes_total",
    "bytes copied restoring replication after locale loss (repair and rejoin catch-up)",
);
static OBS_REPLICA_LAG: LazyGauge = LazyGauge::new(
    "rcuarray_replica_lag_bytes",
    "deferred replica-write charge not yet drained (last array to update wins)",
);

/// Approximate heap footprint of a snapshot: the struct plus its block
/// vector. Used as the byte hint for QSBR defer-backlog accounting; the
/// blocks themselves are registry-owned and never reclaimed here.
fn snapshot_bytes<T: Element>(snap: &Snapshot<T>) -> usize {
    std::mem::size_of::<Snapshot<T>>() + snap.num_blocks() * std::mem::size_of::<BlockRef<T>>()
}

/// An RCUArray using the TLS-free EBR scheme (the paper's `EBRArray`).
pub type EbrArray<T> = RcuArray<T, EbrScheme>;

/// An RCUArray using runtime QSBR (the paper's `QSBRArray`).
pub type QsbrArray<T> = RcuArray<T, QsbrScheme>;

/// An RCUArray that never reclaims: the `UnsafeArray` upper bound through
/// the identical `RcuArray` code path (measurement/harness only — leaks).
pub type LeakArray<T> = RcuArray<T, LeakScheme>;

/// An RCUArray using QSBR with a bounded per-checkpoint drain
/// ([`Config::drain_budget`], DEBRA-style amortization).
pub type AmortizedArray<T> = RcuArray<T, AmortizedScheme>;

/// Moves a snapshot pointer into a deferred reclamation closure.
struct SendSnap<T: Element>(NonNull<Snapshot<T>>);
// SAFETY: the snapshot is uniquely owned once unpublished (the defer
// closure is its sole holder), and `Element` bounds the contents at
// `Send + Sync + 'static`.
unsafe impl<T: Element> Send for SendSnap<T> {}
impl<T: Element> SendSnap<T> {
    /// By-value method so closures capture the wrapper, not the raw field
    /// (edition-2021 disjoint capture would drop the `Send` impl).
    fn into_inner(self) -> NonNull<Snapshot<T>> {
        self.0
    }
}

/// Cluster-wide shared state (one per array, not per locale).
struct Shared<T: Element, S: Scheme> {
    cluster: Arc<Cluster>,
    config: Config,
    write_lock: GlobalLock,
    /// Block homes — primary and replicas — all come from here; the
    /// round-robin cursor lives inside (lint rule 10 `raw-placement`).
    placement: PlacementMap<T>,
    blocks: BlockRegistry<T>,
    scheme: S,
    capacity: AtomicUsize,
    resizes: AtomicU64,
    /// Resize attempts rolled back after a fault, timeout or panic.
    aborted_resizes: AtomicU64,
    /// Reads served from the locale-local snapshot after their remote
    /// charge exhausted its retry budget.
    fallback_reads: AtomicU64,
    /// Writes whose remote charge exhausted its retry budget (the store
    /// itself still lands — blocks are shared memory in the simulation).
    degraded_writes: AtomicU64,
    /// Reads served from a replica because the primary's home was not
    /// `Up` (DESIGN.md §15; zero at `replication_factor = 1`).
    failover_reads: AtomicU64,
    /// Bytes copied by `repair_replicas` / `rejoin_catch_up`.
    rereplicated_bytes: AtomicU64,
}

/// A parallel-safe distributed resizable array (see [module docs](self)).
///
/// Cloning a handle is cheap and aliases the same array. All operations
/// take `&self`; reads and updates may run concurrently with a resize
/// from any task on any locale.
pub struct RcuArray<T: Element, S: Scheme = QsbrScheme> {
    shared: Arc<Shared<T, S>>,
    state: PrivHandle<LocaleState<T, S::Reclaim>>,
}

impl<T: Element, S: Scheme> Clone for RcuArray<T, S> {
    fn clone(&self) -> Self {
        RcuArray {
            shared: Arc::clone(&self.shared),
            state: self.state.clone(),
        }
    }
}

impl<T: Element, S: Scheme> RcuArray<T, S> {
    /// An empty array on `cluster` with the default [`Config`]
    /// (1024-element blocks, `SeqCst` EBR protocol).
    pub fn new(cluster: &Arc<Cluster>) -> Self {
        Self::with_config(cluster, Config::default())
    }

    /// An empty array with an explicit configuration.
    pub fn with_config(cluster: &Arc<Cluster>, config: Config) -> Self {
        config.validate();
        let scheme = S::new_shared(&config);
        let (_pid, state) = cluster
            .privatization()
            .register(cluster.num_locales(), |loc| {
                LocaleState::new(loc, scheme.reclaimer())
            });
        RcuArray {
            shared: Arc::new(Shared {
                cluster: Arc::clone(cluster),
                config,
                write_lock: GlobalLock::new(cluster, LocaleId::ZERO),
                // Also checks `replication_factor <= num_locales`.
                placement: PlacementMap::new(config.replication_factor, cluster.num_locales()),
                blocks: BlockRegistry::new(),
                scheme,
                capacity: AtomicUsize::new(0),
                resizes: AtomicU64::new(0),
                aborted_resizes: AtomicU64::new(0),
                fallback_reads: AtomicU64::new(0),
                degraded_writes: AtomicU64::new(0),
                failover_reads: AtomicU64::new(0),
                rereplicated_bytes: AtomicU64::new(0),
            }),
            state,
        }
    }

    /// An array pre-sized to at least `capacity` elements.
    pub fn with_capacity(cluster: &Arc<Cluster>, config: Config, capacity: usize) -> Self {
        let array = Self::with_config(cluster, config);
        array.resize(capacity);
        array
    }

    /// The cluster this array is distributed over.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.shared.cluster
    }

    /// The array's configuration.
    pub fn config(&self) -> &Config {
        &self.shared.config
    }

    /// The reclamation scheme name ("ebr", "qsbr", "leak", "amortized").
    pub fn scheme_name(&self) -> &'static str {
        S::NAME
    }

    /// Current capacity in elements (monotonically non-decreasing; the
    /// paper's RCUArray only expands).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.shared.capacity.load(Ordering::Acquire)
    }

    /// Alias of [`capacity`](Self::capacity): every slot of the array is a
    /// live element (blocks are zero-initialized).
    #[inline]
    pub fn len(&self) -> usize {
        self.capacity()
    }

    /// True when the array holds no elements yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.capacity() == 0
    }

    /// Number of blocks currently allocated.
    pub fn num_blocks(&self) -> usize {
        self.shared.blocks.len()
    }

    /// The QSBR domain backing this array, for schemes built on one
    /// (`QsbrScheme`, `AmortizedScheme`); `None` otherwise. Exposed so
    /// applications can park/unpark worker threads around idle periods.
    pub fn qsbr_domain(&self) -> Option<&QsbrDomain> {
        self.shared.scheme.domain()
    }

    #[inline]
    fn comm(&self) -> Option<&Cluster> {
        if self.shared.config.account_comm {
            Some(&self.shared.cluster)
        } else {
            None
        }
    }

    /// Charge a GET against `home`, retrying per [`Config::retry`] when
    /// the cluster's fault plan is enabled. A charge that still fails
    /// after retries does *not* fail the read: the simulation's blocks
    /// are node-visible memory, so the value is served from the
    /// locale-local snapshot and counted as a fallback read.
    #[inline]
    fn charge_get(&self, home: LocaleId, bytes: usize) {
        let Some(cluster) = self.comm() else { return };
        if !cluster.fault().is_enabled() {
            cluster.get_from(home, bytes);
            return;
        }
        self.charge_get_faulty(cluster, home, bytes);
    }

    #[cold]
    fn charge_get_faulty(&self, cluster: &Cluster, home: LocaleId, bytes: usize) {
        let policy = self.shared.config.retry;
        if policy
            .run(cluster.comm(), || cluster.try_get_from(home, bytes))
            .is_err()
        {
            self.shared.fallback_reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge a PUT against `home`, retrying per [`Config::retry`] when
    /// the fault plan is enabled. A charge that exhausts its budget is
    /// counted as a degraded write; the store still lands.
    #[inline]
    fn charge_put(&self, home: LocaleId, bytes: usize) {
        let Some(cluster) = self.comm() else { return };
        if !cluster.fault().is_enabled() {
            cluster.put_to(home, bytes);
            return;
        }
        self.charge_put_faulty(cluster, home, bytes);
    }

    #[cold]
    fn charge_put_faulty(&self, cluster: &Cluster, home: LocaleId, bytes: usize) {
        let policy = self.shared.config.retry;
        if policy
            .run(cluster.comm(), || cluster.try_put_to(home, bytes))
            .is_err()
        {
            self.shared.degraded_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Read one element of `block`, failing over to a replica when the
    /// primary's home has been evicted from the membership view
    /// (DESIGN.md §15). At `replication_factor = 1` this is byte-for-byte
    /// the paper's read: one charge, one load.
    #[inline]
    fn load_at(&self, block_idx: usize, block: BlockRef<T>, off: usize) -> T {
        // SAFETY: registry-owned block.
        let b = unsafe { block.get() };
        let home = b.home();
        if self.shared.placement.is_replicated() && !self.shared.cluster.membership().is_up(home) {
            return self.failover_load(block_idx, off, b);
        }
        self.charge_get(home, T::byte_size());
        b.load(off)
    }

    /// The failover read path: serve from the first live replica, charge
    /// the GET to *its* home, and record the detour. With every copy's
    /// home out of the view (loss beyond the replication factor) the read
    /// degrades to the locale-local primary block exactly as `rf = 1`
    /// degrades — answers stay available, they are just counted as
    /// fallback reads instead of communication-backed ones.
    #[cold]
    fn failover_load(&self, block_idx: usize, off: usize, primary: &Block<T>) -> T {
        let t0 = rcuarray_obs::enabled().then(std::time::Instant::now);
        let membership = self.shared.cluster.membership();
        let Some((loc, replica)) = self.shared.placement.failover_target(block_idx, membership)
        else {
            self.shared.fallback_reads.fetch_add(1, Ordering::Relaxed);
            return primary.load(off);
        };
        // SAFETY: replica blocks are registry-owned like every block.
        let v = unsafe { replica.get() }.load(off);
        self.charge_get(loc, T::byte_size());
        self.shared.failover_reads.fetch_add(1, Ordering::Relaxed);
        OBS_FAILOVER_READS.inc();
        if let Some(t0) = t0 {
            OBS_FAILOVER_NS.record(t0.elapsed().as_nanos() as u64);
        }
        v
    }

    /// The chunked twin of [`failover_load`](Self::failover_load) for the
    /// bulk read path: one failover decision, one charge, `take` loads.
    #[cold]
    fn failover_load_chunk(
        &self,
        block_idx: usize,
        off: usize,
        take: usize,
        primary: &Block<T>,
        out: &mut Vec<T>,
    ) {
        let t0 = rcuarray_obs::enabled().then(std::time::Instant::now);
        let membership = self.shared.cluster.membership();
        match self.shared.placement.failover_target(block_idx, membership) {
            Some((loc, replica)) => {
                // SAFETY: registry-owned replica block.
                let b = unsafe { replica.get() };
                self.charge_get(loc, take * T::byte_size());
                for k in 0..take {
                    out.push(b.load(off + k));
                }
                self.shared.failover_reads.fetch_add(1, Ordering::Relaxed);
                OBS_FAILOVER_READS.inc();
                if let Some(t0) = t0 {
                    OBS_FAILOVER_NS.record(t0.elapsed().as_nanos() as u64);
                }
            }
            None => {
                self.shared.fallback_reads.fetch_add(1, Ordering::Relaxed);
                for k in 0..take {
                    out.push(primary.load(off + k));
                }
            }
        }
    }

    /// Store one element, fanning the value out to replicas when
    /// replicated. At `replication_factor = 1` this is the paper's write:
    /// one charge, one store.
    #[inline]
    fn store_at(&self, block_idx: usize, block: BlockRef<T>, off: usize, value: T) {
        // SAFETY: registry-owned block.
        let b = unsafe { block.get() };
        if !self.shared.placement.is_replicated() {
            self.charge_put(b.home(), T::byte_size());
            b.store(off, value);
            return;
        }
        self.replicated_store_chunk(block_idx, b, off, std::slice::from_ref(&value));
    }

    /// The replicated write protocol (DESIGN.md §15): one *synchronous*
    /// acknowledged PUT — to the primary's home, or to the first live
    /// replica when the failure detector evicted the primary — then
    /// stores into every in-view copy, with the replicas' communication
    /// charge deferred into the placement lag ledger (drained at
    /// [`checkpoint`](Self::checkpoint) or when the lag passes the
    /// pressure watermark). Copies homed on out-of-view locales are
    /// *skipped* — they model lost memory and go stale until
    /// [`repair_replicas`](Self::repair_replicas) or
    /// [`rejoin_catch_up`](Self::rejoin_catch_up) refreshes them.
    fn replicated_store_chunk(&self, block_idx: usize, primary: &Block<T>, off: usize, vals: &[T]) {
        let shared = &self.shared;
        let membership = shared.cluster.membership();
        let home = primary.home();
        let bytes = vals.len() * T::byte_size();
        let ack_home = if membership.is_up(home) {
            home
        } else {
            shared
                .placement
                .failover_target(block_idx, membership)
                .map(|(l, _)| l)
                .unwrap_or(home)
        };
        self.charge_put(ack_home, bytes);
        for (k, &v) in vals.iter().enumerate() {
            primary.store(off + k, v);
        }
        let view = membership.view();
        shared.placement.with_groups(|groups| {
            let Some(group) = groups.get(block_idx) else {
                return;
            };
            for &(loc, replica) in group.replicas() {
                if !view.in_view(loc) {
                    continue;
                }
                // SAFETY: registry-owned replica block.
                let rb = unsafe { replica.get() };
                for (k, &v) in vals.iter().enumerate() {
                    rb.store(off + k, v);
                }
                if loc != ack_home {
                    shared.placement.add_lag(loc, bytes as u64);
                }
            }
        });
        OBS_REPLICA_LAG.set(shared.placement.lag_bytes() as i64);
        let pressure = &shared.config.pressure;
        if pressure.is_bounded() && shared.placement.lag_bytes() > pressure.high_watermark {
            self.drain_replica_lag();
        }
    }

    /// Drain the deferred replica-write charges: one bulk PUT per replica
    /// locale with outstanding lag. Failures count as degraded writes
    /// like any other exhausted charge — the stores already landed.
    fn drain_replica_lag(&self) {
        for (loc, bytes) in self.shared.placement.take_lag() {
            self.charge_put(loc, bytes as usize);
        }
        OBS_REPLICA_LAG.set(self.shared.placement.lag_bytes() as i64);
    }

    /// Retire a just-unlinked snapshot through the scheme's [`Reclaim`]
    /// engine (Algorithm 3 lines 21–27): QSBR-family schemes defer to
    /// their domain, EBR advances the locale's epoch and drains its
    /// readers before freeing, the leak scheme drops the request on the
    /// floor. The array does not know or care which.
    ///
    /// Under a bounded [`Config::pressure`] the retire is pressure-aware:
    /// past the watermark the publishing task helps reclaim, and at the
    /// byte cap it falls back to [`Reclaim::retire_or_quiesce`] — the
    /// snapshot is already unlinked, so it *must* be handed to the scheme;
    /// the blocking fallback (with its escape hatch) bounds the backlog
    /// without ever dropping a retirement. New resizes are refused before
    /// reaching this point (see [`try_resize`](Self::try_resize)).
    fn retire_snapshot(&self, st: &LocaleState<T, S::Reclaim>, old_ptr: NonNull<Snapshot<T>>) {
        // SAFETY: unlinked by the caller, so the pointer stays valid until
        // the retirement closure (its sole holder) frees it — whenever the
        // scheme decides that is safe.
        let bytes = snapshot_bytes(unsafe { old_ptr.as_ref() });
        let old = SendSnap(old_ptr);
        let retired = Retired::with_hint(bytes, old_ptr.as_ptr() as usize, move || {
            // SAFETY: unlinked by the caller; the scheme runs this
            // only once no reader can still hold the snapshot.
            unsafe { reclaim_box(old.into_inner()) };
        });
        if let Err(bp) = st.reclaim().try_retire(retired) {
            st.reclaim().retire_or_quiesce(bp.into_retired());
        }
    }

    /// Algorithm 3 `Helper` (lines 1–3): locate `idx` within a snapshot.
    #[inline]
    fn locate(&self, snap: &Snapshot<T>, idx: usize) -> (BlockRef<T>, usize) {
        let bs = self.shared.config.block_size;
        let block_idx = idx / bs;
        let elem_idx = idx % bs;
        match snap.try_block(block_idx) {
            Some(b) => (b, elem_idx),
            None => panic!(
                "index {idx} out of bounds for RCUArray of capacity {} \
                 (as seen from {})",
                snap.capacity(bs),
                rcuarray_runtime::current_locale(),
            ),
        }
    }

    /// Extend a cell borrow from a (temporary) snapshot borrow to the
    /// array borrow: sound because blocks are registry-owned and live as
    /// long as `self` keeps `shared` alive.
    #[inline]
    fn cell_of(&self, block: BlockRef<T>, offset: usize) -> &T::Repr {
        // SAFETY: `block` points into `self.shared.blocks`, which frees
        // nothing until the last array handle drops; `'a` borrows `self`.
        unsafe { &*(block.get().cell(offset) as *const T::Repr) }
    }

    /// Run `f` with the calling locale's current snapshot, under the
    /// scheme's read-side protocol — the core of the paper's `Index`
    /// (Algorithm 3 lines 4–8).
    #[inline]
    fn with_snapshot<R>(&self, f: impl FnOnce(&Snapshot<T>) -> R) -> R {
        let st = self.state.get();
        // Lines 6/8, unified: under EBR the guard is the verified pin
        // (RCU_Read with `f` as the λ); under QSBR it is registration —
        // "it will not be reclaimed until [the task] later invokes a
        // checkpoint", and participation is what makes that true. RAII
        // (rather than manual pin/unpin) matters: `f` can panic — e.g. an
        // out-of-bounds index — and a leaked EBR pin would deadlock every
        // future writer on this locale's parity counter.
        let guard = st.reclaim().read_lock();
        // Chaos hook: a triggered `read.kill` dies *inside* the read-side
        // critical section, proving the guard's unwind path releases the
        // pin (one relaxed load when no trigger is armed).
        self.shared
            .cluster
            .fault()
            .hit("read.kill")
            .expect("reader killed by fault plan");
        // SAFETY: the guard is live across the call, and this thread
        // crosses no quiescent point inside `f`.
        let ret = f(unsafe { st.snapshot_ref() });
        drop(guard);
        ret
    }

    /// Run `f` against a *single, consistent* snapshot of the array's
    /// metadata: every access through the [`SnapshotView`] sees the same
    /// version, even if resizes land concurrently. This is the
    /// RCU-consistency guarantee individual [`read`](Self::read) calls
    /// don't need but multi-element invariant checks do.
    ///
    /// Under EBR the whole closure runs inside one read-side critical
    /// section — keep it short, a writer may be draining behind it.
    /// Under QSBR the calling thread simply must not quiesce inside `f`
    /// (the view's borrow prevents calling `checkpoint` through `self`,
    /// and the closure has no access to the domain).
    pub fn with_view<R>(&self, f: impl FnOnce(SnapshotView<'_, T, S>) -> R) -> R {
        self.with_snapshot(|snap| f(SnapshotView { array: self, snap }))
    }

    /// Read the element at `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds of this locale's current view.
    #[inline]
    pub fn read(&self, idx: usize) -> T {
        let bs = self.shared.config.block_size;
        self.with_snapshot(|snap| {
            let (block, off) = self.locate(snap, idx);
            self.load_at(idx / bs, block, off)
        })
    }

    /// Read without panicking: `None` when out of bounds.
    #[inline]
    pub fn try_read(&self, idx: usize) -> Option<T> {
        if idx < self.capacity() {
            Some(self.read(idx))
        } else {
            None
        }
    }

    /// Update (assign) the element at `idx`. Updates "share the same
    /// performance as reads" (§III-C): one snapshot access plus one store.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds of this locale's current view.
    #[inline]
    pub fn write(&self, idx: usize, value: T) {
        let bs = self.shared.config.block_size;
        self.with_snapshot(|snap| {
            let (block, off) = self.locate(snap, idx);
            self.store_at(idx / bs, block, off, value);
        })
    }

    /// The paper's `Index`: a reference to element `idx` that remains
    /// valid across concurrent resizes — assignments through it are
    /// visible in all later snapshots because the clone recycles blocks
    /// (Lemma 6).
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds of this locale's current view.
    pub fn get_ref(&self, idx: usize) -> ElemRef<'_, T> {
        let (block, off, home) = self.with_snapshot(|snap| {
            let (block, off) = self.locate(snap, idx);
            // SAFETY: block outlives the snapshot (registry-owned).
            let home = unsafe { block.get() }.home();
            (block, off, home)
        });
        let mut r = ElemRef::new(self.cell_of(block, off), home, self.comm());
        if self.shared.placement.is_replicated() {
            // Capture the replica cells so assignments through the
            // reference reach every copy (Lemma 6 on every replica).
            let block_idx = idx / self.shared.config.block_size;
            self.shared.placement.with_groups(|groups| {
                if let Some(group) = groups.get(block_idx) {
                    for &(loc, replica) in group.replicas() {
                        r.push_replica(loc, self.cell_of(replica, off));
                    }
                }
            });
        }
        r
    }

    /// `Resize` (Algorithm 3 lines 9–29): expand the array by at least
    /// `additional` elements (rounded up to whole blocks, per the paper's
    /// footnote 12). Returns the new capacity.
    ///
    /// Safe to call concurrently with reads, updates and other resizes;
    /// resizes serialize on the cluster-wide write lock.
    ///
    /// Under an enabled fault plan, faulted attempts are rolled back and
    /// retried per [`Config::retry`]; the same loop retries
    /// [`CommError::Backpressure`] refusals under a bounded
    /// [`Config::pressure`] (each retry's quiesce helps drain the
    /// backlog). Exhausting the budget panics (use
    /// [`try_resize`](Self::try_resize) to handle the error instead). On
    /// a healthy, unbounded cluster this path is never entered.
    pub fn resize(&self, additional: usize) -> usize {
        if !self.shared.cluster.fault().is_enabled() && !self.shared.config.pressure.is_bounded() {
            // Infallible without fault injection or a backlog bound.
            return self.try_resize(additional).unwrap();
        }
        let policy = self.shared.config.retry;
        policy
            .run(self.shared.cluster.comm(), || self.try_resize(additional))
            .unwrap_or_else(|e| panic!("RCUArray resize aborted: {e}"))
    }

    /// Fallible `Resize`: one attempt, no retry loop. On any fault —
    /// lock timeout, allocation failure, publish failure, or a panic
    /// injected mid-publish — the attempt is **rolled back**: every
    /// locale whose snapshot was already swapped is re-published at the
    /// old block count, the write lock is released, and the array remains
    /// fully indexable at its previous capacity (update visibility per
    /// Lemma 6 is unaffected because rolled-back snapshots recycle the
    /// same blocks). Blocks allocated by the failed attempt stay owned by
    /// the registry (freed when the array drops) — the same "never free
    /// early" rule every other block obeys.
    pub fn try_resize(&self, additional: usize) -> Result<usize, CommError> {
        let add = self.shared.config.round_up_to_blocks(additional);
        if add == 0 {
            return Ok(self.capacity());
        }
        let bs = self.shared.config.block_size;
        let nblocks = add / bs;
        let num_locales = self.shared.cluster.num_locales();
        let fault = self.shared.cluster.fault();
        let t0 = rcuarray_obs::enabled().then(std::time::Instant::now);

        // Robustness gate (DESIGN.md §9): a resize retires one snapshot
        // per locale, so refuse up front when the reclamation backlog
        // already sits at its byte cap — after giving this task's engine
        // one chance to help drain. `CommError::Backpressure` is
        // retryable: `resize` keeps trying under [`Config::retry`], and
        // the pressure lifts once readers progress (or a stalled one is
        // quarantined / routed around).
        let gate_state = self.state.get();
        let gate = gate_state.reclaim();
        let pressure = gate.pressure();
        if pressure.is_bounded() && gate.reclaim_stats().pending_bytes >= pressure.max_backlog_bytes
        {
            gate.quiesce();
            if gate.reclaim_stats().pending_bytes >= pressure.max_backlog_bytes {
                return Err(self.abort_resize(CommError::Backpressure {
                    op: OpKind::Put,
                    locale: rcuarray_runtime::current_locale(),
                }));
            }
        }

        // Line 10: mutual exclusion with respect to all locales. Under a
        // fault plan the acquisition is bounded so a wedged writer (e.g.
        // a down lock home) surfaces as a timeout instead of a hang.
        fault.hit("resize.lock").map_err(|e| self.abort_resize(e))?;
        let guard = if fault.is_enabled() {
            match self
                .shared
                .write_lock
                .try_acquire_for(self.shared.config.retry.op_timeout)
            {
                Some(g) => g,
                None => {
                    return Err(self.abort_resize(CommError::Timeout {
                        op: OpKind::RemoteExec,
                        locale: LocaleId::ZERO,
                    }))
                }
            }
        } else {
            self.shared.write_lock.acquire()
        };

        // Armed from here on: any early return or unwind below rolls back
        // partially-published locales and counts an aborted resize. Must
        // be declared *after* `guard` so it drops (and republishes) while
        // the write lock is still held.
        let mut rollback = ResizeRollback {
            array: self,
            old_nblocks: self.capacity() / bs,
            published: (0..num_locales).map(|_| AtomicBool::new(false)).collect(),
            armed: true,
        };

        // Lines 11–16, generalized through the placement map: plan the
        // primary (and, under replication, replica) homes for every new
        // block against the current membership view, then allocate each
        // copy *on* its locale. With every locale in view and
        // `replication_factor = 1` the plan is exactly the paper's
        // round-robin.
        let view = self.shared.cluster.membership().view();
        let plan = self.shared.placement.plan_homes(nblocks, &view)?;
        let mut new_blocks = Vec::with_capacity(nblocks);
        for homes in &plan.homes {
            fault.hit("resize.alloc")?;
            let mut entries = Vec::with_capacity(homes.len());
            for &home in homes {
                let block_ref = self.shared.cluster.try_on(home, || {
                    let block = Block::<T>::new(home, bs);
                    self.shared
                        .cluster
                        .locale(home)
                        .record_allocation(block.byte_size());
                    self.shared.blocks.adopt(block)
                })?;
                entries.push((home, block_ref));
            }
            // The snapshot references the primary; replica refs live only
            // in the placement map. Rolled-back groups are truncated by
            // the guard.
            new_blocks.push(entries[0].1);
            self.shared.placement.append_group(entries);
        }

        // Lines 18–27: replicate the snapshot swap on every locale in
        // parallel (`coforall loc in Locales do on loc`). A locale that
        // faults (or panics, for `FaultAction::Panic` triggers) simply
        // never sets its `published` flag; the rollback guard restores
        // the ones that did.
        let first_err: Mutex<Option<CommError>> = Mutex::new(None);
        let new_blocks = &new_blocks;
        let published = &rollback.published;
        let view = &view;
        self.shared.cluster.coforall_locales(|l| {
            if !view.in_view(l) {
                // An evicted (Down/Rejoining) locale cannot take the
                // publish and must not wedge the resize; its snapshot
                // stays at the old prefix until `rejoin_catch_up`
                // brings it back to currency. With every locale in view
                // (the only state reachable without membership probes)
                // this branch never fires.
                return;
            }
            let faulted = fault
                .hit("resize.publish")
                .and_then(|()| fault.check(l, l, OpKind::RemoteExec));
            if let Err(e) = faulted {
                let mut slot = first_err.lock().unwrap();
                slot.get_or_insert(e);
                return;
            }
            let st = self.state.get_on(l);
            // SAFETY: the write lock serializes writers, so this locale's
            // snapshot cannot change under us.
            let old_snap = unsafe { st.snapshot_ref() };
            let new_snap = old_snap.clone_recycled(new_blocks);
            let old_ptr = st.publish(new_snap);
            published[l.index()].store(true, Ordering::Release);
            // Lines 21–27: retire the superseded snapshot.
            self.retire_snapshot(st, old_ptr);
        });
        if let Some(e) = first_err.into_inner().unwrap() {
            return Err(e); // rollback guard restores published locales
        }
        rollback.armed = false;

        // Line 28: persist the round-robin cursor.
        self.shared.placement.commit_cursor(&plan);
        let new_cap = self.shared.capacity.fetch_add(add, Ordering::AcqRel) + add;
        self.shared.resizes.fetch_add(1, Ordering::Relaxed);
        drop(guard); // line 29
        OBS_RESIZES.inc();
        // Every in-view locale's clone recycled the old snapshot's prefix.
        OBS_BLOCKS_RECYCLED.add((rollback.old_nblocks * view.num_members()) as u64);
        OBS_CAPACITY.set(new_cap as i64);
        if let Some(t0) = t0 {
            OBS_RESIZE_NS.record(t0.elapsed().as_nanos() as u64);
        }
        Ok(new_cap)
    }

    /// Count an aborted attempt that never reached the rollback guard.
    #[cold]
    fn abort_resize(&self, e: CommError) -> CommError {
        self.shared.aborted_resizes.fetch_add(1, Ordering::Relaxed);
        OBS_RESIZE_ABORTS.inc();
        e
    }

    /// Shrink the array's *visible* capacity to at most `new_capacity`
    /// elements (rounded up to a whole block). Returns the new capacity.
    ///
    /// This is an extension beyond the paper (which covers expansion
    /// only, footnote 12) and it is a **logical** shrink: truncated
    /// snapshots stop exposing the trailing blocks, but the blocks
    /// themselves stay owned by the array until it drops — that is the
    /// invariant [`get_ref`](Self::get_ref) references depend on.
    /// Outstanding references into the truncated region therefore remain
    /// valid (and writes through them still land in their blocks), while
    /// indexed access past the new capacity panics. A later
    /// [`resize`](Self::resize) allocates fresh blocks; truncated blocks
    /// are not re-exposed.
    pub fn truncate(&self, new_capacity: usize) -> usize {
        let bs = self.shared.config.block_size;
        let keep_blocks = new_capacity.div_ceil(bs);
        let guard = self.shared.write_lock.acquire();
        let current = self.shared.capacity.load(Ordering::Acquire);
        let target = (keep_blocks * bs).min(current);
        if target >= current {
            drop(guard);
            return current;
        }
        self.shared.cluster.coforall_locales(|l| {
            let st = self.state.get_on(l);
            // SAFETY: write lock held; this locale's snapshot is stable.
            let old_snap = unsafe { st.snapshot_ref() };
            let new_snap = Snapshot::from_blocks(
                old_snap.blocks()[..keep_blocks].to_vec(),
                old_snap.version() + 1,
            );
            let old_ptr = st.publish(new_snap);
            self.retire_snapshot(st, old_ptr);
        });
        // Keep the placement map aligned with the snapshot prefix: a
        // later resize appends fresh groups at `keep_blocks`.
        self.shared.placement.truncate(keep_blocks);
        self.shared.capacity.store(target, Ordering::Release);
        self.shared.resizes.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        OBS_RESIZES.inc();
        OBS_CAPACITY.set(target as i64);
        target
    }

    /// Bulk-read `range` into a `Vec`, charging communication per
    /// block-contiguous chunk rather than per element (a bulk GET, which
    /// is how Chapel aggregates slice transfers).
    ///
    /// # Panics
    /// Panics when the range end exceeds this locale's current view.
    pub fn read_range(&self, range: std::ops::Range<usize>) -> Vec<T> {
        let bs = self.shared.config.block_size;
        let mut out = Vec::with_capacity(range.len());
        self.with_snapshot(|snap| {
            let mut idx = range.start;
            while idx < range.end {
                let (block, off) = self.locate(snap, idx);
                let take = (bs - off).min(range.end - idx);
                // SAFETY: registry-owned block.
                let b = unsafe { block.get() };
                let home = b.home();
                if self.shared.placement.is_replicated()
                    && !self.shared.cluster.membership().is_up(home)
                {
                    self.failover_load_chunk(idx / bs, off, take, b, &mut out);
                } else {
                    self.charge_get(home, take * T::byte_size());
                    for k in 0..take {
                        out.push(b.load(off + k));
                    }
                }
                idx += take;
            }
        });
        out
    }

    /// Bulk-write `values` starting at `start`, charging communication
    /// per block-contiguous chunk (a bulk PUT).
    ///
    /// # Panics
    /// Panics when `start + values.len()` exceeds this locale's view.
    pub fn write_slice(&self, start: usize, values: &[T]) {
        let bs = self.shared.config.block_size;
        self.with_snapshot(|snap| {
            let mut idx = start;
            let mut src = 0usize;
            while src < values.len() {
                let (block, off) = self.locate(snap, idx);
                let take = (bs - off).min(values.len() - src);
                // SAFETY: registry-owned block.
                let b = unsafe { block.get() };
                if self.shared.placement.is_replicated() {
                    self.replicated_store_chunk(idx / bs, b, off, &values[src..src + take]);
                } else {
                    self.charge_put(b.home(), take * T::byte_size());
                    for k in 0..take {
                        b.store(off + k, values[src + k]);
                    }
                }
                idx += take;
                src += take;
            }
        });
    }

    /// Batched read: fetch every index in `indices` under a **single**
    /// read-side critical section — one guard pin (one EBR epoch entry)
    /// for the whole batch, however many blocks it touches. This is the
    /// serving layer's amortization primitive: a front-end coalescing
    /// client requests pays the paper's seq-cst pin cost once per batch
    /// instead of once per element (`crates/service`, DESIGN.md §11).
    ///
    /// An empty batch returns immediately without entering the read-side
    /// protocol at all (zero pins) — callers can treat "nothing to do" as
    /// free. Results are in `indices` order. Communication is charged per
    /// element to each block's home, exactly as [`read`](Self::read)
    /// charges it.
    ///
    /// # Panics
    /// Panics when any index is out of bounds of this locale's view.
    pub fn read_many(&self, indices: &[usize]) -> Vec<T> {
        if indices.is_empty() {
            return Vec::new();
        }
        let bs = self.shared.config.block_size;
        let mut out = Vec::with_capacity(indices.len());
        self.with_snapshot(|snap| {
            for &idx in indices {
                let (block, off) = self.locate(snap, idx);
                out.push(self.load_at(idx / bs, block, off));
            }
        });
        out
    }

    /// Batched update: apply every `(index, value)` assignment in
    /// `entries` under a **single** read-side critical section — the
    /// write-path twin of [`read_many`](Self::read_many). All stores land
    /// in the same snapshot view; because updates are plain stores into
    /// registry-owned blocks (Lemma 6), they remain visible in every
    /// later snapshot. An empty batch performs no pin.
    ///
    /// # Panics
    /// Panics when any index is out of bounds of this locale's view.
    pub fn write_many(&self, entries: &[(usize, T)]) {
        if entries.is_empty() {
            return;
        }
        let bs = self.shared.config.block_size;
        self.with_snapshot(|snap| {
            for &(idx, value) in entries {
                let (block, off) = self.locate(snap, idx);
                self.store_at(idx / bs, block, off, value);
            }
        });
    }

    /// Announce a quiescent state for the calling thread (a QSBR
    /// checkpoint; bounded drain under the amortized scheme; a no-op for
    /// schemes that never defer). Returns deferred reclamations run.
    ///
    /// Under replication the checkpoint also drains the replica-write
    /// lag ledger — "bounded replica lag drained at QSBR checkpoints"
    /// (DESIGN.md §15).
    pub fn checkpoint(&self) -> usize {
        if self.shared.placement.is_replicated() {
            self.drain_replica_lag();
        }
        self.state.get().reclaim().quiesce()
    }

    /// Assign `value` to every element.
    pub fn fill(&self, value: T) {
        for i in 0..self.capacity() {
            self.write(i, value);
        }
    }

    /// The `(block index, block)` pairs of the calling locale's current
    /// snapshot that are *homed on* the calling locale.
    ///
    /// This is the owner-computes building block: iterating these blocks
    /// touches only node-local memory.
    pub fn local_blocks(&self) -> Vec<(usize, BlockRef<T>)> {
        let here = rcuarray_runtime::current_locale();
        self.with_snapshot(|snap| {
            snap.blocks()
                .iter()
                .enumerate()
                // SAFETY: registry-owned blocks outlive the call.
                .filter(|(_, b)| unsafe { b.get() }.home() == here)
                .map(|(i, b)| (i, *b))
                .collect()
        })
    }

    /// Owner-computes parallel iteration — a nod to the paper's last
    /// future-work item, compatibility with Chapel's *Domain map Standard
    /// Interface*: one task per locale visits exactly the elements whose
    /// blocks are homed there, so the sweep is communication-free.
    ///
    /// `f(global_index, element_ref)` runs concurrently across locales;
    /// it must be safe to call from multiple threads (it is `Sync`).
    pub fn forall_local(&self, f: impl Fn(usize, &ElemRef<'_, T>) + Sync) {
        let bs = self.shared.config.block_size;
        self.shared.cluster.coforall_locales(|_| {
            for (block_idx, block) in self.local_blocks() {
                // SAFETY: registry-owned block.
                let home = unsafe { block.get() }.home();
                for off in 0..bs {
                    let r = ElemRef::new(self.cell_of(block, off), home, self.comm());
                    f(block_idx * bs + off, &r);
                }
            }
        });
    }

    /// Iterate over current element values (each element read under the
    /// scheme's protocol; the iteration as a whole is not a snapshot).
    pub fn iter(&self) -> Iter<'_, T, S> {
        Iter::new(self)
    }

    /// Collect current element values.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }

    /// Restore full replication after the failure detector evicted
    /// locales (DESIGN.md §15): every *replica* entry homed on an
    /// out-of-view locale is replaced by a fresh block on a surviving
    /// `Up` locale, copied from a live donor copy. The snapshot
    /// (primary) entry of each group is pinned — Lemma 6 references
    /// never dangle — so a dead primary is healed by keeping its
    /// replicas whole and serving reads/acks from them until the locale
    /// rejoins.
    ///
    /// Copying is paced by [`Config::pressure`]: past the high
    /// watermark of bytes copied since the last quiesce, the caller
    /// checkpoints before copying more, so recovery traffic cannot
    /// outrun reclamation. A group every copy of which is out of view
    /// (loss beyond the replication factor) is skipped — degraded, not
    /// corrupted. Returns bytes copied; zero at `replication_factor =
    /// 1` or on a fully healthy view. Idempotent: call it from a
    /// monitoring loop after every membership epoch change.
    pub fn repair_replicas(&self) -> usize {
        if !self.shared.placement.is_replicated() {
            return 0;
        }
        let view = self.shared.cluster.membership().view();
        let pressure = self.shared.config.pressure;
        let mut copied = 0usize;
        let mut unpaced = 0u64;
        for block_idx in 0..self.shared.placement.num_groups() {
            // Pace *between* groups, never inside one: the group lock
            // must not be held across a checkpoint.
            if pressure.is_bounded() && unpaced > pressure.high_watermark {
                self.checkpoint();
                unpaced = 0;
            }
            let bytes = self.repair_group(block_idx, &view);
            copied += bytes;
            unpaced += bytes as u64;
        }
        if copied > 0 {
            self.shared
                .rereplicated_bytes
                .fetch_add(copied as u64, Ordering::Relaxed);
            OBS_REREPLICATION_BYTES.add(copied as u64);
        }
        copied
    }

    /// Re-replicate one group's dead replica entries. Runs under the
    /// group lock so a concurrent fanned-out write cannot land between
    /// the donor copy and the entry swap (which would leave the fresh
    /// replica one store stale).
    fn repair_group(&self, block_idx: usize, view: &MembershipView) -> usize {
        let shared = &self.shared;
        let membership = shared.cluster.membership();
        let bs = shared.config.block_size;
        shared.placement.with_groups(|groups| {
            let Some(group) = groups.get_mut(block_idx) else {
                return 0;
            };
            let mut copied = 0usize;
            for slot in 1..group.entries.len() {
                let (dead_loc, _) = group.entries[slot];
                if view.in_view(dead_loc) {
                    continue;
                }
                // Donor: a copy whose home is still in the view, Up
                // preferred over Suspect.
                let donor = group
                    .entries
                    .iter()
                    .find(|(l, _)| membership.is_up(*l))
                    .or_else(|| group.entries.iter().find(|(l, _)| view.in_view(*l)))
                    .copied();
                let Some((donor_loc, donor_block)) = donor else {
                    continue; // every copy lost: degraded, not corrupted
                };
                let Some(target) = group.repair_target(dead_loc, membership) else {
                    continue; // no spare locale; stay under-replicated
                };
                let Ok(fresh) = shared.cluster.try_on(target, || {
                    let block = Block::<T>::new(target, bs);
                    shared
                        .cluster
                        .locale(target)
                        .record_allocation(block.byte_size());
                    shared.blocks.adopt(block)
                }) else {
                    continue; // faulted allocation; retry on the next call
                };
                // SAFETY: donor and fresh blocks are registry-owned.
                let bytes = unsafe {
                    let f = fresh.get();
                    f.copy_from(donor_block.get());
                    f.byte_size()
                };
                // The data movement already happened block-to-block; a
                // faulted charge is a degraded write, like any other
                // exhausted communication charge.
                if shared
                    .cluster
                    .copy_between(donor_loc, target, bytes)
                    .is_err()
                {
                    shared.degraded_writes.fetch_add(1, Ordering::Relaxed);
                }
                group.entries[slot] = (target, fresh);
                copied += bytes;
            }
            copied
        })
    }

    /// Bring a healed locale back to currency before it re-enters
    /// membership views (DESIGN.md §15): republish the newest snapshot
    /// to it (it missed every resize while out), refresh each replica
    /// copy homed on it from a live donor (it missed every fanned-out
    /// write), then [`Membership::mark_caught_up`] so the next probe
    /// round returns it to `Up`. Returns bytes copied.
    ///
    /// Call from the locale that observed the heal, after the failure
    /// detector reports the rejoiner as `Rejoining`.
    ///
    /// [`Membership::mark_caught_up`]: rcuarray_runtime::Membership::mark_caught_up
    pub fn rejoin_catch_up(&self, locale: LocaleId) -> usize {
        let shared = &self.shared;
        let guard = shared.write_lock.acquire();
        let here = self.state.get();
        // SAFETY: the write lock serializes publishers, so both
        // snapshots are stable for the duration.
        let cur = unsafe { here.snapshot_ref() };
        let st = self.state.get_on(locale);
        let stale = unsafe { st.snapshot_ref() };
        if stale.num_blocks() != cur.num_blocks() {
            let fresh = Snapshot::from_blocks(cur.blocks().to_vec(), cur.version() + 1);
            let old_ptr = st.publish(fresh);
            self.retire_snapshot(st, old_ptr);
        }
        drop(guard);
        let mut copied = 0usize;
        if shared.placement.is_replicated() {
            let view = shared.cluster.membership().view();
            for block_idx in 0..shared.placement.num_groups() {
                copied += shared.placement.with_groups(|groups| {
                    let Some(group) = groups.get_mut(block_idx) else {
                        return 0;
                    };
                    let mut c = 0usize;
                    for slot in 1..group.entries.len() {
                        let (l, replica) = group.entries[slot];
                        if l != locale {
                            continue;
                        }
                        let donor = group
                            .entries
                            .iter()
                            .find(|(dl, _)| *dl != locale && view.in_view(*dl))
                            .copied();
                        let Some((donor_loc, donor_block)) = donor else {
                            continue;
                        };
                        // SAFETY: registry-owned blocks.
                        let bytes = unsafe {
                            let r = replica.get();
                            r.copy_from(donor_block.get());
                            r.byte_size()
                        };
                        if shared
                            .cluster
                            .copy_between(donor_loc, locale, bytes)
                            .is_err()
                        {
                            shared.degraded_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        c += bytes;
                    }
                    c
                });
            }
            if copied > 0 {
                shared
                    .rereplicated_bytes
                    .fetch_add(copied as u64, Ordering::Relaxed);
                OBS_REREPLICATION_BYTES.add(copied as u64);
            }
        }
        shared.cluster.membership().mark_caught_up(locale);
        copied
    }

    /// Aggregate instrumentation across locales.
    ///
    /// Per-locale reclamation counters are folded through
    /// [`ReclaimStats::merge`]: per-locale engines (EBR, leak) sum, while
    /// clones of one shared domain (QSBR family) max — the domain's
    /// numbers are reported once, not once per locale.
    pub fn stats(&self) -> ArrayStats {
        let mut reclaim = ReclaimStats::default();
        for (_, st) in self.state.iter() {
            reclaim = reclaim.merge(st.reclaim().reclaim_stats());
        }
        ArrayStats {
            capacity: self.capacity(),
            num_blocks: self.num_blocks(),
            blocks_per_locale: self
                .shared
                .blocks
                .per_locale_histogram(self.shared.cluster.num_locales()),
            resizes: self.shared.resizes.load(Ordering::Relaxed),
            aborted_resizes: self.shared.aborted_resizes.load(Ordering::Relaxed),
            fallback_reads: self.shared.fallback_reads.load(Ordering::Relaxed),
            degraded_writes: self.shared.degraded_writes.load(Ordering::Relaxed),
            failover_reads: self.shared.failover_reads.load(Ordering::Relaxed),
            rereplicated_bytes: self.shared.rereplicated_bytes.load(Ordering::Relaxed),
            replica_lag_bytes: self.shared.placement.lag_bytes(),
            reclaim,
            comm: self.shared.cluster.comm_stats(),
            fault: self.shared.cluster.comm().fault_totals(),
        }
    }
}

/// Drop guard arming [`RcuArray::try_resize`]: while armed, any early
/// return or unwind re-publishes every locale whose snapshot swap already
/// landed back at the old block count (recycling the same blocks, so
/// element values and outstanding references are untouched) and counts
/// one aborted resize. Declared after the write-lock guard in
/// `try_resize`, so it drops — and republishes — while the lock is still
/// held.
struct ResizeRollback<'a, T: Element, S: Scheme> {
    array: &'a RcuArray<T, S>,
    old_nblocks: usize,
    published: Vec<AtomicBool>,
    armed: bool,
}

impl<T: Element, S: Scheme> Drop for ResizeRollback<'_, T, S> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let shared = &self.array.shared;
        shared.aborted_resizes.fetch_add(1, Ordering::Relaxed);
        OBS_RESIZE_ABORTS.inc();
        // Drop the groups the failed attempt appended; their blocks stay
        // registry-owned like every block of a rolled-back resize.
        shared.placement.truncate(self.old_nblocks);
        for (l, flag) in self.published.iter().enumerate() {
            if !flag.load(Ordering::Acquire) {
                continue;
            }
            let st = self.array.state.get_on(LocaleId::new(l as u32));
            // SAFETY: the aborting resize still holds the write lock, so
            // this locale's snapshot is stable.
            let cur = unsafe { st.snapshot_ref() };
            let rolled =
                Snapshot::from_blocks(cur.blocks()[..self.old_nblocks].to_vec(), cur.version() + 1);
            let old_ptr = st.publish(rolled);
            self.array.retire_snapshot(st, old_ptr);
        }
    }
}

/// A borrowed, version-consistent view of the array: all accesses resolve
/// against the same snapshot. Produced by [`RcuArray::with_view`].
pub struct SnapshotView<'a, T: Element, S: Scheme = QsbrScheme> {
    array: &'a RcuArray<T, S>,
    snap: &'a Snapshot<T>,
}

impl<T: Element, S: Scheme> SnapshotView<'_, T, S> {
    /// Element capacity of this snapshot version.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.snap.capacity(self.array.shared.config.block_size)
    }

    /// The snapshot's lineage version (diagnostics).
    #[inline]
    pub fn version(&self) -> u64 {
        self.snap.version()
    }

    /// Read element `idx` from this snapshot version.
    ///
    /// # Panics
    /// Panics when `idx` is outside this version's capacity.
    #[inline]
    pub fn get(&self, idx: usize) -> T {
        let (block, off) = self.array.locate(self.snap, idx);
        self.array
            .load_at(idx / self.array.shared.config.block_size, block, off)
    }
}

impl<T: Element, S: Scheme> std::fmt::Debug for RcuArray<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuArray")
            .field("scheme", &S::NAME)
            .field("capacity", &self.capacity())
            .field("blocks", &self.num_blocks())
            .field("block_size", &self.shared.config.block_size)
            .field("locales", &self.shared.cluster.num_locales())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::AtomicBool;
    use rcuarray_runtime::Topology;

    fn cluster(n: usize) -> Arc<Cluster> {
        Cluster::new(Topology::new(n, 2))
    }

    fn small_config() -> Config {
        Config {
            block_size: 8,
            account_comm: false,
            ..Config::default()
        }
    }

    fn all_schemes(test: impl Fn(&dyn Fn() -> Box<dyn ArrayOps>)) {
        let c = cluster(3);
        let cq = Arc::clone(&c);
        test(&move || Box::new(QsbrArray::<u64>::with_config(&cq, small_config())));
        let ce = Arc::clone(&c);
        test(&move || Box::new(EbrArray::<u64>::with_config(&ce, small_config())));
        let cl = Arc::clone(&c);
        test(&move || Box::new(LeakArray::<u64>::with_config(&cl, small_config())));
        let ca = Arc::clone(&c);
        test(&move || Box::new(AmortizedArray::<u64>::with_config(&ca, small_config())));
    }

    /// Object-safe view for scheme-generic tests.
    trait ArrayOps: Send + Sync {
        fn read(&self, idx: usize) -> u64;
        fn write(&self, idx: usize, v: u64);
        fn resize(&self, add: usize) -> usize;
        fn capacity(&self) -> usize;
        fn checkpoint(&self) -> usize;
    }

    impl<S: Scheme> ArrayOps for RcuArray<u64, S> {
        fn read(&self, idx: usize) -> u64 {
            RcuArray::read(self, idx)
        }
        fn write(&self, idx: usize, v: u64) {
            RcuArray::write(self, idx, v)
        }
        fn resize(&self, add: usize) -> usize {
            RcuArray::resize(self, add)
        }
        fn capacity(&self) -> usize {
            RcuArray::capacity(self)
        }
        fn checkpoint(&self) -> usize {
            RcuArray::checkpoint(self)
        }
    }

    #[test]
    fn new_array_is_empty() {
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        assert!(a.is_empty());
        assert_eq!(a.capacity(), 0);
        assert_eq!(a.num_blocks(), 0);
        assert_eq!(a.try_read(0), None);
    }

    #[test]
    fn resize_then_read_write_round_trip_all_schemes() {
        all_schemes(|make| {
            let a = make();
            assert_eq!(a.resize(16), 16);
            for i in 0..16 {
                assert_eq!(a.read(i), 0, "zero-initialized");
                a.write(i, (i * 3) as u64);
            }
            for i in 0..16 {
                assert_eq!(a.read(i), (i * 3) as u64);
            }
            a.checkpoint();
        });
    }

    #[test]
    fn resize_rounds_up_to_block_multiple() {
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        assert_eq!(a.resize(1), 8, "1 element rounds to a full block");
        assert_eq!(a.resize(9), 24, "9 more rounds to 2 blocks");
        assert_eq!(a.num_blocks(), 3);
    }

    #[test]
    fn resize_zero_is_noop() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        assert_eq!(a.resize(0), 0);
        assert_eq!(a.num_blocks(), 0);
    }

    #[test]
    fn blocks_distributed_round_robin_across_resizes() {
        let c = cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8 * 4); // 4 blocks: L0 L1 L2 L0
        a.resize(8 * 2); // 2 blocks continue: L1 L2  (NextLocaleId persisted)
        let hist = a.stats().blocks_per_locale;
        assert_eq!(
            hist,
            vec![2, 2, 2],
            "round-robin must continue across resizes"
        );
    }

    #[test]
    fn values_survive_resizes_all_schemes() {
        all_schemes(|make| {
            let a = make();
            a.resize(8);
            a.write(3, 99);
            for _ in 0..5 {
                a.resize(8);
            }
            assert_eq!(a.read(3), 99, "existing data must survive expansion");
            assert_eq!(a.capacity(), 48);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let c = cluster(1);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        a.read(8);
    }

    #[test]
    fn get_ref_reads_and_writes() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(16);
        let r = a.get_ref(10);
        assert_eq!(r.get(), 0);
        r.set(5);
        assert_eq!(a.read(10), 5);
        r.update(|v| v + 1);
        assert_eq!(a.read(10), 6);
    }

    #[test]
    fn lemma6_update_through_old_reference_survives_resize() {
        // The paper's lost-update scenario: obtain a reference, let a
        // writer clone the snapshot, then assign through the reference —
        // the assignment must be visible afterwards.
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        let r = a.get_ref(2); // reference into the old snapshot's block
        a.resize(8); // writer clones; block 0 is recycled
        r.set(1234); // assignment "to the previous snapshot"
        assert_eq!(a.read(2), 1234, "update must not be lost (Lemma 6)");
    }

    #[test]
    fn concurrent_reads_during_resize_all_schemes() {
        all_schemes(|make| {
            let a = make();
            a.resize(64);
            for i in 0..64 {
                a.write(i, i as u64);
            }
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let a = &a;
                    let stop = &stop;
                    s.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            for i in 0..64 {
                                assert_eq!(a.read(i), i as u64);
                            }
                        }
                    });
                }
                let a2 = &a;
                let stop2 = &stop;
                s.spawn(move || {
                    for _ in 0..30 {
                        a2.resize(8);
                    }
                    stop2.store(true, Ordering::Relaxed);
                });
            });
            assert_eq!(a.capacity(), 64 + 30 * 8);
        });
    }

    #[test]
    fn concurrent_resizes_serialize() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = a.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        a.resize(8);
                    }
                });
            }
        });
        assert_eq!(a.capacity(), 4 * 10 * 8);
        assert_eq!(a.num_blocks(), 40);
        assert_eq!(a.stats().resizes, 40);
    }

    #[test]
    fn qsbr_checkpoint_reclaims_old_snapshots() {
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        for _ in 0..4 {
            a.resize(8);
        }
        // Resize tasks exited; their deferred snapshots are orphaned once
        // their TLS destructors finish (which can lag the join slightly),
        // after which this thread's checkpoint is the only gate left.
        let mut freed = 0;
        for _ in 0..1000 {
            freed += a.checkpoint();
            if a.stats().reclaim.pending == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(freed > 0, "old snapshots must be reclaimed at a checkpoint");
        assert_eq!(a.stats().reclaim.pending, 0);
        assert!(a.qsbr_domain().is_some(), "qsbr scheme exposes its domain");
    }

    #[test]
    fn ebr_checkpoint_is_noop() {
        let c = cluster(1);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        assert_eq!(a.checkpoint(), 0);
        assert!(a.qsbr_domain().is_none(), "ebr has no shared domain");
    }

    #[test]
    fn leak_array_retires_but_never_frees() {
        let c = cluster(2);
        let a: LeakArray<u64> = RcuArray::with_config(&c, small_config());
        for _ in 0..4 {
            a.resize(8);
        }
        a.write(3, 7);
        assert_eq!(a.read(3), 7);
        assert_eq!(a.checkpoint(), 0, "leak never frees");
        let s = a.stats().reclaim;
        // One snapshot retired per locale per capacity-changing publish.
        assert_eq!(s.retired, 8, "4 resizes x 2 locales");
        assert_eq!(s.reclaimed, 0);
        assert_eq!(s.pending, 8, "retire count is monotone, nothing drains");
        assert!(s.pending_bytes > 0);
        assert!(a.qsbr_domain().is_none());
        assert_eq!(a.scheme_name(), "leak");
    }

    #[test]
    fn amortized_array_drains_across_checkpoints() {
        let c = cluster(2);
        let cfg = Config {
            drain_budget: 1,
            ..small_config()
        };
        let a: AmortizedArray<u64> = RcuArray::with_config(&c, cfg);
        for _ in 0..4 {
            a.resize(8);
        }
        assert_eq!(a.scheme_name(), "amortized");
        assert!(a.qsbr_domain().is_some(), "amortized is QSBR underneath");
        // Resize tasks exited, so their deferred snapshots arrive as
        // orphan chains (freed whole); repeated budgeted checkpoints must
        // eventually drain everything.
        for _ in 0..1000 {
            a.checkpoint();
            if a.stats().reclaim.pending == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(a.stats().reclaim.pending, 0);
        assert_eq!(a.stats().reclaim.reclaimed, 8);
        // The array stays fully usable afterwards.
        a.write(20, 11);
        assert_eq!(a.read(20), 11);
    }

    #[test]
    fn fill_iter_to_vec() {
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(10); // rounds to 16
        a.fill(7);
        assert!(a.iter().all(|v| v == 7));
        assert_eq!(a.to_vec().len(), 16);
    }

    #[test]
    fn clone_aliases_same_array() {
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        let b = a.clone();
        a.resize(8);
        b.write(0, 42);
        assert_eq!(a.read(0), 42);
        assert_eq!(b.capacity(), 8);
    }

    #[test]
    fn with_capacity_presizes() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_capacity(&c, small_config(), 20);
        assert_eq!(a.capacity(), 24); // rounded to 3 blocks of 8
    }

    #[test]
    fn reads_are_node_local_metadata_comm_only_for_remote_blocks() {
        let c = cluster(2);
        let cfg = Config {
            block_size: 8,
            account_comm: true,
            ..Config::default()
        };
        let a: QsbrArray<u64> = RcuArray::with_config(&c, cfg);
        a.resize(16); // block 0 on L0, block 1 on L1
        c.comm().reset();
        rcuarray_runtime::task::with_locale(LocaleId::ZERO, || {
            let _ = a.read(0); // local block
            let _ = a.read(8); // remote block
        });
        let s = c.comm_stats();
        assert_eq!(s.local_accesses, 1);
        assert_eq!(s.gets, 1);
    }

    #[test]
    fn ebr_reads_pin_the_local_zone() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        for _ in 0..10 {
            let _ = a.read(0);
        }
        assert_eq!(a.stats().reclaim.guards, 10);
        // QSBR variant shows zero guards: reads are unsynchronized.
        let q: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        q.resize(8);
        let _ = q.read(0);
        assert_eq!(q.stats().reclaim.guards, 0);
    }

    #[test]
    fn read_many_pins_once_per_batch() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        for i in 0..8 {
            a.write(i, i as u64);
        }
        let base = a.stats().reclaim.guards;
        let got = a.read_many(&[0, 3, 7, 1]);
        assert_eq!(got, vec![0, 3, 7, 1], "results follow batch order");
        assert_eq!(
            a.stats().reclaim.guards,
            base + 1,
            "a whole batch must cost exactly one EBR pin"
        );
        // Contrast: the same four elements read singly cost four pins.
        for i in [0usize, 3, 7, 1] {
            let _ = a.read(i);
        }
        assert_eq!(a.stats().reclaim.guards, base + 5);
    }

    #[test]
    fn write_many_pins_once_and_lands_every_store() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        let base = a.stats().reclaim.guards;
        a.write_many(&[(0, 10), (5, 15), (7, 17)]);
        assert_eq!(
            a.stats().reclaim.guards,
            base + 1,
            "a write batch must cost exactly one EBR pin"
        );
        assert_eq!(a.read(0), 10);
        assert_eq!(a.read(5), 15);
        assert_eq!(a.read(7), 17);
        // QSBR reads are unsynchronized, so its guard count stays zero
        // through the identical batch path.
        let q: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        q.resize(8);
        q.write_many(&[(0, 1), (1, 2)]);
        assert_eq!(q.read_many(&[0, 1]), vec![1, 2]);
        assert_eq!(q.stats().reclaim.guards, 0);
    }

    #[test]
    fn empty_batches_do_not_pin() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        let base = a.stats().reclaim.guards;
        assert!(a.read_many(&[]).is_empty());
        a.write_many(&[]);
        assert_eq!(
            a.stats().reclaim.guards,
            base,
            "an empty batch must not enter the read-side protocol"
        );
    }

    #[test]
    fn batch_ops_cross_block_boundaries_under_one_pin() {
        let c = cluster(3);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8 * 4); // four blocks round-robined over three locales
        let base = a.stats().reclaim.guards;
        // One batch touching every block (and so several homes).
        let entries: Vec<(usize, u64)> = (0..4).map(|b| (b * 8 + 3, (b * 100) as u64)).collect();
        a.write_many(&entries);
        let indices: Vec<usize> = entries.iter().map(|&(i, _)| i).collect();
        let got = a.read_many(&indices);
        assert_eq!(got, vec![0, 100, 200, 300]);
        assert_eq!(
            a.stats().reclaim.guards,
            base + 2,
            "one pin per batch regardless of how many blocks it spans"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_many_out_of_bounds_panics() {
        let c = cluster(1);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        let _ = a.read_many(&[0, 8]);
    }

    #[test]
    fn resize_advances_every_locale_epoch_under_ebr() {
        let c = cluster(3);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        a.resize(8);
        assert_eq!(
            a.stats().reclaim.advances,
            6,
            "one advance per locale per resize"
        );
    }

    #[test]
    fn local_blocks_partition_by_home() {
        let c = cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8 * 6); // 6 blocks over 3 locales: 2 each
        let mut seen = std::collections::HashSet::new();
        for l in 0..3u32 {
            rcuarray_runtime::task::with_locale(LocaleId::new(l), || {
                let local = a.local_blocks();
                assert_eq!(local.len(), 2, "locale {l}");
                for (idx, b) in local {
                    // SAFETY: the registry outlives this test scope.
                    assert_eq!(unsafe { b.get() }.home(), LocaleId::new(l));
                    assert!(seen.insert(idx), "block {idx} owned twice");
                }
            });
        }
        assert_eq!(seen.len(), 6, "every block owned exactly once");
    }

    #[test]
    fn forall_local_visits_every_element_once_locally() {
        let c = cluster(3);
        let cfg = Config {
            block_size: 8,
            account_comm: true,
            ..Config::default()
        };
        let a: QsbrArray<u64> = RcuArray::with_config(&c, cfg);
        a.resize(8 * 6);
        c.comm().reset();
        let visits = AtomicUsize::new(0);
        a.forall_local(|idx, r| {
            r.set(idx as u64 + 1);
            visits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(visits.load(Ordering::Relaxed), 48);
        // Owner-computes: zero remote element traffic.
        assert_eq!(c.comm_stats().puts, 0, "forall_local must stay local");
        for i in 0..48 {
            assert_eq!(a.read(i), i as u64 + 1);
        }
    }

    #[test]
    fn with_view_is_version_consistent_across_concurrent_resizes() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(32);
        // A view's capacity and version must be mutually consistent even
        // while a resizer churns underneath.
        std::thread::scope(|s| {
            let a2 = a.clone();
            let resizer = s.spawn(move || {
                for _ in 0..50 {
                    a2.resize(8);
                }
            });
            for _ in 0..500 {
                a.with_view(|view| {
                    let cap = view.capacity();
                    // The initial resize(32) produced version 1 with 32
                    // elements; every later resize(8) adds one block.
                    // Both fields come from the same snapshot, so the
                    // relation is exact, never torn.
                    assert_eq!(cap, 32 + (view.version() as usize - 1) * 8);
                    // And all of it is readable.
                    let _ = view.get(cap - 1);
                });
            }
            resizer.join().unwrap();
        });
        assert_eq!(a.capacity(), 32 + 50 * 8);
    }

    #[test]
    fn with_view_works_under_qsbr_too() {
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(16);
        a.write(3, 30);
        a.write(12, 120);
        let sum = a.with_view(|v| v.get(3) + v.get(12));
        assert_eq!(sum, 150);
        a.checkpoint();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_bounds_are_the_snapshots() {
        let c = cluster(1);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        a.with_view(|v| v.get(8));
    }

    #[test]
    fn truncate_shrinks_visible_capacity_all_schemes() {
        all_schemes(|make| {
            let a = make();
            a.resize(64);
            a.write(60, 5);
            a.write(10, 7);
            assert_eq!(a.resize(0), 64);
            // Truncate through the trait object's resize? No — exercise
            // the inherent API below via the concrete types.
        });
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(64);
        a.write(10, 7);
        assert_eq!(a.truncate(20), 24, "rounds up to 3 blocks of 8");
        assert_eq!(a.capacity(), 24);
        assert_eq!(a.read(10), 7, "kept region intact");
        assert_eq!(a.try_read(24), None);
        // Growth after truncation works and stays block-balanced.
        a.resize(16);
        assert_eq!(a.capacity(), 40);
        a.checkpoint();

        let e: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        e.resize(32);
        assert_eq!(e.truncate(8), 8);
        assert_eq!(e.capacity(), 8);
    }

    #[test]
    fn truncate_no_op_when_larger_than_capacity() {
        let c = cluster(1);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(16);
        assert_eq!(a.truncate(100), 16);
        assert_eq!(a.truncate(16), 16);
    }

    #[test]
    fn refs_into_truncated_region_stay_valid() {
        let c = cluster(2);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(32);
        let r = a.get_ref(30);
        a.truncate(8);
        // Indexed access is gone, the reference is not (logical shrink).
        assert_eq!(a.try_read(30), None);
        r.set(123);
        assert_eq!(r.get(), 123);
        a.checkpoint();
    }

    #[test]
    fn truncate_during_concurrent_reads_is_safe() {
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(128);
        a.fill(9);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let a = a.clone();
                s.spawn(move || {
                    // The truncater never shrinks below 16 elements, so
                    // indices 0..16 stay in bounds on every interleaving
                    // (sampling `capacity()` and then reading the stale
                    // midpoint would race the shrink and trip the
                    // documented out-of-bounds panic).
                    for step in 0..2000 {
                        assert_eq!(a.read(step % 16), 9);
                    }
                });
            }
            let a2 = a.clone();
            s.spawn(move || {
                for k in (1..8).rev() {
                    a2.truncate(k * 16);
                }
            });
        });
        assert_eq!(a.capacity(), 16);
    }

    #[test]
    fn bulk_read_write_round_trip_and_aggregate_comm() {
        let c = cluster(2);
        let cfg = Config {
            block_size: 8,
            account_comm: true,
            ..Config::default()
        };
        let a: QsbrArray<u64> = RcuArray::with_config(&c, cfg);
        a.resize(32);
        let data: Vec<u64> = (0..20).map(|i| i * 3).collect();
        c.comm().reset();
        rcuarray_runtime::task::with_locale(LocaleId::ZERO, || {
            a.write_slice(4, &data);
        });
        let puts_bulk = c.comm_stats().puts;
        assert!(
            puts_bulk <= 3,
            "bulk write must charge per block chunk, saw {puts_bulk} puts"
        );
        assert_eq!(a.read_range(4..24), data);
        assert_eq!(a.read(3), 0);
        assert_eq!(a.read(24), 0);
        a.checkpoint();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bulk_read_oob_panics() {
        let c = cluster(1);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        let _ = a.read_range(4..12);
    }

    #[test]
    fn oob_panic_inside_ebr_read_does_not_wedge_writers() {
        // Regression: the OOB panic fires *inside* the read-side critical
        // section; without an RAII pin the parity counter would stay
        // elevated and this resize would deadlock.
        let c = cluster(2);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.read(999);
        }));
        assert!(r.is_err());
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let a2 = a.clone();
        rcuarray_analysis::thread::spawn(move || {
            a2.resize(8);
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("resize wedged by leaked reader pin");
        assert_eq!(a.capacity(), 16);
    }

    #[test]
    fn debug_output_names_scheme() {
        let c = cluster(1);
        let a: EbrArray<u64> = RcuArray::with_config(&c, small_config());
        let dbg = format!("{a:?}");
        assert!(dbg.contains("ebr"), "{dbg}");
        assert_eq!(a.scheme_name(), "ebr");
    }

    // ---- availability layer (DESIGN.md §15) ------------------------------

    use rcuarray_runtime::{task, FaultPlan, RetryPolicy};

    fn faulty_cluster(n: usize) -> Arc<Cluster> {
        Cluster::builder()
            .topology(Topology::new(n, 2))
            .fault_plan(FaultPlan::new(7))
            .build()
    }

    fn rf2_config() -> Config {
        Config {
            block_size: 8,
            account_comm: true,
            replication_factor: 2,
            retry: RetryPolicy::new(2, std::time::Duration::from_millis(100)),
            ..Config::default()
        }
    }

    /// Kill `l` and drive the failure detector to `Down` with probe
    /// rounds from a surviving locale.
    fn evict(c: &Cluster, l: LocaleId) {
        c.fault().set_down(l, true);
        let observer = if l == LocaleId::ZERO {
            LocaleId::new(1)
        } else {
            LocaleId::ZERO
        };
        task::with_locale(observer, || {
            c.probe_membership();
            c.probe_membership();
        });
        assert!(!c.membership().view().in_view(l), "detector must evict {l}");
    }

    #[test]
    fn rf2_reads_fail_over_when_the_primary_home_dies() {
        let c = faulty_cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, rf2_config());
        a.resize(24); // 3 blocks: primaries L0/L1/L2, replicas L1/L2/L0
        for i in 0..24 {
            a.write(i, i as u64 + 100);
        }
        evict(&c, LocaleId::ZERO); // block 0's primary
        task::with_locale(LocaleId::new(1), || {
            for i in 0..24 {
                assert_eq!(a.read(i), i as u64 + 100);
            }
        });
        let s = a.stats();
        assert!(s.failover_reads >= 8, "block-0 reads must fail over: {s:?}");
        assert_eq!(s.fallback_reads, 0, "replica served every detour: {s:?}");
    }

    #[test]
    fn rf2_acked_writes_reroute_to_the_live_replica() {
        let c = faulty_cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, rf2_config());
        a.resize(8); // one block: primary L0, replica L1
        evict(&c, LocaleId::ZERO);
        task::with_locale(LocaleId::new(1), || {
            for i in 0..8 {
                a.write(i, 7 + i as u64);
            }
            for i in 0..8 {
                assert_eq!(a.read(i), 7 + i as u64, "acked write must stay readable");
            }
        });
        let s = a.stats();
        assert_eq!(s.degraded_writes, 0, "acks reroute to the replica: {s:?}");
        assert!(s.failover_reads >= 8, "{s:?}");
    }

    #[test]
    fn rf2_replica_lag_accumulates_and_drains_at_checkpoint() {
        let c = cluster(3);
        let cfg = Config {
            block_size: 8,
            account_comm: true,
            replication_factor: 2,
            ..Config::default()
        };
        let a: QsbrArray<u64> = RcuArray::with_config(&c, cfg);
        a.resize(8); // primary L0, replica L1
        a.write(0, 5);
        let elem = u64::byte_size() as u64;
        assert_eq!(
            a.stats().replica_lag_bytes,
            elem,
            "one deferred replica PUT"
        );
        let before = c.comm_stats();
        a.checkpoint();
        assert_eq!(
            a.stats().replica_lag_bytes,
            0,
            "checkpoint drains the ledger"
        );
        let after = c.comm_stats();
        assert_eq!(after.puts, before.puts + 1, "the drain is one bulk PUT");
    }

    #[test]
    fn rf2_resize_spreads_replica_sets_and_rollback_truncates_them() {
        use rcuarray_runtime::FaultAction;
        // The first resize publishes on 3 locales (3 benign hits); the
        // trigger then fails the second resize's first publish.
        let c = Cluster::builder()
            .topology(Topology::new(3, 2))
            .fault_plan(FaultPlan::new(7).trigger("resize.publish", 3, 1, FaultAction::Error))
            .build();
        let a: QsbrArray<u64> = RcuArray::with_config(&c, rf2_config());
        a.resize(24); // 3 groups × 2 copies
        assert_eq!(a.num_blocks(), 6, "rf copies per logical block");
        assert_eq!(
            a.stats().blocks_per_locale,
            vec![2, 2, 2],
            "copies stay balanced"
        );
        // A faulted resize must roll the placement map back with the
        // snapshots: the aborted group is dropped, and the retry resumes
        // the paper's cursor sequence.
        assert!(a.try_resize(8).is_err(), "armed trigger must abort");
        assert_eq!(a.capacity(), 24);
        assert_eq!(a.stats().aborted_resizes, 1);
        a.resize(8);
        assert_eq!(a.capacity(), 32);
        let hist = a.stats().blocks_per_locale;
        // 6 surviving copies + 2 abandoned by the rollback (registry-owned
        // until drop) + 2 from the successful retry.
        assert_eq!(hist.iter().sum::<usize>(), 10, "{hist:?}");
    }

    #[test]
    fn rf2_lemma6_updates_through_old_refs_reach_replicas() {
        let c = faulty_cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, rf2_config());
        a.resize(8);
        let r = a.get_ref(3);
        a.resize(8); // the reference's block is recycled (Lemma 6)
        r.set(99);
        evict(&c, LocaleId::ZERO); // the block's primary home
        task::with_locale(LocaleId::new(1), || {
            assert_eq!(
                a.read(3),
                99,
                "update through the old reference must be visible on the replica"
            );
        });
    }

    #[test]
    fn rf2_repair_rereplicates_after_replica_loss() {
        let c = faulty_cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, rf2_config());
        a.resize(8); // primary L0, replica L1
        for i in 0..8 {
            a.write(i, i as u64 + 30);
        }
        evict(&c, LocaleId::new(1)); // the replica home dies
        let copied = a.repair_replicas();
        assert!(copied > 0, "under-replicated group must be repaired");
        assert_eq!(a.repair_replicas(), 0, "repair is idempotent");
        // Now lose the original primary too: the repaired replica (on
        // L2) keeps the data readable — loss beyond the *original*
        // replica set, survived because repair restored RF first.
        c.fault().set_down(LocaleId::ZERO, true);
        task::with_locale(LocaleId::new(2), || {
            c.probe_membership();
            c.probe_membership();
            for i in 0..8 {
                assert_eq!(a.read(i), i as u64 + 30);
            }
        });
        let s = a.stats();
        assert!(s.rereplicated_bytes > 0, "{s:?}");
        assert!(s.failover_reads >= 8, "{s:?}");
        assert_eq!(
            s.fallback_reads, 0,
            "repaired replica served everything: {s:?}"
        );
    }

    #[test]
    fn rf2_rejoining_locale_catches_up_before_reentering_views() {
        let c = faulty_cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, rf2_config());
        a.resize(8); // primary L0, replica L1
        evict(&c, LocaleId::new(1));
        // Writes and a resize the dead locale misses entirely.
        for i in 0..8 {
            a.write(i, 40 + i as u64);
        }
        a.resize(8);
        assert_eq!(a.capacity(), 16);
        // Heal: the next probe sees it answering, but only as Rejoining.
        c.fault().set_down(LocaleId::new(1), false);
        c.probe_membership();
        assert!(
            !c.membership().view().in_view(LocaleId::new(1)),
            "a rejoiner stays out of views until caught up"
        );
        let copied = a.rejoin_catch_up(LocaleId::new(1));
        assert!(copied > 0, "the stale replica must be refreshed");
        assert!(c.membership().is_up(LocaleId::new(1)), "caught up ⇒ Up");
        // The rejoined locale sees the resize it missed and the writes
        // its replica missed.
        task::with_locale(LocaleId::new(1), || {
            for i in 0..8 {
                assert_eq!(a.read(i), 40 + i as u64);
            }
            assert_eq!(a.read(12), 0, "post-outage block visible after catch-up");
        });
    }

    #[test]
    fn rf1_keeps_placement_invisible() {
        // The paper's exact behavior: no groups beyond the primaries, no
        // lag, no failover counters — and `stats()` says so.
        let c = cluster(3);
        let a: QsbrArray<u64> = RcuArray::with_config(&c, small_config());
        a.resize(24);
        a.write(0, 1);
        a.checkpoint();
        let s = a.stats();
        assert_eq!(s.failover_reads, 0);
        assert_eq!(s.replica_lag_bytes, 0);
        assert_eq!(s.rereplicated_bytes, 0);
        assert_eq!(a.repair_replicas(), 0, "nothing to repair at rf = 1");
    }

    #[test]
    #[should_panic(expected = "distinct locales")]
    fn rf_beyond_locale_count_rejected_at_construction() {
        let c = cluster(2);
        let cfg = Config {
            replication_factor: 3,
            ..small_config()
        };
        let _: QsbrArray<u64> = RcuArray::with_config(&c, cfg);
    }
}
