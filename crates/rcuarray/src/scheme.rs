//! The reclamation-scheme switch: the paper's `isQSBR` compile-time
//! parameter, realized as a sealed type-level flag.
//!
//! "The implementation of RCUArray makes use of either EBR or QSBR, and
//! the required changes in implementation are minor and can be contained
//! within a single conditional using the compile-time parameter, isQSBR"
//! (§IV). `RcuArray<T, S>` branches on `S::IS_QSBR`, which the compiler
//! resolves statically exactly like Chapel's `param`.

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::EbrScheme {}
    impl Sealed for super::QsbrScheme {}
}

/// A reclamation scheme marker. Sealed: only [`EbrScheme`] and
/// [`QsbrScheme`] exist.
pub trait Scheme: sealed::Sealed + Send + Sync + 'static {
    /// The paper's `isQSBR` flag.
    const IS_QSBR: bool;
    /// Scheme name for harness output ("ebr" / "qsbr").
    const NAME: &'static str;
}

/// Epoch-based reclamation: reads pay the TLS-free two-counter protocol;
/// resizes reclaim old snapshots synchronously.
#[derive(Debug)]
pub enum EbrScheme {}

impl Scheme for EbrScheme {
    const IS_QSBR: bool = false;
    const NAME: &'static str = "ebr";
}

/// Quiescent-state-based reclamation: reads are unsynchronized; resizes
/// defer old snapshots to the QSBR domain; application threads checkpoint.
#[derive(Debug)]
pub enum QsbrScheme {}

impl Scheme for QsbrScheme {
    const IS_QSBR: bool = true;
    const NAME: &'static str = "qsbr";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_names() {
        const { assert!(!EbrScheme::IS_QSBR) };
        const { assert!(QsbrScheme::IS_QSBR) };
        assert_eq!(EbrScheme::NAME, "ebr");
        assert_eq!(QsbrScheme::NAME, "qsbr");
    }

    #[test]
    fn is_qsbr_is_a_compile_time_constant() {
        // A const context proves the flag resolves statically, like
        // Chapel's `param`.
        const E: bool = EbrScheme::IS_QSBR;
        const Q: bool = QsbrScheme::IS_QSBR;
        const { assert!(!E) };
        const { assert!(Q) };
    }
}
