//! The reclamation-scheme switch: the paper's `isQSBR` compile-time
//! parameter, realized as a *behavior-carrying* factory trait.
//!
//! "The implementation of RCUArray makes use of either EBR or QSBR, and
//! the required changes in implementation are minor and can be contained
//! within a single conditional using the compile-time parameter, isQSBR"
//! (§IV). Earlier revisions of this crate mirrored that literally — a
//! sealed marker trait with an `IS_QSBR` const bool that `array.rs`
//! branched on. That couples the array to every scheme it will ever
//! support. A [`Scheme`] is now a factory for [`Reclaim`] engines: the
//! array calls `read_lock`/`retire`/`quiesce` and never branches, so new
//! schemes ([`LeakScheme`], [`AmortizedScheme`], or an out-of-crate
//! hazard-pointer scheme) plug in with **zero** changes to `array.rs`.
//! The compiler still resolves everything statically — `S::Reclaim` is a
//! concrete type, exactly like Chapel's `param` specialization.

use crate::config::Config;
use rcuarray_ebr::{EpochZone, OrderingMode};
use rcuarray_qsbr::{AmortizedReclaim, QsbrDomain};
use rcuarray_reclaim::{LeakReclaim, PressureConfig, Reclaim, StallPolicy};

/// A reclamation scheme: cluster-wide shared state plus a factory for the
/// per-locale [`Reclaim`] engines embedded in the privatized metadata.
///
/// Implementations decide the sharing topology themselves: EBR builds an
/// independent [`EpochZone`] per locale (node-local reader counters,
/// §III-D), while the QSBR-family schemes hand every locale a clone of
/// one shared [`QsbrDomain`] (reclamation is a runtime-wide service,
/// §III-B).
pub trait Scheme: Send + Sync + Sized + 'static {
    /// The reclamation engine one locale's privatized state embeds.
    type Reclaim: Reclaim;

    /// Scheme name for harness and Debug output ("ebr", "qsbr", ...).
    const NAME: &'static str;

    /// Build the scheme's cluster-wide shared state from the array config.
    fn new_shared(config: &Config) -> Self;

    /// The reclamation engine for one locale's privatized metadata.
    fn reclaimer(&self) -> Self::Reclaim;

    /// The shared QSBR domain, for schemes built on one (lets
    /// applications park/unpark worker threads around idle periods).
    fn domain(&self) -> Option<&QsbrDomain> {
        None
    }
}

/// Epoch-based reclamation: reads pay the TLS-free two-counter protocol
/// on a per-locale [`EpochZone`]; resizes reclaim old snapshots
/// synchronously (the paper's `EBRArray`).
#[derive(Debug)]
pub struct EbrScheme {
    ordering: OrderingMode,
    pressure: PressureConfig,
    stall: StallPolicy,
}

impl Scheme for EbrScheme {
    type Reclaim = EpochZone;
    const NAME: &'static str = "ebr";

    fn new_shared(config: &Config) -> Self {
        EbrScheme {
            ordering: config.ordering,
            pressure: config.pressure,
            stall: config.stall,
        }
    }

    fn reclaimer(&self) -> EpochZone {
        // Each locale gets its own zone: reader traffic stays node-local.
        // Robustness knobs are per-zone: the bound applies to each
        // locale's evacuation backlog independently.
        let zone = EpochZone::with_mode(self.ordering);
        zone.set_stall_policy(self.stall);
        zone.set_pressure(self.pressure);
        zone
    }
}

/// Quiescent-state-based reclamation: reads are unsynchronized; resizes
/// defer old snapshots to one shared domain; application threads
/// checkpoint (the paper's `QSBRArray`).
#[derive(Debug)]
pub struct QsbrScheme {
    domain: QsbrDomain,
}

impl Scheme for QsbrScheme {
    type Reclaim = QsbrDomain;
    const NAME: &'static str = "qsbr";

    fn new_shared(config: &Config) -> Self {
        let domain = QsbrDomain::new();
        // Robustness knobs are domain-wide: one backlog bound and one
        // stall policy cover every locale sharing the domain.
        domain.set_stall_policy(config.stall);
        domain.set_pressure(config.pressure);
        QsbrScheme { domain }
    }

    fn reclaimer(&self) -> QsbrDomain {
        // Clones share the domain: retirement from any locale lands in
        // one runtime-wide service.
        self.domain.clone()
    }

    fn domain(&self) -> Option<&QsbrDomain> {
        Some(&self.domain)
    }
}

/// No reclamation at all: no-op read guards, retired snapshots leak.
///
/// This is the *upper bound* scheme — the exact `UnsafeArray` comparison
/// the paper benchmarks against, but through the **identical** `RcuArray`
/// code path: any slowdown relative to `LeakScheme` is attributable to
/// the reclamation protocol, not the array structure. Only for
/// measurement and harness runs; a long-lived array under `LeakScheme`
/// grows without bound.
#[derive(Debug, Default)]
pub struct LeakScheme {
    pressure: PressureConfig,
}

impl Scheme for LeakScheme {
    type Reclaim = LeakReclaim;
    const NAME: &'static str = "leak";

    fn new_shared(config: &Config) -> Self {
        LeakScheme {
            pressure: config.pressure,
        }
    }

    fn reclaimer(&self) -> LeakReclaim {
        // A bounded leak scheme is a *retirement budget*: nothing ever
        // drains, so the cap is the total bytes the array may retire.
        LeakReclaim::with_pressure(self.pressure)
    }
}

/// QSBR with a bounded per-checkpoint drain ([`Config::drain_budget`]):
/// each quiescence point frees at most `drain_budget` snapshots, oldest
/// first, spreading reclamation cost across checkpoints (DEBRA-style
/// amortization) instead of paying for the whole backlog at once.
#[derive(Debug)]
pub struct AmortizedScheme {
    domain: QsbrDomain,
    budget: usize,
}

impl Scheme for AmortizedScheme {
    type Reclaim = AmortizedReclaim;
    const NAME: &'static str = "amortized";

    fn new_shared(config: &Config) -> Self {
        let domain = QsbrDomain::new();
        domain.set_stall_policy(config.stall);
        domain.set_pressure(config.pressure);
        AmortizedScheme {
            domain,
            budget: config.drain_budget,
        }
    }

    fn reclaimer(&self) -> AmortizedReclaim {
        AmortizedReclaim::with_domain(self.domain.clone(), self.budget)
    }

    fn domain(&self) -> Option<&QsbrDomain> {
        Some(&self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_reclaim::Retired;

    #[test]
    fn names_match_reclaimers() {
        let cfg = Config::default();
        assert_eq!(EbrScheme::NAME, "ebr");
        assert_eq!(EbrScheme::new_shared(&cfg).reclaimer().name(), "ebr");
        assert_eq!(QsbrScheme::NAME, "qsbr");
        assert_eq!(QsbrScheme::new_shared(&cfg).reclaimer().name(), "qsbr");
        assert_eq!(LeakScheme::NAME, "leak");
        assert_eq!(LeakScheme::new_shared(&cfg).reclaimer().name(), "leak");
        assert_eq!(AmortizedScheme::NAME, "amortized");
        assert_eq!(
            AmortizedScheme::new_shared(&cfg).reclaimer().name(),
            "amortized"
        );
    }

    #[test]
    fn qsbr_family_reclaimers_share_their_scheme_domain() {
        let cfg = Config::default();
        let q = QsbrScheme::new_shared(&cfg);
        assert_eq!(q.reclaimer().id(), q.domain().unwrap().id());
        let a = AmortizedScheme::new_shared(&cfg);
        assert_eq!(a.reclaimer().domain().id(), a.domain().unwrap().id());
        assert_eq!(a.reclaimer().budget(), cfg.drain_budget);
    }

    #[test]
    fn per_locale_schemes_mint_independent_reclaimers() {
        let cfg = Config::default();
        let e = EbrScheme::new_shared(&cfg);
        let (z1, z2) = (e.reclaimer(), e.reclaimer());
        let _g = z1.read_lock();
        // A pin on one locale's zone must not appear on another's.
        assert_eq!(z1.reclaim_stats().guards, 1);
        assert_eq!(z2.reclaim_stats().guards, 0);
        assert!(e.domain().is_none());
        assert!(LeakScheme::new_shared(&cfg).domain().is_none());
    }

    #[test]
    fn leak_scheme_never_frees() {
        use rcuarray_analysis::atomic::{AtomicBool, Ordering};
        let l = LeakScheme::new_shared(&Config::default()).reclaimer();
        let flag = std::sync::Arc::new(AtomicBool::new(false));
        let f = std::sync::Arc::clone(&flag);
        l.retire(Retired::new(move || f.store(true, Ordering::SeqCst)));
        assert_eq!(l.quiesce(), 0);
        assert!(!flag.load(Ordering::SeqCst));
        assert_eq!(l.reclaim_stats().pending, 1);
    }
}
