//! Escaping element references: the return value of the paper's `Index`.
//!
//! §III-C: "the λ can return a reference to the desired portion of the
//! array to be written to later … This indirection not only comes with
//! very little cost to performance, it also allows updates to share the
//! same performance as reads."
//!
//! An [`ElemRef`] stays valid across concurrent resizes because blocks are
//! recycled, never freed (Lemma 6): an assignment made through a reference
//! obtained from an *old* snapshot lands in a block the *new* snapshot
//! shares, so the update is never lost.

use crate::element::Element;
use rcuarray_runtime::{Cluster, LocaleId};

/// A reference to one element of an `RcuArray`, usable for both reads and
/// updates, surviving concurrent resizes.
///
/// Borrow-tied to the array handle it came from, which keeps the block
/// registry (and thus the cell) alive.
///
/// Under replication (`Config::replication_factor > 1`) the reference
/// captures the element's replica cells at creation time and fans every
/// assignment out to them, so Lemma 6 holds on every replica: an update
/// through a reference from an *old* snapshot is visible through every
/// copy of the block. Reads always use the primary cell (failover is an
/// array-level concern; see `RcuArray::read`). A replica swapped out by
/// repair *after* the reference was taken no longer receives its
/// assignments — like the snapshot, the replica set is captured, not
/// tracked.
pub struct ElemRef<'a, T: Element> {
    cell: &'a T::Repr,
    home: LocaleId,
    /// Present when the owning array accounts communication.
    comm: Option<&'a Cluster>,
    /// Replica cells assignments fan out to (empty at `rf = 1`).
    replicas: Vec<(LocaleId, &'a T::Repr)>,
}

impl<'a, T: Element> ElemRef<'a, T> {
    pub(crate) fn new(cell: &'a T::Repr, home: LocaleId, comm: Option<&'a Cluster>) -> Self {
        ElemRef {
            cell,
            home,
            comm,
            replicas: Vec::new(),
        }
    }

    /// Attach a replica cell to fan assignments out to (`rf > 1` only).
    pub(crate) fn push_replica(&mut self, home: LocaleId, cell: &'a T::Repr) {
        self.replicas.push((home, cell));
    }

    /// Propagate a just-applied store to every captured replica cell,
    /// charging one PUT per replica when the array accounts comm.
    #[inline]
    fn fan_out(&self, v: T) {
        for &(loc, cell) in &self.replicas {
            if let Some(cluster) = self.comm {
                cluster.put_to(loc, T::byte_size());
            }
            T::store(cell, v);
        }
    }

    /// The locale the underlying block is homed on.
    #[inline]
    pub fn home(&self) -> LocaleId {
        self.home
    }

    /// Read the element (a GET when the block is remote).
    #[inline]
    pub fn get(&self) -> T {
        if let Some(cluster) = self.comm {
            cluster.get_from(self.home, T::byte_size());
        }
        T::load(self.cell)
    }

    /// Update the element (a PUT when the block is remote; one more PUT
    /// per replica under replication).
    #[inline]
    pub fn set(&self, v: T) {
        if let Some(cluster) = self.comm {
            cluster.put_to(self.home, T::byte_size());
        }
        T::store(self.cell, v);
        self.fan_out(v);
    }

    /// Read-modify-write through the reference. Not atomic as a whole —
    /// exactly like an assignment through a Chapel `ref` — but each half
    /// is a well-defined atomic access.
    #[inline]
    pub fn update(&self, f: impl FnOnce(T) -> T) {
        self.set(f(self.get()));
    }

    /// Atomic compare-exchange through the reference (counted as one GET
    /// plus one PUT when remote, like a network RMW). Not used by the
    /// array itself; exists for structures built on top (e.g. the
    /// distributed table claiming key slots).
    #[inline]
    pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T> {
        if let Some(cluster) = self.comm {
            cluster.get_from(self.home, T::byte_size());
            cluster.put_to(self.home, T::byte_size());
        }
        let r = T::compare_exchange(self.cell, current, new);
        if r.is_ok() {
            // The exchange is decided by the primary cell; replicas just
            // mirror the winning value.
            self.fan_out(new);
        }
        r
    }

    /// *Atomic* read-modify-write: retries `f` under a compare-exchange
    /// loop until it applies cleanly. Unlike [`update`](Self::update),
    /// concurrent `fetch_update`s never lose increments. Returns the
    /// previous value.
    pub fn fetch_update(&self, mut f: impl FnMut(T) -> T) -> T
    where
        T: PartialEq,
    {
        let mut cur = self.get();
        loop {
            match self.compare_exchange(cur, f(cur)) {
                Ok(prev) => return prev,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl<T: Element + std::fmt::Debug> std::fmt::Debug for ElemRef<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElemRef")
            .field("home", &self.home)
            .field("value", &T::load(self.cell))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_runtime::{task, Topology};

    #[test]
    fn get_set_round_trip_without_comm() {
        let cell = u64::new_repr(5);
        let r: ElemRef<u64> = ElemRef::new(&cell, LocaleId::ZERO, None);
        assert_eq!(r.get(), 5);
        r.set(9);
        assert_eq!(r.get(), 9);
        r.update(|v| v * 2);
        assert_eq!(r.get(), 18);
        assert_eq!(r.home(), LocaleId::ZERO);
    }

    #[test]
    fn compare_exchange_and_fetch_update() {
        let cell = u64::new_repr(10);
        let r: ElemRef<u64> = ElemRef::new(&cell, LocaleId::ZERO, None);
        assert_eq!(r.compare_exchange(10, 11), Ok(10));
        assert_eq!(r.compare_exchange(10, 12), Err(11));
        assert_eq!(r.fetch_update(|v| v + 5), 11);
        assert_eq!(r.get(), 16);
    }

    #[test]
    fn concurrent_fetch_updates_lose_nothing() {
        let cell = u64::new_repr(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = &cell;
                s.spawn(move || {
                    let r: ElemRef<u64> = ElemRef::new(cell, LocaleId::ZERO, None);
                    for _ in 0..1000 {
                        r.fetch_update(|v| v + 1);
                    }
                });
            }
        });
        assert_eq!(u64::load(&cell), 4000, "atomic RMW must not lose bumps");
    }

    #[test]
    fn assignments_fan_out_to_replica_cells() {
        let cell = u64::new_repr(0);
        let replica = u64::new_repr(0);
        let mut r: ElemRef<u64> = ElemRef::new(&cell, LocaleId::ZERO, None);
        r.push_replica(LocaleId::new(1), &replica);
        r.set(7);
        assert_eq!(u64::load(&replica), 7, "set must reach the replica");
        assert_eq!(r.compare_exchange(7, 9), Ok(7));
        assert_eq!(u64::load(&replica), 9, "winning CAS must reach the replica");
        assert_eq!(r.compare_exchange(7, 11), Err(9));
        assert_eq!(
            u64::load(&replica),
            9,
            "losing CAS must not touch the replica"
        );
        assert_eq!(r.get(), 9, "reads stay on the primary cell");
    }

    #[test]
    fn replica_fan_out_is_charged_per_replica() {
        let cluster = Cluster::new(Topology::new(3, 1));
        let cell = u32::new_repr(0);
        let replica = u32::new_repr(0);
        let mut r: ElemRef<u32> = ElemRef::new(&cell, LocaleId::new(1), Some(&cluster));
        r.push_replica(LocaleId::new(2), &replica);
        task::with_locale(LocaleId::new(0), || r.set(5));
        let s = cluster.comm_stats();
        assert_eq!(s.puts, 2, "one PUT for the primary, one per replica");
    }

    #[test]
    fn remote_access_is_charged() {
        let cluster = Cluster::new(Topology::new(2, 1));
        let cell = u32::new_repr(0);
        let r: ElemRef<u32> = ElemRef::new(&cell, LocaleId::new(1), Some(&cluster));
        task::with_locale(LocaleId::new(0), || {
            let _ = r.get();
            r.set(3);
        });
        let s = cluster.comm_stats();
        assert_eq!(s.gets, 1);
        assert_eq!(s.puts, 1);
        assert_eq!(s.bytes_moved, 8);
    }

    #[test]
    fn local_access_is_not_remote() {
        let cluster = Cluster::new(Topology::new(2, 1));
        let cell = u32::new_repr(0);
        let r: ElemRef<u32> = ElemRef::new(&cell, LocaleId::new(1), Some(&cluster));
        task::with_locale(LocaleId::new(1), || {
            let _ = r.get();
            r.set(3);
        });
        let s = cluster.comm_stats();
        assert_eq!(s.remote_ops(), 0);
        assert_eq!(s.local_accesses, 2);
    }
}
