#![warn(missing_docs)]

//! # rcuarray — RCUArray: an RCU-like parallel-safe distributed resizable array
//!
//! A from-scratch Rust reproduction of *RCUArray: An RCU-like
//! Parallel-Safe Distributed Resizable Array* (Louis Jenkins, IPDPSW
//! 2018). RCUArray is a block-allocated array distributed across the
//! locales of a (simulated) cluster that allows **read and update
//! operations to occur concurrently with a resize** via Read-Copy-Update.
//!
//! ## How it works
//!
//! * Metadata — the *snapshot*, an ordered list of block pointers — is
//!   privatized per locale and protected by RCU: readers access it
//!   wait-free, a resizing writer clones it, appends new blocks, publishes
//!   the clone, and reclaims the old version once no reader can hold it.
//! * Element storage — fixed-size *blocks* dealt round-robin across
//!   locales — is **recycled** between snapshots: the old snapshot is a
//!   prefix of the new one, so references into the array survive resizes
//!   and updates made through them are never lost (paper Lemma 6).
//! * Reclamation of old snapshots is pluggable at the type level
//!   ([`Scheme`], generalizing the paper's `isQSBR` parameter into a
//!   factory for [`Reclaim`] engines): [`EbrArray`] uses the paper's
//!   novel TLS-free epoch-based scheme (crate `rcuarray-ebr`);
//!   [`QsbrArray`] uses runtime-style quiescent-state-based reclamation
//!   (crate `rcuarray-qsbr`) and gives readers *zero* synchronization
//!   overhead at the price of explicit [`RcuArray::checkpoint`] calls;
//!   [`AmortizedArray`] bounds each checkpoint's drain
//!   ([`Config::drain_budget`]); [`LeakArray`] never reclaims — the
//!   `UnsafeArray` upper bound through the identical code path, for
//!   measurement only.
//!
//! ## Quickstart
//!
//! ```
//! use rcuarray::{Config, QsbrArray};
//! use rcuarray_runtime::{Cluster, Topology};
//!
//! // A simulated cluster: 4 locales, 2 tasks each.
//! let cluster = Cluster::new(Topology::new(4, 2));
//! let array: QsbrArray<u64> = QsbrArray::with_config(&cluster, Config::with_block_size(64));
//!
//! // Resizes are parallel-safe: readers/updaters never block on them.
//! array.resize(256);
//! array.write(17, 42);
//! assert_eq!(array.read(17), 42);
//!
//! // References survive resizes; updates through them are never lost.
//! let r = array.get_ref(17);
//! array.resize(256);
//! r.set(43);
//! assert_eq!(array.read(17), 43);
//!
//! // QSBR: quiesce this thread so old snapshots can be reclaimed.
//! array.checkpoint();
//! ```

pub mod array;
pub mod block;
pub mod config;
pub mod elem_ref;
pub mod element;
pub mod handle;
pub mod iter;
pub mod placement;
pub mod scheme;
pub mod snapshot;
pub mod stats;

pub use array::{AmortizedArray, EbrArray, LeakArray, QsbrArray, RcuArray, SnapshotView};
pub use block::{Block, BlockRef, BlockRegistry};
pub use config::{Config, DEFAULT_BLOCK_SIZE, DEFAULT_DRAIN_BUDGET};
pub use elem_ref::ElemRef;
pub use element::Element;
pub use iter::Iter;
pub use placement::{BlockGroup, PlacementMap, PlacementPlan};
pub use scheme::{AmortizedScheme, EbrScheme, LeakScheme, QsbrScheme, Scheme};
pub use snapshot::Snapshot;
pub use stats::ArrayStats;

// The unified reclamation vocabulary, re-exported so scheme-generic code
// (and out-of-crate `Scheme` implementations) need only this crate.
pub use rcuarray_reclaim::{
    Backpressure, PressureConfig, Reclaim, ReclaimStats, Retired, StallPolicy,
};

// Fault-injection vocabulary, re-exported so applications handling
// `try_resize` errors or configuring retries need only this crate.
pub use rcuarray_runtime::{CommError, FaultPlan, RetryPolicy};
