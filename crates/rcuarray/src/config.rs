//! Array configuration: block size, EBR protocol ordering, accounting,
//! retry policy.

use rcuarray_ebr::OrderingMode;
use rcuarray_reclaim::{PressureConfig, StallPolicy};
use rcuarray_runtime::RetryPolicy;

/// The paper's benchmarks resize "in increments of 1024" with blocks of
/// that size; this is the default `BlockSize`.
pub const DEFAULT_BLOCK_SIZE: usize = 1024;

/// Construction-time knobs for an `RcuArray`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Elements per block (`BlockSize` in Listing 1).
    pub block_size: usize,
    /// Memory ordering of the EBR reader protocol (ignored under QSBR).
    pub ordering: OrderingMode,
    /// Whether element accesses are charged through the cluster's
    /// communication layer. Accounting costs one relaxed counter update
    /// per access, identical across all array variants; disable it only
    /// for microbenchmarks that isolate the reclamation protocol itself.
    pub account_comm: bool,
    /// How fault-injected communication failures are retried (consulted by
    /// `read`/`write`/`resize` only when the cluster's fault plan is
    /// enabled; a healthy cluster never enters the retry path).
    pub retry: RetryPolicy,
    /// Maximum deferred reclamations executed per quiescence point under
    /// the amortized scheme (`AmortizedScheme`); other schemes ignore it.
    /// Bounds the latency spike a rarely-quiescing thread pays for its
    /// backlog (DEBRA-style amortization).
    pub drain_budget: usize,
    /// Memory bound on the reclamation backlog (DESIGN.md §9). Unbounded
    /// by default; with a bound installed, resizes past the high
    /// watermark help reclaim, and past the byte cap they refuse with
    /// `CommError::Backpressure` instead of growing the backlog.
    pub pressure: PressureConfig,
    /// Stalled-reader detection (DESIGN.md §9). Disabled by default;
    /// with a policy installed, a reader that lags the reclamation
    /// protocol beyond the bound is quarantined (QSBR family) or routed
    /// around via evacuation (EBR) so it cannot wedge reclamation.
    pub stall: StallPolicy,
    /// Copies of every block, including the primary (DESIGN.md §15).
    /// `1` (the default) reproduces the paper exactly: one home locale
    /// per block and no replica traffic. `k > 1` places each block on a
    /// primary plus `k - 1` replica locales: writes fan out to replicas
    /// (primary-ack, replica charges drained at checkpoints), reads
    /// fail over to a replica while the primary is `Down`, and the
    /// array survives the loss of up to `k - 1` locales without losing
    /// acknowledged writes. Must not exceed the cluster's locale count
    /// (checked at array construction).
    pub replication_factor: usize,
}

/// Default per-quiesce drain budget for `AmortizedScheme`: large enough
/// that steady-state workloads drain as fast as they defer, small enough
/// to bound a cold checkpoint's latency.
pub const DEFAULT_DRAIN_BUDGET: usize = 64;

impl Default for Config {
    fn default() -> Self {
        Config {
            block_size: DEFAULT_BLOCK_SIZE,
            ordering: OrderingMode::SeqCst,
            account_comm: true,
            retry: RetryPolicy::default(),
            drain_budget: DEFAULT_DRAIN_BUDGET,
            pressure: PressureConfig::unbounded(),
            stall: StallPolicy::disabled(),
            replication_factor: 1,
        }
    }
}

impl Config {
    /// Default configuration with a custom block size.
    pub fn with_block_size(block_size: usize) -> Self {
        Config {
            block_size,
            ..Config::default()
        }
    }

    /// Validate invariants (positive block size, sound ordering).
    pub fn validate(&self) {
        assert!(self.block_size > 0, "block_size must be positive");
        assert!(
            self.ordering.is_sound(),
            "the relaxed ordering mode is measurement-only and cannot \
             protect reclamation"
        );
        assert!(
            self.drain_budget > 0,
            "drain_budget must be positive: a quiesce that can never free \
             anything would leak by construction"
        );
        self.pressure.validate();
        assert!(
            self.replication_factor >= 1,
            "replication_factor counts every copy including the primary; \
             0 would place blocks nowhere"
        );
    }

    /// Round an element count up to a whole number of blocks, in elements.
    /// The paper covers "only expansion by multiples of BlockSize"
    /// (footnote 12); this library rounds other requests up.
    pub fn round_up_to_blocks(&self, elements: usize) -> usize {
        elements.div_ceil(self.block_size) * self.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = Config::default();
        assert_eq!(c.block_size, 1024);
        assert_eq!(c.ordering, OrderingMode::SeqCst);
        assert!(c.account_comm);
        assert_eq!(c.drain_budget, DEFAULT_DRAIN_BUDGET);
        assert!(!c.pressure.is_bounded(), "unbounded backlog by default");
        assert!(!c.stall.detects_lag(), "stall detection off by default");
        c.validate();
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn inverted_pressure_watermark_rejected() {
        let c = Config {
            pressure: PressureConfig {
                max_backlog_bytes: 100,
                high_watermark: 200,
            },
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "drain_budget")]
    fn zero_drain_budget_rejected() {
        let c = Config {
            drain_budget: 0,
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    fn default_replication_is_one_and_zero_is_rejected() {
        assert_eq!(Config::default().replication_factor, 1);
        let c = Config {
            replication_factor: 0,
            ..Config::default()
        };
        let died = std::panic::catch_unwind(move || c.validate());
        assert!(died.is_err(), "rf=0 must fail validation");
    }

    #[test]
    fn round_up() {
        let c = Config::with_block_size(100);
        assert_eq!(c.round_up_to_blocks(0), 0);
        assert_eq!(c.round_up_to_blocks(1), 100);
        assert_eq!(c.round_up_to_blocks(100), 100);
        assert_eq!(c.round_up_to_blocks(101), 200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_rejected() {
        Config::with_block_size(0).validate();
    }

    #[test]
    #[should_panic(expected = "measurement-only")]
    fn relaxed_ordering_rejected() {
        let c = Config {
            ordering: OrderingMode::Relaxed,
            ..Config::default()
        };
        c.validate();
    }
}
