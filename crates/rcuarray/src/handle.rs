//! The per-locale privatized metadata: paper Listing 1's
//! `RCUArrayMetaData`, one instance per locale.
//!
//! Each locale holds its own `GlobalSnapshot` pointer and its own EBR
//! epoch zone (`GlobalEpoch` + `EpochReaders`), so read-side traffic is
//! node-local: "both read and update operations act mostly on node-local
//! metadata, significantly improving their locality" (§III-D).

use crate::element::Element;
use crate::snapshot::{publish_box, Snapshot};
use rcuarray_analysis::atomic::{AtomicPtr, Ordering};
use rcuarray_ebr::{EpochZone, OrderingMode};
use rcuarray_runtime::LocaleId;
use std::ptr::NonNull;

/// One locale's privatized copy of the array metadata.
pub struct LocaleState<T: Element> {
    locale: LocaleId,
    /// The paper's `GlobalSnapshot`: the current immutable metadata
    /// version, published as a raw pointer and reclaimed via EBR or QSBR.
    snapshot: AtomicPtr<Snapshot<T>>,
    /// The paper's `GlobalEpoch` + `EpochReaders` (EBR configurations
    /// only; idle under QSBR).
    zone: EpochZone,
}

// SAFETY: `snapshot` is an atomic pointer to a heap snapshot whose
// reclamation is governed by the zone / QSBR domain; `Snapshot` itself is
// `Send + Sync` (block refs to atomic cells).
unsafe impl<T: Element> Send for LocaleState<T> {}
unsafe impl<T: Element> Sync for LocaleState<T> {}

impl<T: Element> LocaleState<T> {
    /// A fresh state for `locale` holding an empty snapshot.
    pub fn new(locale: LocaleId, ordering: OrderingMode) -> Self {
        LocaleState {
            locale,
            snapshot: AtomicPtr::new(publish_box(Snapshot::empty()).as_ptr()),
            zone: EpochZone::with_mode(ordering),
        }
    }

    /// The locale this instance is privatized to.
    #[inline]
    pub fn locale(&self) -> LocaleId {
        self.locale
    }

    /// This locale's epoch zone.
    #[inline]
    pub fn zone(&self) -> &EpochZone {
        &self.zone
    }

    /// Borrow the current snapshot.
    ///
    /// # Safety
    /// The caller must guarantee the snapshot cannot be reclaimed for the
    /// lifetime of the returned reference: hold an EBR pin on
    /// [`zone`](Self::zone), or be a registered QSBR participant that does
    /// not pass a quiescent point, or hold the array's write lock.
    #[inline]
    pub unsafe fn snapshot_ref(&self) -> &Snapshot<T> {
        // Acquire pairs with the Release publication in `publish`.
        unsafe { &*self.snapshot.load(Ordering::Acquire) }
    }

    /// Publish `new` as the current snapshot, returning the now-unlinked
    /// old snapshot for the caller to reclaim through its scheme.
    ///
    /// Only the resize path calls this, serialized by the cluster-wide
    /// write lock.
    pub fn publish(&self, new: Snapshot<T>) -> NonNull<Snapshot<T>> {
        let new_ptr = publish_box(new);
        let old = self.snapshot.swap(new_ptr.as_ptr(), Ordering::AcqRel);
        // SAFETY: the previous pointer was produced by `publish_box` and
        // is never null.
        unsafe { NonNull::new_unchecked(old) }
    }
}

impl<T: Element> Drop for LocaleState<T> {
    fn drop(&mut self) {
        // Exclusive access: no readers can exist; free the final snapshot.
        let ptr = *self.snapshot.get_mut();
        // SAFETY: published by `publish_box`, unlinked by destruction.
        unsafe { crate::snapshot::reclaim_box(NonNull::new_unchecked(ptr)) };
    }
}

impl<T: Element> std::fmt::Debug for LocaleState<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocaleState")
            .field("locale", &self.locale)
            .field("zone_epoch", &self.zone.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockRegistry};
    use crate::snapshot::reclaim_box;

    #[test]
    fn starts_with_empty_snapshot() {
        let st: LocaleState<u64> = LocaleState::new(LocaleId::new(2), OrderingMode::SeqCst);
        assert_eq!(st.locale(), LocaleId::new(2));
        // SAFETY: no concurrent writer in this test.
        unsafe {
            assert_eq!(st.snapshot_ref().num_blocks(), 0);
        }
    }

    #[test]
    fn publish_swaps_and_returns_old() {
        let st: LocaleState<u64> = LocaleState::new(LocaleId::ZERO, OrderingMode::SeqCst);
        let reg = BlockRegistry::new();
        let b = reg.adopt(Block::new(LocaleId::ZERO, 4));
        let old = st.publish(Snapshot::from_blocks(vec![b], 1));
        // SAFETY: `old` is unlinked; no readers in this test.
        unsafe {
            assert_eq!(old.as_ref().num_blocks(), 0);
            reclaim_box(old);
            assert_eq!(st.snapshot_ref().num_blocks(), 1);
            assert_eq!(st.snapshot_ref().version(), 1);
        }
    }

    #[test]
    fn drop_frees_current_snapshot_without_leak() {
        // Run under the test harness; a leak would show in sanitizers and
        // the double-free would crash. The structural assertion is that
        // drop works after multiple publishes.
        let st: LocaleState<u32> = LocaleState::new(LocaleId::ZERO, OrderingMode::SeqCst);
        let reg = BlockRegistry::new();
        for v in 1..=3u64 {
            let b = reg.adopt(Block::new(LocaleId::ZERO, 2));
            let old = st.publish(Snapshot::from_blocks(vec![b], v));
            // SAFETY: `old` was just unpublished; no reader exists here.
            unsafe { reclaim_box(old) };
        }
        drop(st);
    }
}
