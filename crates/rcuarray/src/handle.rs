//! The per-locale privatized metadata: paper Listing 1's
//! `RCUArrayMetaData`, one instance per locale.
//!
//! Each locale holds its own `GlobalSnapshot` pointer and its own
//! reclamation engine (under EBR, the `GlobalEpoch` + `EpochReaders`
//! zone), so read-side traffic is node-local: "both read and update
//! operations act mostly on node-local metadata, significantly improving
//! their locality" (§III-D). Schemes whose reclamation is a shared
//! service (QSBR) embed a cheap clone of the shared domain instead.

use crate::element::Element;
use crate::snapshot::{publish_box, Snapshot};
use rcuarray_analysis::atomic::{AtomicPtr, Ordering};
use rcuarray_reclaim::Reclaim;
use rcuarray_runtime::LocaleId;
use std::ptr::NonNull;

/// One locale's privatized copy of the array metadata.
pub struct LocaleState<T: Element, R: Reclaim> {
    locale: LocaleId,
    /// The paper's `GlobalSnapshot`: the current immutable metadata
    /// version, published as a raw pointer and reclaimed via `reclaim`.
    snapshot: AtomicPtr<Snapshot<T>>,
    /// This locale's reclamation engine (the paper's `GlobalEpoch` +
    /// `EpochReaders` under EBR; a shared-domain handle under QSBR).
    reclaim: R,
}

// SAFETY: `snapshot` is an atomic pointer to a heap snapshot whose
// reclamation is governed by `reclaim`; `Snapshot` itself is
// `Send + Sync` (block refs to atomic cells), and `Reclaim` requires
// `Send + Sync`.
unsafe impl<T: Element, R: Reclaim> Send for LocaleState<T, R> {}
unsafe impl<T: Element, R: Reclaim> Sync for LocaleState<T, R> {}

impl<T: Element, R: Reclaim> LocaleState<T, R> {
    /// A fresh state for `locale` holding an empty snapshot, reclaiming
    /// through `reclaim`.
    pub fn new(locale: LocaleId, reclaim: R) -> Self {
        LocaleState {
            locale,
            snapshot: AtomicPtr::new(publish_box(Snapshot::empty()).as_ptr()),
            reclaim,
        }
    }

    /// The locale this instance is privatized to.
    #[inline]
    pub fn locale(&self) -> LocaleId {
        self.locale
    }

    /// This locale's reclamation engine.
    #[inline]
    pub fn reclaim(&self) -> &R {
        &self.reclaim
    }

    /// Borrow the current snapshot.
    ///
    /// # Safety
    /// The caller must guarantee the snapshot cannot be reclaimed for the
    /// lifetime of the returned reference: hold a guard from
    /// [`reclaim`](Self::reclaim)`().read_lock()` (and, for schemes whose
    /// guards don't block retirement, avoid quiescent points), or hold
    /// the array's write lock.
    #[inline]
    pub unsafe fn snapshot_ref(&self) -> &Snapshot<T> {
        // Acquire pairs with the Release publication in `publish`.
        unsafe { &*self.snapshot.load(Ordering::Acquire) }
    }

    /// Publish `new` as the current snapshot, returning the now-unlinked
    /// old snapshot for the caller to reclaim through its scheme.
    ///
    /// Only the resize path calls this, serialized by the cluster-wide
    /// write lock.
    pub fn publish(&self, new: Snapshot<T>) -> NonNull<Snapshot<T>> {
        let new_ptr = publish_box(new);
        let old = self.snapshot.swap(new_ptr.as_ptr(), Ordering::AcqRel);
        // SAFETY: the previous pointer was produced by `publish_box` and
        // is never null.
        unsafe { NonNull::new_unchecked(old) }
    }
}

impl<T: Element, R: Reclaim> Drop for LocaleState<T, R> {
    fn drop(&mut self) {
        // Exclusive access: no readers can exist; free the final snapshot.
        let ptr = *self.snapshot.get_mut();
        // SAFETY: published by `publish_box`, unlinked by destruction.
        unsafe { crate::snapshot::reclaim_box(NonNull::new_unchecked(ptr)) };
    }
}

impl<T: Element, R: Reclaim> std::fmt::Debug for LocaleState<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocaleState")
            .field("locale", &self.locale)
            .field("scheme", &self.reclaim.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockRegistry};
    use crate::snapshot::reclaim_box;
    use rcuarray_ebr::{EpochZone, OrderingMode};

    fn state(locale: LocaleId) -> LocaleState<u64, EpochZone> {
        LocaleState::new(locale, EpochZone::with_mode(OrderingMode::SeqCst))
    }

    #[test]
    fn starts_with_empty_snapshot() {
        let st = state(LocaleId::new(2));
        assert_eq!(st.locale(), LocaleId::new(2));
        // SAFETY: no concurrent writer in this test.
        unsafe {
            assert_eq!(st.snapshot_ref().num_blocks(), 0);
        }
    }

    #[test]
    fn publish_swaps_and_returns_old() {
        let st = state(LocaleId::ZERO);
        let reg = BlockRegistry::new();
        let b = reg.adopt(Block::new(LocaleId::ZERO, 4));
        let old = st.publish(Snapshot::from_blocks(vec![b], 1));
        // SAFETY: `old` is unlinked; no readers in this test.
        unsafe {
            assert_eq!(old.as_ref().num_blocks(), 0);
            reclaim_box(old);
            assert_eq!(st.snapshot_ref().num_blocks(), 1);
            assert_eq!(st.snapshot_ref().version(), 1);
        }
    }

    #[test]
    fn drop_frees_current_snapshot_without_leak() {
        // Run under the test harness; a leak would show in sanitizers and
        // the double-free would crash. The structural assertion is that
        // drop works after multiple publishes.
        let st: LocaleState<u32, EpochZone> =
            LocaleState::new(LocaleId::ZERO, EpochZone::with_mode(OrderingMode::SeqCst));
        let reg = BlockRegistry::new();
        for v in 1..=3u64 {
            let b = reg.adopt(Block::new(LocaleId::ZERO, 2));
            let old = st.publish(Snapshot::from_blocks(vec![b], v));
            // SAFETY: `old` was just unpublished; no reader exists here.
            unsafe { reclaim_box(old) };
        }
        drop(st);
    }

    #[test]
    fn works_with_any_reclaim_engine() {
        // The generic parameter is the seam: a state over the leak engine
        // compiles and runs through the same code path.
        let st: LocaleState<u64, rcuarray_reclaim::LeakReclaim> =
            LocaleState::new(LocaleId::ZERO, rcuarray_reclaim::LeakReclaim::new());
        assert_eq!(st.reclaim().name(), "leak");
        // Leak guards are free () tokens.
        st.reclaim().read_lock();
        // SAFETY: nothing retires snapshots in this test.
        unsafe {
            assert_eq!(st.snapshot_ref().num_blocks(), 0);
        }
    }
}
