//! Snapshots: "an immutable version of data" — the RCU-protected metadata.
//!
//! An `RCUArraySnapshot` is "equivalent to an array of blocks where each
//! block is an array with a capacity of BlockSize" (paper Listing 1). The
//! snapshot is what EBR/QSBR reclaim; the blocks it points to are shared —
//! *recycled* — with its successor:
//!
//! > "a clone of a snapshot s will recycle the blocks in s when creating
//! > s′ … each block is recycled by the newer snapshot to ensure that any
//! > updates to the older snapshot is visible via the indirection."
//! > (§III-C, Lemma 6)

use crate::block::BlockRef;
use crate::element::Element;
use std::ptr::NonNull;

/// One immutable version of the array's metadata: an ordered list of
/// block references.
pub struct Snapshot<T: Element> {
    blocks: Vec<BlockRef<T>>,
    /// Version number for diagnostics: how many resizes produced this
    /// snapshot lineage (not part of the algorithm).
    version: u64,
}

impl<T: Element> Snapshot<T> {
    /// The empty snapshot (a zero-capacity array).
    pub fn empty() -> Self {
        Snapshot {
            blocks: Vec::new(),
            version: 0,
        }
    }

    /// A snapshot over the given blocks.
    pub fn from_blocks(blocks: Vec<BlockRef<T>>, version: u64) -> Self {
        Snapshot { blocks, version }
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block at `block_idx`.
    ///
    /// # Panics
    /// Panics when out of range.
    #[inline]
    pub fn block(&self, block_idx: usize) -> BlockRef<T> {
        self.blocks[block_idx]
    }

    /// The block at `block_idx`, or `None` past the end.
    #[inline]
    pub fn try_block(&self, block_idx: usize) -> Option<BlockRef<T>> {
        self.blocks.get(block_idx).copied()
    }

    /// All block refs, in index order.
    #[inline]
    pub fn blocks(&self) -> &[BlockRef<T>] {
        &self.blocks
    }

    /// Lineage version (diagnostics only).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Element capacity assuming every block holds `block_size` elements.
    #[inline]
    pub fn capacity(&self, block_size: usize) -> usize {
        self.blocks.len() * block_size
    }

    /// The recycling clone of §III-C: the new snapshot shares ("recycles")
    /// every existing block by reference and appends `extra` — the old
    /// snapshot becomes a prefix of the new one
    /// (`∀ i ∈ [1..N] : s(i) = s′(i)`, Lemma 6).
    ///
    /// Cost: one pointer copy per block — no element data moves. This is
    /// the property behind Figure 3's ~4× resize advantage over a
    /// deep-copying array.
    pub fn clone_recycled(&self, extra: &[BlockRef<T>]) -> Snapshot<T> {
        let mut blocks = Vec::with_capacity(self.blocks.len() + extra.len());
        blocks.extend_from_slice(&self.blocks);
        blocks.extend_from_slice(extra);
        Snapshot {
            blocks,
            version: self.version + 1,
        }
    }
}

impl<T: Element> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("blocks", &self.blocks.len())
            .field("version", &self.version)
            .finish()
    }
}

/// Allocate a snapshot on the heap and leak it into a raw pointer,
/// ready to be published into an `AtomicPtr` as the `GlobalSnapshot`.
pub fn publish_box<T: Element>(snap: Snapshot<T>) -> NonNull<Snapshot<T>> {
    // SAFETY: Box::into_raw never returns null.
    unsafe { NonNull::new_unchecked(Box::into_raw(Box::new(snap))) }
}

/// Reclaim a snapshot previously produced by [`publish_box`].
///
/// # Safety
/// `ptr` must come from [`publish_box`], must be unpublished (no
/// `AtomicPtr` still exposes it), and every reader that could hold it must
/// have evacuated (EBR drain or QSBR safe-epoch check).
pub unsafe fn reclaim_box<T: Element>(ptr: NonNull<Snapshot<T>>) {
    drop(unsafe { Box::from_raw(ptr.as_ptr()) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockRegistry};
    use rcuarray_runtime::LocaleId;

    fn registry_with(n: usize) -> (BlockRegistry<u64>, Vec<BlockRef<u64>>) {
        let reg = BlockRegistry::new();
        let refs = (0..n)
            .map(|i| reg.adopt(Block::new(LocaleId::new((i % 3) as u32), 4)))
            .collect();
        (reg, refs)
    }

    #[test]
    fn empty_snapshot() {
        let s: Snapshot<u64> = Snapshot::empty();
        assert_eq!(s.num_blocks(), 0);
        assert_eq!(s.capacity(1024), 0);
        assert_eq!(s.version(), 0);
        assert!(s.try_block(0).is_none());
    }

    #[test]
    fn clone_recycled_shares_every_existing_block() {
        let (_reg, refs) = registry_with(3);
        let s = Snapshot::from_blocks(refs.clone(), 0);
        let (_reg2, extra) = registry_with(2);
        let s2 = s.clone_recycled(&extra);
        assert_eq!(s2.num_blocks(), 5);
        for i in 0..3 {
            assert_eq!(
                s.block(i).as_ptr(),
                s2.block(i).as_ptr(),
                "block {i} must be recycled, not copied"
            );
        }
        assert_eq!(s2.version(), 1);
        // Old snapshot untouched.
        assert_eq!(s.num_blocks(), 3);
    }

    #[test]
    fn updates_through_old_snapshot_visible_in_new_lemma6() {
        let (_reg, refs) = registry_with(2);
        let old = Snapshot::from_blocks(refs, 0);
        let new = old.clone_recycled(&[]);
        // Update "through the old snapshot" after the clone…
        // SAFETY: `_reg` (the registry) outlives both snapshots.
        unsafe { old.block(1).get().store(2, 77) };
        // …and it is immediately visible through the new one.
        // SAFETY: as above.
        assert_eq!(unsafe { new.block(1).get().load(2) }, 77);
    }

    #[test]
    fn capacity_scales_with_block_size() {
        let (_reg, refs) = registry_with(4);
        let s = Snapshot::from_blocks(refs, 0);
        assert_eq!(s.capacity(1024), 4096);
        assert_eq!(s.capacity(1), 4);
    }

    #[test]
    fn publish_and_reclaim_round_trip() {
        let (_reg, refs) = registry_with(1);
        let ptr = publish_box(Snapshot::from_blocks(refs, 7));
        // SAFETY: nothing else holds the pointer.
        unsafe {
            assert_eq!(ptr.as_ref().version(), 7);
            reclaim_box(ptr);
        }
    }

    #[test]
    fn blocks_slice_matches_accessors() {
        let (_reg, refs) = registry_with(2);
        let s = Snapshot::from_blocks(refs, 0);
        assert_eq!(s.blocks().len(), 2);
        assert_eq!(s.blocks()[1].as_ptr(), s.block(1).as_ptr());
        assert_eq!(s.try_block(1).unwrap().as_ptr(), s.block(1).as_ptr());
    }
}
