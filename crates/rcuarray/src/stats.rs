//! Aggregate array instrumentation.

use rcuarray_reclaim::ReclaimStats;
use rcuarray_runtime::{CommStats, FaultStats};

/// A snapshot of an array's counters, aggregated across locales.
#[derive(Debug, Clone, Default)]
pub struct ArrayStats {
    /// Capacity in elements.
    pub capacity: usize,
    /// Blocks allocated.
    pub num_blocks: usize,
    /// Blocks homed per locale (index = locale id). Round-robin
    /// distribution keeps these within one of each other.
    pub blocks_per_locale: Vec<usize>,
    /// Resize operations performed.
    pub resizes: u64,
    /// Resize attempts that aborted (fault, timeout or panic) and were
    /// rolled back; always zero on a healthy cluster.
    pub aborted_resizes: u64,
    /// Reads whose communication charge failed even after retries and
    /// were served from the locale-local snapshot instead.
    pub fallback_reads: u64,
    /// Writes whose communication charge failed even after retries; the
    /// store still landed in the (simulated shared-memory) block.
    pub degraded_writes: u64,
    /// Reads served from a replica block because the primary's home
    /// locale was not `Up` in the membership view (always zero at
    /// `replication_factor = 1`).
    pub failover_reads: u64,
    /// Bytes copied to restore replication after locale loss (repair)
    /// or to refresh a rejoining locale's stale copies (catch-up).
    pub rereplicated_bytes: u64,
    /// Deferred replica-write charge (bytes) not yet drained by a
    /// checkpoint — the bounded replica lag of DESIGN.md §15.
    pub replica_lag_bytes: u64,
    /// Reclamation counters in the scheme-neutral vocabulary, folded over
    /// every locale's engine with [`ReclaimStats::merge`]: per-locale
    /// engines (EBR zones, leak counters) sum; clones of one shared
    /// domain (QSBR family) report the domain's numbers once.
    pub reclaim: ReclaimStats,
    /// Cluster communication counters at the time of the call.
    pub comm: CommStats,
    /// Cluster fault accounting (attempted/failed/retried) at the time of
    /// the call; all zeros without an enabled fault plan.
    pub fault: FaultStats,
}

impl ArrayStats {
    /// Max-min spread of the per-locale block distribution; round-robin
    /// guarantees `<= 1`.
    pub fn block_imbalance(&self) -> usize {
        let max = self.blocks_per_locale.iter().copied().max().unwrap_or(0);
        let min = self.blocks_per_locale.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// Retry attempts charged across the cluster.
    pub fn retries(&self) -> u64 {
        self.fault.retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_balanced_histogram() {
        let s = ArrayStats {
            blocks_per_locale: vec![3, 3, 2],
            ..ArrayStats::default()
        };
        assert_eq!(s.block_imbalance(), 1);
    }

    #[test]
    fn imbalance_of_empty_histogram_is_zero() {
        assert_eq!(ArrayStats::default().block_imbalance(), 0);
    }
}
