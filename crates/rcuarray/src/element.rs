//! Element storage: the [`Element`] trait maps a plain value type onto an
//! atomic in-memory representation.
//!
//! The paper's benchmarks perform plain assignments into the array from
//! many tasks at once; Chapel leaves racy plain stores defined enough for
//! a benchmark, Rust does not. To keep the paper's key performance
//! property — *"updates … share the same performance as reads"*: one load
//! or one store per operation, no locks, no CAS — elements are stored in
//! their atomic representation and accessed with `Relaxed` loads/stores.
//! A racy benchmark then has well-defined (if unordered) behaviour, and
//! the cost per access stays a single memory instruction.
//!
//! Implemented for all integer primitives, `usize`/`isize`, `bool`, `f32`
//! and `f64` (floats round-trip through their bit patterns).

use rcuarray_analysis::atomic::{
    AtomicBool, AtomicI16, AtomicI32, AtomicI64, AtomicI8, AtomicIsize, AtomicU16, AtomicU32,
    AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

/// A value type storable in an `RcuArray`.
///
/// `Repr` is the in-memory cell; loads and stores are `Relaxed`: element
/// accesses carry no synchronization of their own (snapshot publication
/// does the ordering, exactly as in the paper where element PUT/GET are
/// plain network operations).
pub trait Element: Copy + Default + Send + Sync + 'static {
    /// Atomic in-memory representation of one element.
    type Repr: Send + Sync + 'static;

    /// A cell holding `v`.
    fn new_repr(v: Self) -> Self::Repr;

    /// Read the cell.
    fn load(r: &Self::Repr) -> Self;

    /// Overwrite the cell.
    fn store(r: &Self::Repr, v: Self);

    /// Atomically replace `current` with `new` if the cell still holds
    /// `current` (bitwise comparison for floats). Returns `Ok(current)`
    /// on success and `Err(actual)` on failure.
    ///
    /// Element CAS is *not* used by RCUArray itself (its reads/updates
    /// are single loads/stores, per the paper's cost model); it exists so
    /// higher-level structures built on the array — like the distributed
    /// table of §VI — can claim slots race-freely.
    fn compare_exchange(r: &Self::Repr, current: Self, new: Self) -> Result<Self, Self>;

    /// Size in bytes moved per element access (for communication
    /// accounting).
    #[inline]
    fn byte_size() -> usize {
        std::mem::size_of::<Self>()
    }
}

macro_rules! impl_element_int {
    ($($ty:ty => $atomic:ty),* $(,)?) => {$(
        impl Element for $ty {
            type Repr = $atomic;

            #[inline]
            fn new_repr(v: Self) -> Self::Repr {
                <$atomic>::new(v)
            }

            #[inline]
            fn load(r: &Self::Repr) -> Self {
                r.load(Ordering::Relaxed)
            }

            #[inline]
            fn store(r: &Self::Repr, v: Self) {
                r.store(v, Ordering::Relaxed)
            }

            #[inline]
            fn compare_exchange(r: &Self::Repr, current: Self, new: Self) -> Result<Self, Self> {
                r.compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
            }
        }
    )*};
}

impl_element_int! {
    u8 => AtomicU8,
    u16 => AtomicU16,
    u32 => AtomicU32,
    u64 => AtomicU64,
    usize => AtomicUsize,
    i8 => AtomicI8,
    i16 => AtomicI16,
    i32 => AtomicI32,
    i64 => AtomicI64,
    isize => AtomicIsize,
    bool => AtomicBool,
}

impl Element for f32 {
    type Repr = AtomicU32;

    #[inline]
    fn new_repr(v: Self) -> Self::Repr {
        AtomicU32::new(v.to_bits())
    }

    #[inline]
    fn load(r: &Self::Repr) -> Self {
        f32::from_bits(r.load(Ordering::Relaxed))
    }

    #[inline]
    fn store(r: &Self::Repr, v: Self) {
        r.store(v.to_bits(), Ordering::Relaxed)
    }

    #[inline]
    fn compare_exchange(r: &Self::Repr, current: Self, new: Self) -> Result<Self, Self> {
        r.compare_exchange(
            current.to_bits(),
            new.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .map(f32::from_bits)
        .map_err(f32::from_bits)
    }
}

impl Element for f64 {
    type Repr = AtomicU64;

    #[inline]
    fn new_repr(v: Self) -> Self::Repr {
        AtomicU64::new(v.to_bits())
    }

    #[inline]
    fn load(r: &Self::Repr) -> Self {
        f64::from_bits(r.load(Ordering::Relaxed))
    }

    #[inline]
    fn store(r: &Self::Repr, v: Self) {
        r.store(v.to_bits(), Ordering::Relaxed)
    }

    #[inline]
    fn compare_exchange(r: &Self::Repr, current: Self, new: Self) -> Result<Self, Self> {
        r.compare_exchange(
            current.to_bits(),
            new.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .map(f64::from_bits)
        .map_err(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Element + PartialEq + std::fmt::Debug>(vals: &[T]) {
        for &v in vals {
            let cell = T::new_repr(v);
            assert_eq!(T::load(&cell), v);
            let cell2 = T::new_repr(T::default());
            T::store(&cell2, v);
            assert_eq!(T::load(&cell2), v);
        }
    }

    #[test]
    fn integers_round_trip() {
        round_trip(&[0u64, 1, u64::MAX]);
        round_trip(&[0i64, -1, i64::MIN, i64::MAX]);
        round_trip(&[0u8, 255]);
        round_trip(&[0i8, -128, 127]);
        round_trip(&[0u16, u16::MAX]);
        round_trip(&[0i16, i16::MIN]);
        round_trip(&[0u32, u32::MAX]);
        round_trip(&[0i32, i32::MIN]);
        round_trip(&[0usize, usize::MAX]);
        round_trip(&[0isize, isize::MIN]);
    }

    #[test]
    fn bools_round_trip() {
        round_trip(&[true, false]);
    }

    #[test]
    fn floats_round_trip_including_specials() {
        round_trip(&[0.0f32, -0.0, 1.5, f32::MIN, f32::MAX, f32::INFINITY]);
        round_trip(&[0.0f64, -0.0, 2.25, f64::MIN, f64::MAX, f64::NEG_INFINITY]);
        // NaN: bit pattern must survive even though NaN != NaN.
        let nan = f64::NAN;
        let cell = f64::new_repr(nan);
        assert!(f64::load(&cell).is_nan());
    }

    #[test]
    fn float_cas_compares_nan_by_bit_pattern() {
        // CAS on floats is bitwise (module docs): a cell holding NaN *can*
        // be claimed by passing the same NaN as `current`, even though
        // NaN != NaN under IEEE comparison.
        let cell = f64::new_repr(f64::NAN);
        let won = f64::compare_exchange(&cell, f64::NAN, 1.0);
        assert!(won.is_ok(), "identical NaN bit patterns must match");
        assert_eq!(f64::load(&cell), 1.0);

        // A NaN with a *different* payload is a different bit pattern and
        // must not match, and the reported actual must round-trip the
        // stored payload exactly.
        let payload = f32::from_bits(f32::NAN.to_bits() ^ 1);
        let cell = f32::new_repr(payload);
        let lost = f32::compare_exchange(&cell, f32::NAN, 2.0);
        let actual = lost.expect_err("differing NaN payloads must not match");
        assert_eq!(actual.to_bits(), payload.to_bits());
        assert_eq!(f32::load(&cell).to_bits(), payload.to_bits());
    }

    #[test]
    fn float_cas_distinguishes_negative_zero() {
        // IEEE says 0.0 == -0.0, but their bit patterns differ; bitwise
        // CAS must treat them as distinct values...
        let cell = f64::new_repr(-0.0);
        let lost = f64::compare_exchange(&cell, 0.0, 3.0);
        let actual = lost.expect_err("+0.0 must not claim a -0.0 cell");
        assert!(actual.is_sign_negative());
        assert_eq!(f64::load(&cell).to_bits(), (-0.0f64).to_bits());

        // ...and the exact-sign zero must succeed, for both widths.
        assert!(f64::compare_exchange(&cell, -0.0, 4.0).is_ok());
        assert_eq!(f64::load(&cell), 4.0);
        let cell = f32::new_repr(0.0);
        assert!(f32::compare_exchange(&cell, -0.0, 5.0).is_err());
        assert!(f32::compare_exchange(&cell, 0.0, 5.0).is_ok());
        assert_eq!(f32::load(&cell), 5.0);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(u8::byte_size(), 1);
        assert_eq!(u64::byte_size(), 8);
        assert_eq!(f32::byte_size(), 4);
        assert_eq!(bool::byte_size(), 1);
    }

    #[test]
    fn default_is_zeroish() {
        assert_eq!(u64::load(&u64::new_repr(u64::default())), 0);
        assert!(!bool::load(&bool::new_repr(bool::default())));
        assert_eq!(f64::load(&f64::new_repr(f64::default())), 0.0);
    }

    #[test]
    fn concurrent_relaxed_stores_are_defined() {
        let cell = std::sync::Arc::new(u64::new_repr(0));
        std::thread::scope(|s| {
            for t in 1..=4u64 {
                let cell = std::sync::Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..1000 {
                        u64::store(&cell, t);
                    }
                });
            }
        });
        let v = u64::load(&cell);
        assert!(
            (1..=4).contains(&v),
            "final value must be one of the writes"
        );
    }
}
