//! Replicated block placement: the availability layer's map from logical
//! blocks to locales (DESIGN.md §15).
//!
//! The paper homes every block on exactly one locale (round-robin, §VI).
//! This module generalizes that decision into a *placement map*: each
//! logical block owns a [`BlockGroup`] — the snapshot ("primary") block
//! plus `replication_factor - 1` replica blocks on distinct locales. All
//! home selection in the crate happens here (enforced by lint rule 10
//! `raw-placement`): the round-robin cursor moved out of `array.rs`, and
//! with `replication_factor == 1` the plans it produces are bit-identical
//! to the paper's original sequence.
//!
//! Invariants:
//!
//! * **Entry 0 is pinned.** The first entry of every group is the block
//!   the snapshots reference. It is never replaced — that is Lemma 6:
//!   references obtained from any snapshot stay valid forever. Repair
//!   only ever swaps *replica* entries (index ≥ 1).
//! * **Groups are append-only under the write lock** (one per logical
//!   block, in block order) and truncated only by resize rollback or
//!   explicit `truncate`, mirroring the snapshot prefix property.
//! * **Replica writes are lag-accounted, not synchronously charged.** A
//!   fanned-out store lands immediately (blocks are shared memory in the
//!   simulation) but its communication charge is deferred into a
//!   per-locale lag ledger, drained at QSBR checkpoints or when the lag
//!   passes the pressure watermark — the "primary-ack, bounded replica
//!   lag" contract.

use crate::block::BlockRef;
use crate::element::Element;
use rcuarray_analysis::atomic::{AtomicU64, Ordering};
use rcuarray_analysis::sync::Mutex;
use rcuarray_runtime::{
    CommError, LocaleId, Membership, MembershipView, OpKind, RoundRobinCounter,
};

/// The placement of one logical block: the snapshot block first (pinned,
/// Lemma 6), then `replication_factor - 1` replica blocks on distinct
/// locales.
pub struct BlockGroup<T: Element> {
    /// `(home locale, block)` per copy; `entries[0]` is the snapshot
    /// block and is never replaced.
    pub entries: Vec<(LocaleId, BlockRef<T>)>,
}

impl<T: Element> BlockGroup<T> {
    /// The locale the snapshot block lives on.
    #[inline]
    pub fn primary_home(&self) -> LocaleId {
        self.entries[0].0
    }

    /// True when some copy of this group is homed on `locale`.
    pub fn hosts(&self, locale: LocaleId) -> bool {
        self.entries.iter().any(|(l, _)| *l == locale)
    }

    /// Replica entries (everything but the pinned snapshot block).
    #[inline]
    pub fn replicas(&self) -> &[(LocaleId, BlockRef<T>)] {
        &self.entries[1..]
    }

    /// Where repair homes the fresh replica for a copy stranded on
    /// `dead`: the first `Up` locale past it (round-robin order) not
    /// already hosting a copy of this group. `None` means no spare
    /// locale exists and the group stays under-replicated — degraded,
    /// not corrupted.
    pub fn repair_target(&self, dead: LocaleId, membership: &Membership) -> Option<LocaleId> {
        let n = membership.num_locales();
        let mut target = dead.next_round_robin(n);
        for _ in 0..n {
            if membership.is_up(target) && !self.hosts(target) {
                return Some(target);
            }
            target = target.next_round_robin(n);
        }
        None
    }
}

impl<T: Element> std::fmt::Debug for BlockGroup<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockGroup")
            .field(
                "homes",
                &self.entries.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A home assignment for a run of new blocks, computed against one
/// membership view. Produced by [`PlacementMap::plan_homes`]; the cursor
/// only advances when the resize that used the plan succeeds
/// ([`PlacementMap::commit_cursor`]), preserving the paper's
/// Algorithm 3 line 28 semantics under rollback.
pub struct PlacementPlan {
    /// Per new block: the home locales, primary first, all distinct.
    pub homes: Vec<Vec<LocaleId>>,
    final_cursor: LocaleId,
}

/// The crate's single source of block-home decisions plus the replica
/// ledger. One per array, shared across locales.
pub struct PlacementMap<T: Element> {
    rf: usize,
    num_locales: usize,
    /// The paper's `locId` cursor (Algorithm 3), moved here from the
    /// array so every locale-indexed placement decision is in one place.
    cursor: RoundRobinCounter,
    groups: Mutex<Vec<BlockGroup<T>>>,
    /// Deferred replica-write charges, bytes per destination locale.
    lag: Vec<AtomicU64>,
    lag_total: AtomicU64,
}

impl<T: Element> PlacementMap<T> {
    /// An empty map for `num_locales` locales at replication factor `rf`
    /// (total copies, including the primary).
    pub fn new(rf: usize, num_locales: usize) -> Self {
        assert!(rf >= 1, "replication factor counts the primary");
        assert!(
            rf <= num_locales,
            "replication_factor ({rf}) cannot exceed the locale count \
             ({num_locales}): copies must live on distinct locales"
        );
        PlacementMap {
            rf,
            num_locales,
            cursor: RoundRobinCounter::new(num_locales),
            groups: Mutex::new(Vec::new()),
            lag: (0..num_locales).map(|_| AtomicU64::new(0)).collect(),
            lag_total: AtomicU64::new(0),
        }
    }

    /// Total copies per block, including the primary.
    #[inline]
    pub fn replication_factor(&self) -> usize {
        self.rf
    }

    /// True when blocks carry replicas (`rf > 1`); the array's hot paths
    /// gate every availability branch on this so `rf == 1` stays the
    /// paper's exact code path.
    #[inline]
    pub fn is_replicated(&self) -> bool {
        self.rf > 1
    }

    /// Number of placed logical blocks.
    pub fn num_groups(&self) -> usize {
        self.groups.lock().len()
    }

    /// Plan homes for `nblocks` new logical blocks against `view`:
    /// primaries round-robin from the cursor over in-view locales, each
    /// followed by `rf - 1` distinct in-view replica homes. Fails with
    /// [`CommError::LocaleDown`] when fewer than `rf` locales are in
    /// view. Does not advance the cursor — call
    /// [`commit_cursor`](Self::commit_cursor) once the resize publishes.
    pub fn plan_homes(
        &self,
        nblocks: usize,
        view: &MembershipView,
    ) -> Result<PlacementPlan, CommError> {
        let n = self.num_locales;
        let eligible = (0..n)
            .filter(|&i| view.in_view(LocaleId::new(i as u32)))
            .count();
        if eligible < self.rf {
            // Not enough live homes for the requested copies; the first
            // non-member is as good a culprit as any for the report.
            let culprit = (0..n)
                .map(|i| LocaleId::new(i as u32))
                .find(|l| !view.in_view(*l))
                .unwrap_or(LocaleId::ZERO);
            return Err(CommError::LocaleDown {
                op: OpKind::Put,
                locale: culprit,
            });
        }
        let mut cur = self.cursor.peek();
        let mut homes = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            // First in-view locale at or after the cursor becomes the
            // primary; with every locale in view this is exactly the
            // paper's round-robin.
            while !view.in_view(cur) {
                cur = cur.next_round_robin(n);
            }
            let primary = cur;
            cur = cur.next_round_robin(n);
            let mut group = Vec::with_capacity(self.rf);
            group.push(primary);
            let mut scan = primary;
            while group.len() < self.rf {
                scan = scan.next_round_robin(n);
                if view.in_view(scan) && !group.contains(&scan) {
                    group.push(scan);
                }
            }
            homes.push(group);
        }
        Ok(PlacementPlan {
            homes,
            final_cursor: cur,
        })
    }

    /// Store the cursor position a successful resize ended on (paper
    /// Algorithm 3 line 28). Skipped on rollback, so an aborted resize
    /// leaves placement untouched.
    pub fn commit_cursor(&self, plan: &PlacementPlan) {
        self.cursor.set(plan.final_cursor);
    }

    /// Append the group for the next logical block (under the array's
    /// write lock, in block order).
    pub fn append_group(&self, entries: Vec<(LocaleId, BlockRef<T>)>) {
        debug_assert_eq!(entries.len(), self.rf, "one entry per copy");
        self.groups.lock().push(BlockGroup { entries });
    }

    /// Drop groups past `keep` (resize rollback / truncate), mirroring
    /// the snapshot prefix that survives.
    pub fn truncate(&self, keep: usize) {
        let mut g = self.groups.lock();
        if g.len() > keep {
            g.truncate(keep);
        }
    }

    /// Run `f` with the group list locked. Write fan-out, repair and
    /// catch-up all funnel through this one lock, which is what makes
    /// "copy then swap" repair atomic with respect to concurrent
    /// replica stores (no lost updates on a freshly copied replica).
    pub(crate) fn with_groups<R>(&self, f: impl FnOnce(&mut Vec<BlockGroup<T>>) -> R) -> R {
        f(&mut self.groups.lock())
    }

    /// A live copy of `block_idx` to serve a read whose primary home is
    /// not `Up`: the first replica on an `Up` locale, else the first on
    /// an in-view (Suspect) locale. `None` means every replica home is
    /// out too — the caller degrades to the local snapshot, exactly the
    /// pre-replication behavior.
    pub fn failover_target(
        &self,
        block_idx: usize,
        membership: &Membership,
    ) -> Option<(LocaleId, BlockRef<T>)> {
        let groups = self.groups.lock();
        let group = groups.get(block_idx)?;
        let view = membership.view();
        group
            .replicas()
            .iter()
            .find(|(l, _)| membership.is_up(*l))
            .or_else(|| group.replicas().iter().find(|(l, _)| view.in_view(*l)))
            .copied()
    }

    /// Record `bytes` of deferred replica-write charge destined for
    /// `locale`. Returns the new total outstanding lag.
    pub fn add_lag(&self, locale: LocaleId, bytes: u64) -> u64 {
        self.lag[locale.index()].fetch_add(bytes, Ordering::Relaxed);
        self.lag_total.fetch_add(bytes, Ordering::Relaxed) + bytes
    }

    /// Outstanding replica-write charge not yet drained.
    pub fn lag_bytes(&self) -> u64 {
        self.lag_total.load(Ordering::Relaxed)
    }

    /// Take the whole lag ledger for draining: `(locale, bytes)` for
    /// every locale with outstanding charge, zeroing the ledger.
    pub fn take_lag(&self) -> Vec<(LocaleId, u64)> {
        let mut out = Vec::new();
        for (i, slot) in self.lag.iter().enumerate() {
            let bytes = slot.swap(0, Ordering::Relaxed);
            if bytes > 0 {
                self.lag_total.fetch_sub(bytes, Ordering::Relaxed);
                out.push((LocaleId::new(i as u32), bytes));
            }
        }
        out
    }
}

impl<T: Element> std::fmt::Debug for PlacementMap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementMap")
            .field("replication_factor", &self.rf)
            .field("groups", &self.num_groups())
            .field("lag_bytes", &self.lag_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockRegistry};

    fn view_all_up(n: usize) -> MembershipView {
        Membership::new(n).view()
    }

    fn view_with_down(n: usize, down: u32) -> (Membership, MembershipView) {
        let m = Membership::new(n);
        let l = LocaleId::new(down);
        for _ in 0..2 {
            m.record_probe(l, false);
        }
        let v = m.view();
        (m, v)
    }

    #[test]
    fn rf1_plans_reproduce_the_papers_round_robin() {
        let map: PlacementMap<u64> = PlacementMap::new(1, 3);
        let plan = map.plan_homes(4, &view_all_up(3)).unwrap();
        let primaries: Vec<u32> = plan.homes.iter().map(|g| g[0].raw()).collect();
        assert_eq!(primaries, vec![0, 1, 2, 0]);
        map.commit_cursor(&plan);
        let next = map.plan_homes(2, &view_all_up(3)).unwrap();
        let primaries: Vec<u32> = next.homes.iter().map(|g| g[0].raw()).collect();
        assert_eq!(
            primaries,
            vec![1, 2],
            "cursor resumes where the last resize ended"
        );
    }

    #[test]
    fn uncommitted_plans_leave_the_cursor_alone() {
        let map: PlacementMap<u64> = PlacementMap::new(1, 3);
        let _abandoned = map.plan_homes(2, &view_all_up(3)).unwrap();
        let plan = map.plan_homes(1, &view_all_up(3)).unwrap();
        assert_eq!(
            plan.homes[0][0],
            LocaleId::new(0),
            "rollback keeps the cursor"
        );
    }

    #[test]
    fn replicas_land_on_distinct_in_view_locales() {
        let map: PlacementMap<u64> = PlacementMap::new(2, 3);
        let plan = map.plan_homes(3, &view_all_up(3)).unwrap();
        for g in &plan.homes {
            assert_eq!(g.len(), 2);
            assert_ne!(g[0], g[1], "copies must live on distinct locales");
        }
        assert_eq!(plan.homes[0], vec![LocaleId::new(0), LocaleId::new(1)]);
        assert_eq!(plan.homes[1], vec![LocaleId::new(1), LocaleId::new(2)]);
    }

    #[test]
    fn down_locales_are_skipped_by_the_plan() {
        let (_m, view) = view_with_down(3, 1);
        let map: PlacementMap<u64> = PlacementMap::new(2, 3);
        let plan = map.plan_homes(2, &view).unwrap();
        for g in &plan.homes {
            assert!(
                !g.contains(&LocaleId::new(1)),
                "down locale must host nothing"
            );
        }
    }

    #[test]
    fn too_few_members_for_rf_is_locale_down() {
        let (_m, view) = view_with_down(2, 1);
        let map: PlacementMap<u64> = PlacementMap::new(2, 2);
        assert!(matches!(
            map.plan_homes(1, &view),
            Err(CommError::LocaleDown { .. })
        ));
    }

    #[test]
    fn failover_prefers_up_replicas_and_degrades_to_none() {
        let reg: BlockRegistry<u64> = BlockRegistry::new();
        let map: PlacementMap<u64> = PlacementMap::new(2, 3);
        let primary = reg.adopt(Block::new(LocaleId::new(0), 4));
        let replica = reg.adopt(Block::new(LocaleId::new(1), 4));
        map.append_group(vec![
            (LocaleId::new(0), primary),
            (LocaleId::new(1), replica),
        ]);

        let m = Membership::new(3);
        let (loc, bref) = map.failover_target(0, &m).expect("replica is up");
        assert_eq!(loc, LocaleId::new(1));
        assert_eq!(bref.as_ptr(), replica.as_ptr());

        // Replica down too: nothing to fail over to.
        for _ in 0..2 {
            m.record_probe(LocaleId::new(1), false);
        }
        assert!(map.failover_target(0, &m).is_none());
        // Out-of-range block: no group, no target.
        assert!(map.failover_target(9, &m).is_none());
    }

    #[test]
    fn lag_ledger_accumulates_and_drains_to_zero() {
        let map: PlacementMap<u64> = PlacementMap::new(2, 2);
        assert_eq!(map.add_lag(LocaleId::new(1), 64), 64);
        assert_eq!(map.add_lag(LocaleId::new(1), 64), 128);
        assert_eq!(map.add_lag(LocaleId::new(0), 8), 136);
        assert_eq!(map.lag_bytes(), 136);
        let mut drained = map.take_lag();
        drained.sort_by_key(|(l, _)| l.index());
        assert_eq!(
            drained,
            vec![(LocaleId::new(0), 8), (LocaleId::new(1), 128)]
        );
        assert_eq!(map.lag_bytes(), 0);
        assert!(map.take_lag().is_empty(), "ledger drains exactly once");
    }

    #[test]
    fn truncate_drops_rolled_back_groups_only() {
        let reg: BlockRegistry<u64> = BlockRegistry::new();
        let map: PlacementMap<u64> = PlacementMap::new(1, 2);
        for i in 0..3u32 {
            let b = reg.adopt(Block::new(LocaleId::new(i % 2), 4));
            map.append_group(vec![(LocaleId::new(i % 2), b)]);
        }
        map.truncate(2);
        assert_eq!(map.num_groups(), 2);
        map.truncate(5);
        assert_eq!(map.num_groups(), 2, "truncate never grows");
    }

    #[test]
    #[should_panic(expected = "distinct locales")]
    fn rf_beyond_cluster_size_rejected() {
        let _: PlacementMap<u64> = PlacementMap::new(3, 2);
    }
}
