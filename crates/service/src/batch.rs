//! Pure batching decisions, factored out of the worker loop so the
//! deterministic checker harness (`service_harness.rs`) and unit tests
//! can exercise them without threads or clocks.

use std::time::Duration;

/// When a worker flushes its coalescing buffer: at `max_batch` requests
/// or once the oldest pending request has waited `max_delay`, whichever
/// comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush at this many coalesced requests.
    pub max_batch: usize,
    /// Flush once the oldest pending request has waited this long.
    pub max_delay: Duration,
}

impl BatchPolicy {
    /// Whether a worker holding `pending` requests whose oldest has
    /// waited `oldest_wait` should execute now rather than keep
    /// coalescing.
    pub fn should_flush(&self, pending: usize, oldest_wait: Duration) -> bool {
        pending >= self.max_batch || oldest_wait >= self.max_delay
    }
}

/// Deadline-based shedding: a request that already waited past its
/// deadline is dropped at dequeue — executing it would burn capacity on
/// an answer the caller has given up on.
pub fn is_expired(waited: Duration, deadline: Duration) -> bool {
    waited > deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_at_batch_size_or_delay() {
        let p = BatchPolicy {
            max_batch: 4,
            max_delay: Duration::from_millis(2),
        };
        assert!(!p.should_flush(3, Duration::from_millis(1)));
        assert!(p.should_flush(4, Duration::ZERO), "size bound");
        assert!(p.should_flush(1, Duration::from_millis(2)), "delay bound");
    }

    #[test]
    fn expiry_is_strict() {
        let d = Duration::from_millis(5);
        assert!(!is_expired(d, d), "exactly at the deadline still runs");
        assert!(is_expired(d + Duration::from_nanos(1), d));
    }
}
