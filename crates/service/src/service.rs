//! The service core: per-locale worker pools, bounded admission queues,
//! adaptive batch execution (DESIGN.md §11).

use crate::batch::{self, BatchPolicy};
use crate::client::Client;
use crate::metrics;
use crate::queue::{BoundedQueue, PopResult};
use crate::request::{Request, Response};
use crate::ticket::{Ticket, TicketSlot};
use rcuarray::{Element, RcuArray, Scheme};
use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_analysis::thread::{self, JoinHandle};
use rcuarray_runtime::{task, CommError, CommMessage, LocaleId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads per locale (each with its own bounded queue).
    pub workers_per_locale: usize,
    /// Hard capacity of each worker's admission queue; a full queue
    /// refuses with [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Flush a worker's coalescing buffer at this many requests.
    pub max_batch: usize,
    /// Flush once the oldest coalesced request has waited this long.
    pub max_delay: Duration,
    /// Requests that wait in queue longer than this are shed at dequeue
    /// with [`Response::Shed`] instead of being executed.
    pub deadline: Duration,
    /// The `retry_after` hint attached to [`Response::Overloaded`].
    pub retry_after: Duration,
    /// How long an idle worker parks between queue polls; each wakeup
    /// also runs a `checkpoint()` so idle workers never gate reclamation.
    pub idle_park: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers_per_locale: 1,
            queue_capacity: 256,
            max_batch: 32,
            max_delay: Duration::from_micros(200),
            deadline: Duration::from_millis(50),
            retry_after: Duration::from_millis(1),
            idle_park: Duration::from_millis(5),
        }
    }
}

impl ServiceConfig {
    /// The flush policy the worker loop follows.
    pub fn batch_policy(&self) -> BatchPolicy {
        BatchPolicy {
            max_batch: self.max_batch,
            max_delay: self.max_delay,
        }
    }

    fn validate(&self) {
        assert!(
            self.workers_per_locale >= 1,
            "need at least one worker per locale"
        );
        assert!(self.queue_capacity >= 1, "need queue capacity >= 1");
        assert!(self.max_batch >= 1, "need max_batch >= 1");
    }
}

/// One queued request: the ask, where to answer, and when it was
/// admitted (for queue-wait accounting and deadline shedding).
pub(crate) struct Envelope<T: Element> {
    req: Request<T>,
    slot: Arc<TicketSlot<T>>,
    enqueued: Instant,
}

/// Shared state between the service handle, its clients, and workers.
pub(crate) struct Core<T: Element, S: Scheme> {
    pub(crate) array: RcuArray<T, S>,
    cfg: ServiceConfig,
    /// One bounded queue per worker, indexed `locale * workers_per_locale + w`.
    queues: Vec<BoundedQueue<Envelope<T>>>,
    /// Round-robin spreader across a locale's worker pool.
    rr: AtomicUsize,
    num_locales: usize,
}

impl<T: Element, S: Scheme> Core<T, S> {
    pub(crate) fn new(array: RcuArray<T, S>, cfg: ServiceConfig) -> Arc<Self> {
        cfg.validate();
        let num_locales = array.cluster().num_locales();
        let queues = (0..num_locales * cfg.workers_per_locale)
            .map(|_| BoundedQueue::with_capacity(cfg.queue_capacity))
            .collect();
        Arc::new(Core {
            array,
            cfg,
            queues,
            rr: AtomicUsize::new(0),
            num_locales,
        })
    }

    /// The locale whose worker pool owns `idx`: block-cyclic, matching
    /// the array's own block placement so a worker mostly touches blocks
    /// homed on its locale.
    fn locale_of(&self, idx: usize) -> usize {
        (idx / self.array.config().block_size) % self.num_locales
    }

    fn queue_for(&self, req: &Request<T>) -> usize {
        let locale = match req {
            Request::Get { idx } | Request::Put { idx, .. } => self.locale_of(*idx),
            Request::BatchGet { indices } => indices.first().map_or(0, |&i| self.locale_of(i)),
            Request::BatchPut { entries } => entries.first().map_or(0, |&(i, _)| self.locale_of(i)),
            // Growth is a whole-array operation; serialize it through
            // locale 0's pool so concurrent grows queue behind each other.
            Request::Grow { .. } => 0,
            Request::Scan { range } => self.locale_of(range.start),
        };
        let spread = self.rr.fetch_add(1, Ordering::SeqCst) % self.cfg.workers_per_locale;
        locale * self.cfg.workers_per_locale + spread
    }

    /// Deliver the hand-off active message for queue `qi`. Returns the
    /// queue that accepted the hand-off — usually `qi` itself, a
    /// surviving locale's pool when `qi`'s home is out of the membership
    /// view and the array is replicated — or `None` when nobody can take
    /// it (the old degrade-to-`Failed` contract, and the only outcome at
    /// `replication_factor = 1`).
    fn route(&self, qi: usize) -> Option<usize> {
        let w = self.cfg.workers_per_locale;
        let home = qi / w;
        let target = LocaleId::new(home as u32);
        let membership = self.array.cluster().membership();
        let replicated = self.array.config().replication_factor > 1;
        // Healthy home: hand off as before. The transport send doubles as
        // the liveness probe — a partitioned link refuses *here*, never
        // hangs. Skipping the detector consult at rf=1 keeps the old
        // code path (and its fault-stream draw sequence) bit-identical.
        if !replicated || membership.is_up(target) {
            let ok = !self.array.config().account_comm
                || task::current_locale() == target
                || self
                    .array
                    .cluster()
                    .send_to(target, CommMessage::RemoteExec)
                    .is_ok();
            if ok {
                return Some(qi);
            }
            if !replicated {
                return None;
            }
        }
        // Failover: walk the ring for the first in-view pool that accepts
        // the hand-off. Deterministic (forward scan from the dead home),
        // so same-seed runs re-route identically. The array layer then
        // serves the data itself from a replica block.
        let t0 = Instant::now();
        for step in 1..self.num_locales {
            let cand = (home + step) % self.num_locales;
            let loc = LocaleId::new(cand as u32);
            if !membership.is_up(loc) {
                continue;
            }
            let ok = !self.array.config().account_comm
                || task::current_locale() == loc
                || self
                    .array
                    .cluster()
                    .send_to(loc, CommMessage::RemoteExec)
                    .is_ok();
            if ok {
                metrics::FAILOVERS.inc();
                metrics::FAILOVER_ROUTE_NS.record(t0.elapsed().as_nanos() as u64);
                return Some(cand * w + qi % w);
            }
        }
        None
    }

    /// Admit `req` or refuse it. Always returns a ticket; a refused
    /// request's ticket is already completed with
    /// [`Response::Overloaded`] (full queue) or [`Response::Failed`]
    /// (no reachable worker pool).
    pub(crate) fn submit(&self, req: Request<T>) -> Ticket<T> {
        metrics::REQUESTS.inc();
        let (ticket, slot) = Ticket::new();
        // Handing the request to another locale's worker pool is an
        // active message through the transport. With replication the
        // hand-off fails over to a surviving pool; without it, a dead
        // link degrades the answer (`Failed`) rather than availability —
        // the client gets an immediate error, never a hang.
        let qi = match self.route(self.queue_for(&req)) {
            Some(qi) => qi,
            None => {
                metrics::FAILURES.inc();
                slot.complete(Response::Failed);
                return ticket;
            }
        };
        let env = Envelope {
            req,
            slot,
            enqueued: Instant::now(),
        };
        match self.queues[qi].try_push(env) {
            Ok(()) => metrics::QUEUE_DEPTH.add(1),
            Err(env) => {
                metrics::OVERLOADED.inc();
                env.slot.complete(Response::Overloaded {
                    retry_after: self.cfg.retry_after,
                });
            }
        }
        ticket
    }

    /// One worker-loop step on queue `qi`: park for work, coalesce a
    /// batch, execute it. Returns `false` once the queue is closed and
    /// drained. Factored out of [`worker_loop`] so tests and the checker
    /// harness can single-step a worker without a thread.
    pub(crate) fn poll_once(&self, qi: usize) -> bool {
        let q = &self.queues[qi];
        let first = match q.pop_timeout(self.cfg.idle_park) {
            PopResult::Closed => return false,
            PopResult::TimedOut => {
                // Idle: announce quiescence so this worker never gates
                // reclamation of blocks retired by resizes elsewhere.
                self.array.checkpoint();
                return true;
            }
            PopResult::Item(env) => env,
        };
        let policy = self.cfg.batch_policy();
        // `max_delay` bounds the *coalescing* delay this worker adds on
        // top of queue wait, so it counts from when the batch starts
        // forming — not from the head envelope's enqueue. Counting queue
        // age would collapse batches to size 1 exactly when a backlog
        // builds, which is when amortization matters most.
        let forming = Instant::now();
        let flush_at = forming + policy.max_delay;
        let mut batch = vec![first];
        while !policy.should_flush(batch.len(), forming.elapsed()) {
            match q.pop_until(flush_at) {
                Some(env) => batch.push(env),
                None => break,
            }
        }
        metrics::QUEUE_DEPTH.add(-(batch.len() as i64));
        self.execute(batch);
        self.array.checkpoint();
        true
    }

    /// Execute one coalesced batch: shed expired requests, then fold the
    /// survivors' reads into one `read_many` call and their writes into
    /// one `write_many` call — a single guard pin each, which is the
    /// amortization `pins_total < requests_total` measures.
    fn execute(&self, batch: Vec<Envelope<T>>) {
        metrics::BATCHES.inc();
        let t0 = Instant::now();

        // Bounds decisions for the whole batch come from one capacity
        // snapshot; a concurrent grow may land mid-batch but never
        // shrinks, so `idx < cap` stays safe.
        let cap = self.array.capacity();

        // How a ticket's response maps back onto the batch read plan.
        enum Reads {
            One(Option<usize>),
            Many(Vec<Option<usize>>),
        }

        let mut read_plan: Vec<usize> = Vec::new();
        let mut read_acks: Vec<(Arc<TicketSlot<T>>, Reads)> = Vec::new();
        let mut write_plan: Vec<(usize, T)> = Vec::new();
        let mut write_acks: Vec<(Arc<TicketSlot<T>>, usize)> = Vec::new();
        let mut grows: Vec<(Arc<TicketSlot<T>>, usize)> = Vec::new();
        let mut scans: Vec<(Arc<TicketSlot<T>>, std::ops::Range<usize>)> = Vec::new();

        for env in batch {
            let waited = env.enqueued.elapsed();
            metrics::QUEUE_WAIT_NS.record(waited.as_nanos() as u64);
            if batch::is_expired(waited, self.cfg.deadline) {
                metrics::SHED.inc();
                env.slot.complete(Response::Shed { waited });
                continue;
            }
            let mut plan_read = |idx: usize| {
                if idx < cap {
                    read_plan.push(idx);
                    Some(read_plan.len() - 1)
                } else {
                    None
                }
            };
            match env.req {
                Request::Get { idx } => {
                    let pos = plan_read(idx);
                    read_acks.push((env.slot, Reads::One(pos)));
                }
                Request::BatchGet { indices } => {
                    let pos = indices.iter().map(|&i| plan_read(i)).collect();
                    read_acks.push((env.slot, Reads::Many(pos)));
                }
                Request::Put { idx, value } => {
                    let mut applied = 0;
                    if idx < cap {
                        write_plan.push((idx, value));
                        applied = 1;
                    }
                    write_acks.push((env.slot, applied));
                }
                Request::BatchPut { entries } => {
                    let mut applied = 0;
                    for (idx, value) in entries {
                        if idx < cap {
                            write_plan.push((idx, value));
                            applied += 1;
                        }
                    }
                    write_acks.push((env.slot, applied));
                }
                Request::Grow { additional } => grows.push((env.slot, additional)),
                Request::Scan { range } => scans.push((env.slot, range)),
            }
        }

        // Reads: one pin for every Get/BatchGet in the batch.
        if !read_acks.is_empty() {
            let values = if read_plan.is_empty() {
                Some(Vec::new())
            } else {
                metrics::PINS.inc();
                catch_unwind(AssertUnwindSafe(|| self.array.read_many(&read_plan))).ok()
            };
            for (slot, shape) in read_acks {
                let resp = match (&values, shape) {
                    (Some(vals), Reads::One(pos)) => Response::Value(pos.map(|p| vals[p])),
                    (Some(vals), Reads::Many(pos)) => {
                        Response::Values(pos.into_iter().map(|p| p.map(|p| vals[p])).collect())
                    }
                    (None, _) => {
                        metrics::FAILURES.inc();
                        Response::Failed
                    }
                };
                slot.complete(resp);
            }
        }

        // Writes: one pin for every Put/BatchPut in the batch.
        if !write_acks.is_empty() {
            let ok = if write_plan.is_empty() {
                true
            } else {
                metrics::PINS.inc();
                catch_unwind(AssertUnwindSafe(|| self.array.write_many(&write_plan))).is_ok()
            };
            for (slot, applied) in write_acks {
                let resp = if ok {
                    Response::Done { applied }
                } else {
                    metrics::FAILURES.inc();
                    Response::Failed
                };
                slot.complete(resp);
            }
        }

        // Grows: the pressure-sensitive path. A byte-capped reclaim
        // backlog refuses with `Backpressure`, which we surface as
        // `Overloaded` — reclamation debt propagates to the caller.
        for (slot, additional) in grows {
            let resp = match catch_unwind(AssertUnwindSafe(|| self.array.try_resize(additional))) {
                Ok(Ok(new_cap)) => Response::Grown(new_cap),
                Ok(Err(CommError::Backpressure { .. })) => {
                    metrics::OVERLOADED.inc();
                    Response::Overloaded {
                        retry_after: self.cfg.retry_after,
                    }
                }
                Ok(Err(_)) | Err(_) => {
                    metrics::FAILURES.inc();
                    Response::Failed
                }
            };
            slot.complete(resp);
        }

        // Scans: one pin each (`read_range` pins once internally).
        for (slot, range) in scans {
            let lo = range.start.min(cap);
            let hi = range.end.min(cap);
            let resp = if lo >= hi {
                Response::Values(vec![None; range.len()])
            } else {
                metrics::PINS.inc();
                match catch_unwind(AssertUnwindSafe(|| self.array.read_range(lo..hi))) {
                    Ok(vals) => {
                        let mut out: Vec<Option<T>> = vals.into_iter().map(Some).collect();
                        out.resize(range.len(), None);
                        Response::Values(out)
                    }
                    Err(_) => {
                        metrics::FAILURES.inc();
                        Response::Failed
                    }
                }
            };
            slot.complete(resp);
        }

        metrics::EXECUTE_NS.record(t0.elapsed().as_nanos() as u64);
    }
}

fn worker_loop<T: Element, S: Scheme>(core: Arc<Core<T, S>>, qi: usize) {
    while core.poll_once(qi) {}
    // Final quiesce so a parked epoch from this worker can't outlive it.
    core.array.checkpoint();
}

/// An in-process request-serving front-end over one [`RcuArray`].
///
/// `start` spawns `workers_per_locale` worker threads per cluster
/// locale, each pinned to its locale (`task::with_locale`) and draining
/// its own bounded queue. Dropping the service (or calling
/// [`shutdown`](Service::shutdown)) closes the queues and joins the
/// workers; queued requests are drained first.
pub struct Service<T: Element, S: Scheme> {
    core: Arc<Core<T, S>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Element, S: Scheme> Service<T, S> {
    /// Take ownership of `array` and start serving it.
    pub fn start(array: RcuArray<T, S>, cfg: ServiceConfig) -> Self {
        let core = Core::new(array, cfg);
        let mut workers = Vec::with_capacity(core.queues.len());
        for locale in 0..core.num_locales {
            for w in 0..cfg.workers_per_locale {
                let qi = locale * cfg.workers_per_locale + w;
                let core = Arc::clone(&core);
                let home = LocaleId::new(locale as u32);
                workers.push(thread::spawn(move || {
                    task::with_locale(home, || worker_loop(core, qi))
                }));
            }
        }
        Service { core, workers }
    }

    /// A client handle for submitting requests (cheap to clone).
    pub fn client(&self) -> Client<T, S> {
        Client::new(Arc::clone(&self.core))
    }

    /// The served array (e.g. for direct inspection in tests).
    pub fn array(&self) -> &RcuArray<T, S> {
        &self.core.array
    }

    /// Submit one request directly, without a client handle.
    pub fn submit(&self, req: Request<T>) -> Ticket<T> {
        self.core.submit(req)
    }

    fn stop(&mut self) {
        for q in &self.core.queues {
            q.close();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Close the admission queues, drain what's left, and join workers.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl<T: Element, S: Scheme> Drop for Service<T, S> {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray::{Config, EbrArray, QsbrArray};
    use rcuarray_analysis::sync::Mutex;
    use rcuarray_runtime::{Cluster, Topology};

    // The SLO counters are process-wide; tests asserting exact deltas
    // must not interleave with other tests that bump the same counters.
    static METRICS_LOCK: Mutex<()> = Mutex::new(());

    fn small_array(locales: usize) -> EbrArray<u64> {
        let cluster = Cluster::new(Topology::new(locales, 2));
        let array = EbrArray::with_config(
            &cluster,
            Config {
                block_size: 8,
                account_comm: false,
                ..Config::default()
            },
        );
        array.resize(8 * locales * 2);
        array
    }

    #[test]
    fn roundtrip_all_request_kinds() {
        let _serial = METRICS_LOCK.lock();
        let service = Service::start(small_array(2), ServiceConfig::default());
        let client = service.client();
        let cap = service.array().capacity();

        assert_eq!(
            client.call(Request::Put { idx: 3, value: 30 }),
            Response::Done { applied: 1 }
        );
        assert_eq!(
            client.call(Request::Get { idx: 3 }),
            Response::Value(Some(30))
        );
        assert_eq!(
            client.call(Request::Get { idx: cap + 1 }),
            Response::Value(None),
            "out-of-bounds get answers None, it does not kill the worker"
        );
        assert_eq!(
            client.call(Request::BatchPut {
                entries: vec![(0, 1), (9, 2), (cap + 5, 3)]
            }),
            Response::Done { applied: 2 }
        );
        assert_eq!(
            client.call(Request::BatchGet {
                indices: vec![0, 9, cap + 5]
            }),
            Response::Values(vec![Some(1), Some(2), None])
        );
        assert_eq!(
            client.call(Request::Scan { range: 8..12 }),
            Response::Values(vec![Some(0), Some(2), Some(0), Some(0)])
        );
        assert_eq!(
            client.call(Request::Scan {
                range: cap - 2..cap + 2
            }),
            Response::Values(vec![Some(0), Some(0), None, None]),
            "a scan past capacity is clamped, not an error"
        );
        match client.call(Request::Grow { additional: 8 }) {
            Response::Grown(new_cap) => assert!(new_cap >= cap + 8),
            other => panic!("grow failed: {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn full_queue_refuses_with_overloaded() {
        let _serial = METRICS_LOCK.lock();
        // No workers: build the core directly so nothing drains.
        let core = Core::new(
            small_array(1),
            ServiceConfig {
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
        );
        let before = metrics::OVERLOADED.value();
        let mut tickets = Vec::new();
        for i in 0..3 {
            tickets.push(core.submit(Request::Get { idx: i }));
        }
        let last = tickets.pop().unwrap();
        assert!(
            matches!(last.try_wait(), Some(Response::Overloaded { .. })),
            "third push into a capacity-2 queue must refuse immediately"
        );
        assert_eq!(metrics::OVERLOADED.value(), before + 1);
        // Undo the depth the two admitted-but-never-drained requests added.
        metrics::QUEUE_DEPTH.add(-2);
    }

    #[test]
    fn expired_requests_are_shed_at_dequeue() {
        let _serial = METRICS_LOCK.lock();
        let core = Core::new(
            small_array(1),
            ServiceConfig {
                deadline: Duration::from_millis(1),
                max_delay: Duration::ZERO,
                ..ServiceConfig::default()
            },
        );
        let before = metrics::SHED.value();
        let ticket = core.submit(Request::Get { idx: 0 });
        std::thread::sleep(Duration::from_millis(5));
        assert!(core.poll_once(0), "queue is open, poll must continue");
        match ticket.wait() {
            Response::Shed { waited } => assert!(waited >= Duration::from_millis(1)),
            other => panic!("expected a shed, got {other:?}"),
        }
        assert_eq!(metrics::SHED.value(), before + 1);
    }

    #[test]
    fn batch_of_gets_pins_once() {
        let _serial = METRICS_LOCK.lock();
        let core = Core::new(
            small_array(1),
            ServiceConfig {
                // Flush exactly when the 8 queued gets are coalesced, so
                // the worker neither waits out a delay window nor sheds.
                max_batch: 8,
                max_delay: Duration::from_secs(10),
                deadline: Duration::from_secs(60),
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..8)
            .map(|i| core.submit(Request::Get { idx: i }))
            .collect();
        let pins_before = metrics::PINS.value();
        let reqs_before = metrics::REQUESTS.value();
        assert!(core.poll_once(0));
        assert_eq!(
            metrics::PINS.value(),
            pins_before + 1,
            "eight coalesced gets must share one guard pin"
        );
        assert!(metrics::PINS.value() < reqs_before);
        for t in tickets {
            assert!(matches!(
                t.wait(),
                Response::Value(Some(_)) | Response::Value(None)
            ));
        }
    }

    #[test]
    fn replicated_service_survives_a_dead_locale() {
        use rcuarray::RetryPolicy;
        use rcuarray_runtime::FaultPlan;
        let _serial = METRICS_LOCK.lock();
        let cluster = Cluster::builder()
            .topology(Topology::new(3, 2))
            .fault_plan(FaultPlan::new(11))
            .build();
        let array = QsbrArray::<u64>::with_config(
            &cluster,
            Config {
                block_size: 8,
                account_comm: true,
                replication_factor: 2,
                retry: RetryPolicy::new(2, Duration::from_millis(100)),
                ..Config::default()
            },
        );
        array.resize(24);
        let service = Service::start(array, ServiceConfig::default());
        let client = service.client();
        assert_eq!(
            client.call(Request::Put { idx: 9, value: 99 }),
            Response::Done { applied: 1 }
        );
        // Locale 1 — home of block 1 (indices 8..16) — dies, and the
        // detector notices over two probe rounds.
        cluster.fault().set_down(LocaleId::new(1), true);
        cluster.probe_membership();
        cluster.probe_membership();
        let failovers_before = metrics::FAILOVERS.value();
        let failures_before = metrics::FAILURES.value();
        // Replicated reads and writes must fail over, never `Failed`.
        assert_eq!(
            client.call(Request::Get { idx: 9 }),
            Response::Value(Some(99)),
            "the acked write must stay readable through the replica"
        );
        assert_eq!(
            client.call(Request::Put { idx: 9, value: 100 }),
            Response::Done { applied: 1 }
        );
        assert_eq!(
            client.call(Request::BatchGet {
                indices: vec![8, 9, 10]
            }),
            Response::Values(vec![Some(0), Some(100), Some(0)])
        );
        assert!(
            metrics::FAILOVERS.value() > failovers_before,
            "re-routes must be counted in rcuarray_failover_requests_total"
        );
        assert_eq!(
            metrics::FAILURES.value(),
            failures_before,
            "no request on replicated data may fail for a single dead locale"
        );
        service.shutdown();
    }

    #[test]
    fn qsbr_service_roundtrips_too() {
        let _serial = METRICS_LOCK.lock();
        let cluster = Cluster::new(Topology::new(2, 2));
        let array = QsbrArray::<u64>::with_config(
            &cluster,
            Config {
                block_size: 8,
                account_comm: false,
                ..Config::default()
            },
        );
        array.resize(32);
        let service = Service::start(array, ServiceConfig::default());
        let client = service.client();
        assert_eq!(
            client.call(Request::Put { idx: 1, value: 11 }),
            Response::Done { applied: 1 }
        );
        assert_eq!(
            client.call(Request::Get { idx: 1 }),
            Response::Value(Some(11))
        );
        service.shutdown();
    }
}
