//! One-shot response slots: at-most-once completion, observed by a
//! waiting client.

use crate::metrics;
use crate::request::Response;
use rcuarray::Element;
use rcuarray_analysis::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct SlotState<T: Element> {
    resp: Option<Response<T>>,
    /// Set by the first completion and never cleared — [`TicketSlot::complete`]
    /// is at-most-once even after the response has been taken by a
    /// waiter (a racing shed and flush must not both land).
    done: bool,
}

/// The worker-side half of a ticket.
pub(crate) struct TicketSlot<T: Element> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T: Element> TicketSlot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketSlot {
            state: Mutex::new(SlotState {
                resp: None,
                done: false,
            }),
            ready: Condvar::new(),
        })
    }

    /// Deliver `resp`. Returns `false` (dropping `resp`) when the ticket
    /// was already completed — completion is at-most-once, which is what
    /// keeps a shed racing a late flush from answering twice.
    pub(crate) fn complete(&self, resp: Response<T>) -> bool {
        let mut st = self.state.lock();
        if st.done {
            return false;
        }
        st.done = true;
        st.resp = Some(resp);
        drop(st);
        self.ready.notify_all();
        true
    }
}

/// A client's handle to one in-flight request: wait for the response.
pub struct Ticket<T: Element> {
    pub(crate) slot: Arc<TicketSlot<T>>,
    pub(crate) created: Instant,
}

impl<T: Element> Ticket<T> {
    pub(crate) fn new() -> (Ticket<T>, Arc<TicketSlot<T>>) {
        let slot = TicketSlot::new();
        (
            Ticket {
                slot: Arc::clone(&slot),
                created: Instant::now(),
            },
            slot,
        )
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Response<T> {
        let mut st = self.slot.state.lock();
        loop {
            if let Some(resp) = st.resp.take() {
                return resp;
            }
            self.slot.ready.wait(&mut st);
        }
    }

    /// Block up to `timeout`; `Err(self)` hands the ticket back so the
    /// caller can keep waiting. A timeout bumps the service's timeout
    /// counter — it is the client-visible SLO miss.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response<T>, Ticket<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.slot.state.lock();
        loop {
            if let Some(resp) = st.resp.take() {
                return Ok(resp);
            }
            if self.slot.ready.wait_until(&mut st, deadline).timed_out() {
                if let Some(resp) = st.resp.take() {
                    return Ok(resp);
                }
                drop(st);
                metrics::TIMEOUTS.inc();
                return Err(self);
            }
        }
    }

    /// Non-blocking check.
    pub fn try_wait(&self) -> Option<Response<T>> {
        self.slot.state.lock().resp.take()
    }

    /// When the request was submitted (for client-side latency).
    pub fn created_at(&self) -> Instant {
        self.created
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_is_at_most_once() {
        let (ticket, slot) = Ticket::<u64>::new();
        assert!(slot.complete(Response::Value(Some(1))));
        assert!(
            !slot.complete(Response::Value(Some(2))),
            "second completion must be refused"
        );
        assert_eq!(ticket.wait(), Response::Value(Some(1)));
    }

    #[test]
    fn wait_timeout_hands_the_ticket_back() {
        let (ticket, slot) = Ticket::<u64>::new();
        let ticket = match ticket.wait_timeout(Duration::from_millis(1)) {
            Err(t) => t,
            Ok(r) => panic!("nothing was completed yet: {r:?}"),
        };
        slot.complete(Response::Done { applied: 3 });
        match ticket.wait_timeout(Duration::from_secs(1)) {
            Ok(resp) => assert_eq!(resp, Response::Done { applied: 3 }),
            Err(_) => panic!("response was already delivered"),
        }
    }

    #[test]
    fn complete_after_take_is_still_refused() {
        let (ticket, slot) = Ticket::<u64>::new();
        slot.complete(Response::Failed);
        assert_eq!(ticket.wait(), Response::Failed);
        assert!(!slot.complete(Response::Value(None)));
    }
}
