//! The bounded admission queue every worker drains.
//!
//! Capacity is enforced at `try_push` — a full queue *refuses*, it never
//! grows — which is what makes the service's admission control impossible
//! to bypass (lint rule 8 forbids unbounded channel/queue constructors
//! anywhere in this crate, so this is the only queue there is). Built on
//! the `rcuarray_analysis` sync facade so the deterministic checker can
//! drive producer/consumer interleavings (`service_harness.rs`).

use rcuarray_analysis::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Outcome of a blocking pop.
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<E> {
    /// An item was dequeued.
    Item(E),
    /// The wait elapsed with the queue still empty.
    TimedOut,
    /// The queue is closed and fully drained; no item will ever arrive.
    Closed,
}

struct QueueState<E> {
    buf: VecDeque<E>,
    closed: bool,
}

/// A multi-producer, multi-consumer FIFO with a hard capacity.
pub struct BoundedQueue<E> {
    state: Mutex<QueueState<E>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<E> BoundedQueue<E> {
    /// A queue refusing pushes beyond `capacity` items.
    ///
    /// # Panics
    /// Panics when `capacity` is zero (a zero-capacity queue could never
    /// admit anything).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a bounded queue needs capacity >= 1");
        BoundedQueue {
            state: Mutex::new(QueueState {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item`, or hand it back when the queue is full or closed.
    /// Never blocks and never grows past the capacity — refusal is the
    /// admission-control signal.
    pub fn try_push(&self, item: E) -> Result<(), E> {
        let mut st = self.state.lock();
        if st.closed || st.buf.len() >= self.capacity {
            return Err(item);
        }
        st.buf.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, waiting up to `timeout` for an item. Items still queued
    /// when the queue closes are drained first; [`PopResult::Closed`] is
    /// only returned once the queue is closed *and* empty.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<E> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.buf.pop_front() {
                return PopResult::Item(item);
            }
            if st.closed {
                return PopResult::Closed;
            }
            if self.not_empty.wait_until(&mut st, deadline).timed_out() && st.buf.is_empty() {
                return if st.closed {
                    PopResult::Closed
                } else {
                    PopResult::TimedOut
                };
            }
        }
    }

    /// Dequeue, waiting until `deadline`; `None` when the deadline
    /// passes (or the queue closes) with nothing queued. This is the
    /// batcher's coalescing wait: a worker holding a partial batch polls
    /// for more work only until its flush deadline.
    pub fn pop_until(&self, deadline: Instant) -> Option<E> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.buf.pop_front() {
                return Some(item);
            }
            if st.closed || Instant::now() >= deadline {
                return None;
            }
            if self.not_empty.wait_until(&mut st, deadline).timed_out() {
                return st.buf.pop_front();
            }
        }
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<E> {
        self.state.lock().buf.pop_front()
    }

    /// Close the queue: further pushes are refused, consumers drain what
    /// remains and then observe [`PopResult::Closed`].
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hard capacity this queue refuses beyond.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn refuses_beyond_capacity() {
        let q = BoundedQueue::with_capacity(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "capacity must refuse, not grow");
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u32>::with_capacity(0);
    }

    #[test]
    fn fifo_order_and_timeout() {
        let q = BoundedQueue::with_capacity(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::TimedOut);
    }

    #[test]
    fn close_drains_then_signals() {
        let q = BoundedQueue::with_capacity(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue refuses new work");
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Item(7));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Closed);
    }

    #[test]
    fn pop_until_returns_none_at_deadline() {
        let q = BoundedQueue::<u32>::with_capacity(4);
        let t0 = Instant::now();
        assert_eq!(q.pop_until(t0 + Duration::from_millis(2)), None);
    }

    #[test]
    fn wakes_a_blocked_consumer() {
        let q = Arc::new(BoundedQueue::with_capacity(2));
        let q2 = Arc::clone(&q);
        let consumer =
            rcuarray_analysis::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        // The consumer may or may not be parked yet; either way the
        // notify-or-find path must deliver the item.
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), PopResult::Item(42));
    }
}
