//! SLO telemetry (DESIGN.md §7, §11): every handle lives in the
//! process-wide `rcuarray-obs` registry, so service metrics ride along in
//! `json_snapshot()` / Prometheus exposition next to the array's own.

use rcuarray_obs::{HistogramSnapshot, LazyCounter, LazyGauge, LazyHistogram};

/// Every request submitted to any service in this process (admitted or
/// refused). The denominator of the amortization ratio.
pub(crate) static REQUESTS: LazyCounter = LazyCounter::new(
    "rcuarray_service_requests_total",
    "requests submitted to the serving layer (admitted or refused)",
);

/// Read-side guard pins taken by batch execution. `pins_total <
/// requests_total` is the measured proof that batching amortizes epoch
/// entry — one pin covers a whole coalesced batch.
pub(crate) static PINS: LazyCounter = LazyCounter::new(
    "rcuarray_service_pins_total",
    "read-side guard pins taken by service workers (one per executed batch op)",
);

/// Batches executed (flushes of a worker's coalescing buffer).
pub(crate) static BATCHES: LazyCounter = LazyCounter::new(
    "rcuarray_service_batches_total",
    "coalesced batches executed by service workers",
);

/// Requests dropped at dequeue because they outwaited their deadline.
pub(crate) static SHED: LazyCounter = LazyCounter::new(
    "rcuarray_service_shed_total",
    "requests shed at dequeue after waiting past the configured deadline",
);

/// Requests refused by admission control or reclaim backpressure.
pub(crate) static OVERLOADED: LazyCounter = LazyCounter::new(
    "rcuarray_service_overloaded_total",
    "requests refused: full admission queue or reclaim-layer backpressure",
);

/// Requests whose execution failed (killed read section, comm budget).
pub(crate) static FAILURES: LazyCounter = LazyCounter::new(
    "rcuarray_service_failures_total",
    "requests whose execution failed (fault injection, exhausted comm budget)",
);

/// Client-side waits that timed out before a response arrived.
pub(crate) static TIMEOUTS: LazyCounter = LazyCounter::new(
    "rcuarray_service_timeouts_total",
    "client waits that timed out before the response arrived",
);

/// Requests re-routed to a surviving locale's worker pool because their
/// home locale was out of the membership view (replicated arrays only;
/// at `replication_factor = 1` the old degrade-to-`Failed` contract
/// stands and this never moves).
pub(crate) static FAILOVERS: LazyCounter = LazyCounter::new(
    "rcuarray_failover_requests_total",
    "requests re-routed to a surviving locale's worker pool after their home locale died",
);

/// Time spent picking (and reaching) the surviving pool — the routing
/// component of failover latency; the array records the data-path
/// component in `rcuarray_failover_latency_ns`.
pub(crate) static FAILOVER_ROUTE_NS: LazyHistogram = LazyHistogram::new(
    "rcuarray_failover_route_ns",
    "per-request time to re-route onto a surviving worker pool, in nanoseconds",
);

/// Aggregate queued-request count across all service workers.
pub(crate) static QUEUE_DEPTH: LazyGauge = LazyGauge::new(
    "rcuarray_service_queue_depth",
    "requests currently sitting in service worker queues",
);

/// Time from admission to dequeue — the SLO component load adds.
pub(crate) static QUEUE_WAIT_NS: LazyHistogram = LazyHistogram::new(
    "rcuarray_service_queue_wait_ns",
    "per-request queue wait (admission to dequeue) in nanoseconds",
);

/// Time a worker spends executing one batch against the array — the SLO
/// component the data structure itself costs.
pub(crate) static EXECUTE_NS: LazyHistogram = LazyHistogram::new(
    "rcuarray_service_execute_ns",
    "per-batch execution time against the array in nanoseconds",
);

/// A point-in-time summary of the serving layer's SLO metrics
/// (process-wide: counters are shared by every service in the process).
#[derive(Debug, Clone)]
pub struct SloSnapshot {
    /// Requests submitted (admitted or refused).
    pub requests: u64,
    /// Read-side pins taken by batch execution.
    pub pins: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests shed past their deadline.
    pub shed: u64,
    /// Requests refused (admission or backpressure).
    pub overloaded: u64,
    /// Requests whose execution failed.
    pub failures: u64,
    /// Client waits that timed out.
    pub timeouts: u64,
    /// Requests re-routed to a surviving locale's pool (failover).
    pub failovers: u64,
    /// Requests currently queued.
    pub queue_depth: i64,
    /// Queue-wait latency distribution.
    pub queue_wait: HistogramSnapshot,
    /// Batch-execute latency distribution.
    pub execute: HistogramSnapshot,
    /// Failover re-routing latency distribution.
    pub failover_route: HistogramSnapshot,
}

impl SloSnapshot {
    /// Requests per pin: the amortization factor adaptive batching buys.
    /// Greater than 1.0 means epoch entry is being amortized.
    pub fn amortization(&self) -> f64 {
        if self.pins == 0 {
            return 0.0;
        }
        self.requests as f64 / self.pins as f64
    }

    /// Fraction of submitted requests shed past their deadline.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.shed as f64 / self.requests as f64
    }

    /// Fraction of submitted requests that had to fail over to a
    /// surviving pool; zero on a healthy cluster and always zero at
    /// `replication_factor = 1`.
    pub fn failover_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.failovers as f64 / self.requests as f64
    }
}

impl std::fmt::Display for SloSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests {}  pins {}  batches {}  (amortization {:.2} req/pin)",
            self.requests,
            self.pins,
            self.batches,
            self.amortization()
        )?;
        writeln!(
            f,
            "shed {}  overloaded {}  failures {}  timeouts {}  failovers {}  queue depth {}",
            self.shed,
            self.overloaded,
            self.failures,
            self.timeouts,
            self.failovers,
            self.queue_depth
        )?;
        writeln!(
            f,
            "queue wait  p50 {} ns  p99 {} ns  max {} ns  ({} samples)",
            self.queue_wait.quantile(0.5),
            self.queue_wait.quantile(0.99),
            self.queue_wait.max,
            self.queue_wait.count
        )?;
        writeln!(
            f,
            "execute     p50 {} ns  p99 {} ns  max {} ns  ({} batches)",
            self.execute.quantile(0.5),
            self.execute.quantile(0.99),
            self.execute.max,
            self.execute.count
        )?;
        write!(
            f,
            "failover    p50 {} ns  p99 {} ns  max {} ns  ({} re-routes)",
            self.failover_route.quantile(0.5),
            self.failover_route.quantile(0.99),
            self.failover_route.max,
            self.failover_route.count
        )
    }
}

/// Snapshot the process-wide serving-layer metrics.
pub fn slo_snapshot() -> SloSnapshot {
    SloSnapshot {
        requests: REQUESTS.value(),
        pins: PINS.value(),
        batches: BATCHES.value(),
        shed: SHED.value(),
        overloaded: OVERLOADED.value(),
        failures: FAILURES.value(),
        timeouts: TIMEOUTS.value(),
        failovers: FAILOVERS.value(),
        queue_depth: QUEUE_DEPTH.value(),
        queue_wait: QUEUE_WAIT_NS.snapshot(),
        execute: EXECUTE_NS.snapshot(),
        failover_route: FAILOVER_ROUTE_NS.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_and_shed_rate_guard_division_by_zero() {
        let snap = SloSnapshot {
            requests: 0,
            pins: 0,
            batches: 0,
            shed: 0,
            overloaded: 0,
            failures: 0,
            timeouts: 0,
            failovers: 0,
            queue_depth: 0,
            queue_wait: QUEUE_WAIT_NS.snapshot(),
            execute: EXECUTE_NS.snapshot(),
            failover_route: FAILOVER_ROUTE_NS.snapshot(),
        };
        assert_eq!(snap.amortization(), 0.0);
        assert_eq!(snap.shed_rate(), 0.0);
        assert_eq!(snap.failover_rate(), 0.0);
        // Display must not panic on an empty snapshot.
        let _ = snap.to_string();
    }
}
