#![warn(missing_docs)]

//! # rcuarray-service — a request-serving front-end over `RcuArray`
//!
//! The ROADMAP's north star is a system *serving* heavy traffic, not one
//! driven directly from bench threads. This crate is that front-end: an
//! in-process service accepting [`Request`]s from many concurrent client
//! sessions and dispatching them to per-locale worker pools over the
//! simulated runtime. Three pillars (DESIGN.md §11):
//!
//! 1. **Adaptive batching.** Workers coalesce up to
//!    [`ServiceConfig::max_batch`] requests or wait at most
//!    [`ServiceConfig::max_delay`] — whichever comes first — and execute
//!    the whole batch under a *single* read guard via
//!    `RcuArray::read_many` / `write_many`. The paper's own bottleneck
//!    (EBR's seq-cst fetch-add on every read, PAPER.md §1) is exactly the
//!    cost this amortizes: the `rcuarray_service_pins_total` /
//!    `rcuarray_service_requests_total` counter ratio is the measured
//!    amortization factor.
//! 2. **Admission control.** Every worker queue is bounded
//!    ([`BoundedQueue`] — lint rule 8 forbids unbounded queues in this
//!    crate, so admission control cannot be bypassed by construction).
//!    A full queue refuses with [`Response::Overloaded`]; requests that
//!    wait past [`ServiceConfig::deadline`] are shed before execution;
//!    and `Err(Backpressure)` from the reclaim layer (a byte-capped
//!    defer backlog refusing growth) surfaces as
//!    [`Response::Overloaded`] with a `retry_after` hint consumed by the
//!    client-side retry loop — reclamation debt propagates to callers
//!    instead of ballooning.
//! 3. **SLO observability.** Histograms split queue-wait from execute
//!    latency, a gauge tracks aggregate queue depth, and counters tally
//!    sheds / overloads / failures — all in the process-wide
//!    `rcuarray-obs` registry, summarized by [`SloSnapshot`].
//!
//! ```
//! use rcuarray::{Config, EbrArray};
//! use rcuarray_runtime::Cluster;
//! use rcuarray_service::{Request, Response, Service, ServiceConfig};
//!
//! let cluster = Cluster::with_locales(2);
//! let array = EbrArray::<u64>::with_config(&cluster, Config::default());
//! array.resize(1024);
//! let service = Service::start(array, ServiceConfig::default());
//! let client = service.client();
//! assert!(matches!(
//!     client.call(Request::Put { idx: 7, value: 42 }),
//!     Response::Done { applied: 1 }
//! ));
//! assert_eq!(client.call(Request::Get { idx: 7 }), Response::Value(Some(42)));
//! service.shutdown();
//! ```

mod batch;
mod client;
mod metrics;
mod queue;
mod request;
mod service;
mod ticket;

pub use batch::BatchPolicy;
pub use client::Client;
pub use metrics::{slo_snapshot, SloSnapshot};
pub use queue::{BoundedQueue, PopResult};
pub use request::{Request, Response};
pub use service::{Service, ServiceConfig};
pub use ticket::Ticket;
