//! Client handles: submit requests, optionally drive the runtime's
//! retry policy against `Overloaded` / `Shed` / `Failed` responses.

use crate::request::{Request, Response};
use crate::service::Core;
use crate::ticket::Ticket;
use rcuarray::{Element, RcuArray, Scheme};
use rcuarray_runtime::{task, CommError, OpKind, RetryPolicy};
use std::sync::Arc;
use std::time::Duration;

/// Cap on how long a retrying client honors one `retry_after` hint, so
/// a pathological hint cannot stall a retry loop.
const MAX_RETRY_AFTER: Duration = Duration::from_millis(5);

/// A handle for submitting requests to a [`Service`](crate::Service).
///
/// Cheap to clone; every clone talks to the same service core. Retryable
/// responses ([`Response::is_retryable`]) can be driven through the
/// runtime's [`RetryPolicy`] with [`call_with_retry`](Client::call_with_retry):
/// `Overloaded` maps to [`CommError::Backpressure`] (honoring the
/// server's `retry_after` hint first), `Shed` and `Failed` map to
/// [`CommError::Transient`] — so service overload participates in the
/// same decorrelated-jitter backoff as any other communication fault.
pub struct Client<T: Element, S: Scheme> {
    core: Arc<Core<T, S>>,
    retry: RetryPolicy,
}

impl<T: Element, S: Scheme> Clone for Client<T, S> {
    fn clone(&self) -> Self {
        Client {
            core: Arc::clone(&self.core),
            retry: self.retry,
        }
    }
}

impl<T: Element, S: Scheme> Client<T, S> {
    pub(crate) fn new(core: Arc<Core<T, S>>) -> Self {
        Client {
            core,
            retry: RetryPolicy::new(4, Duration::from_secs(1)),
        }
    }

    /// Replace the policy [`call_with_retry`](Client::call_with_retry) uses.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Submit without waiting; the [`Ticket`] is the response handle.
    pub fn submit(&self, req: Request<T>) -> Ticket<T> {
        self.core.submit(req)
    }

    /// Submit and block for the response (no retries).
    pub fn call(&self, req: Request<T>) -> Response<T> {
        self.core.submit(req).wait()
    }

    /// Submit, and retry retryable responses under this client's
    /// [`RetryPolicy`]. `Err` means the policy's attempt or time budget
    /// ran out with the service still refusing.
    pub fn call_with_retry(&self, req: &Request<T>) -> Result<Response<T>, CommError> {
        let comm = self.core.array.cluster().comm();
        self.retry.run(comm, || {
            match self.core.submit(req.clone()).wait() {
                Response::Overloaded { retry_after } => {
                    // Honor the server's hint (bounded), then let the
                    // policy add its own jittered backoff.
                    rcuarray_analysis::thread::sleep(retry_after.min(MAX_RETRY_AFTER));
                    Err(CommError::Backpressure {
                        op: OpKind::RemoteExec,
                        locale: task::current_locale(),
                    })
                }
                Response::Shed { .. } | Response::Failed => Err(CommError::Transient {
                    op: OpKind::RemoteExec,
                    locale: task::current_locale(),
                }),
                resp => Ok(resp),
            }
        })
    }

    /// The served array (read-only inspection; e.g. capacity checks).
    pub fn array(&self) -> &RcuArray<T, S> {
        &self.core.array
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Service, ServiceConfig};
    use rcuarray::{Config, EbrArray};
    use rcuarray_runtime::{Cluster, Topology};

    #[test]
    fn call_with_retry_passes_through_success() {
        let cluster = Cluster::new(Topology::new(1, 2));
        let array = EbrArray::<u64>::with_config(
            &cluster,
            Config {
                block_size: 8,
                account_comm: false,
                ..Config::default()
            },
        );
        array.resize(16);
        let service = Service::start(array, ServiceConfig::default());
        let client = service.client();
        assert_eq!(
            client.call_with_retry(&Request::Put { idx: 2, value: 9 }),
            Ok(Response::Done { applied: 1 })
        );
        assert_eq!(
            client.call_with_retry(&Request::Get { idx: 2 }),
            Ok(Response::Value(Some(9)))
        );
        service.shutdown();
    }

    #[test]
    fn clones_share_the_core() {
        let cluster = Cluster::new(Topology::new(1, 2));
        let array = EbrArray::<u64>::with_config(
            &cluster,
            Config {
                block_size: 8,
                account_comm: false,
                ..Config::default()
            },
        );
        array.resize(8);
        let service = Service::start(array, ServiceConfig::default());
        let a = service.client();
        let b = a
            .clone()
            .with_retry_policy(RetryPolicy::new(0, Duration::from_millis(10)));
        assert_eq!(
            a.call(Request::Put { idx: 0, value: 5 }),
            Response::Done { applied: 1 }
        );
        assert_eq!(b.call(Request::Get { idx: 0 }), Response::Value(Some(5)));
        service.shutdown();
    }
}
