//! The service's wire vocabulary: what clients ask, what they get back.

use rcuarray::Element;
use std::ops::Range;
use std::time::Duration;

/// A client request against the served array.
///
/// Single-element `Get`/`Put` are the common case the batcher coalesces;
/// `BatchGet`/`BatchPut` let a client pre-batch on its side (the worker
/// folds them into the same per-batch guard pin); `Grow` is the
/// pressure-sensitive operation — it is the one the reclaim layer may
/// refuse under a byte-capped backlog; `Scan` is a bounded range read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request<T: Element> {
    /// Read one element.
    Get {
        /// Element index.
        idx: usize,
    },
    /// Assign one element.
    Put {
        /// Element index.
        idx: usize,
        /// Value to store.
        value: T,
    },
    /// Read many elements in one request.
    BatchGet {
        /// Element indices, in response order.
        indices: Vec<usize>,
    },
    /// Assign many elements in one request.
    BatchPut {
        /// `(index, value)` assignments.
        entries: Vec<(usize, T)>,
    },
    /// Grow the array by at least `additional` elements.
    Grow {
        /// Minimum number of elements to add (rounded up to blocks).
        additional: usize,
    },
    /// Read a contiguous range (clamped to the current capacity).
    Scan {
        /// Half-open element range.
        range: Range<usize>,
    },
}

/// The service's reply to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response<T: Element> {
    /// `Get` result; `None` when the index is out of bounds.
    Value(Option<T>),
    /// `BatchGet` / `Scan` results; `None` marks an out-of-bounds index.
    Values(Vec<Option<T>>),
    /// `Put` / `BatchPut` acknowledgement: stores that landed
    /// (out-of-bounds entries are skipped, not errors).
    Done {
        /// Number of assignments applied.
        applied: usize,
    },
    /// `Grow` result: the new capacity.
    Grown(usize),
    /// Load was refused — by admission control (full queue) or by the
    /// reclaim layer (`Err(Backpressure)`: the defer backlog is at its
    /// byte cap and refuses to grow). Retry after the hint; the
    /// client-side retry loop consumes it.
    Overloaded {
        /// Suggested wait before retrying.
        retry_after: Duration,
    },
    /// Deadline-based shedding dropped the request at dequeue: it had
    /// already waited longer than the configured deadline, so executing
    /// it would only burn capacity on an answer the caller gave up on.
    Shed {
        /// How long the request had been queued when it was shed.
        waited: Duration,
    },
    /// The executing worker's critical section was killed mid-flight
    /// (fault injection) or a communication error exhausted its budget.
    /// The request may be retried.
    Failed,
}

impl<T: Element> Response<T> {
    /// Whether this response signals the caller should retry.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Response::Overloaded { .. } | Response::Shed { .. } | Response::Failed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(Response::<u64>::Overloaded {
            retry_after: Duration::from_millis(1)
        }
        .is_retryable());
        assert!(Response::<u64>::Shed {
            waited: Duration::ZERO
        }
        .is_retryable());
        assert!(Response::<u64>::Failed.is_retryable());
        assert!(!Response::<u64>::Value(None).is_retryable());
        assert!(!Response::<u64>::Done { applied: 0 }.is_retryable());
        assert!(!Response::<u64>::Grown(8).is_retryable());
    }
}
