//! A lock-free dynamically resizable array in the style of Dechev,
//! Pirkelbauer & Stroustrup ("Lock-free dynamically resizable arrays",
//! OPODIS 2006) — the §II related work the paper contrasts RCUArray with.
//!
//! Structure, faithful to the original:
//!
//! * **Two-level indexing**: a fixed table of buckets whose sizes double
//!   (8, 16, 32, …), so elements never move once written — the same
//!   "no relocation" property RCUArray gets from block recycling.
//! * **Operation descriptors + helping**: `push_back` installs a new
//!   `Descriptor { size, pending }` with a single CAS; any thread that
//!   observes an incomplete pending write *helps* complete it before
//!   proceeding.
//!
//! Two documented deviations from the 2006 paper:
//!
//! 1. Elements live in atomic cells (`Element::Repr`), so the pending
//!    write is completed with an idempotent store guarded by a `done`
//!    flag rather than a value CAS (the original's value CAS has the ABA
//!    window the authors acknowledge; the done-flag keeps helping
//!    race-free for same-value duplicate stores).
//! 2. Superseded descriptors go to a graveyard freed at drop. The
//!    original leaks them or assumes GC; bounding their reclamation is
//!    exactly the problem RCUArray's EBR/QSBR machinery exists to solve,
//!    which is rather the point of the comparison.

use parking_lot::Mutex;
use rcuarray::Element;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// log2 of the first bucket's capacity.
const FIRST_BUCKET_BITS: u32 = 3;
/// Capacity of bucket 0.
const FIRST_BUCKET_SIZE: usize = 1 << FIRST_BUCKET_BITS;
/// Buckets 0..N with doubling sizes cover any usize index.
const NUM_BUCKETS: usize = (usize::BITS - FIRST_BUCKET_BITS) as usize;

/// A pending element write being installed by a `push_back`.
struct WriteDescriptor<T> {
    pos: usize,
    value: T,
    done: AtomicBool,
}

/// The vector's atomic state: its size plus at most one pending write.
struct Descriptor<T> {
    size: usize,
    pending: Option<WriteDescriptor<T>>,
}

/// Map an element index to `(bucket, index within bucket)`.
#[inline]
fn locate(i: usize) -> (usize, usize) {
    let pos = i + FIRST_BUCKET_SIZE;
    let hibit = usize::BITS - 1 - pos.leading_zeros();
    let bucket = (hibit - FIRST_BUCKET_BITS) as usize;
    let idx = pos ^ (1usize << hibit);
    (bucket, idx)
}

/// Capacity of bucket `b`.
#[inline]
fn bucket_len(b: usize) -> usize {
    FIRST_BUCKET_SIZE << b
}

/// The Dechev-style lock-free vector.
pub struct LockFreeVector<T: Element> {
    buckets: Box<[AtomicPtr<T::Repr>]>,
    descriptor: AtomicPtr<Descriptor<T>>,
    /// Superseded descriptors, freed at drop (see module docs).
    graveyard: Mutex<Vec<Box<Descriptor<T>>>>,
}

// SAFETY: buckets hold atomic cells; the descriptor pointer is CASed and
// retired-not-freed; `T` values inside descriptors are `Copy + Send`.
unsafe impl<T: Element> Send for LockFreeVector<T> {}
unsafe impl<T: Element> Sync for LockFreeVector<T> {}

impl<T: Element> Default for LockFreeVector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Element> LockFreeVector<T> {
    /// An empty vector.
    pub fn new() -> Self {
        let desc = Box::into_raw(Box::new(Descriptor::<T> {
            size: 0,
            pending: None,
        }));
        LockFreeVector {
            buckets: (0..NUM_BUCKETS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            descriptor: AtomicPtr::new(desc),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// A vector pre-extended to `n` default elements.
    pub fn with_len(n: usize) -> Self {
        let v = Self::new();
        v.extend_default(n);
        v
    }

    #[inline]
    fn desc(&self) -> &Descriptor<T> {
        // SAFETY: descriptors are retired to the graveyard, never freed
        // while the vector lives.
        unsafe { &*self.descriptor.load(Ordering::Acquire) }
    }

    /// Help an observed pending write to completion (the 2006 paper's
    /// `CompleteWrite`).
    fn complete_write(&self, desc: &Descriptor<T>) {
        if let Some(wd) = &desc.pending {
            if !wd.done.load(Ordering::Acquire) {
                // Idempotent: concurrent helpers store the same value.
                T::store(self.cell(wd.pos), wd.value);
                wd.done.store(true, Ordering::Release);
            }
        }
    }

    /// Ensure the bucket covering element `i` is allocated.
    fn ensure_bucket(&self, i: usize) {
        let (b, _) = locate(i);
        if !self.buckets[b].load(Ordering::Acquire).is_null() {
            return;
        }
        let len = bucket_len(b);
        let storage: Box<[T::Repr]> = (0..len).map(|_| T::new_repr(T::default())).collect();
        let ptr = Box::into_raw(storage) as *mut T::Repr;
        if self.buckets[b]
            .compare_exchange(
                std::ptr::null_mut(),
                ptr,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            // Lost the allocation race; free ours.
            // SAFETY: `ptr` is ours, published nowhere.
            unsafe { drop_bucket::<T>(ptr, len) };
        }
    }

    #[inline]
    fn cell(&self, i: usize) -> &T::Repr {
        let (b, idx) = locate(i);
        let base = self.buckets[b].load(Ordering::Acquire);
        assert!(!base.is_null(), "access to unallocated bucket {b}");
        // SAFETY: buckets are never freed while the vector lives; idx is
        // within bucket_len(b) by construction of `locate`.
        unsafe { &*base.add(idx) }
    }

    /// Current number of elements (completed `push_back`s).
    pub fn len(&self) -> usize {
        let d = self.desc();
        match &d.pending {
            Some(wd) if !wd.done.load(Ordering::Acquire) => d.size - 1,
            _ => d.size,
        }
    }

    /// True when no element was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `value`, lock-free with helping.
    pub fn push_back(&self, value: T) {
        loop {
            let cur_ptr = self.descriptor.load(Ordering::Acquire);
            // SAFETY: retired descriptors outlive the vector.
            let cur = unsafe { &*cur_ptr };
            self.complete_write(cur);
            let size = cur.size;
            self.ensure_bucket(size);
            let next = Box::into_raw(Box::new(Descriptor {
                size: size + 1,
                pending: Some(WriteDescriptor {
                    pos: size,
                    value,
                    done: AtomicBool::new(false),
                }),
            }));
            match self.descriptor.compare_exchange(
                cur_ptr,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // SAFETY: we just installed `next`; it stays alive.
                    self.complete_write(unsafe { &*next });
                    // SAFETY: `cur_ptr` is unlinked; graveyard keeps it
                    // alive for still-reading threads until drop.
                    self.graveyard
                        .lock()
                        .push(unsafe { Box::from_raw(cur_ptr) });
                    return;
                }
                Err(_) => {
                    // SAFETY: `next` never got published.
                    drop(unsafe { Box::from_raw(next) });
                }
            }
        }
    }

    /// Remove and return the last element, lock-free.
    pub fn pop_back(&self) -> Option<T> {
        loop {
            let cur_ptr = self.descriptor.load(Ordering::Acquire);
            // SAFETY: see push_back.
            let cur = unsafe { &*cur_ptr };
            self.complete_write(cur);
            if cur.size == 0 {
                return None;
            }
            let value = T::load(self.cell(cur.size - 1));
            let next = Box::into_raw(Box::new(Descriptor::<T> {
                size: cur.size - 1,
                pending: None,
            }));
            match self.descriptor.compare_exchange(
                cur_ptr,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // SAFETY: `cur_ptr` is unlinked by the CAS; the
                    // graveyard keeps it alive for readers until drop.
                    self.graveyard
                        .lock()
                        .push(unsafe { Box::from_raw(cur_ptr) });
                    return Some(value);
                }
                Err(_) => {
                    // SAFETY: `next` never escaped this thread.
                    drop(unsafe { Box::from_raw(next) });
                }
            }
        }
    }

    /// Grow to `current + n` default-initialized elements. A bulk
    /// convenience the 2006 paper lacks; used by the resize benchmark so
    /// growth is one descriptor CAS per call rather than per element.
    pub fn extend_default(&self, n: usize) {
        if n == 0 {
            return;
        }
        loop {
            let cur_ptr = self.descriptor.load(Ordering::Acquire);
            // SAFETY: see push_back.
            let cur = unsafe { &*cur_ptr };
            self.complete_write(cur);
            let new_size = cur.size + n;
            // Allocate every bucket covering [cur.size, new_size): the
            // first element of bucket b sits at FBS * (2^b - 1).
            let (first_b, _) = locate(cur.size);
            let (last_b, _) = locate(new_size - 1);
            for b in first_b..=last_b {
                self.ensure_bucket(FIRST_BUCKET_SIZE * ((1usize << b) - 1));
            }
            let next = Box::into_raw(Box::new(Descriptor::<T> {
                size: new_size,
                pending: None,
            }));
            match self.descriptor.compare_exchange(
                cur_ptr,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // SAFETY: `cur_ptr` is unlinked by the CAS; the
                    // graveyard keeps it alive for readers until drop.
                    self.graveyard
                        .lock()
                        .push(unsafe { Box::from_raw(cur_ptr) });
                    return;
                }
                // SAFETY: `next` never escaped this thread.
                Err(_) => drop(unsafe { Box::from_raw(next) }),
            }
        }
    }

    /// Read element `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn read(&self, i: usize) -> T {
        assert!(
            i < self.len(),
            "index {i} out of bounds (len {})",
            self.len()
        );
        T::load(self.cell(i))
    }

    /// Update element `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn write(&self, i: usize, v: T) {
        assert!(
            i < self.len(),
            "index {i} out of bounds (len {})",
            self.len()
        );
        T::store(self.cell(i), v);
    }

    /// Snapshot the current values (not atomic as a whole).
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }
}

/// Free a bucket allocation of `len` cells.
///
/// # Safety
/// `ptr` must come from `Box::into_raw` of a `Box<[T::Repr]>` of exactly
/// `len` cells, not shared anywhere.
unsafe fn drop_bucket<T: Element>(ptr: *mut T::Repr, len: usize) {
    drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)) });
}

impl<T: Element> Drop for LockFreeVector<T> {
    fn drop(&mut self) {
        for (b, bucket) in self.buckets.iter().enumerate() {
            let ptr = bucket.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: allocated by ensure_bucket with bucket_len(b).
                unsafe { drop_bucket::<T>(ptr, bucket_len(b)) };
            }
        }
        // SAFETY: exclusive access; final descriptor unlinked.
        drop(unsafe { Box::from_raw(*self.descriptor.get_mut()) });
    }
}

impl<T: Element> std::fmt::Debug for LockFreeVector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockFreeVector")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn locate_math() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(7), (0, 7));
        assert_eq!(locate(8), (1, 0));
        assert_eq!(locate(23), (1, 15));
        assert_eq!(locate(24), (2, 0));
        assert_eq!(bucket_len(0), 8);
        assert_eq!(bucket_len(1), 16);
        assert_eq!(bucket_len(2), 32);
    }

    #[test]
    fn push_read_pop_round_trip() {
        let v: LockFreeVector<u64> = LockFreeVector::new();
        assert!(v.is_empty());
        for i in 0..100 {
            v.push_back(i);
        }
        assert_eq!(v.len(), 100);
        for i in 0..100 {
            assert_eq!(v.read(i as usize), i);
        }
        for i in (0..100).rev() {
            assert_eq!(v.pop_back(), Some(i));
        }
        assert_eq!(v.pop_back(), None);
    }

    #[test]
    fn write_updates_in_place() {
        let v = LockFreeVector::with_len(10);
        v.write(3, 42u32);
        assert_eq!(v.read(3), 42);
        assert_eq!(v.read(4), 0);
    }

    #[test]
    fn extend_default_grows_with_zeroes() {
        let v: LockFreeVector<u64> = LockFreeVector::new();
        v.extend_default(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.to_vec().iter().all(|&x| x == 0));
        v.extend_default(24);
        assert_eq!(v.len(), 1024);
    }

    #[test]
    fn elements_never_move_across_growth() {
        let v: LockFreeVector<u64> = LockFreeVector::with_len(8);
        v.write(0, 7);
        let cell_before = v.cell(0) as *const _;
        v.extend_default(10_000);
        assert_eq!(v.cell(0) as *const _, cell_before, "no relocation");
        assert_eq!(v.read(0), 7);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let v: Arc<LockFreeVector<u64>> = Arc::new(LockFreeVector::new());
        const THREADS: u64 = 4;
        const PER: u64 = 500;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let v = Arc::clone(&v);
                s.spawn(move || {
                    for i in 0..PER {
                        v.push_back(t * PER + i);
                    }
                });
            }
        });
        assert_eq!(v.len(), (THREADS * PER) as usize);
        let seen: HashSet<u64> = v.to_vec().into_iter().collect();
        assert_eq!(
            seen.len(),
            (THREADS * PER) as usize,
            "every push present exactly once"
        );
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let v: Arc<LockFreeVector<u64>> = Arc::new(LockFreeVector::new());
        for i in 0..100 {
            v.push_back(i);
        }
        let popped = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            let v1 = Arc::clone(&v);
            s.spawn(move || {
                for i in 100..200 {
                    v1.push_back(i);
                }
            });
            let v2 = Arc::clone(&v);
            let popped = &popped;
            s.spawn(move || {
                for _ in 0..50 {
                    if let Some(x) = v2.pop_back() {
                        popped.lock().unwrap().push(x);
                    }
                }
            });
        });
        let popped = popped.into_inner().unwrap();
        assert_eq!(v.len() + popped.len(), 200, "pushes - pops must balance");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_past_len_panics() {
        let v: LockFreeVector<u8> = LockFreeVector::with_len(2);
        v.read(2);
    }
}
