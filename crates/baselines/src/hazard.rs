//! `HazardArray`: RCUArray's block/snapshot structure with old snapshots
//! protected by **hazard pointers** (Michael, 2004) instead of EBR/QSBR.
//!
//! §I of the paper: "Mechanisms such as Hazard Pointers can provide a safe
//! non-blocking approach for memory reclamation with a balanced but
//! noticeable overhead to both read and write operations … unsuitable when
//! the performance of reads is far more important than the performance of
//! writes." This variant exists to measure that trade-off on the *same*
//! data structure: every read publishes the snapshot pointer it is about
//! to dereference into a shared hazard slot, validates it, and clears it
//! afterwards — two extra stores and one extra load per read, plus the
//! store→load fence the validation needs.
//!
//! The hazard machinery itself lives in [`HazardDomain`], a standalone
//! engine implementing the workspace-wide [`Reclaim`] trait: this array
//! retires old snapshots through [`Reclaim::retire`] with an address hint
//! exactly like `RcuArray` retires through EBR/QSBR, so the comparison
//! isolates the protocol, not the plumbing.
//!
//! Unlike RCUArray this variant keeps a single (non-privatized) snapshot:
//! hazard slots are per-thread, so per-locale replication would buy
//! nothing for the comparison while complicating the scan.

use crate::hazard_domain::HazardDomain;
use parking_lot::Mutex;
use rcuarray::{Block, BlockRegistry, Element, Snapshot};
use rcuarray_reclaim::{Reclaim, Retired};
use rcuarray_runtime::{Cluster, RoundRobinCounter};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Moves the unlinked snapshot pointer into the retire closure.
struct SendSnap<T: Element>(*mut Snapshot<T>);
// SAFETY: the snapshot is uniquely owned once unlinked, and its contents
// (block refs) are `Send`.
unsafe impl<T: Element> Send for SendSnap<T> {}
impl<T: Element> SendSnap<T> {
    fn into_raw(self) -> *mut Snapshot<T> {
        self.0
    }
}

/// A resizable block-cyclic array reclaimed with hazard pointers.
pub struct HazardArray<T: Element> {
    cluster: Arc<Cluster>,
    block_size: usize,
    account_comm: bool,
    blocks: BlockRegistry<T>,
    snapshot: AtomicPtr<Snapshot<T>>,
    domain: HazardDomain,
    next_locale: RoundRobinCounter,
    resize_lock: Mutex<()>,
    capacity: AtomicUsize,
}

// SAFETY: the only non-auto-Send/Sync field is the raw snapshot pointer,
// which is owned by the array, published atomically, and only freed after
// the hazard scan proves no reader holds it; `Element` bounds everything
// stored at `Send + Sync + 'static`.
unsafe impl<T: Element> Send for HazardArray<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Element> Sync for HazardArray<T> {}

impl<T: Element> HazardArray<T> {
    /// An empty array over `cluster` with the given block size.
    pub fn new(cluster: &Arc<Cluster>, block_size: usize, account_comm: bool) -> Self {
        assert!(block_size > 0);
        HazardArray {
            cluster: Arc::clone(cluster),
            block_size,
            account_comm,
            blocks: BlockRegistry::new(),
            snapshot: AtomicPtr::new(Box::into_raw(Box::new(Snapshot::empty()))),
            domain: HazardDomain::new(),
            next_locale: RoundRobinCounter::new(cluster.num_locales()),
            resize_lock: Mutex::new(()),
            capacity: AtomicUsize::new(0),
        }
    }

    /// The hazard-pointer engine protecting this array's snapshots.
    pub fn domain(&self) -> &HazardDomain {
        &self.domain
    }

    fn with_snapshot<R>(&self, f: impl FnOnce(&Snapshot<T>) -> R) -> R {
        // The guard clears the hazard slot even if `f` panics (e.g.
        // out-of-bounds index); a leaked hazard would spin every future
        // resize forever.
        let guard = self.domain.read_lock();
        let p = guard.protect(&self.snapshot);
        // SAFETY: `p` is hazard-protected: the resizer scans slots and
        // waits before freeing.
        f(unsafe { &*p })
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Alias of [`capacity`](Self::capacity).
    pub fn len(&self) -> usize {
        self.capacity()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.capacity() == 0
    }

    /// Read element `idx`.
    pub fn read(&self, idx: usize) -> T {
        let bs = self.block_size;
        self.with_snapshot(|snap| {
            let block = snap
                .try_block(idx / bs)
                .unwrap_or_else(|| panic!("index {idx} out of bounds"));
            // SAFETY: registry-owned block.
            let b = unsafe { block.get() };
            if self.account_comm {
                self.cluster.get_from(b.home(), T::byte_size());
            }
            b.load(idx % bs)
        })
    }

    /// Update element `idx`.
    pub fn write(&self, idx: usize, v: T) {
        let bs = self.block_size;
        self.with_snapshot(|snap| {
            let block = snap
                .try_block(idx / bs)
                .unwrap_or_else(|| panic!("index {idx} out of bounds"));
            // SAFETY: registry-owned block.
            let b = unsafe { block.get() };
            if self.account_comm {
                self.cluster.put_to(b.home(), T::byte_size());
            }
            b.store(idx % bs, v);
        })
    }

    /// Grow by at least `additional` elements (rounded up to blocks),
    /// recycling existing blocks exactly like RCUArray; the *old snapshot*
    /// is freed after a hazard scan shows no reader holds it.
    pub fn resize(&self, additional: usize) -> usize {
        let add = additional.div_ceil(self.block_size) * self.block_size;
        if add == 0 {
            return self.capacity();
        }
        let _g = self.resize_lock.lock();
        let nblocks = add / self.block_size;
        let new_blocks: Vec<_> = (0..nblocks)
            .map(|_| {
                let home = self.next_locale.take();
                self.blocks.adopt(Block::new(home, self.block_size))
            })
            .collect();
        let old_ptr = self.snapshot.load(Ordering::Acquire);
        // SAFETY: resize lock held; snapshot stable.
        let new_snap = unsafe { &*old_ptr }.clone_recycled(&new_blocks);
        let new_ptr = Box::into_raw(Box::new(new_snap));
        self.snapshot.store(new_ptr, Ordering::Release);
        // Retire through the domain: retire() issues a SeqCst fence that
        // orders the publish above before its hazard scan (the StoreLoad
        // edge hazard pointers require), then waits until no slot still
        // holds `old_ptr` and frees synchronously. Late readers
        // re-validate against the new pointer and retry.
        let old = SendSnap(old_ptr);
        self.domain.retire(Retired::with_hint(
            std::mem::size_of::<Snapshot<T>>(),
            old_ptr as usize,
            move || {
                // SAFETY: unlinked above and no hazard references it.
                drop(unsafe { Box::from_raw(old.into_raw()) });
            },
        ));
        self.capacity.fetch_add(add, Ordering::AcqRel) + add
    }

    /// Snapshot current values.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.capacity()).map(|i| self.read(i)).collect()
    }
}

impl<T: Element> Drop for HazardArray<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access.
        drop(unsafe { Box::from_raw(*self.snapshot.get_mut()) });
    }
}

impl<T: Element> std::fmt::Debug for HazardArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardArray")
            .field("capacity", &self.capacity())
            .field("block_size", &self.block_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_runtime::Topology;
    use std::sync::atomic::AtomicBool;

    fn cluster(n: usize) -> Arc<Cluster> {
        Cluster::new(Topology::new(n, 1))
    }

    #[test]
    fn round_trip() {
        let c = cluster(2);
        let a: HazardArray<u64> = HazardArray::new(&c, 8, false);
        assert_eq!(a.resize(10), 16);
        a.write(9, 77);
        assert_eq!(a.read(9), 77);
        assert_eq!(a.read(0), 0);
    }

    #[test]
    fn values_survive_resizes() {
        let c = cluster(3);
        let a: HazardArray<u32> = HazardArray::new(&c, 4, false);
        a.resize(4);
        a.write(1, 5);
        for _ in 0..10 {
            a.resize(4);
        }
        assert_eq!(a.read(1), 5);
        assert_eq!(a.capacity(), 44);
    }

    #[test]
    fn concurrent_reads_during_resizes() {
        let c = cluster(2);
        let a = Arc::new(HazardArray::<u64>::new(&c, 8, false));
        a.resize(32);
        for i in 0..32 {
            a.write(i, i as u64);
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let a = Arc::clone(&a);
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for i in 0..32 {
                            assert_eq!(a.read(i), i as u64);
                        }
                    }
                });
            }
            let a2 = Arc::clone(&a);
            let stop2 = &stop;
            s.spawn(move || {
                for _ in 0..50 {
                    a2.resize(8);
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(a.capacity(), 32 + 50 * 8);
    }

    #[test]
    fn retires_flow_through_the_domain_stats() {
        let c = cluster(1);
        let a: HazardArray<u64> = HazardArray::new(&c, 8, false);
        a.resize(8);
        a.resize(8);
        let s = a.domain().reclaim_stats();
        assert_eq!(s.retired, 2, "one retired snapshot per resize");
        assert_eq!(s.reclaimed, 2, "hazard retire frees synchronously");
        assert_eq!(s.pending, 0);
    }

    #[test]
    fn oob_panic_does_not_wedge_resizes() {
        // Regression: the OOB panic fires while the hazard slot is
        // published; without the guard's clear-on-drop the next resize
        // would spin on the stale hazard forever.
        let c = cluster(1);
        let a = Arc::new(HazardArray::<u64>::new(&c, 8, false));
        a.resize(8);
        let a2 = Arc::clone(&a);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            a2.read(999);
        }));
        assert!(r.is_err());
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let a3 = Arc::clone(&a);
        std::thread::spawn(move || {
            a3.resize(8);
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("resize wedged by leaked hazard");
        assert_eq!(a.capacity(), 16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let c = cluster(1);
        let a: HazardArray<u64> = HazardArray::new(&c, 8, false);
        a.resize(8);
        a.read(8);
    }
}
