//! `UnsafeArray`: the paper's *ChapelArray* baseline — "an unsynchronized
//! naive block distributed array using Chapel's standard BlockDist".
//!
//! Properties reproduced:
//!
//! * **Block distribution**: the index space is one contiguous chunk per
//!   locale ([`rcuarray_runtime::BlockDist`]), unlike RCUArray's
//!   block-cyclic layout.
//! * **Unsynchronized access**: reads and updates are a descriptor load
//!   plus an element access — no reader announcement of any kind.
//! * **Deep-copy resize**: growing allocates a whole new distributed
//!   storage and copies every element value across ("the extra work
//!   required to deep-copy blocks of memory from one smaller storage into
//!   a larger storage", §V-A) — the cost Figure 3 measures. Resizing is
//!   *not* parallel-safe: concurrent updates can be lost (which is the
//!   paper's point). Memory safety is still preserved on the Rust side:
//!   superseded storages are kept in a graveyard until the array drops,
//!   so a racing reader can at worst observe stale values, never freed
//!   memory.

use parking_lot::Mutex;
use rcuarray::Element;
use rcuarray_runtime::{BlockDist, Cluster, LocaleId};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One locale's contiguous chunk of the element space.
struct Chunk<T: Element> {
    home: LocaleId,
    cells: Box<[T::Repr]>,
}

/// A fully-allocated storage generation: distribution descriptor plus one
/// chunk per locale.
struct Storage<T: Element> {
    dist: BlockDist,
    chunks: Vec<Chunk<T>>,
}

impl<T: Element> Storage<T> {
    fn new(n: usize, num_locales: usize) -> Self {
        let dist = BlockDist::new(n, num_locales);
        let chunks = (0..num_locales)
            .map(|l| {
                let home = LocaleId::new(l as u32);
                let len = dist.chunk_of(home).len();
                Chunk {
                    home,
                    cells: (0..len).map(|_| T::new_repr(T::default())).collect(),
                }
            })
            .collect();
        Storage { dist, chunks }
    }

    #[inline]
    fn cell(&self, idx: usize) -> (&T::Repr, LocaleId) {
        // Chapel BlockDist indexing: consult the distribution descriptor,
        // then the owning locale's chunk.
        let owner = self.dist.locale_of(idx);
        let chunk = &self.chunks[owner.index()];
        let offset = idx - self.dist.chunk_of(owner).start;
        (&chunk.cells[offset], chunk.home)
    }

    fn len(&self) -> usize {
        self.dist.len()
    }
}

/// The paper's unsynchronized block-distributed baseline array.
pub struct UnsafeArray<T: Element> {
    cluster: Arc<Cluster>,
    current: AtomicPtr<Storage<T>>,
    /// Superseded storages, freed at drop: keeps racing readers sound.
    /// Boxed individually — readers hold raw pointers into these
    /// allocations, so they must not move when the vector grows.
    #[allow(clippy::vec_box)]
    graveyard: Mutex<Vec<Box<Storage<T>>>>,
    /// Resize serialization only (reads never touch it).
    resize_lock: Mutex<()>,
    len: AtomicUsize,
    resizes: AtomicU64,
    account_comm: bool,
}

// SAFETY: element cells are atomics; storage pointers are swapped
// atomically and never freed while reachable.
unsafe impl<T: Element> Send for UnsafeArray<T> {}
unsafe impl<T: Element> Sync for UnsafeArray<T> {}

impl<T: Element> UnsafeArray<T> {
    /// An empty array distributed over `cluster`, with communication
    /// accounting on.
    pub fn new(cluster: &Arc<Cluster>) -> Self {
        Self::with_accounting(cluster, true)
    }

    /// An empty array with explicit communication accounting.
    pub fn with_accounting(cluster: &Arc<Cluster>, account_comm: bool) -> Self {
        let storage = Box::new(Storage::<T>::new(0, cluster.num_locales()));
        UnsafeArray {
            cluster: Arc::clone(cluster),
            current: AtomicPtr::new(Box::into_raw(storage)),
            graveyard: Mutex::new(Vec::new()),
            resize_lock: Mutex::new(()),
            len: AtomicUsize::new(0),
            resizes: AtomicU64::new(0),
            account_comm,
        }
    }

    /// An array pre-sized to `capacity`.
    pub fn with_capacity(cluster: &Arc<Cluster>, capacity: usize) -> Self {
        let a = Self::new(cluster);
        a.resize(capacity);
        a
    }

    #[inline]
    fn storage(&self) -> &Storage<T> {
        // SAFETY: published storages are only freed at drop.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// Capacity in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Alias of [`capacity`](Self::capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.capacity()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.capacity() == 0
    }

    /// Read element `idx`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn read(&self, idx: usize) -> T {
        let (cell, home) = self.storage().cell(idx);
        if self.account_comm {
            self.cluster.get_from(home, T::byte_size());
        }
        T::load(cell)
    }

    /// Update element `idx`.
    ///
    /// Updates racing a resize may be lost (they land in the superseded
    /// storage after the copy passed them) — the unsynchronized behaviour
    /// the paper contrasts RCUArray against.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn write(&self, idx: usize, v: T) {
        let (cell, home) = self.storage().cell(idx);
        if self.account_comm {
            self.cluster.put_to(home, T::byte_size());
        }
        T::store(cell, v);
    }

    /// Grow by `additional` elements: allocate a larger distributed
    /// storage and **copy every existing element value** into it.
    /// Returns the new capacity.
    pub fn resize(&self, additional: usize) -> usize {
        if additional == 0 {
            return self.capacity();
        }
        let _g = self.resize_lock.lock();
        let old = self.storage();
        let new_len = old.len() + additional;
        let new = Box::new(Storage::<T>::new(new_len, self.cluster.num_locales()));
        for (l, chunk) in new.chunks.iter().enumerate() {
            self.cluster
                .locale(LocaleId::new(l as u32))
                .record_allocation(chunk.cells.len() * std::mem::size_of::<T::Repr>());
        }
        // The deep copy Figure 3 charges ChapelArray for. Element i may
        // move to a different locale (chunks re-balance as n grows), which
        // in Chapel is bulk PUT/GET traffic.
        for i in 0..old.len() {
            let (src, src_home) = old.cell(i);
            let (dst, dst_home) = new.cell(i);
            if self.account_comm && src_home != dst_home {
                let _ = self
                    .cluster
                    .copy_between(src_home, dst_home, T::byte_size());
            }
            T::store(dst, T::load(src));
        }
        let new_ptr = Box::into_raw(new);
        let old_ptr = self.current.swap(new_ptr, Ordering::AcqRel);
        // SAFETY: `old_ptr` came from Box::into_raw at publication.
        self.graveyard
            .lock()
            .push(unsafe { Box::from_raw(old_ptr) });
        self.len.store(new_len, Ordering::Release);
        self.resizes.fetch_add(1, Ordering::Relaxed);
        new_len
    }

    /// Resizes performed so far.
    pub fn resizes(&self) -> u64 {
        self.resizes.load(Ordering::Relaxed)
    }

    /// Assign `v` everywhere.
    pub fn fill(&self, v: T) {
        for i in 0..self.capacity() {
            self.write(i, v);
        }
    }

    /// Snapshot the current values.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.capacity()).map(|i| self.read(i)).collect()
    }

    /// The cluster this array lives on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }
}

impl<T: Element> Drop for UnsafeArray<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access.
        drop(unsafe { Box::from_raw(*self.current.get_mut()) });
    }
}

impl<T: Element> std::fmt::Debug for UnsafeArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnsafeArray")
            .field("capacity", &self.capacity())
            .field("locales", &self.cluster.num_locales())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_runtime::{task, Topology};

    fn cluster(n: usize) -> Arc<Cluster> {
        Cluster::new(Topology::new(n, 1))
    }

    #[test]
    fn empty_then_grow_and_round_trip() {
        let c = cluster(3);
        let a: UnsafeArray<u64> = UnsafeArray::with_accounting(&c, false);
        assert!(a.is_empty());
        assert_eq!(a.resize(10), 10);
        for i in 0..10 {
            assert_eq!(a.read(i), 0);
            a.write(i, i as u64 + 1);
        }
        assert_eq!(a.to_vec(), (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn resize_preserves_values_via_deep_copy() {
        let c = cluster(4);
        let a: UnsafeArray<u32> = UnsafeArray::with_accounting(&c, false);
        a.resize(7);
        for i in 0..7 {
            a.write(i, 100 + i as u32);
        }
        a.resize(93); // re-balances chunks entirely
        assert_eq!(a.capacity(), 100);
        for i in 0..7 {
            assert_eq!(a.read(i), 100 + i as u32, "value lost in deep copy");
        }
        assert_eq!(a.read(99), 0);
        assert_eq!(a.resizes(), 2);
    }

    #[test]
    fn elements_are_block_distributed_contiguously() {
        let c = cluster(2);
        let a: UnsafeArray<u64> = UnsafeArray::with_accounting(&c, true);
        a.resize(10); // chunks: L0 gets 0..5, L1 gets 5..10
        c.comm().reset();
        task::with_locale(LocaleId::ZERO, || {
            let _ = a.read(0); // local
            let _ = a.read(4); // local
            let _ = a.read(5); // remote
        });
        let s = c.comm_stats();
        assert_eq!(s.local_accesses, 2);
        assert_eq!(s.gets, 1);
    }

    #[test]
    fn reads_racing_resize_are_memory_safe() {
        let c = cluster(2);
        let a = Arc::new(UnsafeArray::<u64>::with_accounting(&c, false));
        a.resize(64);
        a.fill(7);
        std::thread::scope(|s| {
            let a2 = Arc::clone(&a);
            s.spawn(move || {
                for _ in 0..50 {
                    a2.resize(16);
                }
            });
            for _ in 0..3 {
                let a3 = Arc::clone(&a);
                s.spawn(move || {
                    for _ in 0..2000 {
                        // Reads may see stale/zero values near the frontier,
                        // but must never fault.
                        let v = a3.read(13);
                        assert!(v == 7 || v == 0);
                    }
                });
            }
        });
        assert_eq!(a.capacity(), 64 + 50 * 16);
    }

    #[test]
    fn fill_sets_everything() {
        let c = cluster(2);
        let a: UnsafeArray<i32> = UnsafeArray::with_accounting(&c, false);
        a.resize(9);
        a.fill(-3);
        assert!(a.to_vec().iter().all(|&v| v == -3));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let c = cluster(1);
        let a: UnsafeArray<u8> = UnsafeArray::with_accounting(&c, false);
        a.resize(4);
        a.read(4);
    }

    #[test]
    fn with_capacity_allocates() {
        let c = cluster(2);
        let a: UnsafeArray<u64> = UnsafeArray::with_capacity(&c, 12);
        assert_eq!(a.capacity(), 12);
    }

    #[test]
    fn resize_zero_noop() {
        let c = cluster(1);
        let a: UnsafeArray<u64> = UnsafeArray::with_accounting(&c, false);
        assert_eq!(a.resize(0), 0);
        assert_eq!(a.resizes(), 0);
    }
}
