#![warn(missing_docs)]

//! # rcuarray-baselines — every comparator from the paper's evaluation
//!
//! The RCUArray paper evaluates against, or motivates itself by, several
//! other designs. All of them are implemented here, from scratch, on the
//! same simulated runtime so comparisons are apples-to-apples:
//!
//! * [`UnsafeArray`] — the paper's *ChapelArray*: an unsynchronized array
//!   over Chapel's standard `BlockDist` (contiguous chunk per locale).
//!   Reads/updates are raw; a resize deep-copies every element into a
//!   larger allocation and is **not** safe to run concurrently with
//!   anything (the very problem RCUArray solves).
//! * [`SyncArray`] — the paper's *SyncArray*: "a safer variant … that uses
//!   mutual exclusion via sync variables". Every operation, including
//!   reads, takes a cluster-wide full/empty lock.
//! * [`RwLockArray`] — the §I motivation strawman: "reader-writer locks
//!   take a step in the right direction by allowing concurrent readers,
//!   but have the drawback of enforcing mutual exclusion with a single
//!   writer".
//! * [`LockFreeVector`] — the §II related work of Dechev, Pirkelbauer &
//!   Stroustrup: a lock-free dynamically resizable array using two-level
//!   indexing, operation descriptors and a helping scheme.
//! * [`HazardArray`] — §I's alternative reclamation: the same
//!   block/snapshot structure as RCUArray, but old snapshots protected and
//!   reclaimed with Michael's hazard pointers instead of EBR/QSBR,
//!   quantifying "a balanced but noticeable overhead to both read and
//!   write operations". The hazard machinery is a standalone
//!   [`HazardDomain`] implementing the workspace-wide `Reclaim` trait, so
//!   it can protect any structure, not just this array.

pub mod hazard;
pub mod hazard_domain;
pub mod lockfree_vector;
pub mod rwlock_array;
pub mod sync_array;
pub mod unsafe_array;

pub use hazard::HazardArray;
pub use hazard_domain::{HazardDomain, HazardGuard};
pub use lockfree_vector::LockFreeVector;
pub use rwlock_array::RwLockArray;
pub use sync_array::SyncArray;
pub use unsafe_array::UnsafeArray;
