//! `HazardDomain`: Michael's hazard pointers (2004) behind the
//! workspace-wide [`Reclaim`] trait.
//!
//! This is the third point in the reclamation design space the paper's §I
//! surveys (after EBR and QSBR), packaged as a reusable engine so the
//! comparison runs through the same trait as every other scheme:
//!
//! * **Readers** take a [`Reclaim::read_lock`] guard and call
//!   [`HazardGuard::protect`] on the pointer they are about to
//!   dereference. Protect publishes the pointer's address into the
//!   thread's hazard slot, then re-validates the source — the same
//!   store→load ordering requirement as the EBR increment-verify, paid
//!   per *read* ("a balanced but noticeable overhead to both read and
//!   write operations").
//! * **Writers** retire an unlinked pointer with an address hint
//!   ([`Retired::with_hint`]); [`Reclaim::retire`] scans every claimed
//!   slot and spins until none still holds that address, then frees
//!   synchronously. Retiring without an address hint skips the scan (no
//!   reader can have protected an address the writer never published).
//!
//! Hazard slots are assigned per `(thread, domain)` pair, sticky for the
//! domain's lifetime. Guards on one thread share the thread's slot, so
//! read-side critical sections must not nest; [`Reclaim::read_lock`]
//! panics if a guard for this domain is already live on the calling
//! thread (the inner guard's protect would silently overwrite the outer
//! guard's protection).

use rcuarray_reclaim::{Reclaim, ReclaimStats, Retired};
use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Maximum threads that may ever touch one `HazardDomain`.
pub const MAX_THREADS: usize = 256;

/// Unique domain ids for the TLS slot cache.
static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-domain slot map: (domain id, hazard slot index) pairs for every
    /// domain this thread has touched. A thread keeps exactly one sticky
    /// slot per domain no matter how it interleaves domains.
    static SLOT_CACHE: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// One hazard slot, cache-line padded: the address this thread is about
/// to dereference (or 0), plus whether a guard currently owns the slot.
#[repr(align(64))]
#[derive(Default)]
struct HazardSlot {
    addr: AtomicUsize,
    /// Set while a [`HazardGuard`] over this slot is live; detects nested
    /// `read_lock` on one thread, which would corrupt the protection.
    occupied: AtomicBool,
}

/// A hazard-pointer reclamation engine (see [module docs](self)).
pub struct HazardDomain {
    id: u64,
    hazards: Box<[HazardSlot]>,
    next_slot: AtomicUsize,
    guards: AtomicU64,
    guard_retries: AtomicU64,
    retired: AtomicU64,
    guard_panics: AtomicU64,
}

impl HazardDomain {
    /// A fresh domain with [`MAX_THREADS`] slots.
    pub fn new() -> Self {
        HazardDomain {
            id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
            hazards: (0..MAX_THREADS).map(|_| HazardSlot::default()).collect(),
            next_slot: AtomicUsize::new(0),
            guards: AtomicU64::new(0),
            guard_retries: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            guard_panics: AtomicU64::new(0),
        }
    }

    /// The calling thread's hazard slot for this domain (assigned once
    /// per `(thread, domain)` pair; alternating between domains reuses
    /// each domain's slot rather than claiming fresh ones).
    fn slot(&self) -> usize {
        SLOT_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if let Some(&(_, slot)) = cache.iter().find(|&&(id, _)| id == self.id) {
                return slot;
            }
            let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
            assert!(
                slot < MAX_THREADS,
                "more than {MAX_THREADS} threads touched one HazardDomain"
            );
            cache.push((self.id, slot));
            slot
        })
    }
}

impl Default for HazardDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HazardDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardDomain")
            .field("claimed_slots", &self.next_slot.load(Ordering::Relaxed))
            .finish()
    }
}

/// A read-side guard over one thread's hazard slot. Dropping it clears
/// the slot (even on panic — a leaked hazard would spin every future
/// retire forever).
pub struct HazardGuard<'a> {
    domain: &'a HazardDomain,
    slot: usize,
}

impl HazardGuard<'_> {
    /// Michael's protect-validate loop: publish the pointer currently in
    /// `src` into this thread's hazard slot and return it once the
    /// publication provably happened before any concurrent unlink.
    ///
    /// The returned pointer stays safe to dereference until the next
    /// `protect` call through this guard (which overwrites the slot) or
    /// the guard is dropped.
    pub fn protect<T>(&self, src: &AtomicPtr<T>) -> *mut T {
        let slot = &self.domain.hazards[self.slot].addr;
        loop {
            let p = src.load(Ordering::Acquire);
            slot.store(p as usize, Ordering::SeqCst);
            // The hazard store must be visible before the re-validation,
            // or a concurrent retire could both miss the hazard and have
            // us miss the swap.
            if src.load(Ordering::SeqCst) == p {
                return p;
            }
            self.domain.guard_retries.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for HazardGuard<'_> {
    fn drop(&mut self) {
        let slot = &self.domain.hazards[self.slot];
        slot.addr.store(0, Ordering::Release);
        slot.occupied.store(false, Ordering::Release);
        // A panicking reader still cleared its hazard and freed the slot
        // (the two stores above) — count it so chaos runs can assert no
        // retire ever wedged on a dead reader's slot.
        if std::thread::panicking() {
            self.domain.guard_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Reclaim for HazardDomain {
    type Guard<'a> = HazardGuard<'a>;

    /// # Panics
    /// If the calling thread already holds a live guard for this domain:
    /// guards share the thread's single hazard slot, so a nested guard
    /// would overwrite the outer guard's protection and its drop would
    /// clear the slot while the outer guard still relies on it.
    fn read_lock(&self) -> HazardGuard<'_> {
        self.guards.fetch_add(1, Ordering::Relaxed);
        let slot = self.slot();
        assert!(
            !self.hazards[slot].occupied.swap(true, Ordering::Acquire),
            "nested HazardDomain::read_lock on one thread: drop the outer \
             guard before taking another (guards share the thread's slot)"
        );
        HazardGuard { domain: self, slot }
    }

    fn retire(&self, retired: Retired) {
        let addr = retired.addr();
        if addr != 0 {
            // StoreLoad: the caller's unlink/publish store must be ordered
            // before the slot scan below. Without this fence the publish
            // can sit in the store buffer while the scan runs, so a reader
            // that re-validated against the *old* pointer is missed and
            // the object freed under it. (`protect` pairs with this via
            // its SeqCst hazard store + validation load.)
            fence(Ordering::SeqCst);
            // Scan every slot unconditionally (they are zero-initialized):
            // bounding by `next_slot` would race a concurrent Relaxed slot
            // claim and skip a thread that is mid-validation.
            for slot in self.hazards.iter() {
                while slot.addr.load(Ordering::SeqCst) == addr {
                    std::hint::spin_loop();
                }
            }
        }
        self.retired.fetch_add(1, Ordering::Relaxed);
        retired.run();
    }

    fn quiesce(&self) -> usize {
        0 // Reclamation happened at retire(); there is no backlog.
    }

    fn guards_reads(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "hazard"
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        let retired = self.retired.load(Ordering::Relaxed);
        ReclaimStats {
            guards: self.guards.load(Ordering::Relaxed),
            guard_retries: self.guard_retries.load(Ordering::Relaxed),
            // Every retire is one full-slot scan: the writer-side grace
            // wait, analogous to an EBR advance+drain.
            advances: retired,
            retired,
            reclaimed: retired,
            guard_panics: self.guard_panics.load(Ordering::Relaxed),
            ..ReclaimStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn slots_are_stable_per_thread() {
        let d = HazardDomain::new();
        let s1 = {
            let g = d.read_lock();
            g.slot
        };
        let s2 = {
            let g = d.read_lock();
            g.slot
        };
        assert_eq!(s1, s2, "same thread keeps its slot");
    }

    #[test]
    fn alternating_domains_reuse_slots() {
        // Regression: a one-entry TLS cache allocated a fresh slot on
        // every domain switch, exhausting MAX_THREADS slots on a single
        // thread after 256 alternations.
        let a = HazardDomain::new();
        let b = HazardDomain::new();
        for _ in 0..(2 * MAX_THREADS) {
            drop(a.read_lock());
            drop(b.read_lock());
        }
        assert_eq!(a.next_slot.load(Ordering::Relaxed), 1);
        assert_eq!(b.next_slot.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "nested HazardDomain::read_lock")]
    fn nested_read_lock_panics() {
        let d = HazardDomain::new();
        let _outer = d.read_lock();
        let _inner = d.read_lock();
    }

    #[test]
    fn guard_drop_releases_the_slot_for_reuse() {
        let d = HazardDomain::new();
        drop(d.read_lock());
        // Not nesting: the previous guard is gone, so the slot is free.
        drop(d.read_lock());
    }

    #[test]
    fn retire_without_hint_frees_immediately() {
        let d = HazardDomain::new();
        let ran = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ran);
        d.retire(Retired::new(move || r.store(true, Ordering::SeqCst)));
        assert!(ran.load(Ordering::SeqCst));
        assert_eq!(d.quiesce(), 0);
        let s = d.reclaim_stats();
        assert_eq!((s.retired, s.reclaimed, s.pending), (1, 1, 0));
    }

    #[test]
    fn protected_address_gates_retire() {
        let d = Arc::new(HazardDomain::new());
        let cell = AtomicPtr::new(Box::into_raw(Box::new(7u64)));
        let g = d.read_lock();
        let p = g.protect(&cell);
        // SAFETY: protected above; the retire below is still spinning.
        assert_eq!(unsafe { *p }, 7);
        let freed = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&d), Arc::clone(&freed));
        let old = p as usize;
        let writer = std::thread::spawn(move || {
            d2.retire(Retired::with_hint(
                std::mem::size_of::<u64>(),
                old,
                move || f2.store(true, Ordering::SeqCst),
            ));
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!freed.load(Ordering::SeqCst), "hazard must gate the free");
        drop(g);
        writer.join().unwrap();
        assert!(freed.load(Ordering::SeqCst));
        // SAFETY: test-owned allocation, retire closure was a flag only.
        drop(unsafe { Box::from_raw(p) });
    }

    #[test]
    fn protect_revalidates_against_a_racing_swap() {
        // Single-threaded simulation of the race: pre-swap the source
        // between guard creation and protect by using two cells.
        let d = HazardDomain::new();
        let a = Box::into_raw(Box::new(1u32));
        let cell = AtomicPtr::new(a);
        let g = d.read_lock();
        assert_eq!(g.protect(&cell), a, "stable source validates first try");
        drop(g);
        // SAFETY: test-owned.
        drop(unsafe { Box::from_raw(a) });
    }

    #[test]
    fn panicked_reader_releases_slot_and_is_counted() {
        let d = HazardDomain::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = d.read_lock();
            panic!("reader died");
        }));
        assert!(r.is_err());
        // The slot is free again: a fresh guard on this thread succeeds
        // (nested-detection would panic if `occupied` leaked), and a
        // retire with a hint does not spin on a stale hazard.
        drop(d.read_lock());
        d.retire(Retired::with_hint(8, 0xdead_beef, || {}));
        assert_eq!(d.reclaim_stats().guard_panics, 1);
    }

    #[test]
    fn stats_report_through_the_unified_vocabulary() {
        let d = HazardDomain::new();
        {
            let _g = d.read_lock();
        }
        d.retire(Retired::new(|| {}));
        let s = d.reclaim_stats();
        assert_eq!(s.guards, 1);
        assert_eq!(s.advances, 1, "one retire = one scan");
        assert!(!s.domain_wide);
        assert!(d.guards_reads());
        assert_eq!(Reclaim::name(&d), "hazard");
    }
}
