//! `RwLockArray`: the reader-writer-lock design §I uses to motivate RCU.
//!
//! "Reader-writer locks take a step in the right direction by allowing
//! concurrent readers, but have the drawback of enforcing mutual exclusion
//! with a single writer." Reads and updates take the shared side of one
//! cluster-wide `RwLock`; a resize takes the exclusive side, stalling the
//! whole cluster for its duration. Because the lock word lives on one
//! locale, remote read-lock acquisitions still pay a round trip — shared
//! mode fixes *concurrency*, not *locality*.

use crate::unsafe_array::UnsafeArray;
use parking_lot::RwLock;
use rcuarray::Element;
use rcuarray_runtime::{Cluster, CommMessage, LocaleId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The reader-writer-locked distributed array.
pub struct RwLockArray<T: Element> {
    inner: UnsafeArray<T>,
    lock: RwLock<()>,
    lock_home: LocaleId,
    read_acquisitions: AtomicU64,
    write_acquisitions: AtomicU64,
    account_comm: bool,
}

impl<T: Element> RwLockArray<T> {
    /// An empty array over `cluster`.
    pub fn new(cluster: &Arc<Cluster>) -> Self {
        Self::with_accounting(cluster, true)
    }

    /// An empty array with explicit communication accounting.
    pub fn with_accounting(cluster: &Arc<Cluster>, account_comm: bool) -> Self {
        RwLockArray {
            inner: UnsafeArray::with_accounting(cluster, account_comm),
            lock: RwLock::new(()),
            lock_home: LocaleId::ZERO,
            read_acquisitions: AtomicU64::new(0),
            write_acquisitions: AtomicU64::new(0),
            account_comm,
        }
    }

    /// An array pre-sized to `capacity`.
    pub fn with_capacity(cluster: &Arc<Cluster>, capacity: usize) -> Self {
        let a = Self::new(cluster);
        a.resize(capacity);
        a
    }

    #[inline]
    fn charge_lock_rmw(&self) {
        let from = rcuarray_runtime::current_locale();
        if self.account_comm && from != self.lock_home {
            // Even a shared acquisition is an RMW on the remote lock word.
            let _ = self
                .inner
                .cluster()
                .send_to(self.lock_home, CommMessage::LockAcquire);
        }
    }

    /// Read element `idx` under the shared lock.
    pub fn read(&self, idx: usize) -> T {
        self.charge_lock_rmw();
        let _g = self.lock.read();
        self.read_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.inner.read(idx)
    }

    /// Update element `idx` under the shared lock (updates don't change
    /// the array's *structure*, so they may proceed concurrently — the
    /// exclusive side exists for resizes).
    pub fn write(&self, idx: usize, v: T) {
        self.charge_lock_rmw();
        let _g = self.lock.read();
        self.read_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.inner.write(idx, v)
    }

    /// Grow by `additional` elements under the exclusive lock.
    pub fn resize(&self, additional: usize) -> usize {
        self.charge_lock_rmw();
        let _g = self.lock.write();
        self.write_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.inner.resize(additional)
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Alias of [`capacity`](Self::capacity).
    pub fn len(&self) -> usize {
        self.capacity()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.capacity() == 0
    }

    /// Shared-side acquisitions so far.
    pub fn read_acquisitions(&self) -> u64 {
        self.read_acquisitions.load(Ordering::Relaxed)
    }

    /// Exclusive-side acquisitions so far.
    pub fn write_acquisitions(&self) -> u64 {
        self.write_acquisitions.load(Ordering::Relaxed)
    }
}

impl<T: Element> std::fmt::Debug for RwLockArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLockArray")
            .field("capacity", &self.capacity())
            .field("read_acquisitions", &self.read_acquisitions())
            .field("write_acquisitions", &self.write_acquisitions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_runtime::Topology;

    fn cluster(n: usize) -> Arc<Cluster> {
        Cluster::new(Topology::new(n, 1))
    }

    #[test]
    fn round_trip_and_counters() {
        let c = cluster(2);
        let a: RwLockArray<u64> = RwLockArray::with_accounting(&c, false);
        a.resize(8);
        a.write(2, 11);
        assert_eq!(a.read(2), 11);
        assert_eq!(a.write_acquisitions(), 1);
        assert_eq!(a.read_acquisitions(), 2);
    }

    #[test]
    fn readers_proceed_concurrently() {
        let c = cluster(1);
        let a = Arc::new(RwLockArray::<u64>::with_accounting(&c, false));
        a.resize(4);
        // Two threads reading in lockstep many times: would deadlock or
        // serialize badly if reads were exclusive; here it just works.
        std::thread::scope(|s| {
            for _ in 0..2 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let _ = a.read(1);
                    }
                });
            }
        });
        assert_eq!(a.read_acquisitions(), 20_000);
    }

    #[test]
    fn resize_excludes_readers_but_preserves_data() {
        let c = cluster(2);
        let a = Arc::new(RwLockArray::<u64>::with_accounting(&c, false));
        a.resize(16);
        a.write(5, 42);
        std::thread::scope(|s| {
            let a1 = Arc::clone(&a);
            s.spawn(move || {
                for _ in 0..20 {
                    a1.resize(16);
                }
            });
            let a2 = Arc::clone(&a);
            s.spawn(move || {
                for _ in 0..5000 {
                    assert_eq!(a2.read(5), 42);
                }
            });
        });
        assert_eq!(a.capacity(), 16 + 20 * 16);
        assert_eq!(a.read(5), 42);
    }

    #[test]
    fn with_capacity_presizes() {
        let c = cluster(1);
        let a: RwLockArray<u8> = RwLockArray::with_capacity(&c, 5);
        assert_eq!(a.capacity(), 5);
        assert!(!a.is_empty());
    }
}
