//! `SyncArray`: the paper's mutual-exclusion baseline.
//!
//! "While UnsafeArray allows for concurrent read and update operations, it
//! is unable to allow concurrent resize operations and so a safer variant
//! is defined that uses mutual exclusion via sync variables" (§V).
//!
//! Every operation — reads included — acquires one cluster-wide
//! full/empty sync-variable lock homed on locale 0. This is what makes it
//! "the slowest of all where not only does it not scale due to mutual
//! exclusion, but also degrades in performance due to the increasing
//! number of remote tasks that must contest for the same lock" (§V-A):
//! the comm layer charges every remote task a round trip per acquisition.

use crate::unsafe_array::UnsafeArray;
use rcuarray::Element;
use rcuarray_runtime::sync_var::SyncVarLock;
use rcuarray_runtime::{Cluster, CommMessage, LocaleId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The sync-variable-locked distributed array.
pub struct SyncArray<T: Element> {
    inner: UnsafeArray<T>,
    lock: SyncVarLock,
    lock_home: LocaleId,
    acquisitions: AtomicU64,
    account_comm: bool,
}

impl<T: Element> SyncArray<T> {
    /// An empty locked array over `cluster`.
    pub fn new(cluster: &Arc<Cluster>) -> Self {
        Self::with_accounting(cluster, true)
    }

    /// An empty locked array with explicit communication accounting.
    pub fn with_accounting(cluster: &Arc<Cluster>, account_comm: bool) -> Self {
        SyncArray {
            inner: UnsafeArray::with_accounting(cluster, account_comm),
            lock: SyncVarLock::new(),
            lock_home: LocaleId::ZERO,
            acquisitions: AtomicU64::new(0),
            account_comm,
        }
    }

    /// An array pre-sized to `capacity`.
    pub fn with_capacity(cluster: &Arc<Cluster>, capacity: usize) -> Self {
        let a = Self::new(cluster);
        a.resize(capacity);
        a
    }

    /// Acquire the cluster-wide sync variable, charging remote tasks the
    /// round trip to its home locale.
    fn locked<R>(&self, f: impl FnOnce(&UnsafeArray<T>) -> R) -> R {
        let from = rcuarray_runtime::current_locale();
        if self.account_comm && from != self.lock_home {
            // One LockAcquire message: the GET+PUT round trip a remote
            // lock-word RMW costs on the wire.
            let _ = self
                .inner
                .cluster()
                .send_to(self.lock_home, CommMessage::LockAcquire);
        }
        let _g = self.lock.acquire();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let r = f(&self.inner);
        if self.account_comm && from != self.lock_home {
            let _ = self
                .inner
                .cluster()
                .send_to(self.lock_home, CommMessage::LockRelease);
        }
        r
    }

    /// Read element `idx` under the lock.
    pub fn read(&self, idx: usize) -> T {
        self.locked(|a| a.read(idx))
    }

    /// Update element `idx` under the lock.
    pub fn write(&self, idx: usize, v: T) {
        self.locked(|a| a.write(idx, v))
    }

    /// Grow by `additional` elements under the lock (deep copy, like the
    /// underlying UnsafeArray).
    pub fn resize(&self, additional: usize) -> usize {
        self.locked(|a| a.resize(additional))
    }

    /// Capacity in elements (lock-free: a stale answer is as good as a
    /// locked one for a monotonically growing array).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Alias of [`capacity`](Self::capacity).
    pub fn len(&self) -> usize {
        self.capacity()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.capacity() == 0
    }

    /// Total lock acquisitions (each op takes exactly one).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Snapshot the values under one lock acquisition.
    pub fn to_vec(&self) -> Vec<T> {
        self.locked(|a| a.to_vec())
    }
}

impl<T: Element> std::fmt::Debug for SyncArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncArray")
            .field("capacity", &self.capacity())
            .field("acquisitions", &self.acquisitions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_runtime::{task, Topology};

    fn cluster(n: usize) -> Arc<Cluster> {
        Cluster::new(Topology::new(n, 1))
    }

    #[test]
    fn basic_round_trip() {
        let c = cluster(2);
        let a: SyncArray<u64> = SyncArray::with_accounting(&c, false);
        a.resize(10);
        a.write(3, 7);
        assert_eq!(a.read(3), 7);
        assert_eq!(a.capacity(), 10);
        assert_eq!(a.acquisitions(), 3); // resize + write + read
    }

    #[test]
    fn concurrent_ops_and_resizes_are_safe() {
        let c = cluster(2);
        let a = Arc::new(SyncArray::<u64>::with_accounting(&c, false));
        a.resize(8);
        std::thread::scope(|s| {
            let a1 = Arc::clone(&a);
            s.spawn(move || {
                for _ in 0..20 {
                    a1.resize(8);
                }
            });
            for _ in 0..3 {
                let a2 = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..500 {
                        a2.write(i % 8, i as u64);
                        let _ = a2.read(i % 8);
                    }
                });
            }
        });
        assert_eq!(a.capacity(), 8 + 20 * 8);
    }

    #[test]
    fn remote_tasks_pay_for_the_lock() {
        let c = cluster(2);
        let a: SyncArray<u64> = SyncArray::new(&c);
        a.resize(4);
        c.comm().reset();
        task::with_locale(LocaleId::new(1), || {
            let _ = a.read(0);
        });
        let s = c.comm_stats();
        // Lock acquire round trip (get+put) + release put, plus the
        // element GET itself (index 0 is homed on L0).
        assert!(s.gets >= 2, "lock + element gets, saw {s:?}");
        assert!(s.puts >= 2, "lock puts, saw {s:?}");
    }

    #[test]
    fn local_tasks_do_not_pay_lock_comm() {
        let c = cluster(2);
        let a: SyncArray<u64> = SyncArray::new(&c);
        a.resize(4);
        c.comm().reset();
        task::with_locale(LocaleId::ZERO, || {
            let _ = a.read(0);
        });
        assert_eq!(c.comm_stats().remote_ops(), 0);
    }

    #[test]
    fn to_vec_under_single_acquisition() {
        let c = cluster(1);
        let a: SyncArray<u16> = SyncArray::with_accounting(&c, false);
        a.resize(3);
        a.write(1, 5);
        let before = a.acquisitions();
        assert_eq!(a.to_vec(), vec![0, 5, 0]);
        assert_eq!(a.acquisitions(), before + 1);
    }
}
