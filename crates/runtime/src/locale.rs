//! Locales: the logical nodes of the simulated cluster.
//!
//! A Chapel *locale* is a unit of the machine with its own memory and
//! processors — on the paper's testbed, one Cray XC-50 node. Here a locale
//! is a logical entity: data structures tag their blocks with the locale
//! that "owns" them, tasks carry a current-locale context, and the
//! communication layer charges for crossings. Each [`Locale`] also keeps
//! allocation counters so tests can verify that block distribution really
//! is round-robin (paper §III-D).

use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a locale (node) within a cluster. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocaleId(u32);

impl LocaleId {
    /// Locale 0 — where cluster-wide singletons (e.g. the write lock) live
    /// unless stated otherwise.
    pub const ZERO: LocaleId = LocaleId(0);

    /// Construct from a dense index.
    #[inline]
    pub const fn new(id: u32) -> Self {
        LocaleId(id)
    }

    /// The raw id.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The next locale in round-robin order over `num_locales` locales.
    #[inline]
    pub fn next_round_robin(self, num_locales: usize) -> LocaleId {
        debug_assert!(num_locales > 0);
        LocaleId(((self.index() + 1) % num_locales) as u32)
    }
}

impl std::fmt::Display for LocaleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for LocaleId {
    fn from(v: u32) -> Self {
        LocaleId(v)
    }
}

/// Per-locale bookkeeping: identity plus allocation accounting.
#[derive(Debug)]
pub struct Locale {
    id: LocaleId,
    allocations: AtomicU64,
    allocated_bytes: AtomicU64,
}

impl Locale {
    pub(crate) fn new(id: LocaleId) -> Self {
        Locale {
            id,
            allocations: AtomicU64::new(0),
            allocated_bytes: AtomicU64::new(0),
        }
    }

    /// This locale's id.
    #[inline]
    pub fn id(&self) -> LocaleId {
        self.id
    }

    /// Record that `bytes` bytes were allocated "on" this locale. Data
    /// structures call this when they home a block here.
    #[inline]
    pub fn record_allocation(&self, bytes: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.allocated_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of allocations homed on this locale.
    #[inline]
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Bytes allocated on this locale.
    #[inline]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_wraps() {
        let l = LocaleId::new(3);
        assert_eq!(l.next_round_robin(4), LocaleId::new(0));
        assert_eq!(LocaleId::new(0).next_round_robin(4), LocaleId::new(1));
    }

    #[test]
    fn round_robin_single_locale_is_identity() {
        assert_eq!(LocaleId::ZERO.next_round_robin(1), LocaleId::ZERO);
    }

    #[test]
    fn allocation_accounting_accumulates() {
        let l = Locale::new(LocaleId::new(7));
        l.record_allocation(128);
        l.record_allocation(64);
        assert_eq!(l.allocations(), 2);
        assert_eq!(l.allocated_bytes(), 192);
        assert_eq!(l.id(), LocaleId::new(7));
    }

    #[test]
    fn display_format() {
        assert_eq!(LocaleId::new(12).to_string(), "L12");
    }

    #[test]
    fn conversions_round_trip() {
        let l: LocaleId = 9u32.into();
        assert_eq!(l.raw(), 9);
        assert_eq!(l.index(), 9);
    }
}
