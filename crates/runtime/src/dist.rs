//! Index-to-locale distribution maps.
//!
//! Two distributions matter to the paper:
//!
//! * [`BlockDist`] — Chapel's standard `BlockDist`, used by the
//!   *ChapelArray*/*SyncArray* baselines: the index space is cut into one
//!   contiguous chunk per locale.
//! * [`BlockCyclicDist`] — RCUArray's own layout: fixed-size blocks dealt
//!   round-robin across locales ("blocks of the array are distributed in a
//!   round-robin fashion similar to a block-cyclic distribution",
//!   paper §III-D), driven at allocation time by the naive
//!   [`RoundRobinCounter`] (`NextLocaleId` in Listing 1).

use crate::locale::LocaleId;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Chapel-style block distribution: `n` indices split into `num_locales`
/// contiguous chunks, the first `n % num_locales` chunks one element
/// longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist {
    n: usize,
    num_locales: usize,
}

impl BlockDist {
    /// Distribution of `n` indices over `num_locales` locales.
    ///
    /// # Panics
    /// Panics when `num_locales` is zero.
    pub fn new(n: usize, num_locales: usize) -> Self {
        assert!(num_locales > 0, "need at least one locale");
        BlockDist { n, num_locales }
    }

    /// Total number of indices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the index space is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The locale owning index `idx`.
    ///
    /// # Panics
    /// Panics when `idx >= len()`.
    #[inline]
    pub fn locale_of(&self, idx: usize) -> LocaleId {
        assert!(idx < self.n, "index {idx} out of bounds for {}", self.n);
        let base = self.n / self.num_locales;
        let rem = self.n % self.num_locales;
        // The first `rem` locales own `base + 1` elements each.
        let big = rem * (base + 1);
        let loc = if idx < big {
            idx / (base + 1)
        } else {
            rem + (idx - big) / base.max(1)
        };
        LocaleId::new(loc as u32)
    }

    /// The contiguous index range owned by `locale`.
    pub fn chunk_of(&self, locale: LocaleId) -> Range<usize> {
        let l = locale.index();
        assert!(l < self.num_locales, "locale {locale} outside distribution");
        let base = self.n / self.num_locales;
        let rem = self.n % self.num_locales;
        let start = if l < rem {
            l * (base + 1)
        } else {
            rem * (base + 1) + (l - rem) * base
        };
        let len = if l < rem { base + 1 } else { base };
        start..start + len
    }

    /// The offset of `idx` within its owner's chunk.
    #[inline]
    pub fn offset_within_chunk(&self, idx: usize) -> usize {
        let owner = self.locale_of(idx);
        idx - self.chunk_of(owner).start
    }
}

/// RCUArray's layout: fixed-size blocks assigned to locales round-robin in
/// block-allocation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclicDist {
    block_size: usize,
    num_locales: usize,
}

impl BlockCyclicDist {
    /// Blocks of `block_size` elements round-robined over `num_locales`.
    ///
    /// # Panics
    /// Panics when either argument is zero.
    pub fn new(block_size: usize, num_locales: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(num_locales > 0, "need at least one locale");
        BlockCyclicDist {
            block_size,
            num_locales,
        }
    }

    /// Elements per block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The block holding index `idx` (paper Algorithm 3 line 1).
    #[inline]
    pub fn block_of(&self, idx: usize) -> usize {
        idx / self.block_size
    }

    /// The offset of `idx` within its block (Algorithm 3 line 2).
    #[inline]
    pub fn offset_of(&self, idx: usize) -> usize {
        idx % self.block_size
    }

    /// The locale that block `block_idx` lands on when blocks are dealt
    /// starting from `first_locale`.
    #[inline]
    pub fn locale_of_block(&self, block_idx: usize, first_locale: LocaleId) -> LocaleId {
        LocaleId::new(((first_locale.index() + block_idx) % self.num_locales) as u32)
    }

    /// How many blocks cover `n` elements.
    #[inline]
    pub fn blocks_for(&self, n: usize) -> usize {
        n.div_ceil(self.block_size)
    }
}

/// The paper's `NextLocaleId`: "a naive counter to handle distributing the
/// allocation of blocks across multiple locales in a block distributed
/// fashion". Writers advance it under the write lock; this type also
/// tolerates lock-free use.
#[derive(Debug)]
pub struct RoundRobinCounter {
    next: AtomicUsize,
    num_locales: usize,
}

impl RoundRobinCounter {
    /// A counter over `num_locales` locales starting at locale 0.
    pub fn new(num_locales: usize) -> Self {
        assert!(num_locales > 0);
        RoundRobinCounter {
            next: AtomicUsize::new(0),
            num_locales,
        }
    }

    /// The locale the next allocation should go to, without advancing.
    pub fn peek(&self) -> LocaleId {
        LocaleId::new((self.next.load(Ordering::Relaxed) % self.num_locales) as u32)
    }

    /// Take the next locale and advance.
    pub fn take(&self) -> LocaleId {
        let v = self.next.fetch_add(1, Ordering::Relaxed);
        LocaleId::new((v % self.num_locales) as u32)
    }

    /// Overwrite the counter position (paper Algorithm 3 line 28 stores the
    /// final `locId` back after a resize).
    pub fn set(&self, locale: LocaleId) {
        self.next.store(locale.index(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_dist_chunks_partition_the_space() {
        for n in [0usize, 1, 7, 10, 64, 100] {
            for locales in [1usize, 2, 3, 4, 7] {
                let d = BlockDist::new(n, locales);
                let mut covered = 0;
                let mut expected_start = 0;
                for l in 0..locales {
                    let chunk = d.chunk_of(LocaleId::new(l as u32));
                    assert_eq!(chunk.start, expected_start, "n={n} locales={locales}");
                    expected_start = chunk.end;
                    covered += chunk.len();
                }
                assert_eq!(covered, n, "chunks must cover exactly n");
            }
        }
    }

    #[test]
    fn block_dist_locale_of_agrees_with_chunks() {
        let d = BlockDist::new(10, 3);
        for idx in 0..10 {
            let owner = d.locale_of(idx);
            assert!(d.chunk_of(owner).contains(&idx), "idx={idx} owner={owner}");
        }
    }

    #[test]
    fn block_dist_balance_within_one() {
        let d = BlockDist::new(100, 7);
        let sizes: Vec<usize> = (0..7).map(|l| d.chunk_of(LocaleId::new(l)).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?} not balanced");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_dist_rejects_oob() {
        BlockDist::new(4, 2).locale_of(4);
    }

    #[test]
    fn block_cyclic_math_matches_algorithm3() {
        let d = BlockCyclicDist::new(1024, 4);
        assert_eq!(d.block_of(0), 0);
        assert_eq!(d.block_of(1023), 0);
        assert_eq!(d.block_of(1024), 1);
        assert_eq!(d.offset_of(1025), 1);
        assert_eq!(d.blocks_for(0), 0);
        assert_eq!(d.blocks_for(1), 1);
        assert_eq!(d.blocks_for(1024), 1);
        assert_eq!(d.blocks_for(1025), 2);
    }

    #[test]
    fn block_cyclic_round_robin_from_offset() {
        let d = BlockCyclicDist::new(8, 3);
        assert_eq!(d.locale_of_block(0, LocaleId::new(2)), LocaleId::new(2));
        assert_eq!(d.locale_of_block(1, LocaleId::new(2)), LocaleId::new(0));
        assert_eq!(d.locale_of_block(4, LocaleId::new(2)), LocaleId::new(0));
    }

    #[test]
    fn round_robin_counter_cycles() {
        let c = RoundRobinCounter::new(3);
        assert_eq!(c.peek(), LocaleId::new(0));
        assert_eq!(c.take(), LocaleId::new(0));
        assert_eq!(c.take(), LocaleId::new(1));
        assert_eq!(c.take(), LocaleId::new(2));
        assert_eq!(c.take(), LocaleId::new(0));
    }

    #[test]
    fn round_robin_counter_set_positions() {
        let c = RoundRobinCounter::new(4);
        c.set(LocaleId::new(3));
        assert_eq!(c.take(), LocaleId::new(3));
        assert_eq!(c.take(), LocaleId::new(0));
    }

    #[test]
    fn offset_within_chunk() {
        let d = BlockDist::new(10, 3); // chunks: 0..4, 4..7, 7..10
        assert_eq!(d.offset_within_chunk(0), 0);
        assert_eq!(d.offset_within_chunk(3), 3);
        assert_eq!(d.offset_within_chunk(4), 0);
        assert_eq!(d.offset_within_chunk(9), 2);
    }
}
