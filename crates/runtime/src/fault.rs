//! Deterministic fault injection for the simulated cluster.
//!
//! The paper evaluates RCUArray on a healthy Cray XC-50; a real deployment
//! also has to survive an unhealthy one. This module lets tests declare, up
//! front and reproducibly, how the simulated network misbehaves:
//!
//! * **probabilistic faults** — each GET/PUT/remote-execute fails with a
//!   configured probability, decided by a seeded counter-based PRNG so the
//!   schedule is a pure function of `(seed, locale, op kind, sequence #)`;
//! * **locale state** — a locale can be marked *down* (every operation
//!   touching it fails with [`CommError::LocaleDown`]) or *slow* (operations
//!   touching it spin for extra time before completing);
//! * **link rules** — directed `(from, to)` rules targeting one link rather
//!   than a whole locale: *partition* (fail with
//!   [`CommError::Partitioned`]), *one-way delay* (spin before completing —
//!   asymmetric latency), *drop* (probabilistic [`CommError::Transient`],
//!   pairs with a retry policy) and *reorder* (perturb the mesh backend's
//!   delivery order — observation only, no failures);
//! * **trigger points** — named one-shot hooks (e.g. `"resize.publish"`)
//!   that error or panic on their n-th hit, for aiming a fault at one exact
//!   phase of an algorithm.
//!
//! Every injected fault is appended to an event log; two runs with the same
//! seed and the same (per-locale single-threaded) workload produce the same
//! log, which is how the chaos suite asserts reproducibility.
//!
//! A disabled plan (the default) costs one predictable branch per
//! operation: [`FaultPlan::check`] tests a single `bool` and returns.

use crate::locale::LocaleId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bound on locales a fault plan can track (down/slow bitmasks are a
/// single word). The paper's largest evaluation uses 32 locales.
pub const MAX_FAULT_LOCALES: usize = 64;

/// The kinds of communication operations a plan can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A remote read (GET).
    Get,
    /// A remote write (PUT).
    Put,
    /// A remote `on`-block execution (active message).
    RemoteExec,
}

impl OpKind {
    #[inline]
    fn index(self) -> usize {
        match self {
            OpKind::Get => 0,
            OpKind::Put => 1,
            OpKind::RemoteExec => 2,
        }
    }

    /// Stable name used in event logs and `Display` output.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::RemoteExec => "on",
        }
    }
}

/// Why a simulated communication operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The operation (or its retry loop) exceeded its time budget.
    Timeout {
        /// The operation that timed out.
        op: OpKind,
        /// The remote locale it was addressed to.
        locale: LocaleId,
    },
    /// The target locale is marked down; retrying cannot help until it is
    /// marked up again.
    LocaleDown {
        /// The operation that was refused.
        op: OpKind,
        /// The locale that is down.
        locale: LocaleId,
    },
    /// A one-off loss (dropped packet, failed trigger); retrying may
    /// succeed.
    Transient {
        /// The operation that was dropped.
        op: OpKind,
        /// The remote locale it was addressed to.
        locale: LocaleId,
    },
    /// The target structure's reclamation backlog is at its configured
    /// byte cap (see `PressureConfig` in `rcuarray-reclaim`): the write
    /// was refused rather than growing the backlog. Retrying after a
    /// quiesce may succeed — unless a stalled reader pins the backlog,
    /// in which case the error keeps surfacing until stall detection
    /// clears it.
    Backpressure {
        /// The operation that was refused.
        op: OpKind,
        /// The locale whose reclamation backlog is at capacity.
        locale: LocaleId,
    },
    /// The directed link to the target locale is partitioned (a link
    /// rule, not a down locale — the reverse direction and other links
    /// may be healthy). A standing condition like `LocaleDown`: retrying
    /// cannot help until the partition heals.
    Partitioned {
        /// The operation that was refused.
        op: OpKind,
        /// The unreachable locale (the far end of the cut link).
        locale: LocaleId,
    },
}

impl CommError {
    /// Whether a retry has any chance of succeeding. `LocaleDown` and
    /// `Partitioned` are standing conditions, not worth burning the retry
    /// budget on.
    #[inline]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            CommError::Transient { .. }
                | CommError::Timeout { .. }
                | CommError::Backpressure { .. }
        )
    }

    /// The operation kind the error occurred on.
    #[inline]
    pub fn op(&self) -> OpKind {
        match *self {
            CommError::Timeout { op, .. }
            | CommError::LocaleDown { op, .. }
            | CommError::Transient { op, .. }
            | CommError::Backpressure { op, .. }
            | CommError::Partitioned { op, .. } => op,
        }
    }

    /// The remote locale the failed operation was addressed to.
    #[inline]
    pub fn locale(&self) -> LocaleId {
        match *self {
            CommError::Timeout { locale, .. }
            | CommError::LocaleDown { locale, .. }
            | CommError::Transient { locale, .. }
            | CommError::Backpressure { locale, .. }
            | CommError::Partitioned { locale, .. } => locale,
        }
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { op, locale } => {
                write!(f, "{} to {locale} timed out", op.name())
            }
            CommError::LocaleDown { op, locale } => {
                write!(f, "{} refused: {locale} is down", op.name())
            }
            CommError::Transient { op, locale } => {
                write!(f, "{} to {locale} dropped (transient)", op.name())
            }
            CommError::Backpressure { op, locale } => {
                write!(
                    f,
                    "{} to {locale} refused: reclamation backlog at capacity",
                    op.name()
                )
            }
            CommError::Partitioned { op, locale } => {
                write!(f, "{} refused: link to {locale} partitioned", op.name())
            }
        }
    }
}

impl std::error::Error for CommError {}

/// What a trigger point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return a [`CommError::Transient`] from the hit site.
    Error,
    /// Panic at the hit site (exercises unwind paths).
    Panic,
}

/// One injected fault, as recorded in the plan's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The locale that initiated the faulted operation.
    pub from: LocaleId,
    /// The error injected.
    pub error: CommError,
    /// The decision stream the fault was drawn from: a `(locale, op)`
    /// stream, a link stream, or a trigger stream. Together with `seq`
    /// this names the draw itself, which is a pure function of the seed
    /// — unlike the destination in `error`, whose pairing with a draw
    /// depends on how sibling tasks interleave on the shared stream.
    pub stream: u64,
    /// Position in `stream` — `seq` of a probabilistic fault, hit count
    /// of a trigger.
    pub seq: u64,
    /// Trigger name when the fault came from a trigger point.
    pub trigger: Option<&'static str>,
}

/// A named one-shot fault site.
#[derive(Debug)]
struct Trigger {
    name: &'static str,
    /// Hits to let through before firing.
    skip: u64,
    /// Firings remaining (decremented each time the trigger fires).
    remaining: u64,
    action: FaultAction,
    hits: u64,
}

/// Per-locale decision-stream counters, padded so concurrent streams don't
/// false-share (the same discipline as the comm counters).
#[repr(align(64))]
#[derive(Debug, Default)]
struct SeqCounters {
    per_op: [AtomicU64; 3],
}

/// One directed `(from, to)` link's fault rule. All aspects of a link live
/// in one rule so a partition, a delay and a drop probability can stack.
#[derive(Debug)]
struct LinkRule {
    from: LocaleId,
    to: LocaleId,
    /// Every operation on the link fails with [`CommError::Partitioned`].
    partitioned: bool,
    /// Extra one-way spin charged before the link completes an operation.
    delay: Duration,
    /// Drop probability scaled to `[0, PROB_ONE]` (0 = never drop).
    drop_threshold: u64,
    /// The mesh backend perturbs this link's observed delivery order.
    reorder: bool,
    /// This link's decision-stream position (drop rolls, event seqs).
    seq: u64,
}

impl LinkRule {
    fn new(from: LocaleId, to: LocaleId) -> Self {
        LinkRule {
            from,
            to,
            partitioned: false,
            delay: Duration::ZERO,
            drop_threshold: 0,
            reorder: false,
            seq: 0,
        }
    }
}

/// Stream-id bit marking link streams, so a link's drop rolls never collide
/// with a locale's `(from, op)` streams.
const LINK_STREAM_BASE: u64 = 1 << 32;

/// Stream-id bit marking trigger streams (the stream coordinate is a hash
/// of the trigger's name; its `seq` is the hit count).
const TRIGGER_STREAM_BASE: u64 = 1 << 33;

/// FNV-1a over a trigger name, for its fingerprint stream coordinate.
fn trigger_stream(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    TRIGGER_STREAM_BASE | (h & 0xFFFF_FFFF)
}

const PROB_ONE: u64 = 1 << 32;

/// A deterministic fault schedule, installed on a `Cluster` at build time.
///
/// ```
/// use rcuarray_runtime::{Cluster, FaultPlan, LocaleId, OpKind, Topology};
///
/// let plan = FaultPlan::new(0xC0FFEE).fail_puts(0.5);
/// let cluster = Cluster::builder()
///     .topology(Topology::new(2, 1))
///     .fault_plan(plan)
///     .build();
/// rcuarray_runtime::task::with_locale(LocaleId::ZERO, || {
///     let mut failures = 0;
///     for _ in 0..64 {
///         if cluster.try_put_to(LocaleId::new(1), 8).is_err() {
///             failures += 1;
///         }
///     }
///     assert!(failures > 0, "a 50% plan must inject some failures");
/// });
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    enabled: bool,
    seed: u64,
    /// Per-op failure thresholds scaled to [0, 2^32].
    thresholds: [u64; 3],
    /// Bitmask of locales currently down.
    down: AtomicU64,
    /// Bitmask of locales currently slow.
    slow: AtomicU64,
    /// Extra spin charged per operation touching a slow locale.
    slow_delay: Duration,
    seq: Box<[SeqCounters]>,
    /// Fast-path gate for [`hit`](Self::hit): true iff any trigger is armed.
    has_triggers: AtomicBool,
    triggers: Mutex<Vec<Trigger>>,
    /// Fast-path gate for the per-link rules: true once any rule exists.
    has_link_rules: AtomicBool,
    links: Mutex<Vec<LinkRule>>,
    events: Mutex<Vec<FaultEvent>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlan {
    /// An enabled plan with the given seed and no faults configured yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            enabled: true,
            seed,
            thresholds: [0; 3],
            down: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            slow_delay: Duration::from_micros(10),
            seq: (0..MAX_FAULT_LOCALES)
                .map(|_| SeqCounters::default())
                .collect(),
            has_triggers: AtomicBool::new(false),
            triggers: Mutex::new(Vec::new()),
            has_link_rules: AtomicBool::new(false),
            links: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The inert plan every cluster gets unless told otherwise. All checks
    /// reduce to a single branch on `enabled`.
    pub fn disabled() -> Self {
        FaultPlan {
            enabled: false,
            ..Self::new(0)
        }
    }

    /// Whether this plan injects anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The seed the schedule is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fail GETs with probability `p` in `[0, 1]`.
    pub fn fail_gets(mut self, p: f64) -> Self {
        self.thresholds[OpKind::Get.index()] = prob_to_threshold(p);
        self
    }

    /// Fail PUTs with probability `p` in `[0, 1]`.
    pub fn fail_puts(mut self, p: f64) -> Self {
        self.thresholds[OpKind::Put.index()] = prob_to_threshold(p);
        self
    }

    /// Fail remote executions with probability `p` in `[0, 1]`.
    pub fn fail_remote_exec(mut self, p: f64) -> Self {
        self.thresholds[OpKind::RemoteExec.index()] = prob_to_threshold(p);
        self
    }

    /// Fail every kind of operation with probability `p` in `[0, 1]`.
    pub fn fail_all(self, p: f64) -> Self {
        self.fail_gets(p).fail_puts(p).fail_remote_exec(p)
    }

    /// Extra delay charged to operations touching a slow locale.
    pub fn slow_delay(mut self, d: Duration) -> Self {
        self.slow_delay = d;
        self
    }

    /// Arm a named trigger: after `skip` benign hits, fire `times` times
    /// with `action`, then disarm.
    pub fn trigger(self, name: &'static str, skip: u64, times: u64, action: FaultAction) -> Self {
        self.triggers.lock().push(Trigger {
            name,
            skip,
            remaining: times,
            action,
            hits: 0,
        });
        self.has_triggers.store(true, Ordering::Release);
        self
    }

    /// Arm `name` to fire exactly once, on its first hit.
    pub fn trigger_once(self, name: &'static str, action: FaultAction) -> Self {
        self.trigger(name, 0, 1, action)
    }

    /// Mark `locale` down (builder form of [`set_down`](Self::set_down)).
    pub fn with_locale_down(self, locale: LocaleId) -> Self {
        self.set_down(locale, true);
        self
    }

    /// Mark `locale` down or back up at runtime.
    pub fn set_down(&self, locale: LocaleId, down: bool) {
        assert!(locale.index() < MAX_FAULT_LOCALES);
        let bit = 1u64 << locale.index();
        if down {
            self.down.fetch_or(bit, Ordering::Release);
        } else {
            self.down.fetch_and(!bit, Ordering::Release);
        }
    }

    /// Whether `locale` is currently marked down.
    #[inline]
    pub fn is_down(&self, locale: LocaleId) -> bool {
        self.enabled && self.down.load(Ordering::Acquire) & (1u64 << locale.index()) != 0
    }

    /// Find-or-create the rule for the directed link `from → to` and let
    /// `f` mutate it.
    fn edit_link(&self, from: LocaleId, to: LocaleId, f: impl FnOnce(&mut LinkRule)) {
        assert_ne!(from, to, "a link rule targets a cross-locale link");
        let mut links = self.links.lock();
        let rule = match links.iter_mut().position(|r| r.from == from && r.to == to) {
            Some(i) => &mut links[i],
            None => {
                links.push(LinkRule::new(from, to));
                links.last_mut().expect("just pushed")
            }
        };
        f(rule);
        self.has_link_rules.store(true, Ordering::Release);
    }

    /// Partition the directed link `from → to`: every operation it carries
    /// fails with [`CommError::Partitioned`]. The reverse direction is
    /// unaffected (builder form of
    /// [`set_link_partitioned`](Self::set_link_partitioned)).
    pub fn partition_link(self, from: LocaleId, to: LocaleId) -> Self {
        self.edit_link(from, to, |r| r.partitioned = true);
        self
    }

    /// Partition both directions between `a` and `b` (a symmetric cut).
    pub fn partition_between(self, a: LocaleId, b: LocaleId) -> Self {
        self.partition_link(a, b).partition_link(b, a)
    }

    /// Charge `delay` extra one-way spin to every operation on the
    /// directed link `from → to` (asymmetric latency: the reverse
    /// direction stays fast).
    pub fn delay_link(self, from: LocaleId, to: LocaleId, delay: Duration) -> Self {
        self.edit_link(from, to, |r| r.delay = delay);
        self
    }

    /// Drop operations on the directed link `from → to` with probability
    /// `p` in `[0, 1]` ([`CommError::Transient`] — pairs with a
    /// [`RetryPolicy`], which is the point).
    pub fn drop_link(self, from: LocaleId, to: LocaleId, p: f64) -> Self {
        self.edit_link(from, to, |r| r.drop_threshold = prob_to_threshold(p));
        self
    }

    /// Mark the directed link `from → to` for delivery reordering: the
    /// mesh backend swaps adjacent deliveries on it. Pure observation —
    /// nothing fails, and the shmem backend (where send *is* delivery)
    /// ignores it.
    pub fn reorder_link(self, from: LocaleId, to: LocaleId) -> Self {
        self.edit_link(from, to, |r| r.reorder = true);
        self
    }

    /// Cut or heal the directed link `from → to` at runtime.
    pub fn set_link_partitioned(&self, from: LocaleId, to: LocaleId, partitioned: bool) {
        self.edit_link(from, to, |r| r.partitioned = partitioned);
    }

    /// Whether the directed link `from → to` is currently partitioned.
    pub fn link_partitioned(&self, from: LocaleId, to: LocaleId) -> bool {
        self.enabled
            && self
                .links
                .lock()
                .iter()
                .any(|r| r.from == from && r.to == to && r.partitioned)
    }

    /// The directed links marked for delivery reordering (consumed by the
    /// mesh backend at construction).
    pub fn reorder_links(&self) -> Vec<(LocaleId, LocaleId)> {
        self.links
            .lock()
            .iter()
            .filter(|r| r.reorder)
            .map(|r| (r.from, r.to))
            .collect()
    }

    /// Mark `locale` slow or back to normal at runtime.
    pub fn set_slow(&self, locale: LocaleId, slow: bool) {
        assert!(locale.index() < MAX_FAULT_LOCALES);
        let bit = 1u64 << locale.index();
        if slow {
            self.slow.fetch_or(bit, Ordering::Release);
        } else {
            self.slow.fetch_and(!bit, Ordering::Release);
        }
    }

    /// Decide the fate of one operation from `from` addressed to `to`.
    ///
    /// The decision consumes one step of the `(from, op)` stream; with one
    /// task per locale the full schedule is reproducible from the seed.
    #[inline]
    pub fn check(&self, from: LocaleId, to: LocaleId, op: OpKind) -> Result<(), CommError> {
        if !self.enabled {
            return Ok(());
        }
        self.check_slow(from, to, op)
    }

    #[cold]
    fn check_slow(&self, from: LocaleId, to: LocaleId, op: OpKind) -> Result<(), CommError> {
        if self.down.load(Ordering::Acquire) & (1u64 << to.index()) != 0 {
            let err = CommError::LocaleDown { op, locale: to };
            let seq = self.seq[from.index()].per_op[op.index()].fetch_add(1, Ordering::Relaxed);
            self.log(FaultEvent {
                from,
                error: err,
                stream: (from.index() as u64) << 2 | op.index() as u64,
                seq,
                trigger: None,
            });
            return Err(err);
        }
        if self.has_link_rules.load(Ordering::Acquire) {
            self.check_link(from, to, op)?;
        }
        if self.slow.load(Ordering::Acquire) & (1u64 << to.index()) != 0 {
            crate::comm::spin_for(self.slow_delay);
        }
        let thr = self.thresholds[op.index()];
        if thr == 0 {
            return Ok(());
        }
        let seq = self.seq[from.index()].per_op[op.index()].fetch_add(1, Ordering::Relaxed);
        if self.roll(from, op, seq) < thr {
            let err = CommError::Transient { op, locale: to };
            self.log(FaultEvent {
                from,
                error: err,
                stream: (from.index() as u64) << 2 | op.index() as u64,
                seq,
                trigger: None,
            });
            return Err(err);
        }
        Ok(())
    }

    /// Apply the directed link rule for `from → to`, if any: partition,
    /// one-way delay, then the probabilistic drop roll — in that order, so
    /// a partitioned link refuses instantly without paying its delay.
    fn check_link(&self, from: LocaleId, to: LocaleId, op: OpKind) -> Result<(), CommError> {
        // Copy the rule out under the lock; spin and log after dropping it
        // so a delayed link doesn't serialize every other link's checks.
        let (partitioned, delay, drop_threshold, seq) = {
            let mut links = self.links.lock();
            let Some(rule) = links.iter_mut().find(|r| r.from == from && r.to == to) else {
                return Ok(());
            };
            let seq = rule.seq;
            rule.seq += 1;
            (rule.partitioned, rule.delay, rule.drop_threshold, seq)
        };
        if partitioned {
            let err = CommError::Partitioned { op, locale: to };
            self.log(FaultEvent {
                from,
                error: err,
                // The whole-link stream (op marker 3: any operation) —
                // which *kind* of op drew a given link seq depends on
                // task interleaving, so the per-op coordinate would make
                // the fingerprint timing-sensitive.
                stream: LINK_STREAM_BASE
                    | (from.index() as u64) << 16
                    | (to.index() as u64) << 2
                    | 0b11,
                seq,
                trigger: None,
            });
            return Err(err);
        }
        if !delay.is_zero() {
            crate::comm::spin_for(delay);
        }
        if drop_threshold > 0 {
            let stream = LINK_STREAM_BASE
                | (from.index() as u64) << 16
                | (to.index() as u64) << 2
                | op.index() as u64;
            if self.roll_stream(stream, seq) < drop_threshold {
                let err = CommError::Transient { op, locale: to };
                self.log(FaultEvent {
                    from,
                    error: err,
                    stream,
                    seq,
                    trigger: None,
                });
                return Err(err);
            }
        }
        Ok(())
    }

    /// The deterministic dice roll for decision `seq` of stream
    /// `(locale, op)`: a splitmix64 finalizer over the stream coordinates,
    /// truncated to 32 bits so it compares against the thresholds.
    fn roll(&self, from: LocaleId, op: OpKind, seq: u64) -> u64 {
        self.roll_stream((from.index() as u64) << 2 | op.index() as u64, seq)
    }

    /// The roll for an arbitrary stream id (locale streams stay below
    /// [`LINK_STREAM_BASE`]; link streams live above it).
    fn roll_stream(&self, stream: u64, seq: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) & 0xFFFF_FFFF
    }

    /// Hit a named trigger point. Returns an error (or panics) when an
    /// armed trigger for `name` fires; otherwise a no-op.
    ///
    /// # Panics
    /// Panics when the firing trigger's action is [`FaultAction::Panic`].
    #[inline]
    pub fn hit(&self, name: &'static str) -> Result<(), CommError> {
        if !self.enabled || !self.has_triggers.load(Ordering::Acquire) {
            return Ok(());
        }
        self.hit_slow(name)
    }

    #[cold]
    fn hit_slow(&self, name: &'static str) -> Result<(), CommError> {
        let from = crate::task::current_locale();
        let mut triggers = self.triggers.lock();
        let Some(t) = triggers
            .iter_mut()
            .find(|t| t.name == name && t.remaining > 0)
        else {
            return Ok(());
        };
        t.hits += 1;
        if t.hits <= t.skip {
            return Ok(());
        }
        t.remaining -= 1;
        let action = t.action;
        let hits = t.hits;
        let any_left = triggers.iter().any(|t| t.remaining > 0);
        self.has_triggers.store(any_left, Ordering::Release);
        drop(triggers);
        let err = CommError::Transient {
            op: OpKind::RemoteExec,
            locale: from,
        };
        self.log(FaultEvent {
            from,
            error: err,
            stream: trigger_stream(name),
            seq: hits,
            trigger: Some(name),
        });
        match action {
            FaultAction::Error => Err(err),
            FaultAction::Panic => panic!("fault injection: trigger {name:?} fired (hit {hits})"),
        }
    }

    fn log(&self, ev: FaultEvent) {
        self.events.lock().push(ev);
    }

    /// Snapshot of every fault injected so far, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().clone()
    }

    /// Number of faults injected so far.
    pub fn fault_count(&self) -> usize {
        self.events.lock().len()
    }

    /// An order-insensitive fingerprint of the event log: two runs of the
    /// same seeded workload must produce equal fingerprints even when
    /// concurrent tasks interleave their draws on the shared decision
    /// streams differently.
    ///
    /// The hash covers each event's *stream coordinates* — `(stream,
    /// seq)` plus the error variant — and deliberately nothing from the
    /// error payload: whether a given draw faults is a pure function of
    /// the seed, but which destination (or, on a link stream, which op
    /// kind) happens to consume that draw depends on how sibling tasks
    /// interleave, so hashing it would make the fingerprint
    /// timing-sensitive. The full pairing stays inspectable in
    /// [`events`](Self::events).
    pub fn fingerprint(&self) -> u64 {
        self.events
            .lock()
            .iter()
            .map(|e| {
                let mut x = e
                    .stream
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(e.seq);
                x ^= match e.error {
                    CommError::Timeout { .. } => 0x1111_0000_0000_0000,
                    CommError::LocaleDown { .. } => 0x2222_0000_0000_0000,
                    CommError::Transient { .. } => 0x3333_0000_0000_0000,
                    CommError::Backpressure { .. } => 0x4444_0000_0000_0000,
                    CommError::Partitioned { .. } => 0x5555_0000_0000_0000,
                };
                // splitmix64 finalizer, then fold by XOR (commutative).
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            })
            .fold(0u64, |a, b| a ^ b)
    }
}

fn prob_to_threshold(p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
    (p * PROB_ONE as f64) as u64
}

/// Backoff floor in spin units (first retry waits at least this long).
const JITTER_BASE: u64 = 1 << 6;
/// Backoff ceiling in spin units: pure exponential growth stops here.
const JITTER_CAP: u64 = 1 << 16;
/// Spinning past one batch yields the thread between batches so a backed-off
/// retrier cannot starve the task whose progress it is waiting on.
const SPIN_YIELD_BATCH: u64 = 1 << 10;
/// Default stream for the decorrelated-jitter PRNG. Any fixed value works;
/// what matters is that two policies with the same seed replay the same
/// backoff sequence (checker/fingerprint determinism).
const DEFAULT_JITTER_SEED: u64 = 0x5265_7472_794A_6974; // "RetryJit"

/// One step of AWS-style *decorrelated jitter*: the next wait is uniform in
/// `[base, prev * 3]`, clamped to the cap. Unlike equal/full jitter this
/// decorrelates concurrent retriers (different seeds spread out instead of
/// colliding on the same power-of-two rungs) while still growing
/// geometrically in expectation. The PRNG is a counter-mode splitmix64 over
/// `state`, so the sequence is a pure function of the starting seed — no
/// clocks, no global RNG — and replays identically under the deterministic
/// checker and the fault plan's fingerprint tests.
fn decorrelated_jitter(state: &mut u64, prev: u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let span = prev.saturating_mul(3).max(JITTER_BASE + 1) - JITTER_BASE;
    (JITTER_BASE + x % span).min(JITTER_CAP)
}

/// Busy-wait for `units` spin units, yielding between batches.
fn spin_units(units: u64) {
    let mut done = 0u64;
    while done < units {
        let batch = (units - done).min(SPIN_YIELD_BATCH);
        for _ in 0..batch {
            std::hint::spin_loop();
        }
        done += batch;
        if done < units {
            rcuarray_analysis::thread::yield_now();
        }
    }
}

/// Bounded-retry policy for fault-aware operations: retry transient
/// failures with decorrelated-jitter spin-then-yield backoff until the
/// attempt budget or the time budget runs out.
///
/// The jitter sequence is a pure function of [`jitter_seed`]
/// (`RetryPolicy::jitter_seed`): replaying an operation with the same seed
/// replays the same waits, which keeps fault-plan fingerprints and the
/// deterministic checker stable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Wall-clock budget across all attempts of one operation.
    pub op_timeout: Duration,
    /// Seed for the decorrelated-jitter backoff PRNG. Two tasks retrying
    /// the same contended operation should use different seeds so their
    /// retries spread out instead of colliding in lockstep.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            op_timeout: Duration::from_millis(100),
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }
}

impl RetryPolicy {
    /// A policy with an explicit attempt and time budget.
    pub const fn new(max_retries: u32, op_timeout: Duration) -> Self {
        RetryPolicy {
            max_retries,
            op_timeout,
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }

    /// The fail-fast policy: one attempt, no retries.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            op_timeout: Duration::from_secs(1),
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }

    /// The same policy with a different jitter stream (e.g. one per task,
    /// derived from the task id).
    pub const fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Run `attempt` until it succeeds or the budget is exhausted. Each
    /// retry is charged to the calling locale through `comm` (so tests can
    /// assert who paid for the recovery) and backs off with decorrelated
    /// jitter.
    ///
    /// Non-retryable errors ([`CommError::LocaleDown`]) propagate
    /// immediately; exhausting the time budget converts the last error
    /// into [`CommError::Timeout`].
    pub fn run<T>(
        &self,
        comm: &crate::comm::CommLayer,
        mut attempt: impl FnMut() -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        let mut rng = self.jitter_seed;
        let mut wait = JITTER_BASE;
        let start = Instant::now();
        let mut retries = 0u32;
        loop {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) if retries >= self.max_retries => return Err(e),
                Err(e) => {
                    if start.elapsed() >= self.op_timeout {
                        return Err(CommError::Timeout {
                            op: e.op(),
                            locale: e.locale(),
                        });
                    }
                    retries += 1;
                    comm.record_retry(crate::task::current_locale());
                    wait = decorrelated_jitter(&mut rng, wait);
                    spin_units(wait);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{CommLayer, LatencyModel};

    fn l(i: u32) -> LocaleId {
        LocaleId::new(i)
    }

    #[test]
    fn disabled_plan_never_faults() {
        let p = FaultPlan::disabled();
        for i in 0..10_000 {
            assert!(p.check(l(0), l(1), OpKind::Get).is_ok(), "step {i}");
        }
        assert!(p.hit("resize.publish").is_ok());
        assert_eq!(p.fault_count(), 0);
    }

    #[test]
    fn probability_one_always_faults_and_zero_never() {
        let p = FaultPlan::new(7).fail_puts(1.0);
        for _ in 0..100 {
            assert!(matches!(
                p.check(l(0), l(1), OpKind::Put),
                Err(CommError::Transient {
                    op: OpKind::Put,
                    ..
                })
            ));
            assert!(p.check(l(0), l(1), OpKind::Get).is_ok(), "gets unaffected");
        }
        assert_eq!(p.fault_count(), 100);
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let p = FaultPlan::new(42).fail_gets(0.25);
        let n = 4000;
        let mut failures = 0;
        for _ in 0..n {
            if p.check(l(0), l(1), OpKind::Get).is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let p = FaultPlan::new(seed).fail_all(0.3);
            let mut outcomes = Vec::new();
            for i in 0..200 {
                let from = l(i % 3);
                outcomes.push(p.check(from, l(3), OpKind::Put).is_ok());
                outcomes.push(p.check(from, l(3), OpKind::Get).is_ok());
            }
            (outcomes, p.fingerprint())
        };
        let (a, fa) = run(0xDEAD_BEEF);
        let (b, fb) = run(0xDEAD_BEEF);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_eq!(fa, fb);
        let (c, fc) = run(0xDEAD_BEF0);
        assert!(a != c || fa != fc, "different seed should differ");
    }

    #[test]
    fn streams_are_independent_per_locale_and_op() {
        // Consuming extra decisions on one stream must not perturb another:
        // that independence is what makes concurrent runs reproducible.
        let p1 = FaultPlan::new(9).fail_all(0.5);
        let p2 = FaultPlan::new(9).fail_all(0.5);
        for _ in 0..50 {
            let _ = p2.check(l(1), l(2), OpKind::Get); // extra traffic on L1
        }
        let a: Vec<bool> = (0..100)
            .map(|_| p1.check(l(0), l(2), OpKind::Put).is_ok())
            .collect();
        let b: Vec<bool> = (0..100)
            .map(|_| p2.check(l(0), l(2), OpKind::Put).is_ok())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn down_locale_fails_everything_until_revived() {
        let p = FaultPlan::new(1);
        p.set_down(l(2), true);
        assert!(p.is_down(l(2)));
        assert!(matches!(
            p.check(l(0), l(2), OpKind::Get),
            Err(CommError::LocaleDown { .. })
        ));
        assert!(p.check(l(0), l(1), OpKind::Get).is_ok(), "others fine");
        p.set_down(l(2), false);
        assert!(p.check(l(0), l(2), OpKind::Get).is_ok());
    }

    #[test]
    fn slow_locale_spins() {
        let p = FaultPlan::new(1).slow_delay(Duration::from_micros(300));
        p.set_slow(l(1), true);
        let t0 = Instant::now();
        assert!(p.check(l(0), l(1), OpKind::Get).is_ok());
        assert!(t0.elapsed() >= Duration::from_micros(300));
    }

    #[test]
    fn trigger_skips_then_fires_then_disarms() {
        let p = FaultPlan::new(3).trigger("resize.publish", 2, 2, FaultAction::Error);
        assert!(p.hit("resize.publish").is_ok(), "skip 1");
        assert!(p.hit("resize.publish").is_ok(), "skip 2");
        assert!(p.hit("resize.publish").is_err(), "fire 1");
        assert!(p.hit("resize.publish").is_err(), "fire 2");
        assert!(p.hit("resize.publish").is_ok(), "disarmed");
        assert!(p.hit("other").is_ok(), "unknown names are benign");
        let evs = p.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].trigger, Some("resize.publish"));
    }

    #[test]
    #[should_panic(expected = "fault injection: trigger")]
    fn panic_trigger_panics() {
        let p = FaultPlan::new(3).trigger_once("resize.alloc", FaultAction::Panic);
        let _ = p.hit("resize.alloc");
    }

    #[test]
    fn error_display_and_classification() {
        let t = CommError::Transient {
            op: OpKind::Put,
            locale: l(3),
        };
        let d = CommError::LocaleDown {
            op: OpKind::Get,
            locale: l(1),
        };
        let o = CommError::Timeout {
            op: OpKind::RemoteExec,
            locale: l(0),
        };
        assert!(t.is_retryable());
        assert!(o.is_retryable());
        assert!(!d.is_retryable());
        assert_eq!(t.op(), OpKind::Put);
        assert_eq!(d.locale(), l(1));
        assert!(t.to_string().contains("transient"));
        assert!(d.to_string().contains("down"));
        assert!(o.to_string().contains("timed out"));
    }

    #[test]
    fn partitioned_link_is_directed_and_heals() {
        let p = FaultPlan::new(5).partition_link(l(0), l(1));
        assert!(p.link_partitioned(l(0), l(1)));
        assert!(!p.link_partitioned(l(1), l(0)));
        assert!(matches!(
            p.check(l(0), l(1), OpKind::Put),
            Err(CommError::Partitioned {
                op: OpKind::Put,
                ..
            })
        ));
        assert!(
            p.check(l(1), l(0), OpKind::Put).is_ok(),
            "the reverse direction is a different link"
        );
        assert!(p.check(l(0), l(2), OpKind::Put).is_ok(), "other links fine");
        p.set_link_partitioned(l(0), l(1), false);
        assert!(p.check(l(0), l(1), OpKind::Put).is_ok(), "healed");
        let evs = p.events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0].error, CommError::Partitioned { .. }));
    }

    #[test]
    fn partition_between_cuts_both_directions() {
        let p = FaultPlan::new(5).partition_between(l(0), l(1));
        assert!(p.check(l(0), l(1), OpKind::Get).is_err());
        assert!(p.check(l(1), l(0), OpKind::Get).is_err());
    }

    #[test]
    fn partitioned_is_a_standing_condition() {
        let e = CommError::Partitioned {
            op: OpKind::Get,
            locale: l(1),
        };
        assert!(!e.is_retryable(), "retrying into a partition is futile");
        assert_eq!(e.op(), OpKind::Get);
        assert_eq!(e.locale(), l(1));
        assert!(e.to_string().contains("partitioned"));
    }

    #[test]
    fn delayed_link_is_one_way() {
        let p = FaultPlan::new(5).delay_link(l(0), l(1), Duration::from_micros(300));
        let t0 = Instant::now();
        assert!(p.check(l(0), l(1), OpKind::Get).is_ok());
        assert!(t0.elapsed() >= Duration::from_micros(300), "forward pays");
        let t0 = Instant::now();
        assert!(p.check(l(1), l(0), OpKind::Get).is_ok());
        assert!(
            t0.elapsed() < Duration::from_micros(300),
            "reverse stays fast"
        );
    }

    #[test]
    fn drop_link_rate_tracks_probability_and_is_deterministic() {
        let run = || {
            let p = FaultPlan::new(77).drop_link(l(0), l(1), 0.25);
            let outcomes: Vec<bool> = (0..2000)
                .map(|_| p.check(l(0), l(1), OpKind::Put).is_ok())
                .collect();
            (outcomes, p.fingerprint())
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b, "same seed replays the same drop schedule");
        assert_eq!(fa, fb);
        let rate = a.iter().filter(|ok| !**ok).count() as f64 / a.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "observed drop rate {rate}");
        let p = FaultPlan::new(77).drop_link(l(0), l(1), 0.25);
        for _ in 0..200 {
            assert!(
                p.check(l(1), l(0), OpKind::Put).is_ok(),
                "reverse link has no rule"
            );
        }
    }

    #[test]
    fn reorder_links_are_collected_not_checked() {
        let p = FaultPlan::new(5)
            .reorder_link(l(0), l(1))
            .reorder_link(l(2), l(0));
        assert_eq!(p.reorder_links(), vec![(l(0), l(1)), (l(2), l(0))]);
        // Reordering is observational: the check path never fails for it.
        for _ in 0..100 {
            assert!(p.check(l(0), l(1), OpKind::Put).is_ok());
        }
    }

    #[test]
    fn retry_policy_succeeds_after_transients() {
        let comm = CommLayer::new(2, LatencyModel::None);
        let mut left = 3;
        let out = RetryPolicy::new(8, Duration::from_secs(1)).run(&comm, || {
            if left > 0 {
                left -= 1;
                Err(CommError::Transient {
                    op: OpKind::Put,
                    locale: l(1),
                })
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(comm.fault_totals().retries, 3, "each retry is charged");
    }

    #[test]
    fn retry_policy_exhausts_budget() {
        let comm = CommLayer::new(1, LatencyModel::None);
        let out: Result<(), _> = RetryPolicy::new(2, Duration::from_secs(1)).run(&comm, || {
            Err(CommError::Transient {
                op: OpKind::Get,
                locale: l(0),
            })
        });
        assert!(matches!(out, Err(CommError::Transient { .. })));
        assert_eq!(comm.fault_totals().retries, 2);
    }

    #[test]
    fn retry_policy_fails_fast_on_locale_down() {
        let comm = CommLayer::new(1, LatencyModel::None);
        let mut calls = 0;
        let out: Result<(), _> = RetryPolicy::default().run(&comm, || {
            calls += 1;
            Err(CommError::LocaleDown {
                op: OpKind::Get,
                locale: l(0),
            })
        });
        assert!(matches!(out, Err(CommError::LocaleDown { .. })));
        assert_eq!(calls, 1, "no retries against a down locale");
        assert_eq!(comm.fault_totals().retries, 0);
    }

    #[test]
    fn retry_policy_times_out() {
        let comm = CommLayer::new(1, LatencyModel::None);
        let out: Result<(), _> =
            RetryPolicy::new(u32::MAX, Duration::from_millis(5)).run(&comm, || {
                std::thread::sleep(Duration::from_millis(2));
                Err(CommError::Transient {
                    op: OpKind::Put,
                    locale: l(0),
                })
            });
        assert!(matches!(out, Err(CommError::Timeout { .. })));
    }

    #[test]
    fn backpressure_is_retryable_and_classified() {
        let e = CommError::Backpressure {
            op: OpKind::Put,
            locale: l(3),
        };
        assert!(e.is_retryable(), "backpressure lifts after a quiesce");
        assert_eq!(e.op(), OpKind::Put);
        assert_eq!(e.locale(), l(3));
        assert!(e.to_string().contains("backlog at capacity"));
    }

    #[test]
    fn retry_policy_retries_through_backpressure() {
        let comm = CommLayer::new(1, LatencyModel::None);
        let mut calls = 0;
        let out = RetryPolicy::new(8, Duration::from_secs(1)).run(&comm, || {
            calls += 1;
            if calls < 3 {
                Err(CommError::Backpressure {
                    op: OpKind::Put,
                    locale: l(0),
                })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(comm.fault_totals().retries, 2);
    }

    #[test]
    fn jitter_sequence_is_a_pure_function_of_the_seed() {
        let walk = |seed: u64| {
            let mut state = seed;
            let mut wait = JITTER_BASE;
            (0..32)
                .map(|_| {
                    wait = decorrelated_jitter(&mut state, wait);
                    wait
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(7), walk(7), "same seed replays the same backoff");
        assert_ne!(walk(7), walk(8), "different seeds decorrelate");
    }

    #[test]
    fn jitter_stays_within_base_and_cap() {
        let mut state = 0xDEAD_BEEF;
        let mut wait = JITTER_BASE;
        for _ in 0..10_000 {
            wait = decorrelated_jitter(&mut state, wait);
            assert!((JITTER_BASE..=JITTER_CAP).contains(&wait));
        }
    }

    #[test]
    fn with_jitter_seed_changes_only_the_stream() {
        let p = RetryPolicy::default().with_jitter_seed(42);
        assert_eq!(p.jitter_seed, 42);
        assert_eq!(p.max_retries, RetryPolicy::default().max_retries);
        assert_eq!(p.op_timeout, RetryPolicy::default().op_timeout);
    }
}
