//! Chapel `sync` variables: full/empty semantics.
//!
//! The paper's `SyncArray` baseline "uses mutual exclusion via sync
//! variables". A Chapel `sync` variable carries a *full/empty* bit:
//! writing requires the variable to be empty and leaves it full; reading
//! (the default, `readFE`) requires it to be full and leaves it empty.
//! Used as a lock, `writeEF(true)` acquires and `readFE()` releases (or the
//! reverse convention; either way one state transition per operation, with
//! blocked tasks parked on a condition variable).
//!
//! [`SyncVar`] implements the full Chapel method set that matters here:
//! `write_ef`, `read_fe`, `read_ff`, `write_ff`, `reset`, `is_full`.

use rcuarray_analysis::sync::{Condvar, Mutex};
use std::time::Duration;

struct State<T> {
    value: Option<T>,
}

/// A full/empty synchronized variable.
pub struct SyncVar<T> {
    state: Mutex<State<T>>,
    became_full: Condvar,
    became_empty: Condvar,
}

impl<T> Default for SyncVar<T> {
    fn default() -> Self {
        Self::new_empty()
    }
}

impl<T> SyncVar<T> {
    /// A new, empty sync variable.
    pub fn new_empty() -> Self {
        SyncVar {
            state: Mutex::new(State { value: None }),
            became_full: Condvar::new(),
            became_empty: Condvar::new(),
        }
    }

    /// A new sync variable initialized full with `value`.
    pub fn new_full(value: T) -> Self {
        SyncVar {
            state: Mutex::new(State { value: Some(value) }),
            became_full: Condvar::new(),
            became_empty: Condvar::new(),
        }
    }

    /// Chapel `writeEF`: block until empty, then store `value` and mark
    /// full, waking one reader.
    pub fn write_ef(&self, value: T) {
        let mut st = self.state.lock();
        while st.value.is_some() {
            self.became_empty.wait(&mut st);
        }
        st.value = Some(value);
        drop(st);
        self.became_full.notify_one();
    }

    /// Chapel `readFE`: block until full, then take the value and mark
    /// empty, waking one writer.
    pub fn read_fe(&self) -> T {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.value.take() {
                drop(st);
                self.became_empty.notify_one();
                return v;
            }
            self.became_full.wait(&mut st);
        }
    }

    /// `readFE` with a timeout; `None` if the variable stayed empty.
    pub fn read_fe_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.value.take() {
                drop(st);
                self.became_empty.notify_one();
                return Some(v);
            }
            if self.became_full.wait_until(&mut st, deadline).timed_out() {
                return st.value.take().inspect(|_| {
                    self.became_empty.notify_one();
                });
            }
        }
    }

    /// `writeEF` with a timeout: `Err(value)` hands the value back if the
    /// variable stayed full — the bounded companion of
    /// [`read_fe_timeout`](Self::read_fe_timeout), so fault-aware code
    /// never parks forever on a sync variable a dead task should have
    /// emptied.
    pub fn write_ef_timeout(&self, value: T, timeout: Duration) -> Result<(), T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.value.is_some() {
            if self.became_empty.wait_until(&mut st, deadline).timed_out() {
                if st.value.is_none() {
                    break;
                }
                return Err(value);
            }
        }
        st.value = Some(value);
        drop(st);
        self.became_full.notify_one();
        Ok(())
    }

    /// Chapel `readFF`: block until full, read a copy, leave full.
    pub fn read_ff(&self) -> T
    where
        T: Clone,
    {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = &st.value {
                return v.clone();
            }
            self.became_full.wait(&mut st);
        }
    }

    /// Chapel `writeFF`: block until full, then overwrite, staying full.
    pub fn write_ff(&self, value: T) {
        let mut st = self.state.lock();
        while st.value.is_none() {
            self.became_full.wait(&mut st);
        }
        st.value = Some(value);
        drop(st);
        self.became_full.notify_one();
    }

    /// Chapel `writeXF`: store unconditionally and mark full.
    pub fn write_xf(&self, value: T) {
        let mut st = self.state.lock();
        st.value = Some(value);
        drop(st);
        self.became_full.notify_one();
    }

    /// Chapel `reset`: force the variable empty, discarding any value.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.value = None;
        drop(st);
        self.became_empty.notify_one();
    }

    /// Whether the variable is currently full. Racy by nature (Chapel's
    /// `isFull` carries the same caveat).
    pub fn is_full(&self) -> bool {
        self.state.lock().value.is_some()
    }
}

impl<T> std::fmt::Debug for SyncVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncVar")
            .field("full", &self.is_full())
            .finish()
    }
}

/// A mutual-exclusion lock built from a [`SyncVar`], the way the paper's
/// `SyncArray` uses one: acquire = `readFE`, release = `writeEF`.
pub struct SyncVarLock {
    var: SyncVar<()>,
}

impl Default for SyncVarLock {
    fn default() -> Self {
        Self::new()
    }
}

impl SyncVarLock {
    /// A new, unlocked lock.
    pub fn new() -> Self {
        SyncVarLock {
            var: SyncVar::new_full(()),
        }
    }

    /// Acquire by emptying the variable.
    pub fn acquire(&self) -> SyncVarLockGuard<'_> {
        self.var.read_fe();
        SyncVarLockGuard { lock: self }
    }

    /// Whether the lock is currently held.
    pub fn is_locked(&self) -> bool {
        !self.var.is_full()
    }
}

/// Guard releasing the [`SyncVarLock`] on drop by re-filling the variable.
pub struct SyncVarLockGuard<'a> {
    lock: &'a SyncVarLock,
}

impl Drop for SyncVarLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.var.write_ef(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn write_then_read_round_trips() {
        let v = SyncVar::new_empty();
        v.write_ef(42);
        assert!(v.is_full());
        assert_eq!(v.read_fe(), 42);
        assert!(!v.is_full());
    }

    #[test]
    fn read_ff_leaves_full() {
        let v = SyncVar::new_full(7);
        assert_eq!(v.read_ff(), 7);
        assert!(v.is_full());
        assert_eq!(v.read_fe(), 7);
    }

    #[test]
    fn write_xf_overwrites() {
        let v = SyncVar::new_full(1);
        v.write_xf(2);
        assert_eq!(v.read_fe(), 2);
    }

    #[test]
    fn write_ff_requires_full() {
        let v = SyncVar::new_full(1);
        v.write_ff(9);
        assert_eq!(v.read_ff(), 9);
    }

    #[test]
    fn reset_empties() {
        let v = SyncVar::new_full(3);
        v.reset();
        assert!(!v.is_full());
    }

    #[test]
    fn read_fe_timeout_expires_on_empty() {
        let v: SyncVar<u8> = SyncVar::new_empty();
        assert_eq!(v.read_fe_timeout(Duration::from_millis(20)), None);
    }

    #[test]
    fn write_ef_timeout_expires_on_full_and_returns_value() {
        let v = SyncVar::new_full(1u8);
        assert_eq!(v.write_ef_timeout(2, Duration::from_millis(20)), Err(2));
        assert_eq!(v.read_fe(), 1, "stored value untouched");
        assert_eq!(v.write_ef_timeout(3, Duration::from_millis(20)), Ok(()));
        assert_eq!(v.read_fe(), 3);
    }

    #[test]
    fn blocked_reader_wakes_on_write() {
        let v = Arc::new(SyncVar::new_empty());
        let v2 = Arc::clone(&v);
        let reader = rcuarray_analysis::thread::spawn(move || v2.read_fe());
        std::thread::sleep(Duration::from_millis(10));
        v.write_ef(123);
        assert_eq!(reader.join().unwrap(), 123);
    }

    #[test]
    fn ping_pong_through_sync_var() {
        let v = Arc::new(SyncVar::new_empty());
        let v2 = Arc::clone(&v);
        let t = rcuarray_analysis::thread::spawn(move || {
            for i in 0..100 {
                assert_eq!(v2.read_fe(), i);
            }
        });
        for i in 0..100 {
            v.write_ef(i);
        }
        t.join().unwrap();
    }

    #[test]
    fn sync_var_lock_mutual_exclusion() {
        let lock = Arc::new(SyncVarLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(rcuarray_analysis::thread::spawn(move || {
                for _ in 0..500 {
                    let _g = lock.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
        assert!(!lock.is_locked());
    }

    #[test]
    fn lock_guard_releases_on_drop() {
        let lock = SyncVarLock::new();
        {
            let _g = lock.acquire();
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
    }
}
