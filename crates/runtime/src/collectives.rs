//! Cluster collectives: broadcast, reduce, all-reduce and a cluster-wide
//! barrier, with communication accounting.
//!
//! Chapel programs (and the paper's resize, which replicates an operation
//! on every locale) lean on collective patterns; the simulation provides
//! the common ones so higher layers and examples don't hand-roll them.
//! Cost model: a broadcast PUTs the payload from the root to every other
//! locale; a reduce GETs one contribution per non-root locale; a barrier
//! costs one remote notification per non-home participant.
//!
//! Every collective operates on the **current membership view**
//! ([`Cluster::membership`]): locales the failure detector has evicted
//! (`Down`/`Rejoining`) are skipped by broadcast and reduce, and the
//! barrier shrinks its required party count proportionally — so a dead
//! or partitioned locale cannot wedge a cluster-wide resize lock behind
//! an arrival that will never come. On a healthy cluster (the default:
//! nothing probes, everyone is `Up`) the behaviour is byte-for-byte the
//! pre-membership one.

use crate::fault::{CommError, OpKind};
use crate::locale::LocaleId;
use crate::task;
use crate::transport::{CollectiveKind, CommMessage};
use crate::Cluster;
use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Broadcast `value` from `root` to every locale, returning the
/// per-locale copies in locale order. Charges one PUT of
/// `size_of::<T>()` per non-root locale.
pub fn broadcast<T: Clone>(cluster: &Cluster, root: LocaleId, value: &T) -> Vec<T> {
    let bytes = std::mem::size_of::<T>();
    let view = cluster.membership().view();
    (0..cluster.num_locales())
        .map(|i| {
            let dst = LocaleId::new(i as u32);
            if dst != root && view.in_view(dst) {
                let _ = cluster.comm().send(
                    root,
                    dst,
                    CommMessage::Collective {
                        kind: CollectiveKind::Broadcast,
                        bytes,
                    },
                );
            }
            value.clone()
        })
        .collect()
}

/// Gather one contribution per locale (produced *on* that locale) and
/// fold them on `root`. Charges one GET per non-root locale.
pub fn reduce<T, F, R>(
    cluster: &Cluster,
    root: LocaleId,
    contribute: F,
    mut fold: impl FnMut(R, T) -> R,
    init: R,
) -> R
where
    F: Fn(LocaleId) -> T,
{
    let bytes = std::mem::size_of::<T>();
    let view = cluster.membership().view();
    let mut acc = init;
    for i in 0..cluster.num_locales() {
        let src = LocaleId::new(i as u32);
        if !view.in_view(src) {
            // An evicted locale contributes nothing: there is no one
            // there to produce a value, and GETting from it would hang
            // a real cluster.
            continue;
        }
        let contribution = task::with_locale(src, || contribute(src));
        if src != root {
            let _ = cluster.comm().send(
                root,
                src,
                CommMessage::Collective {
                    kind: CollectiveKind::Reduce,
                    bytes,
                },
            );
        }
        acc = fold(acc, contribution);
    }
    acc
}

/// Reduce to the root, then broadcast the result back: every locale's
/// copy of the reduction. Charges a reduce plus a broadcast.
pub fn all_reduce<T, F>(
    cluster: &Cluster,
    contribute: F,
    fold: impl FnMut(T, T) -> T,
    init: T,
) -> Vec<T>
where
    T: Clone,
    F: Fn(LocaleId) -> T,
{
    let root = LocaleId::ZERO;
    let total = reduce(cluster, root, contribute, fold, init);
    broadcast(cluster, root, &total)
}

/// A cluster-wide barrier for a fixed number of participants, homed on
/// one locale. Each arrival from another locale is charged as a
/// notification PUT; the release is charged as a broadcast of one word.
pub struct ClusterBarrier {
    home: LocaleId,
    parties: usize,
    state: Mutex<BarrierState>,
    cond: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl ClusterBarrier {
    /// An arrival notification: one word PUT to the barrier's home.
    const ARRIVE: CommMessage = CommMessage::Collective {
        kind: CollectiveKind::BarrierArrive,
        bytes: 8,
    };
    /// A release notification: one word PUT from the home to a waiter.
    const RELEASE: CommMessage = CommMessage::Collective {
        kind: CollectiveKind::BarrierRelease,
        bytes: 8,
    };

    /// A barrier for `parties` tasks, homed on `home`.
    pub fn new(home: LocaleId, parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        ClusterBarrier {
            home,
            parties,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Number of participating tasks (configured; the membership view
    /// may shrink the number actually required per generation).
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Parties required to release a generation under the current
    /// membership view. With every locale in the view this is exactly
    /// `parties`. When locales are evicted, their share of the parties
    /// is excused: for the common "k tasks per locale" shape
    /// (`parties % num_locales == 0`) each evicted locale excuses
    /// `parties / num_locales` arrivals; otherwise one arrival per
    /// evicted locale is excused. Never below 1.
    fn required_parties(&self, cluster: &Cluster) -> usize {
        let n = cluster.num_locales();
        let members = cluster.membership().view().num_members();
        if members >= n {
            return self.parties;
        }
        let excused = if self.parties.is_multiple_of(n) {
            (self.parties / n) * (n - members)
        } else {
            n - members
        };
        self.parties.saturating_sub(excused).max(1)
    }

    /// Arrive and wait for all parties. Returns `true` on exactly one
    /// task per generation (the "leader", the last to arrive), like
    /// `std::sync::Barrier`.
    pub fn wait(&self, cluster: &Cluster) -> bool {
        let from = task::current_locale();
        if from != self.home {
            // The arrival notification.
            let _ = cluster.comm().send(from, self.home, Self::ARRIVE);
        }
        let mut st = self.state.lock();
        st.arrived += 1;
        // `>=` with a view-dependent requirement: the count may already
        // exceed a requirement that shrank since the previous arrival.
        if st.arrived >= self.required_parties(cluster) {
            st.arrived = 0;
            st.generation += 1;
            self.release_view_members(cluster);
            drop(st);
            self.cond.notify_all();
            true
        } else {
            let gen = st.generation;
            while st.generation == gen {
                self.cond.wait(&mut st);
            }
            false
        }
    }

    /// [`wait`](Self::wait) with failure semantics, for callers that must
    /// not hang when the cluster is unhealthy (the resize path uses this):
    ///
    /// * the arrival notification PUT can fail under a fault plan, in
    ///   which case the task never arrives and the error propagates;
    /// * if the remaining parties do not arrive within `timeout`, the
    ///   arrival is withdrawn (keeping the barrier reusable) and
    ///   [`CommError::Timeout`] is returned.
    pub fn wait_timeout(&self, cluster: &Cluster, timeout: Duration) -> Result<bool, CommError> {
        let from = task::current_locale();
        if from != self.home {
            cluster.comm().send(from, self.home, Self::ARRIVE)?;
        }
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        st.arrived += 1;
        if st.arrived >= self.required_parties(cluster) {
            st.arrived = 0;
            st.generation += 1;
            self.release_view_members(cluster);
            drop(st);
            self.cond.notify_all();
            return Ok(true);
        }
        let gen = st.generation;
        while st.generation == gen {
            if self.cond.wait_until(&mut st, deadline).timed_out() {
                if st.generation != gen {
                    // Released in the same instant the wait timed out.
                    break;
                }
                st.arrived -= 1;
                return Err(CommError::Timeout {
                    op: OpKind::Put,
                    locale: self.home,
                });
            }
        }
        Ok(false)
    }

    /// Release notifications, addressed to view members only: a dead
    /// locale gets no (and needs no) release PUT.
    fn release_view_members(&self, cluster: &Cluster) {
        let view = cluster.membership().view();
        for i in 0..cluster.num_locales() {
            let dst = LocaleId::new(i as u32);
            if dst != self.home && view.in_view(dst) {
                let _ = cluster.comm().send(self.home, dst, Self::RELEASE);
            }
        }
    }
}

impl std::fmt::Debug for ClusterBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBarrier")
            .field("home", &self.home)
            .field("parties", &self.parties)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn broadcast_copies_and_charges() {
        let c = Cluster::new(Topology::new(4, 1));
        let copies = broadcast(&c, LocaleId::new(1), &42u64);
        assert_eq!(copies, vec![42; 4]);
        let s = c.comm_stats();
        assert_eq!(s.puts, 3, "one PUT per non-root locale");
        assert_eq!(s.bytes_moved, 3 * 8);
    }

    #[test]
    fn reduce_folds_per_locale_contributions() {
        let c = Cluster::new(Topology::new(4, 1));
        let sum = reduce(
            &c,
            LocaleId::ZERO,
            |loc| loc.index() as u64 + 1, // 1,2,3,4
            |a, b| a + b,
            0u64,
        );
        assert_eq!(sum, 10);
        assert_eq!(c.comm_stats().gets, 3);
    }

    #[test]
    fn reduce_contributions_run_on_their_locale() {
        let c = Cluster::new(Topology::new(3, 1));
        let ids = reduce(
            &c,
            LocaleId::ZERO,
            |_| task::current_locale().index(),
            |mut acc: Vec<usize>, x| {
                acc.push(x);
                acc
            },
            Vec::new(),
        );
        assert_eq!(
            ids,
            vec![0, 1, 2],
            "contribute must see its locale as `here`"
        );
    }

    #[test]
    fn all_reduce_gives_every_locale_the_total() {
        let c = Cluster::new(Topology::new(3, 1));
        let totals = all_reduce(&c, |loc| loc.index() as u64, |a, b| a + b, 0);
        assert_eq!(totals, vec![3, 3, 3]);
        let s = c.comm_stats();
        assert_eq!(s.gets, 2);
        assert_eq!(s.puts, 2);
    }

    #[test]
    fn barrier_synchronizes_all_parties() {
        let c = Cluster::new(Topology::new(2, 2));
        let barrier = Arc::new(ClusterBarrier::new(LocaleId::ZERO, 4));
        let before = Arc::new(AtomicUsize::new(0));
        let leaders = Arc::new(AtomicUsize::new(0));
        c.forall_tasks(|_, _| {
            before.fetch_add(1, Ordering::SeqCst);
            if barrier.wait(&c) {
                leaders.fetch_add(1, Ordering::SeqCst);
                // When the leader passes, everyone has arrived.
                assert_eq!(before.load(Ordering::SeqCst), 4);
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "exactly one leader");
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let c = Cluster::new(Topology::new(2, 1));
        let barrier = Arc::new(ClusterBarrier::new(LocaleId::ZERO, 2));
        for _ in 0..5 {
            let leaders = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for i in 0..2u32 {
                    let barrier = Arc::clone(&barrier);
                    let c = &c;
                    let leaders = &leaders;
                    s.spawn(move || {
                        task::with_locale(LocaleId::new(i), || {
                            if barrier.wait(c) {
                                leaders.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                    });
                }
            });
            assert_eq!(leaders.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn barrier_charges_remote_arrivals_and_release() {
        let c = Cluster::new(Topology::new(2, 1));
        let barrier = ClusterBarrier::new(LocaleId::ZERO, 2);
        std::thread::scope(|s| {
            let b = &barrier;
            let c2 = &c;
            s.spawn(move || task::with_locale(LocaleId::new(1), || b.wait(c2)));
            task::with_locale(LocaleId::ZERO, || barrier.wait(&c));
        });
        let stats = c.comm_stats();
        // Remote arrival (1 put) + release to the remote locale (1 put).
        assert_eq!(stats.puts, 2, "{stats:?}");
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_rejected() {
        let _ = ClusterBarrier::new(LocaleId::ZERO, 0);
    }

    #[test]
    fn wait_timeout_succeeds_when_all_arrive() {
        let c = Cluster::new(Topology::new(2, 2));
        let barrier = Arc::new(ClusterBarrier::new(LocaleId::ZERO, 4));
        let leaders = Arc::new(AtomicUsize::new(0));
        c.forall_tasks(|_, _| {
            if barrier
                .wait_timeout(&c, std::time::Duration::from_secs(10))
                .unwrap()
            {
                leaders.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_timeout_expires_and_withdraws_arrival() {
        let c = Cluster::new(Topology::new(1, 1));
        let barrier = ClusterBarrier::new(LocaleId::ZERO, 2);
        let out = task::with_locale(LocaleId::ZERO, || {
            barrier.wait_timeout(&c, std::time::Duration::from_millis(30))
        });
        assert!(matches!(out, Err(CommError::Timeout { .. })));
        // The withdrawn arrival leaves the barrier reusable: two on-time
        // parties still release it.
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2u32 {
                let b = &barrier;
                let c = &c;
                let leaders = &leaders;
                s.spawn(move || {
                    task::with_locale(LocaleId::ZERO, || {
                        if b.wait_timeout(c, std::time::Duration::from_secs(10))
                            .unwrap()
                        {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    /// Drive the detector until `l` is `Down` (two missed probe rounds).
    fn evict(c: &Cluster, l: LocaleId) {
        c.fault().set_down(l, true);
        c.probe_membership();
        c.probe_membership();
        assert!(!c.membership().view().in_view(l));
    }

    #[test]
    fn broadcast_and_reduce_skip_evicted_locales() {
        use crate::fault::FaultPlan;
        let c = Cluster::builder()
            .topology(Topology::new(3, 1))
            .fault_plan(FaultPlan::new(9))
            .build();
        evict(&c, LocaleId::new(2));
        let before = c.comm_stats();
        let copies = broadcast(&c, LocaleId::ZERO, &7u64);
        assert_eq!(copies.len(), 3, "per-locale shape is preserved");
        let sum = reduce(
            &c,
            LocaleId::ZERO,
            |l| l.index() as u64 + 1,
            |a, b| a + b,
            0,
        );
        assert_eq!(sum, 1 + 2, "the evicted locale contributes nothing");
        let after = c.comm_stats();
        // One broadcast PUT and one reduce GET to the surviving peer;
        // nothing addressed to the dead locale.
        assert_eq!(after.puts, before.puts + 1, "{after:?}");
        assert_eq!(after.gets, before.gets + 1, "{after:?}");
    }

    #[test]
    fn barrier_releases_without_the_dead_locales_arrival() {
        use crate::fault::FaultPlan;
        let c = Cluster::builder()
            .topology(Topology::new(3, 1))
            .fault_plan(FaultPlan::new(9))
            .build();
        let barrier = ClusterBarrier::new(LocaleId::ZERO, 3);
        evict(&c, LocaleId::new(2));
        // Only the two surviving locales arrive; without the view the
        // barrier would wait forever for the third party.
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..2u32 {
                let b = &barrier;
                let c = &c;
                let leaders = &leaders;
                s.spawn(move || {
                    task::with_locale(LocaleId::new(i), || {
                        if b.wait_timeout(c, std::time::Duration::from_secs(10))
                            .unwrap()
                        {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_timeout_propagates_arrival_fault() {
        use crate::fault::FaultPlan;
        let c = Cluster::builder()
            .topology(Topology::new(2, 1))
            .fault_plan(FaultPlan::new(5).fail_puts(1.0))
            .build();
        let barrier = ClusterBarrier::new(LocaleId::ZERO, 2);
        let out = task::with_locale(LocaleId::new(1), || {
            barrier.wait_timeout(&c, std::time::Duration::from_secs(1))
        });
        assert!(matches!(out, Err(CommError::Transient { .. })));
        assert_eq!(c.comm().fault_totals().puts_failed, 1);
    }
}
