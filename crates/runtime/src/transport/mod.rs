//! Pluggable transport layer: every cross-locale byte rides a
//! [`Transport`].
//!
//! The paper's Chapel runtime compiles remote accesses into PUT/GET
//! operations on whatever conduit the machine provides (the Aries
//! network on the evaluation's Cray XC-50). Dewan & Jenkins' follow-up
//! (arXiv:2002.03068) argues the layering this module realizes:
//! distributed non-blocking structures should sit on a *swappable* PGAS
//! communication substrate, so a new network is a backend drop-in
//! rather than a rewrite.
//!
//! The seam has three pieces:
//!
//! * a typed message vocabulary, [`CommMessage`] — GET/PUT/remote-exec
//!   plus the composite lock and collective messages the upper layers
//!   speak. Every message lowers to one or two *wire operations*
//!   ([`CommMessage::wire_ops`]), which is what the fault plan and the
//!   per-locale accounting are keyed on;
//! * the [`Transport`] trait — `transmit` one message across one
//!   `(from, to)` link, expose per-link [`LinkStats`], and (for tests)
//!   a per-link delivery log of send sequence numbers;
//! * two backends: [`ShmemTransport`] (the direct shared-memory path —
//!   transmission is free because the data is already there, exactly
//!   the pre-seam behaviour) and [`MeshTransport`] (per-link bounded
//!   channels carrying serialized frames, drained by one dispatcher
//!   thread per destination locale — the shape a real message-passing
//!   conduit has, with partitions, asymmetric delay and reordering as
//!   first-class [`FaultPlan`](crate::fault::FaultPlan) actions).
//!
//! The split of responsibilities with [`CommLayer`](crate::comm::CommLayer)
//! is deliberate: the comm facade owns fault checks, per-locale
//! counters and latency injection (guaranteeing *identical*
//! `CommStats`/`FaultStats` on every backend for the same workload);
//! transports own only movement, per-link metrics and delivery order.

pub mod mesh;
pub mod shmem;

pub use mesh::{MeshConfig, MeshTransport};
pub use shmem::ShmemTransport;

use crate::fault::OpKind;
use crate::locale::LocaleId;
use parking_lot::Mutex;
use rcuarray_obs::LazyCounter;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

// Telemetry (DESIGN.md §7): process-wide transport totals. Per-link
// splits stay on the transport object ([`Transport::link_stats`]) —
// the registry holds scalars, not matrices.
static OBS_MESSAGES: LazyCounter = LazyCounter::new(
    "rcuarray_transport_messages_total",
    "messages transmitted across locale links",
);
static OBS_LINK_BYTES: LazyCounter = LazyCounter::new(
    "rcuarray_transport_bytes_total",
    "payload bytes transmitted across locale links",
);

/// The size on the wire of one lock word (the paper's `WriteLock` state).
pub const LOCK_WORD_BYTES: usize = 8;

/// Which collective pattern a [`CommMessage::Collective`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Root pushes the payload to a peer (one PUT per non-root locale).
    Broadcast,
    /// Root pulls one contribution from a peer (one GET per non-root).
    Reduce,
    /// A barrier participant notifies the barrier's home locale.
    BarrierArrive,
    /// The barrier's home locale releases a waiting participant.
    BarrierRelease,
}

impl CollectiveKind {
    /// Stable name for logs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::BarrierArrive => "barrier.arrive",
            CollectiveKind::BarrierRelease => "barrier.release",
        }
    }
}

/// One typed cross-locale message: the full vocabulary the upper layers
/// speak to the transport.
///
/// `Get`/`Put`/`RemoteExec` are the primitive PGAS operations; the rest
/// are the composite messages that used to be hand-rolled as raw
/// `record_*` pairs at every call site (cluster-lock traffic, collective
/// traffic). Each message lowers to one or two wire operations via
/// [`wire_ops`](Self::wire_ops); the lowering is the single source of
/// truth for how a message is accounted and fault-checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMessage {
    /// Read `bytes` bytes of remote memory.
    Get {
        /// Payload size.
        bytes: usize,
    },
    /// Write `bytes` bytes into remote memory.
    Put {
        /// Payload size.
        bytes: usize,
    },
    /// Execute an `on`-block on the destination locale (active message).
    RemoteExec,
    /// Acquire a cluster-wide lock homed on the destination: one GET
    /// (read/try of the lock word) plus one PUT (the RMW write-back) —
    /// the round trip a remote compare-and-swap costs on the wire.
    LockAcquire,
    /// Release a cluster-wide lock homed on the destination: one PUT
    /// writing the unlocked state back.
    LockRelease,
    /// One leg of a collective (broadcast/reduce/barrier traffic).
    Collective {
        /// Which collective pattern this leg belongs to.
        kind: CollectiveKind,
        /// Payload size of this leg.
        bytes: usize,
    },
}

impl CommMessage {
    /// The wire operations this message lowers to, in transmission
    /// order. This is what the fault plan checks and the per-locale
    /// counters charge — one entry per `(OpKind, bytes)`.
    pub fn wire_ops(&self) -> WireOps {
        match *self {
            CommMessage::Get { bytes } => WireOps::one(OpKind::Get, bytes),
            CommMessage::Put { bytes } => WireOps::one(OpKind::Put, bytes),
            CommMessage::RemoteExec => WireOps::one(OpKind::RemoteExec, 0),
            CommMessage::LockAcquire => WireOps::two(
                (OpKind::Get, LOCK_WORD_BYTES),
                (OpKind::Put, LOCK_WORD_BYTES),
            ),
            CommMessage::LockRelease => WireOps::one(OpKind::Put, LOCK_WORD_BYTES),
            CommMessage::Collective { kind, bytes } => match kind {
                CollectiveKind::Reduce => WireOps::one(OpKind::Get, bytes),
                CollectiveKind::Broadcast
                | CollectiveKind::BarrierArrive
                | CollectiveKind::BarrierRelease => WireOps::one(OpKind::Put, bytes),
            },
        }
    }

    /// Total payload bytes across all wire operations.
    pub fn payload_bytes(&self) -> usize {
        self.wire_ops().as_slice().iter().map(|&(_, b)| b).sum()
    }

    /// The operation kind a failure of this message is reported as (the
    /// first wire operation).
    pub fn primary_op(&self) -> OpKind {
        self.wire_ops().as_slice()[0].0
    }
}

/// The (at most two) wire operations a [`CommMessage`] lowers to.
/// A fixed-capacity array, not a `Vec`: this sits on the comm hot path.
#[derive(Debug, Clone, Copy)]
pub struct WireOps {
    ops: [(OpKind, usize); 2],
    len: usize,
}

impl WireOps {
    fn one(op: OpKind, bytes: usize) -> Self {
        WireOps {
            ops: [(op, bytes), (op, bytes)],
            len: 1,
        }
    }

    fn two(a: (OpKind, usize), b: (OpKind, usize)) -> Self {
        WireOps {
            ops: [a, b],
            len: 2,
        }
    }

    /// The wire operations, in transmission order.
    pub fn as_slice(&self) -> &[(OpKind, usize)] {
        &self.ops[..self.len]
    }
}

/// Which transport backend a cluster's communication rides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Direct shared-memory access (the pre-seam zero-copy path).
    #[default]
    Shmem,
    /// Per-link bounded message channels with per-locale dispatchers.
    Mesh,
}

impl TransportKind {
    /// Stable name, as accepted by [`FromStr`](std::str::FromStr) and
    /// the `RCUARRAY_BACKEND` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Shmem => "shmem",
            TransportKind::Mesh => "mesh",
        }
    }

    /// The backend selected by the `RCUARRAY_BACKEND` environment
    /// variable (`shmem` | `mesh`), defaulting to [`Shmem`]
    /// (`TransportKind::Shmem`) when unset. Panics on an unrecognized
    /// value — a typo'd backend silently falling back would invalidate
    /// a whole CI matrix leg.
    pub fn from_env() -> Self {
        match std::env::var("RCUARRAY_BACKEND") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|e: String| panic!("RCUARRAY_BACKEND: {e}")),
            Err(_) => TransportKind::Shmem,
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "shmem" => Ok(TransportKind::Shmem),
            "mesh" => Ok(TransportKind::Mesh),
            other => Err(format!(
                "unknown transport backend {other:?} (expected \"shmem\" or \"mesh\")"
            )),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-link transmission totals (a snapshot; counters keep moving).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages transmitted over the link.
    pub messages: u64,
    /// Payload bytes transmitted over the link.
    pub bytes: u64,
}

/// One cross-locale conduit: moves typed messages over directed
/// `(from, to)` links.
///
/// Implementations only move and meter — fault injection, per-locale
/// accounting and latency stay in the [`CommLayer`](crate::comm::CommLayer)
/// facade so every backend observes identical stats for the same
/// workload. `transmit` is called only for `from != to` pairs that
/// already passed the fault plan.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;

    /// Move one message across the `(from, to)` link. An error means
    /// the message was *not* delivered (e.g. a mesh queue stayed full
    /// past its deadline); the facade charges it as a failed operation.
    fn transmit(
        &self,
        from: LocaleId,
        to: LocaleId,
        msg: &CommMessage,
    ) -> Result<(), crate::fault::CommError>;

    /// Transmission totals for the directed link `from → to`.
    fn link_stats(&self, from: LocaleId, to: LocaleId) -> LinkStats;

    /// Start recording per-link delivery order (see
    /// [`delivery_log`](Self::delivery_log)). Off by default; the log
    /// is a test observability hook, not a production path.
    fn enable_delivery_log(&self);

    /// The send sequence numbers delivered on `from → to` so far, in
    /// delivery order. With an in-order transport this is strictly
    /// increasing per link; a mesh link under a reorder fault rule is
    /// exactly where it is not.
    fn delivery_log(&self, from: LocaleId, to: LocaleId) -> Vec<u64>;
}

/// Per-directed-link message/byte counters, cache-line padded like the
/// per-locale comm counters (the instrumentation must not become the
/// contended line). Shared by both backends.
#[derive(Debug)]
pub(crate) struct LinkMatrix {
    n: usize,
    cells: Box<[LinkCell]>,
}

#[repr(align(64))]
#[derive(Debug, Default)]
struct LinkCell {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl LinkMatrix {
    pub(crate) fn new(n: usize) -> Self {
        LinkMatrix {
            n,
            cells: (0..n * n).map(|_| LinkCell::default()).collect(),
        }
    }

    #[inline]
    fn cell(&self, from: LocaleId, to: LocaleId) -> &LinkCell {
        &self.cells[from.index() * self.n + to.index()]
    }

    /// Charge one message of `bytes` payload to the `from → to` link
    /// (and mirror it onto the process-wide obs totals).
    #[inline]
    pub(crate) fn record(&self, from: LocaleId, to: LocaleId, bytes: usize) {
        let c = self.cell(from, to);
        c.messages.fetch_add(1, Ordering::Relaxed);
        c.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        OBS_MESSAGES.inc();
        OBS_LINK_BYTES.add(bytes as u64);
    }

    pub(crate) fn stats(&self, from: LocaleId, to: LocaleId) -> LinkStats {
        let c = self.cell(from, to);
        LinkStats {
            messages: c.messages.load(Ordering::Relaxed),
            bytes: c.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Per-link delivery-order log (send sequence numbers in delivery
/// order), disabled until [`enable`](Self::enable) so the hot path pays
/// one relaxed load. Shared by both backends.
#[derive(Debug)]
pub(crate) struct DeliveryLog {
    enabled: AtomicBool,
    n: usize,
    per_link: Box<[LinkLog]>,
}

/// `(next send seq, delivered seqs)` for one directed link. The seq
/// counter lives under the same lock as the vec so an in-order
/// backend's log is strictly monotone even under concurrent senders.
type LinkLog = Mutex<(u64, Vec<u64>)>;

impl DeliveryLog {
    pub(crate) fn new(n: usize) -> Self {
        DeliveryLog {
            enabled: AtomicBool::new(false),
            n,
            per_link: (0..n * n).map(|_| Mutex::new((0, Vec::new()))).collect(),
        }
    }

    pub(crate) fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    #[inline]
    fn link(&self, from: LocaleId, to: LocaleId) -> &LinkLog {
        &self.per_link[from.index() * self.n + to.index()]
    }

    /// In-order record: assign the link's next send seq and deliver it
    /// immediately (the shmem path, where send *is* delivery).
    #[inline]
    pub(crate) fn record_in_order(&self, from: LocaleId, to: LocaleId) {
        if !self.is_enabled() {
            return;
        }
        let mut l = self.link(from, to).lock();
        let seq = l.0;
        l.0 += 1;
        l.1.push(seq);
    }

    /// Record delivery of an explicit send seq (the mesh path, where
    /// the seq was assigned at enqueue time).
    pub(crate) fn record_delivery(&self, from: LocaleId, to: LocaleId, seq: u64) {
        if !self.is_enabled() {
            return;
        }
        self.link(from, to).lock().1.push(seq);
    }

    pub(crate) fn snapshot(&self, from: LocaleId, to: LocaleId) -> Vec<u64> {
        self.link(from, to).lock().1.clone()
    }
}

/// Serialized frame layout (the mesh wire format): tag byte, collective
/// kind byte (`0xFF` when not a collective), send seq (u64 LE), payload
/// byte count (u64 LE).
pub(crate) const FRAME_LEN: usize = 18;

/// Serialize `msg` with send sequence number `seq` into a mesh frame.
pub(crate) fn encode_frame(msg: &CommMessage, seq: u64) -> Vec<u8> {
    let (tag, kind, bytes): (u8, u8, u64) = match *msg {
        CommMessage::Get { bytes } => (0, 0xFF, bytes as u64),
        CommMessage::Put { bytes } => (1, 0xFF, bytes as u64),
        CommMessage::RemoteExec => (2, 0xFF, 0),
        CommMessage::LockAcquire => (3, 0xFF, 0),
        CommMessage::LockRelease => (4, 0xFF, 0),
        CommMessage::Collective { kind, bytes } => {
            let k = match kind {
                CollectiveKind::Broadcast => 0,
                CollectiveKind::Reduce => 1,
                CollectiveKind::BarrierArrive => 2,
                CollectiveKind::BarrierRelease => 3,
            };
            (5, k, bytes as u64)
        }
    };
    let mut out = Vec::with_capacity(FRAME_LEN);
    out.push(tag);
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&bytes.to_le_bytes());
    out
}

/// Deserialize a mesh frame back into `(message, send seq)`.
pub(crate) fn decode_frame(frame: &[u8]) -> Option<(CommMessage, u64)> {
    if frame.len() != FRAME_LEN {
        return None;
    }
    let seq = u64::from_le_bytes(frame[2..10].try_into().ok()?);
    let bytes = u64::from_le_bytes(frame[10..18].try_into().ok()?) as usize;
    let msg = match (frame[0], frame[1]) {
        (0, 0xFF) => CommMessage::Get { bytes },
        (1, 0xFF) => CommMessage::Put { bytes },
        (2, 0xFF) => CommMessage::RemoteExec,
        (3, 0xFF) => CommMessage::LockAcquire,
        (4, 0xFF) => CommMessage::LockRelease,
        (5, k) => CommMessage::Collective {
            kind: match k {
                0 => CollectiveKind::Broadcast,
                1 => CollectiveKind::Reduce,
                2 => CollectiveKind::BarrierArrive,
                3 => CollectiveKind::BarrierRelease,
                _ => return None,
            },
            bytes,
        },
        _ => return None,
    };
    Some((msg, seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ops_match_the_legacy_accounting() {
        // LockAcquire must lower to exactly the GET+PUT pair the lock
        // paths hand-rolled before the seam existed.
        let acq = CommMessage::LockAcquire.wire_ops();
        assert_eq!(
            acq.as_slice(),
            &[(OpKind::Get, 8), (OpKind::Put, 8)],
            "lock acquire is a remote CAS round trip"
        );
        let rel = CommMessage::LockRelease.wire_ops();
        assert_eq!(rel.as_slice(), &[(OpKind::Put, 8)]);
        assert_eq!(
            CommMessage::Get { bytes: 64 }.wire_ops().as_slice(),
            &[(OpKind::Get, 64)]
        );
        assert_eq!(
            CommMessage::RemoteExec.wire_ops().as_slice(),
            &[(OpKind::RemoteExec, 0)]
        );
        assert_eq!(
            CommMessage::Collective {
                kind: CollectiveKind::Reduce,
                bytes: 16
            }
            .wire_ops()
            .as_slice(),
            &[(OpKind::Get, 16)],
            "a reduce leg pulls a contribution"
        );
        assert_eq!(
            CommMessage::Collective {
                kind: CollectiveKind::BarrierArrive,
                bytes: 8
            }
            .wire_ops()
            .as_slice(),
            &[(OpKind::Put, 8)]
        );
        assert_eq!(CommMessage::LockAcquire.payload_bytes(), 16);
        assert_eq!(CommMessage::LockAcquire.primary_op(), OpKind::Get);
    }

    #[test]
    fn frames_round_trip() {
        let msgs = [
            CommMessage::Get { bytes: 1024 },
            CommMessage::Put { bytes: 0 },
            CommMessage::RemoteExec,
            CommMessage::LockAcquire,
            CommMessage::LockRelease,
            CommMessage::Collective {
                kind: CollectiveKind::BarrierRelease,
                bytes: 8,
            },
        ];
        for (i, msg) in msgs.iter().enumerate() {
            let frame = encode_frame(msg, i as u64 * 7);
            assert_eq!(frame.len(), FRAME_LEN);
            let (back, seq) = decode_frame(&frame).expect("round trip");
            assert_eq!(back, *msg);
            assert_eq!(seq, i as u64 * 7);
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        assert!(decode_frame(&[]).is_none(), "short frame");
        let mut frame = encode_frame(&CommMessage::RemoteExec, 1);
        frame[0] = 99;
        assert!(decode_frame(&frame).is_none(), "unknown tag");
        let mut frame = encode_frame(
            &CommMessage::Collective {
                kind: CollectiveKind::Broadcast,
                bytes: 8,
            },
            1,
        );
        frame[1] = 9;
        assert!(decode_frame(&frame).is_none(), "unknown collective kind");
    }

    #[test]
    fn transport_kind_parses_and_displays() {
        assert_eq!("shmem".parse::<TransportKind>(), Ok(TransportKind::Shmem));
        assert_eq!("mesh".parse::<TransportKind>(), Ok(TransportKind::Mesh));
        assert!("tcp".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::Mesh.to_string(), "mesh");
        assert_eq!(TransportKind::default(), TransportKind::Shmem);
    }

    #[test]
    fn link_matrix_is_directed() {
        let m = LinkMatrix::new(3);
        m.record(LocaleId::new(0), LocaleId::new(1), 100);
        m.record(LocaleId::new(0), LocaleId::new(1), 28);
        let fwd = m.stats(LocaleId::new(0), LocaleId::new(1));
        assert_eq!(fwd.messages, 2);
        assert_eq!(fwd.bytes, 128);
        let rev = m.stats(LocaleId::new(1), LocaleId::new(0));
        assert_eq!(rev, LinkStats::default(), "links are directed");
    }

    #[test]
    fn delivery_log_disabled_records_nothing() {
        let log = DeliveryLog::new(2);
        log.record_in_order(LocaleId::new(0), LocaleId::new(1));
        assert!(log.snapshot(LocaleId::new(0), LocaleId::new(1)).is_empty());
        log.enable();
        log.record_in_order(LocaleId::new(0), LocaleId::new(1));
        log.record_in_order(LocaleId::new(0), LocaleId::new(1));
        assert_eq!(log.snapshot(LocaleId::new(0), LocaleId::new(1)), vec![0, 1]);
    }
}
