//! The shared-memory backend: the pre-seam direct-access path.
//!
//! In the simulation all locale memory lives in one address space, so a
//! "transmission" has nothing to move — the data is already wherever
//! the destination will read it. `transmit` therefore only meters the
//! link (and, when enabled, records delivery order); it never blocks
//! and never fails. This preserves the zero-copy fast path and the
//! exact `CommStats`/`FaultStats` accounting the workspace's locality
//! tests assert, while still exercising the same [`Transport`] seam the
//! mesh backend does.

use super::{CommMessage, DeliveryLog, LinkMatrix, LinkStats, Transport, TransportKind};
use crate::fault::CommError;
use crate::locale::LocaleId;

/// Direct shared-memory transport: metering only, delivery is implicit.
#[derive(Debug)]
pub struct ShmemTransport {
    links: LinkMatrix,
    log: DeliveryLog,
}

impl ShmemTransport {
    /// A shmem transport for an `n`-locale cluster.
    pub fn new(n: usize) -> Self {
        ShmemTransport {
            links: LinkMatrix::new(n),
            log: DeliveryLog::new(n),
        }
    }
}

impl Transport for ShmemTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Shmem
    }

    #[inline]
    fn transmit(&self, from: LocaleId, to: LocaleId, msg: &CommMessage) -> Result<(), CommError> {
        debug_assert_ne!(from, to, "local accesses never reach the transport");
        self.links.record(from, to, msg.payload_bytes());
        // Send *is* delivery on shared memory: the log stays strictly
        // in send order per link.
        self.log.record_in_order(from, to);
        Ok(())
    }

    fn link_stats(&self, from: LocaleId, to: LocaleId) -> LinkStats {
        self.links.stats(from, to)
    }

    fn enable_delivery_log(&self) {
        self.log.enable();
    }

    fn delivery_log(&self, from: LocaleId, to: LocaleId) -> Vec<u64> {
        self.log.snapshot(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocaleId {
        LocaleId::new(i)
    }

    #[test]
    fn transmit_meters_the_link_and_never_fails() {
        let t = ShmemTransport::new(2);
        for _ in 0..10 {
            t.transmit(l(0), l(1), &CommMessage::Put { bytes: 32 })
                .unwrap();
        }
        let s = t.link_stats(l(0), l(1));
        assert_eq!(s.messages, 10);
        assert_eq!(s.bytes, 320);
        assert_eq!(t.link_stats(l(1), l(0)), LinkStats::default());
    }

    #[test]
    fn delivery_log_is_in_send_order() {
        let t = ShmemTransport::new(2);
        t.enable_delivery_log();
        for _ in 0..5 {
            t.transmit(l(0), l(1), &CommMessage::Get { bytes: 8 })
                .unwrap();
        }
        assert_eq!(t.delivery_log(l(0), l(1)), vec![0, 1, 2, 3, 4]);
        assert!(t.delivery_log(l(1), l(0)).is_empty());
    }
}
