//! The message-passing backend: per-link bounded channels with one
//! dispatcher thread per destination locale.
//!
//! Where [`ShmemTransport`](super::ShmemTransport) treats transmission
//! as free, `MeshTransport` gives every directed `(from, to)` link the
//! shape a real conduit has:
//!
//! * the sender serializes the message into a byte frame
//!   ([`encode_frame`](super::encode_frame)) and enqueues it on the
//!   destination's **bounded** per-sender queue, blocking (with a
//!   deadline) when the link is full — backpressure, not unbounded
//!   buffering;
//! * one **dispatcher thread per destination locale** drains its
//!   inbound links round-robin, decodes each frame, records delivery
//!   order, and completes the sender's ack;
//! * the sender waits for that completion ack with the same deadline,
//!   so a wedged or partitioned peer surfaces as
//!   [`CommError::Timeout`] instead of a deadlock.
//!
//! Per-link FIFO holds because a link's send sequence numbers are
//! assigned under the same lock that enqueues the frame, and one
//! dispatcher drains each queue front-to-back. A link placed under a
//! `reorder_link` fault rule perturbs only the *observed delivery
//! order* (adjacent log entries swap): element payloads still move
//! through shared memory in the simulation, so completion and
//! accounting are unaffected — exactly the observability knob the
//! conformance suite needs.

use super::{
    decode_frame, encode_frame, CommMessage, DeliveryLog, LinkMatrix, LinkStats, Transport,
    TransportKind,
};
use crate::fault::CommError;
use crate::locale::LocaleId;
use parking_lot::{Condvar, Mutex};
use rcuarray_obs::LazyGauge;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

static OBS_QUEUE_DEPTH: LazyGauge = LazyGauge::new(
    "rcuarray_transport_queue_depth",
    "frames currently queued on mesh links awaiting dispatch",
);

/// Tuning knobs for [`MeshTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Frames one directed link buffers before senders block (and, past
    /// the ack deadline, fail with [`CommError::Timeout`]).
    pub queue_capacity: usize,
    /// How long a sender waits — for queue space and then for the
    /// dispatcher's completion ack — before giving up. The bound is
    /// what turns a dead or wedged peer into an error instead of a
    /// hang.
    pub ack_timeout: Duration,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            queue_capacity: 1024,
            ack_timeout: Duration::from_secs(5),
        }
    }
}

/// One in-flight frame: the serialized message plus the sender's
/// completion slot.
struct Frame {
    from: u32,
    payload: Vec<u8>,
    ack: Arc<Ack>,
}

/// A sender's completion slot: the dispatcher writes exactly once, the
/// sender waits with a deadline.
struct Ack {
    state: Mutex<Option<Result<(), CommError>>>,
    cv: Condvar,
}

impl Ack {
    fn new() -> Self {
        Ack {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, r: Result<(), CommError>) {
        let mut st = self.state.lock();
        // At-most-once: the first completion wins; a late second writer
        // (never the case for the dispatcher, which acks each frame
        // exactly once) would be dropped rather than clobbering.
        if st.is_none() {
            *st = Some(r);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn wait_until(&self, deadline: Instant) -> Option<Result<(), CommError>> {
        let mut st = self.state.lock();
        while st.is_none() {
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                return *st;
            }
        }
        *st
    }
}

/// Per-destination inbox: one bounded queue per sender link plus the
/// dispatcher's wake-up and the senders' space condition.
struct Inbox {
    state: Mutex<InboxState>,
    /// Signaled when a frame arrives (wakes the dispatcher).
    ready: Condvar,
    /// Signaled when the dispatcher pops (wakes blocked senders).
    space: Condvar,
}

struct InboxState {
    /// Inbound frames, indexed by sender locale.
    per_link: Box<[VecDeque<Frame>]>,
    /// Next send sequence number per sender link; assigned under this
    /// lock so per-link FIFO is exact even with concurrent sender
    /// threads on one locale.
    send_seq: Box<[u64]>,
    /// Round-robin cursor over sender links (no sender starves).
    rr: usize,
    closed: bool,
}

struct Shared {
    n: usize,
    inboxes: Box<[Inbox]>,
    links: LinkMatrix,
    log: DeliveryLog,
    /// Directed links whose observed delivery order is perturbed
    /// (adjacent pairs swap), from the fault plan's `reorder_link`
    /// rules. Indexed `from * n + to`.
    reorder: Box<[bool]>,
}

/// Message-passing transport over per-link bounded channels.
pub struct MeshTransport {
    shared: Arc<Shared>,
    cfg: MeshConfig,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
}

impl MeshTransport {
    /// A mesh for an `n`-locale cluster. `reorder_links` lists the
    /// directed links whose delivery order should be perturbed
    /// (normally collected from the fault plan's `reorder_link` rules).
    pub fn new(n: usize, cfg: MeshConfig, reorder_links: &[(LocaleId, LocaleId)]) -> Self {
        assert!(
            cfg.queue_capacity >= 1,
            "a link needs capacity for one frame"
        );
        let mut reorder = vec![false; n * n].into_boxed_slice();
        for &(from, to) in reorder_links {
            reorder[from.index() * n + to.index()] = true;
        }
        let inboxes: Box<[Inbox]> = (0..n)
            .map(|_| Inbox {
                state: Mutex::new(InboxState {
                    per_link: (0..n).map(|_| VecDeque::new()).collect(),
                    send_seq: vec![0; n].into_boxed_slice(),
                    rr: 0,
                    closed: false,
                }),
                ready: Condvar::new(),
                space: Condvar::new(),
            })
            .collect();
        let shared = Arc::new(Shared {
            n,
            inboxes,
            links: LinkMatrix::new(n),
            log: DeliveryLog::new(n),
            reorder,
        });
        let dispatchers = (0..n)
            .map(|dst| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mesh-dispatch-{dst}"))
                    .spawn(move || dispatch(&shared, dst))
                    .expect("spawn mesh dispatcher")
            })
            .collect();
        MeshTransport {
            shared,
            cfg,
            dispatchers,
        }
    }
}

/// The dispatcher loop for destination locale `dst`: drain inbound
/// links round-robin, record delivery, ack each sender. Exits when the
/// inbox is closed *and* drained, so no enqueued frame is abandoned.
fn dispatch(shared: &Shared, dst: usize) {
    let n = shared.n;
    let inbox = &shared.inboxes[dst];
    let to = LocaleId::new(dst as u32);
    // One stashed log entry per reordered sender link.
    let mut stash: Vec<Option<u64>> = vec![None; n];
    loop {
        let frame = {
            let mut st = inbox.state.lock();
            loop {
                if let Some(f) = pop_round_robin(&mut st, n) {
                    break Some(f);
                }
                if st.closed {
                    break None;
                }
                inbox.ready.wait(&mut st);
            }
        };
        let Some(frame) = frame else {
            // Shutdown: flush stashed reorder entries so the delivery
            // log accounts for every delivered frame.
            for (src, slot) in stash.iter_mut().enumerate() {
                if let Some(seq) = slot.take() {
                    shared
                        .log
                        .record_delivery(LocaleId::new(src as u32), to, seq);
                }
            }
            return;
        };
        inbox.space.notify_all();
        OBS_QUEUE_DEPTH.add(-1);
        let (_msg, seq) = decode_frame(&frame.payload).expect("mesh frame corrupted in transit");
        let from = LocaleId::new(frame.from);
        if shared.reorder[from.index() * n + dst] {
            match stash[from.index()].take() {
                // Hold the first of each pair back …
                None => stash[from.index()] = Some(seq),
                // … and log it *after* its successor: adjacent swaps.
                Some(held) => {
                    shared.log.record_delivery(from, to, seq);
                    shared.log.record_delivery(from, to, held);
                }
            }
        } else {
            shared.log.record_delivery(from, to, seq);
        }
        // Ack promptly — even on a reordered link. Reordering perturbs
        // the observed delivery order, never completion: a sender must
        // not block on its successor's arrival.
        frame.ack.complete(Ok(()));
    }
}

fn pop_round_robin(st: &mut InboxState, n: usize) -> Option<Frame> {
    for k in 0..n {
        let i = (st.rr + k) % n;
        if let Some(f) = st.per_link[i].pop_front() {
            st.rr = (i + 1) % n;
            return Some(f);
        }
    }
    None
}

impl Transport for MeshTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Mesh
    }

    fn transmit(&self, from: LocaleId, to: LocaleId, msg: &CommMessage) -> Result<(), CommError> {
        debug_assert_ne!(from, to, "local accesses never reach the transport");
        let inbox = &self.shared.inboxes[to.index()];
        let deadline = Instant::now() + self.cfg.ack_timeout;
        let ack = Arc::new(Ack::new());
        {
            let mut st = inbox.state.lock();
            while st.per_link[from.index()].len() >= self.cfg.queue_capacity && !st.closed {
                if inbox.space.wait_until(&mut st, deadline).timed_out()
                    && st.per_link[from.index()].len() >= self.cfg.queue_capacity
                {
                    // The link stayed full past the deadline: refuse
                    // instead of buffering unboundedly or hanging.
                    return Err(CommError::Timeout {
                        op: msg.primary_op(),
                        locale: to,
                    });
                }
            }
            if st.closed {
                return Err(CommError::LocaleDown {
                    op: msg.primary_op(),
                    locale: to,
                });
            }
            let seq = st.send_seq[from.index()];
            st.send_seq[from.index()] += 1;
            st.per_link[from.index()].push_back(Frame {
                from: from.index() as u32,
                payload: encode_frame(msg, seq),
                ack: Arc::clone(&ack),
            });
            OBS_QUEUE_DEPTH.add(1);
        }
        inbox.ready.notify_one();
        match ack.wait_until(deadline) {
            Some(res) => res?,
            // Completion lost past the deadline (wedged dispatcher):
            // surface as a timeout, never a hang.
            None => {
                return Err(CommError::Timeout {
                    op: msg.primary_op(),
                    locale: to,
                })
            }
        }
        self.shared.links.record(from, to, msg.payload_bytes());
        Ok(())
    }

    fn link_stats(&self, from: LocaleId, to: LocaleId) -> LinkStats {
        self.shared.links.stats(from, to)
    }

    fn enable_delivery_log(&self) {
        self.shared.log.enable();
    }

    fn delivery_log(&self, from: LocaleId, to: LocaleId) -> Vec<u64> {
        self.shared.log.snapshot(from, to)
    }
}

impl Drop for MeshTransport {
    fn drop(&mut self) {
        for inbox in self.shared.inboxes.iter() {
            inbox.state.lock().closed = true;
            inbox.ready.notify_all();
            inbox.space.notify_all();
        }
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for MeshTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshTransport")
            .field("locales", &self.shared.n)
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocaleId {
        LocaleId::new(i)
    }

    #[test]
    fn transmit_delivers_and_meters() {
        let t = MeshTransport::new(2, MeshConfig::default(), &[]);
        for _ in 0..20 {
            t.transmit(l(0), l(1), &CommMessage::Put { bytes: 16 })
                .unwrap();
        }
        let s = t.link_stats(l(0), l(1));
        assert_eq!(s.messages, 20);
        assert_eq!(s.bytes, 320);
        assert_eq!(t.link_stats(l(1), l(0)), LinkStats::default());
    }

    #[test]
    fn per_link_delivery_is_fifo() {
        let t = MeshTransport::new(3, MeshConfig::default(), &[]);
        t.enable_delivery_log();
        for _ in 0..50 {
            t.transmit(l(0), l(2), &CommMessage::Get { bytes: 8 })
                .unwrap();
            t.transmit(l(1), l(2), &CommMessage::Get { bytes: 8 })
                .unwrap();
        }
        assert_eq!(t.delivery_log(l(0), l(2)), (0..50).collect::<Vec<_>>());
        assert_eq!(t.delivery_log(l(1), l(2)), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_senders_all_complete() {
        let t = Arc::new(MeshTransport::new(4, MeshConfig::default(), &[]));
        std::thread::scope(|s| {
            for src in 0..4u32 {
                for dst in 0..4u32 {
                    if src == dst {
                        continue;
                    }
                    let t = Arc::clone(&t);
                    s.spawn(move || {
                        for _ in 0..100 {
                            t.transmit(l(src), l(dst), &CommMessage::RemoteExec)
                                .unwrap();
                        }
                    });
                }
            }
        });
        for src in 0..4u32 {
            for dst in 0..4u32 {
                if src != dst {
                    assert_eq!(t.link_stats(l(src), l(dst)).messages, 100);
                }
            }
        }
    }

    #[test]
    fn reordered_link_swaps_adjacent_deliveries() {
        let t = MeshTransport::new(2, MeshConfig::default(), &[(l(0), l(1))]);
        t.enable_delivery_log();
        for _ in 0..4 {
            t.transmit(l(0), l(1), &CommMessage::Put { bytes: 8 })
                .unwrap();
        }
        drop(t); // flush + join so the log is final
                 // Can't read the log after drop; re-run with a handle kept.
        let t = MeshTransport::new(2, MeshConfig::default(), &[(l(0), l(1))]);
        t.enable_delivery_log();
        for _ in 0..4 {
            t.transmit(l(0), l(1), &CommMessage::Put { bytes: 8 })
                .unwrap();
        }
        // Wait for the dispatcher to observe all four frames: transmit
        // returns on ack, and acks are issued after log handling, so by
        // here the pairs (0,1) and (2,3) have both been processed.
        let log = t.delivery_log(l(0), l(1));
        assert_eq!(log, vec![1, 0, 3, 2], "adjacent pairs swap");
    }

    #[test]
    fn closed_transport_refuses_instead_of_hanging() {
        let t = MeshTransport::new(2, MeshConfig::default(), &[]);
        for inbox in t.shared.inboxes.iter() {
            inbox.state.lock().closed = true;
            inbox.ready.notify_all();
        }
        let out = t.transmit(l(0), l(1), &CommMessage::Put { bytes: 8 });
        assert!(matches!(out, Err(CommError::LocaleDown { .. })));
    }
}
