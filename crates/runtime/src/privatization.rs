//! Privatization: one shallow copy of an object per locale.
//!
//! Chapel *privatizes* distribution metadata: each locale holds its own
//! shallow copy of the object so that hot-path accesses never communicate,
//! and a task finds its copy via `chpl_getPrivatizedCopy(PID)` where `PID`
//! is a *privatization id*. Listing 1 of the paper makes `RCUArrayMetaData`
//! privatized and keys everything on `PID`.
//!
//! [`PrivTable`] reproduces that service. [`PrivTable::register`] builds one
//! instance per locale (invoking the constructor *on* each locale so
//! allocation accounting attributes correctly) and returns a dense
//! [`Pid`] plus a [`PrivHandle`] — a cheap, clonable handle whose
//! [`PrivHandle::get`] resolves the calling task's locale-local instance
//! with a thread-local read and an index, i.e. without communication.

use crate::locale::LocaleId;
use crate::task;
use parking_lot::RwLock;
use std::any::Any;
use std::sync::Arc;

/// A privatization id: index of a registered object in the cluster's
/// [`PrivTable`]. The equivalent of the paper's `PID` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pid(usize);

impl Pid {
    /// The raw table index.
    #[inline]
    pub fn raw(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid#{}", self.0)
    }
}

type Slot = Option<Arc<dyn Any + Send + Sync>>;

/// The cluster-wide registry of privatized objects.
#[derive(Default)]
pub struct PrivTable {
    slots: RwLock<Vec<Slot>>,
}

impl PrivTable {
    pub(crate) fn new() -> Self {
        PrivTable::default()
    }

    /// Register a new privatized object with `num_locales` instances,
    /// constructing each one logically *on* its locale.
    ///
    /// Returns the new [`Pid`] and a hot-path [`PrivHandle`].
    pub fn register<T, F>(&self, num_locales: usize, mut make: F) -> (Pid, PrivHandle<T>)
    where
        T: Send + Sync + 'static,
        F: FnMut(LocaleId) -> T,
    {
        let instances: Arc<[Arc<T>]> = (0..num_locales)
            .map(|i| {
                let loc = LocaleId::new(i as u32);
                // Construct with the locale context set, as Chapel's
                // privatization does with an `on` block per locale.
                task::with_locale(loc, || Arc::new(make(loc)))
            })
            .collect();
        let erased: Arc<dyn Any + Send + Sync> = Arc::new(instances.clone());
        let mut slots = self.slots.write();
        let pid = Pid(slots.len());
        slots.push(Some(erased));
        (pid, PrivHandle { pid, instances })
    }

    /// Re-resolve a handle from a pid — `chpl_getPrivatizedCopy`, but
    /// amortized: resolve once, then every [`PrivHandle::get`] is two loads.
    ///
    /// Returns `None` if the pid was never registered, was unregistered, or
    /// holds a different type.
    pub fn handle<T>(&self, pid: Pid) -> Option<PrivHandle<T>>
    where
        T: Send + Sync + 'static,
    {
        let slots = self.slots.read();
        let erased = slots.get(pid.0)?.as_ref()?.clone();
        drop(slots);
        let instances = erased.downcast::<Arc<[Arc<T>]>>().ok()?;
        Some(PrivHandle {
            pid,
            instances: Arc::clone(&instances),
        })
    }

    /// Drop the table's reference to a privatized object. Outstanding
    /// handles keep their instances alive; new `handle()` calls fail.
    pub fn unregister(&self, pid: Pid) {
        let mut slots = self.slots.write();
        if let Some(slot) = slots.get_mut(pid.0) {
            *slot = None;
        }
    }

    /// Number of registrations ever made (including unregistered slots).
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True if nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for PrivTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivTable")
            .field("slots", &self.len())
            .finish()
    }
}

/// A resolved handle to a privatized object: the fast path of
/// `chpl_getPrivatizedCopy`.
///
/// Cloning is cheap (one `Arc` bump). [`get`](Self::get) performs no
/// locking and no communication: it reads the task-local locale id and
/// indexes the per-locale instance slice.
pub struct PrivHandle<T> {
    pid: Pid,
    instances: Arc<[Arc<T>]>,
}

impl<T> Clone for PrivHandle<T> {
    fn clone(&self) -> Self {
        PrivHandle {
            pid: self.pid,
            instances: Arc::clone(&self.instances),
        }
    }
}

impl<T> PrivHandle<T> {
    /// This object's privatization id.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The instance privatized to the calling task's locale.
    #[inline]
    pub fn get(&self) -> &T {
        &self.instances[task::current_locale().index()]
    }

    /// The instance privatized to a specific locale.
    #[inline]
    pub fn get_on(&self, locale: LocaleId) -> &T {
        &self.instances[locale.index()]
    }

    /// Shared reference to the instance on `locale`, for storing elsewhere.
    #[inline]
    pub fn arc_on(&self, locale: LocaleId) -> Arc<T> {
        Arc::clone(&self.instances[locale.index()])
    }

    /// Number of per-locale instances.
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Iterate over `(locale, instance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LocaleId, &T)> {
        self.instances
            .iter()
            .enumerate()
            .map(|(i, a)| (LocaleId::new(i as u32), &**a))
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PrivHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivHandle")
            .field("pid", &self.pid)
            .field("instances", &self.instances.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::with_locale;

    #[derive(Debug)]
    struct Meta {
        home: LocaleId,
    }

    #[test]
    fn register_builds_one_instance_per_locale() {
        let table = PrivTable::new();
        let (_pid, handle) = table.register(4, |loc| Meta { home: loc });
        assert_eq!(handle.num_instances(), 4);
        for (loc, inst) in handle.iter() {
            assert_eq!(inst.home, loc);
        }
    }

    #[test]
    fn constructor_runs_with_locale_context() {
        let table = PrivTable::new();
        let (_pid, handle) = table.register(3, |_| Meta {
            home: task::current_locale(),
        });
        for (loc, inst) in handle.iter() {
            assert_eq!(inst.home, loc, "constructor saw wrong `here`");
        }
    }

    #[test]
    fn get_resolves_current_locale() {
        let table = PrivTable::new();
        let (_pid, handle) = table.register(4, |loc| Meta { home: loc });
        for i in 0..4u32 {
            with_locale(LocaleId::new(i), || {
                assert_eq!(handle.get().home, LocaleId::new(i));
            });
        }
    }

    #[test]
    fn handle_round_trips_through_pid() {
        let table = PrivTable::new();
        let (pid, _h) = table.register(2, |loc| Meta { home: loc });
        let h2: PrivHandle<Meta> = table.handle(pid).expect("pid registered");
        assert_eq!(h2.get_on(LocaleId::new(1)).home, LocaleId::new(1));
    }

    #[test]
    fn handle_with_wrong_type_fails() {
        let table = PrivTable::new();
        let (pid, _h) = table.register(2, |loc| Meta { home: loc });
        assert!(table.handle::<String>(pid).is_none());
    }

    #[test]
    fn unregister_invalidates_pid_but_not_handles() {
        let table = PrivTable::new();
        let (pid, handle) = table.register(2, |loc| Meta { home: loc });
        table.unregister(pid);
        assert!(table.handle::<Meta>(pid).is_none());
        // Outstanding handle still works.
        assert_eq!(handle.get_on(LocaleId::ZERO).home, LocaleId::ZERO);
    }

    #[test]
    fn pids_are_dense_and_distinct() {
        let table = PrivTable::new();
        let (p0, _a) = table.register(1, |loc| Meta { home: loc });
        let (p1, _b) = table.register(1, |loc| Meta { home: loc });
        assert_ne!(p0, p1);
        assert_eq!(p0.raw(), 0);
        assert_eq!(p1.raw(), 1);
        assert_eq!(table.len(), 2);
    }
}
