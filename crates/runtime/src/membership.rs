//! Cluster membership: a probe-driven failure detector and epoch-numbered
//! membership views.
//!
//! The paper evaluates RCUArray on a healthy machine; the fault layer
//! (DESIGN.md §5c) can down locales and partition links, but until now
//! nothing in the stack *tracked* which locales are reachable — every
//! caller rediscovered failures one `CommError::LocaleDown` at a time.
//! This module centralizes that knowledge:
//!
//! * **Heartbeats ride the transport seam.** A probe is an ordinary
//!   1-byte PUT sent through [`CommLayer`](crate::comm::CommLayer), so it
//!   is subject to the same fault plan, latency model and accounting as
//!   data traffic. There is no side channel that could disagree with
//!   what the data path experiences.
//! * **Deadlines are counted in probe rounds, not wall-clock time.** A
//!   locale moves `Up → Suspect` after `suspect_after` consecutive
//!   missed probes and `Suspect → Down` after `down_after`. Because
//!   probes consume the fault plan's seeded counter-mode streams, the
//!   detector's timing is deterministic for a given seed: the nightly
//!   chaos loop replays the exact transition schedule.
//! * **State machine:** `Up → Suspect → Down → Rejoining → Up`. A probe
//!   answered by a `Down` locale moves it to `Rejoining`, but the locale
//!   is *not* re-admitted to views until the recovery layer calls
//!   [`Membership::mark_caught_up`] — a rejoiner first replays the
//!   snapshot publishes and replica writes it missed.
//! * **Views are epoch-numbered.** Every transition bumps the epoch, so
//!   two observers can order the views they hold, and collectives can
//!   tell "the view I sized the barrier with" from "the view now".
//!
//! Nothing probes in the background: detection advances only when
//! [`Cluster::probe_membership`](crate::Cluster::probe_membership) runs.
//! A cluster that never probes keeps every locale `Up` forever and
//! behaves exactly as it did before this module existed.

use crate::fault::MAX_FAULT_LOCALES;
use crate::locale::LocaleId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Health of one locale as seen by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocaleHealth {
    /// Answering probes; full member of every view.
    Up,
    /// Missed at least `suspect_after` consecutive probes. Still a view
    /// member (collectives keep addressing it) but one deadline away
    /// from eviction.
    Suspect,
    /// Missed `down_after` consecutive probes. Excluded from views:
    /// collectives skip it, reads fail over to replicas, recovery
    /// re-replicates its blocks.
    Down,
    /// Answered a probe after being `Down`. Reachable again but stale;
    /// excluded from views until [`Membership::mark_caught_up`].
    Rejoining,
}

impl LocaleHealth {
    /// Whether this state participates in membership views (collectives,
    /// barrier parties, placement of new blocks).
    #[inline]
    pub fn in_view(self) -> bool {
        matches!(self, LocaleHealth::Up | LocaleHealth::Suspect)
    }
}

/// An immutable, epoch-numbered snapshot of cluster membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    epoch: u64,
    states: Vec<LocaleHealth>,
}

impl MembershipView {
    /// The epoch this view was taken at. Strictly increases across
    /// state transitions; equal epochs mean identical views.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Health of one locale in this view.
    #[inline]
    pub fn health(&self, l: LocaleId) -> LocaleHealth {
        self.states[l.index()]
    }

    /// Whether `l` is a member of this view (`Up` or `Suspect`).
    #[inline]
    pub fn in_view(&self, l: LocaleId) -> bool {
        self.states[l.index()].in_view()
    }

    /// Locales that are members of this view, in id order.
    pub fn members(&self) -> Vec<LocaleId> {
        (0..self.states.len())
            .filter(|&i| self.states[i].in_view())
            .map(|i| LocaleId::new(i as u32))
            .collect()
    }

    /// Number of view members.
    #[inline]
    pub fn num_members(&self) -> usize {
        self.states.iter().filter(|s| s.in_view()).count()
    }

    /// Total locales the view covers (members or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the view covers no locales (never for a real cluster).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

struct DetectorState {
    states: Vec<LocaleHealth>,
    /// Consecutive missed probes per locale; reset by any answered probe.
    misses: Vec<u32>,
}

/// The failure detector: per-locale health driven by probe outcomes.
///
/// Owned by [`Cluster`](crate::Cluster); shared references reach it via
/// [`Cluster::membership`](crate::Cluster::membership).
pub struct Membership {
    inner: Mutex<DetectorState>,
    /// Mirror of "state == Up" as a bitmask for lock-free hot-path
    /// queries ([`is_up`](Self::is_up)); same layout as the fault
    /// plan's down mask.
    up_mask: AtomicU64,
    epoch: AtomicU64,
    /// Consecutive misses before `Up → Suspect`.
    suspect_after: u32,
    /// Consecutive misses before `Suspect → Down`.
    down_after: u32,
}

impl Membership {
    /// A detector over `n` locales, all initially `Up`. Deadlines default
    /// to 1 missed probe for suspicion and 2 for eviction.
    pub fn new(n: usize) -> Membership {
        assert!((1..=MAX_FAULT_LOCALES).contains(&n));
        Membership {
            inner: Mutex::new(DetectorState {
                states: vec![LocaleHealth::Up; n],
                misses: vec![0; n],
            }),
            up_mask: AtomicU64::new(mask_all(n)),
            epoch: AtomicU64::new(0),
            suspect_after: 1,
            down_after: 2,
        }
    }

    /// A detector with explicit deadlines (in consecutive missed
    /// probes). `suspect_after >= 1`, `down_after > suspect_after`.
    pub fn with_deadlines(n: usize, suspect_after: u32, down_after: u32) -> Membership {
        assert!(suspect_after >= 1, "suspicion needs at least one miss");
        assert!(down_after > suspect_after, "eviction must follow suspicion");
        Membership {
            suspect_after,
            down_after,
            ..Membership::new(n)
        }
    }

    /// Number of locales covered.
    pub fn num_locales(&self) -> usize {
        self.inner.lock().expect("membership poisoned").states.len()
    }

    /// Lock-free fast path: is `l` currently `Up`? (`Suspect` is not
    /// `Up`: the hot read path starts failing over as soon as the
    /// detector has any reason to doubt the primary.)
    #[inline]
    pub fn is_up(&self, l: LocaleId) -> bool {
        self.up_mask.load(Ordering::Acquire) & (1u64 << l.index()) != 0
    }

    /// The current epoch without materializing a view.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Snapshot the current view.
    pub fn view(&self) -> MembershipView {
        let st = self.inner.lock().expect("membership poisoned");
        MembershipView {
            epoch: self.epoch.load(Ordering::Acquire),
            states: st.states.clone(),
        }
    }

    /// Record the outcome of one probe of `l`. Returns the new health.
    ///
    /// Called by [`Cluster::probe_membership`](crate::Cluster::probe_membership);
    /// exposed so harnesses can drive the state machine directly.
    pub fn record_probe(&self, l: LocaleId, answered: bool) -> LocaleHealth {
        let mut st = self.inner.lock().expect("membership poisoned");
        let i = l.index();
        let old = st.states[i];
        let new = if answered {
            st.misses[i] = 0;
            match old {
                // A reachable Down locale is stale, not healthy: it must
                // catch up before views re-admit it.
                LocaleHealth::Down => LocaleHealth::Rejoining,
                LocaleHealth::Rejoining => LocaleHealth::Rejoining,
                _ => LocaleHealth::Up,
            }
        } else {
            st.misses[i] = st.misses[i].saturating_add(1);
            let m = st.misses[i];
            match old {
                // A rejoiner that stops answering goes straight back to
                // Down: it was already evicted from views.
                LocaleHealth::Down | LocaleHealth::Rejoining => LocaleHealth::Down,
                _ if m >= self.down_after => LocaleHealth::Down,
                _ if m >= self.suspect_after => LocaleHealth::Suspect,
                _ => old,
            }
        };
        self.transition(&mut st, i, old, new);
        new
    }

    /// Re-admit a `Rejoining` locale after recovery has replayed the
    /// state it missed. No-op in any other state (the detector may have
    /// re-evicted it while recovery ran).
    pub fn mark_caught_up(&self, l: LocaleId) {
        let mut st = self.inner.lock().expect("membership poisoned");
        let i = l.index();
        if st.states[i] == LocaleHealth::Rejoining {
            st.misses[i] = 0;
            self.transition(&mut st, i, LocaleHealth::Rejoining, LocaleHealth::Up);
        }
    }

    fn transition(&self, st: &mut DetectorState, i: usize, old: LocaleHealth, new: LocaleHealth) {
        if old == new {
            return;
        }
        st.states[i] = new;
        let bit = 1u64 << i;
        if new == LocaleHealth::Up {
            self.up_mask.fetch_or(bit, Ordering::AcqRel);
        } else {
            self.up_mask.fetch_and(!bit, Ordering::AcqRel);
        }
        // Bumped under the lock, so epochs order transitions totally.
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.view();
        f.debug_struct("Membership")
            .field("epoch", &v.epoch)
            .field("states", &v.states)
            .finish()
    }
}

fn mask_all(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L0: LocaleId = LocaleId::ZERO;
    fn l(i: u32) -> LocaleId {
        LocaleId::new(i)
    }

    #[test]
    fn fresh_detector_has_everyone_up_at_epoch_zero() {
        let m = Membership::new(4);
        let v = m.view();
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.num_members(), 4);
        for i in 0..4 {
            assert!(m.is_up(l(i)));
            assert_eq!(v.health(l(i)), LocaleHealth::Up);
        }
        assert_eq!(v.members(), vec![l(0), l(1), l(2), l(3)]);
    }

    #[test]
    fn misses_walk_the_deadline_ladder() {
        let m = Membership::with_deadlines(3, 1, 3);
        assert_eq!(m.record_probe(l(1), false), LocaleHealth::Suspect);
        assert!(!m.is_up(l(1)), "suspects leave the fast-path mask");
        assert!(m.view().in_view(l(1)), "suspects stay view members");
        assert_eq!(m.record_probe(l(1), false), LocaleHealth::Suspect);
        assert_eq!(m.record_probe(l(1), false), LocaleHealth::Down);
        let v = m.view();
        assert!(!v.in_view(l(1)));
        assert_eq!(v.members(), vec![l(0), l(2)]);
        assert_eq!(v.num_members(), 2);
    }

    #[test]
    fn answered_probe_recovers_a_suspect_without_rejoin() {
        let m = Membership::new(2);
        assert_eq!(m.record_probe(l(1), false), LocaleHealth::Suspect);
        assert_eq!(m.record_probe(l(1), true), LocaleHealth::Up);
        assert!(m.is_up(l(1)));
    }

    #[test]
    fn down_locale_rejoins_only_after_catch_up() {
        let m = Membership::new(2);
        m.record_probe(l(1), false);
        m.record_probe(l(1), false);
        assert_eq!(m.view().health(l(1)), LocaleHealth::Down);
        // Reachable again: Rejoining, but still excluded from views.
        assert_eq!(m.record_probe(l(1), true), LocaleHealth::Rejoining);
        assert!(!m.view().in_view(l(1)));
        assert!(!m.is_up(l(1)));
        // Recovery finishes; only now is it a member again.
        m.mark_caught_up(l(1));
        assert_eq!(m.view().health(l(1)), LocaleHealth::Up);
        assert!(m.is_up(l(1)));
    }

    #[test]
    fn rejoiner_that_goes_silent_falls_back_to_down() {
        let m = Membership::new(2);
        m.record_probe(l(1), false);
        m.record_probe(l(1), false);
        m.record_probe(l(1), true);
        assert_eq!(m.view().health(l(1)), LocaleHealth::Rejoining);
        assert_eq!(m.record_probe(l(1), false), LocaleHealth::Down);
        m.mark_caught_up(l(1)); // no-op: not Rejoining anymore
        assert_eq!(m.view().health(l(1)), LocaleHealth::Down);
    }

    #[test]
    fn every_transition_bumps_the_epoch_and_stability_does_not() {
        let m = Membership::new(3);
        assert_eq!(m.epoch(), 0);
        m.record_probe(l(2), true); // Up → Up: no transition
        assert_eq!(m.epoch(), 0);
        m.record_probe(l(2), false); // → Suspect
        assert_eq!(m.epoch(), 1);
        m.record_probe(l(2), false); // → Down
        assert_eq!(m.epoch(), 2);
        m.record_probe(l(2), false); // Down → Down: no transition
        assert_eq!(m.epoch(), 2);
        m.record_probe(l(2), true); // → Rejoining
        assert_eq!(m.epoch(), 3);
        m.mark_caught_up(l(2)); // → Up
        assert_eq!(m.epoch(), 4);
        assert!(m.is_up(l(2)));
        assert!(m.is_up(L0));
    }

    #[test]
    #[should_panic(expected = "eviction must follow suspicion")]
    fn deadlines_must_be_ordered() {
        let _ = Membership::with_deadlines(2, 2, 2);
    }
}
