//! Cluster-wide mutual exclusion: the paper's `WriteLock`.
//!
//! Listing 1 describes `WriteLock` as "a cluster-wide lock, in this case a
//! lock that is wrapped in some class allocated on a single node, used to
//! provide mutual exclusion with respect to all locales during resize
//! operations". [`GlobalLock`] mirrors that: the lock state is *homed* on
//! one locale (locale 0 unless configured otherwise), and every
//! acquisition/release by a task on another locale is charged as a remote
//! operation through the communication layer — which is exactly why the
//! paper's `SyncArray` degrades as locales are added: "remote tasks must
//! contest for the same lock".

use crate::comm::CommLayer;
use crate::locale::LocaleId;
use crate::task;
use crate::transport::CommMessage;
use rcuarray_analysis::atomic::{AtomicU64, Ordering};
use rcuarray_analysis::sync::{Mutex, MutexGuard};
use std::sync::Arc;

/// A lock allocated on a single locale and contended cluster-wide.
pub struct GlobalLock {
    home: LocaleId,
    inner: Mutex<()>,
    comm: Option<Arc<CommLayerRef>>,
    acquisitions: AtomicU64,
    remote_acquisitions: AtomicU64,
}

/// Internal: keep the comm layer reachable without borrowing the cluster.
struct CommLayerRef {
    cluster: Arc<crate::Cluster>,
}

impl GlobalLock {
    /// A lock homed on `home` that charges remote acquisitions through the
    /// given cluster's communication layer.
    pub fn new(cluster: &Arc<crate::Cluster>, home: LocaleId) -> Self {
        assert!(
            home.index() < cluster.num_locales(),
            "lock home {home} outside cluster"
        );
        GlobalLock {
            home,
            inner: Mutex::new(()),
            comm: Some(Arc::new(CommLayerRef {
                cluster: Arc::clone(cluster),
            })),
            acquisitions: AtomicU64::new(0),
            remote_acquisitions: AtomicU64::new(0),
        }
    }

    /// A detached lock (no communication accounting) homed on locale 0 —
    /// handy in unit tests of higher layers.
    pub fn detached() -> Self {
        GlobalLock {
            home: LocaleId::ZERO,
            inner: Mutex::new(()),
            comm: None,
            acquisitions: AtomicU64::new(0),
            remote_acquisitions: AtomicU64::new(0),
        }
    }

    /// The locale the lock state lives on.
    #[inline]
    pub fn home(&self) -> LocaleId {
        self.home
    }

    fn comm(&self) -> Option<&CommLayer> {
        self.comm.as_deref().map(|r| r.cluster.comm())
    }

    /// Acquire the lock, blocking. A task on a locale other than
    /// [`home`](Self::home) pays a round-trip to reach the lock word.
    pub fn acquire(&self) -> GlobalLockGuard<'_> {
        let from = task::current_locale();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if from != self.home {
            self.remote_acquisitions.fetch_add(1, Ordering::Relaxed);
            if let Some(comm) = self.comm() {
                // Reaching the remote lock word is one LockAcquire message,
                // which lowers to the GET (read/try) + PUT (RMW write-back)
                // round trip a remote compare-and-swap costs on the wire.
                let _ = comm.send(from, self.home, CommMessage::LockAcquire);
            }
        }
        GlobalLockGuard {
            lock: self,
            _guard: self.inner.lock(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self) -> Option<GlobalLockGuard<'_>> {
        let guard = self.inner.try_lock()?;
        let from = task::current_locale();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if from != self.home {
            self.remote_acquisitions.fetch_add(1, Ordering::Relaxed);
            if let Some(comm) = self.comm() {
                let _ = comm.send(from, self.home, CommMessage::LockAcquire);
            }
        }
        Some(GlobalLockGuard {
            lock: self,
            _guard: guard,
        })
    }

    /// Try to acquire, giving up after `timeout`. The bounded wait is what
    /// keeps a resize from hanging forever behind a wedged or panicked
    /// peer; communication is charged only on success.
    pub fn try_acquire_for(&self, timeout: std::time::Duration) -> Option<GlobalLockGuard<'_>> {
        let guard = self.inner.try_lock_for(timeout)?;
        let from = task::current_locale();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if from != self.home {
            self.remote_acquisitions.fetch_add(1, Ordering::Relaxed);
            if let Some(comm) = self.comm() {
                let _ = comm.send(from, self.home, CommMessage::LockAcquire);
            }
        }
        Some(GlobalLockGuard {
            lock: self,
            _guard: guard,
        })
    }

    /// Whether some task currently holds the lock.
    pub fn is_locked(&self) -> bool {
        self.inner.is_locked()
    }

    /// Total acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions initiated from a locale other than the home locale.
    pub fn remote_acquisitions(&self) -> u64 {
        self.remote_acquisitions.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for GlobalLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalLock")
            .field("home", &self.home)
            .field("locked", &self.is_locked())
            .field("acquisitions", &self.acquisitions())
            .finish()
    }
}

/// RAII guard: the lock is held until this is dropped. Release by a remote
/// task is also charged as a PUT (writing the unlocked state back).
pub struct GlobalLockGuard<'a> {
    lock: &'a GlobalLock,
    _guard: MutexGuard<'a, ()>,
}

impl Drop for GlobalLockGuard<'_> {
    fn drop(&mut self) {
        let from = task::current_locale();
        if from != self.lock.home {
            if let Some(comm) = self.lock.comm() {
                let _ = comm.send(from, self.lock.home, CommMessage::LockRelease);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, Topology};
    use rcuarray_analysis::atomic::AtomicUsize;

    #[test]
    fn provides_mutual_exclusion() {
        let lock = Arc::new(GlobalLock::detached());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(rcuarray_analysis::thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = lock.acquire();
                    // Non-atomic read-modify-write protected by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8000);
        assert_eq!(lock.acquisitions(), 8000);
    }

    #[test]
    fn remote_acquisition_is_charged() {
        let cluster = Cluster::new(Topology::new(4, 1));
        let lock = GlobalLock::new(&cluster, LocaleId::ZERO);
        task::with_locale(LocaleId::new(2), || {
            let g = lock.acquire();
            drop(g);
        });
        assert_eq!(lock.remote_acquisitions(), 1);
        let stats = cluster.comm_stats();
        assert_eq!(stats.gets, 1);
        assert_eq!(stats.puts, 2); // acquire write-back + release
    }

    #[test]
    fn local_acquisition_is_free() {
        let cluster = Cluster::new(Topology::new(2, 1));
        let lock = GlobalLock::new(&cluster, LocaleId::new(1));
        task::with_locale(LocaleId::new(1), || {
            let _g = lock.acquire();
        });
        assert_eq!(lock.remote_acquisitions(), 0);
        assert_eq!(cluster.comm_stats().remote_ops(), 0);
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let lock = GlobalLock::detached();
        let g = lock.acquire();
        assert!(lock.try_acquire().is_none());
        drop(g);
        assert!(lock.try_acquire().is_some());
    }

    #[test]
    fn is_locked_reflects_state() {
        let lock = GlobalLock::detached();
        assert!(!lock.is_locked());
        let g = lock.acquire();
        assert!(lock.is_locked());
        drop(g);
        assert!(!lock.is_locked());
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn home_must_be_in_cluster() {
        let cluster = Cluster::with_locales(2);
        let _ = GlobalLock::new(&cluster, LocaleId::new(5));
    }

    #[test]
    fn try_acquire_for_times_out_then_succeeds() {
        let lock = Arc::new(GlobalLock::detached());
        let g = lock.acquire();
        assert!(
            lock.try_acquire_for(std::time::Duration::from_millis(30))
                .is_none(),
            "held lock must time out"
        );
        drop(g);
        assert!(lock
            .try_acquire_for(std::time::Duration::from_millis(30))
            .is_some());
    }

    #[test]
    fn acquisition_succeeds_after_holder_panics() {
        // The RAII guard releases on unwind and the underlying mutex does
        // not poison, so a panicking resize cannot wedge the cluster lock.
        let lock = Arc::new(GlobalLock::detached());
        let lock2 = Arc::clone(&lock);
        let t = rcuarray_analysis::thread::spawn(move || {
            let _g = lock2.acquire();
            panic!("holder dies while holding the cluster lock");
        });
        assert!(t.join().is_err());
        let g = lock
            .try_acquire_for(std::time::Duration::from_secs(5))
            .expect("lock must be acquirable after a holder panic");
        drop(g);
        assert!(!lock.is_locked());
    }
}
