//! Task-local locale context.
//!
//! Chapel tasks always know which locale they execute on (`here`). The
//! simulation stores that in a thread-local cell: every task-spawning entry
//! point in [`crate::Cluster`] wraps the user closure in [`with_locale`],
//! and `on`-blocks temporarily override it. Code deep inside a data
//! structure asks [`current_locale`] — the equivalent of Chapel's `here.id`
//! — to find its privatized instance without any communication.
//!
//! A thread that was never adopted by a cluster reports locale 0, matching
//! Chapel's behaviour of starting the program on locale 0.

use crate::locale::LocaleId;
use std::cell::Cell;

thread_local! {
    static CURRENT_LOCALE: Cell<LocaleId> = const { Cell::new(LocaleId::ZERO) };
}

/// The locale the current task is (logically) executing on.
///
/// Equivalent to Chapel's `here.id`. Defaults to locale 0 on threads that
/// were not spawned through a [`crate::Cluster`].
#[inline]
pub fn current_locale() -> LocaleId {
    CURRENT_LOCALE.with(|c| c.get())
}

/// Run `f` with the current task's locale context set to `locale`,
/// restoring the previous context afterwards (also on panic).
pub fn with_locale<R>(locale: LocaleId, f: impl FnOnce() -> R) -> R {
    struct Restore(LocaleId);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_LOCALE.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT_LOCALE.with(|c| c.replace(locale));
    let _restore = Restore(prev);
    f()
}

/// A scope helper for spawning locale-pinned tasks with `std::thread::scope`
/// ergonomics.
///
/// ```
/// use rcuarray_runtime::{task::TaskScope, LocaleId};
/// let results = TaskScope::run(|scope| {
///     for i in 0..4u32 {
///         scope.spawn_on(LocaleId::new(i), move || {
///             assert_eq!(rcuarray_runtime::current_locale(), LocaleId::new(i));
///         });
///     }
/// });
/// assert_eq!(results, 4);
/// ```
pub struct TaskScope<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    spawned: Cell<usize>,
}

impl<'scope, 'env> TaskScope<'scope, 'env> {
    /// Open a scope, let `f` spawn locale-pinned tasks into it, join them
    /// all and return how many were spawned.
    pub fn run<F>(f: F) -> usize
    where
        F: for<'s> FnOnce(&TaskScope<'s, 'env>),
    {
        std::thread::scope(|scope| {
            let ts = TaskScope {
                scope,
                spawned: Cell::new(0),
            };
            f(&ts);
            ts.spawned.get()
        })
    }

    /// Spawn a task pinned to `locale`.
    pub fn spawn_on<F>(&self, locale: LocaleId, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawned.set(self.spawned.get() + 1);
        self.scope.spawn(move || with_locale(locale, f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_locale_is_zero() {
        // Run on a fresh thread so other tests' contexts can't interfere.
        std::thread::spawn(|| assert_eq!(current_locale(), LocaleId::ZERO))
            .join()
            .unwrap();
    }

    #[test]
    fn with_locale_sets_and_restores() {
        let before = current_locale();
        let inner = with_locale(LocaleId::new(5), current_locale);
        assert_eq!(inner, LocaleId::new(5));
        assert_eq!(current_locale(), before);
    }

    #[test]
    fn with_locale_restores_on_panic() {
        let before = current_locale();
        let r = std::panic::catch_unwind(|| {
            with_locale(LocaleId::new(9), || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(current_locale(), before);
    }

    #[test]
    fn task_scope_pins_locales() {
        let n = TaskScope::run(|scope| {
            for i in 0..3u32 {
                scope.spawn_on(LocaleId::new(i), move || {
                    assert_eq!(current_locale(), LocaleId::new(i));
                });
            }
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn contexts_are_per_thread() {
        with_locale(LocaleId::new(2), || {
            std::thread::spawn(|| {
                // New thread: not inherited.
                assert_eq!(current_locale(), LocaleId::ZERO);
            })
            .join()
            .unwrap();
        });
    }
}
