//! Communication facade: PUT/GET/remote-execute accounting, fault
//! injection and latency, over a pluggable [`Transport`].
//!
//! On the paper's Cray XC-50, inter-node traffic rides the Aries network;
//! Chapel compiles remote accesses into PUT/GET operations "behind the
//! scenes, and so both readers and updaters are completely oblivious of all
//! communication" (paper §III-D, footnote 10). The simulation preserves two
//! observable properties of that network:
//!
//! 1. **Accounting** — every crossing is counted per *initiating* locale, so
//!    tests and the harness can assert locality claims (e.g. that RCUArray
//!    reads touch mostly node-local metadata).
//! 2. **Cost** — an optional [`LatencyModel`] makes remote operations spend
//!    real time, so benchmark rankings reflect the remote/local asymmetry.
//!
//! Since the transport refactor, `CommLayer` is a *facade*: callers hand it
//! a typed [`CommMessage`], it lowers the message to wire operations
//! ([`CommMessage::wire_ops`]), runs the fault plan and per-locale
//! accounting on each, and only then asks the configured [`Transport`]
//! backend to move the bytes. Fault checks, counters and latency all live
//! here — **not** in the backends — which is what guarantees identical
//! `CommStats`/`FaultStats` on shmem and mesh for the same workload.
//!
//! Counters are sharded per locale and padded to avoid the instrumentation
//! itself becoming a contended cache line.

use crate::fault::{CommError, FaultPlan, OpKind};
use crate::locale::LocaleId;
use crate::transport::{
    CommMessage, MeshConfig, MeshTransport, ShmemTransport, Transport, TransportKind,
};
use rcuarray_obs::LazyCounter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// Telemetry (DESIGN.md §7): cluster-wide totals across every locale and
// every `CommLayer` in the process. The per-locale padded counters below
// remain the source of truth for `stats_for`/locality assertions; these
// registry handles unify the same events onto the shared metrics facade.
static OBS_GETS: LazyCounter =
    LazyCounter::new("rcuarray_comm_gets_total", "remote GET operations");
static OBS_PUTS: LazyCounter =
    LazyCounter::new("rcuarray_comm_puts_total", "remote PUT operations");
static OBS_ONS: LazyCounter = LazyCounter::new(
    "rcuarray_comm_remote_execs_total",
    "remote on-block executions",
);
static OBS_LOCAL: LazyCounter = LazyCounter::new(
    "rcuarray_comm_local_ops_total",
    "accesses that stayed on their home locale",
);
static OBS_BYTES: LazyCounter = LazyCounter::new(
    "rcuarray_comm_bytes_total",
    "bytes moved by remote GET/PUT operations",
);
static OBS_RETRIES: LazyCounter = LazyCounter::new(
    "rcuarray_comm_retries_total",
    "retry attempts charged by the retry policy",
);
static OBS_FAULTS: LazyCounter = LazyCounter::new(
    "rcuarray_comm_faults_injected_total",
    "remote operations charged as failed (fault plan or transport refusal)",
);

/// How much a remote operation should cost in wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// Remote operations cost nothing extra (unit tests, fast CI).
    #[default]
    None,
    /// Spin for a fixed number of nanoseconds per remote operation.
    ///
    /// A busy-wait is used instead of `thread::sleep` because sleeps on
    /// commodity OSes have ~50µs+ granularity, far above network latencies
    /// (an Aries GET is on the order of 1-2µs).
    SpinNanos(u64),
    /// Spin `base + per_kb * ceil(bytes/1024)` nanoseconds: a simple
    /// bandwidth-plus-latency model for bulk transfers.
    Linear {
        /// Fixed per-operation latency in nanoseconds.
        base_nanos: u64,
        /// Additional nanoseconds per KiB moved.
        per_kb_nanos: u64,
    },
}

impl LatencyModel {
    /// The delay charged to a remote operation moving `bytes` bytes.
    #[inline]
    pub fn delay_for(&self, bytes: usize) -> Duration {
        match *self {
            LatencyModel::None => Duration::ZERO,
            LatencyModel::SpinNanos(ns) => Duration::from_nanos(ns),
            LatencyModel::Linear {
                base_nanos,
                per_kb_nanos,
            } => {
                let kb = bytes.div_ceil(1024) as u64;
                Duration::from_nanos(base_nanos + per_kb_nanos * kb)
            }
        }
    }

    #[inline]
    fn apply(&self, bytes: usize) {
        let d = self.delay_for(bytes);
        if d.is_zero() {
            return;
        }
        spin_for(d);
    }
}

/// Busy-wait for `d`. Public so benches can calibrate against it.
#[inline]
pub fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

const CACHE_LINE: usize = 64;

/// One locale's communication counters, padded to a cache line multiple.
#[repr(align(64))]
#[derive(Debug, Default)]
struct LocaleCounters {
    gets: AtomicU64,
    puts: AtomicU64,
    remote_executes: AtomicU64,
    local_accesses: AtomicU64,
    bytes_moved: AtomicU64,
}

// Make sure padding actually happened; counters being false-shared would
// poison every measurement in the workspace.
const _: () = assert!(std::mem::align_of::<LocaleCounters>() >= CACHE_LINE);

/// One locale's fault-path counters (attempt/failure/retry bookkeeping),
/// padded like [`LocaleCounters`]. Kept separate so the healthy fast path
/// touches one cache line, not two.
#[repr(align(64))]
#[derive(Debug, Default)]
struct FaultCounters {
    gets_attempted: AtomicU64,
    puts_attempted: AtomicU64,
    ons_attempted: AtomicU64,
    gets_failed: AtomicU64,
    puts_failed: AtomicU64,
    ons_failed: AtomicU64,
    retries: AtomicU64,
}

const _: () = assert!(std::mem::align_of::<FaultCounters>() >= CACHE_LINE);

/// Snapshot of one locale's (or the whole cluster's) fault accounting.
///
/// `attempted = completed + failed` per kind, where the completed counts
/// are the corresponding [`CommStats`] fields — the split tests use to
/// assert that faults and retries are charged to the *initiating* locale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// GETs attempted (completed + failed).
    pub gets_attempted: u64,
    /// PUTs attempted (completed + failed).
    pub puts_attempted: u64,
    /// Remote executions attempted (completed + failed).
    pub ons_attempted: u64,
    /// GETs that failed with a [`CommError`].
    pub gets_failed: u64,
    /// PUTs that failed with a [`CommError`].
    pub puts_failed: u64,
    /// Remote executions that failed with a [`CommError`].
    pub ons_failed: u64,
    /// Retry attempts charged through a
    /// [`RetryPolicy`](crate::fault::RetryPolicy).
    pub retries: u64,
}

impl FaultStats {
    /// Total operations that failed.
    pub fn failed(&self) -> u64 {
        self.gets_failed + self.puts_failed + self.ons_failed
    }

    /// Total operations attempted.
    pub fn attempted(&self) -> u64 {
        self.gets_attempted + self.puts_attempted + self.ons_attempted
    }
}

impl std::ops::Add for FaultStats {
    type Output = FaultStats;
    fn add(self, rhs: FaultStats) -> FaultStats {
        FaultStats {
            gets_attempted: self.gets_attempted + rhs.gets_attempted,
            puts_attempted: self.puts_attempted + rhs.puts_attempted,
            ons_attempted: self.ons_attempted + rhs.ons_attempted,
            gets_failed: self.gets_failed + rhs.gets_failed,
            puts_failed: self.puts_failed + rhs.puts_failed,
            ons_failed: self.ons_failed + rhs.ons_failed,
            retries: self.retries + rhs.retries,
        }
    }
}

/// Aggregated communication statistics (a snapshot; counters keep moving).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// GET operations initiated (reads of remote memory).
    pub gets: u64,
    /// PUT operations initiated (writes to remote memory).
    pub puts: u64,
    /// Remote `on`-block executions.
    pub remote_executes: u64,
    /// Accesses that stayed node-local.
    pub local_accesses: u64,
    /// Total bytes crossing locale boundaries.
    pub bytes_moved: u64,
}

impl CommStats {
    /// Total remote operations of any kind.
    pub fn remote_ops(&self) -> u64 {
        self.gets + self.puts + self.remote_executes
    }

    /// Fraction of memory accesses that stayed local, in `[0, 1]`.
    /// Returns 1.0 when there were no accesses at all.
    pub fn locality(&self) -> f64 {
        let total = self.gets + self.puts + self.local_accesses;
        if total == 0 {
            1.0
        } else {
            self.local_accesses as f64 / total as f64
        }
    }
}

impl std::ops::Add for CommStats {
    type Output = CommStats;
    fn add(self, rhs: CommStats) -> CommStats {
        CommStats {
            gets: self.gets + rhs.gets,
            puts: self.puts + rhs.puts,
            remote_executes: self.remote_executes + rhs.remote_executes,
            local_accesses: self.local_accesses + rhs.local_accesses,
            bytes_moved: self.bytes_moved + rhs.bytes_moved,
        }
    }
}

/// The cluster's communication fabric: fault plan + accounting + latency
/// in front of a pluggable [`Transport`] backend.
#[derive(Debug)]
pub struct CommLayer {
    per_locale: Box<[LocaleCounters]>,
    fault_counters: Box<[FaultCounters]>,
    latency: LatencyModel,
    fault: FaultPlan,
    transport: Box<dyn Transport>,
}

impl CommLayer {
    /// A fault-free shmem layer (unit tests of comm-adjacent code).
    #[cfg(test)]
    pub(crate) fn new(num_locales: usize, latency: LatencyModel) -> Self {
        Self::with_transport(
            num_locales,
            latency,
            FaultPlan::disabled(),
            TransportKind::Shmem,
            MeshConfig::default(),
        )
    }

    pub(crate) fn with_transport(
        num_locales: usize,
        latency: LatencyModel,
        fault: FaultPlan,
        kind: TransportKind,
        mesh: MeshConfig,
    ) -> Self {
        let transport: Box<dyn Transport> = match kind {
            TransportKind::Shmem => Box::new(ShmemTransport::new(num_locales)),
            // The mesh learns which links reorder at construction: the
            // rules shape dispatcher behaviour, not per-send checks.
            TransportKind::Mesh => Box::new(MeshTransport::new(
                num_locales,
                mesh,
                &fault.reorder_links(),
            )),
        };
        CommLayer {
            per_locale: (0..num_locales)
                .map(|_| LocaleCounters::default())
                .collect(),
            fault_counters: (0..num_locales).map(|_| FaultCounters::default()).collect(),
            latency,
            fault,
            transport,
        }
    }

    /// The active latency model.
    #[inline]
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// The installed fault plan (disabled unless the cluster was built with
    /// one).
    #[inline]
    pub fn fault(&self) -> &FaultPlan {
        &self.fault
    }

    /// The transport backend carrying this cluster's cross-locale bytes.
    #[inline]
    pub fn transport(&self) -> &dyn Transport {
        &*self.transport
    }

    /// Send one typed message from `from` to `to`: the single front door
    /// for all cross-locale traffic.
    ///
    /// The message lowers to wire operations; each is fault-checked and
    /// charged to the *initiating* locale. Every wire operation is checked
    /// (consuming its fault-plan stream) even after an earlier one failed,
    /// but a message with any failed operation is **not** transmitted —
    /// `attempted = completed + failed` conservation holds per kind, and
    /// partial delivery never happens. On success the transport moves the
    /// message, the completed counters and bytes are charged, and latency
    /// is applied per wire operation.
    pub fn send(&self, from: LocaleId, to: LocaleId, msg: CommMessage) -> Result<(), CommError> {
        debug_assert_ne!(from, to, "local accesses use record_local");
        let ops = msg.wire_ops();
        let mut first_err = None;
        for &(op, _) in ops.as_slice() {
            if let Err(e) = self.fault.check(from, to, op) {
                self.charge_failed(from, op);
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if let Err(e) = self.transport.transmit(from, to, &msg) {
            // The backend refused (e.g. a mesh link stayed full past its
            // deadline): the whole message failed, charge every wire op.
            for &(op, _) in ops.as_slice() {
                self.charge_failed(from, op);
            }
            return Err(e);
        }
        for &(op, bytes) in ops.as_slice() {
            self.charge_completed(from, op, bytes);
        }
        Ok(())
    }

    /// The per-locale fault cells for one operation kind:
    /// `(attempted, failed)`.
    #[inline]
    fn fault_cells(&self, from: LocaleId, op: OpKind) -> (&AtomicU64, &AtomicU64) {
        let fc = &self.fault_counters[from.index()];
        match op {
            OpKind::Get => (&fc.gets_attempted, &fc.gets_failed),
            OpKind::Put => (&fc.puts_attempted, &fc.puts_failed),
            OpKind::RemoteExec => (&fc.ons_attempted, &fc.ons_failed),
        }
    }

    #[cold]
    fn charge_failed(&self, from: LocaleId, op: OpKind) {
        let (attempted, failed) = self.fault_cells(from, op);
        attempted.fetch_add(1, Ordering::Relaxed);
        failed.fetch_add(1, Ordering::Relaxed);
        OBS_FAULTS.inc();
    }

    #[inline]
    fn charge_completed(&self, from: LocaleId, op: OpKind, bytes: usize) {
        if self.fault.is_enabled() {
            self.fault_cells(from, op).0.fetch_add(1, Ordering::Relaxed);
        }
        let c = &self.per_locale[from.index()];
        match op {
            OpKind::Get => {
                c.gets.fetch_add(1, Ordering::Relaxed);
                c.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
                OBS_GETS.inc();
                OBS_BYTES.add(bytes as u64);
            }
            OpKind::Put => {
                c.puts.fetch_add(1, Ordering::Relaxed);
                c.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
                OBS_PUTS.inc();
                OBS_BYTES.add(bytes as u64);
            }
            OpKind::RemoteExec => {
                c.remote_executes.fetch_add(1, Ordering::Relaxed);
                OBS_ONS.inc();
            }
        }
        // An active message (bytes = 0) still costs roughly one small
        // transfer each way: apply(0) charges the base latency.
        self.latency.apply(bytes);
    }

    /// Record a GET of `bytes` bytes initiated by `from` against memory on
    /// `to`, and charge its latency. Fails when the fault plan says so;
    /// a failed operation is charged to `from` as attempted-but-failed and
    /// moves no bytes.
    ///
    /// Runtime-internal shorthand for [`send`](Self::send) with
    /// [`CommMessage::Get`]; code outside `crates/runtime` must speak
    /// `send` (lint rule `raw-comm`).
    #[inline]
    pub fn record_get(&self, from: LocaleId, to: LocaleId, bytes: usize) -> Result<(), CommError> {
        self.send(from, to, CommMessage::Get { bytes })
    }

    /// Record a PUT of `bytes` bytes initiated by `from` into memory on
    /// `to`, and charge its latency. Fault semantics as
    /// [`record_get`](Self::record_get).
    #[inline]
    pub fn record_put(&self, from: LocaleId, to: LocaleId, bytes: usize) -> Result<(), CommError> {
        self.send(from, to, CommMessage::Put { bytes })
    }

    /// Record a remote `on`-block execution from `from` to `to`. Fault
    /// semantics as [`record_get`](Self::record_get).
    #[inline]
    pub fn record_on(&self, from: LocaleId, to: LocaleId) -> Result<(), CommError> {
        self.send(from, to, CommMessage::RemoteExec)
    }

    /// Charge one retry attempt to `locale` (called by
    /// [`RetryPolicy::run`](crate::fault::RetryPolicy::run)).
    #[inline]
    pub fn record_retry(&self, locale: LocaleId) {
        self.fault_counters[locale.index()]
            .retries
            .fetch_add(1, Ordering::Relaxed);
        OBS_RETRIES.inc();
    }

    /// Record an access that stayed on `locale`.
    #[inline]
    pub fn record_local(&self, locale: LocaleId) {
        self.per_locale[locale.index()]
            .local_accesses
            .fetch_add(1, Ordering::Relaxed);
        OBS_LOCAL.inc();
    }

    /// Snapshot of one locale's counters.
    pub fn stats_for(&self, locale: LocaleId) -> CommStats {
        let c = &self.per_locale[locale.index()];
        CommStats {
            gets: c.gets.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            remote_executes: c.remote_executes.load(Ordering::Relaxed),
            local_accesses: c.local_accesses.load(Ordering::Relaxed),
            bytes_moved: c.bytes_moved.load(Ordering::Relaxed),
        }
    }

    /// Snapshot summed over all locales.
    pub fn total(&self) -> CommStats {
        (0..self.per_locale.len())
            .map(|i| self.stats_for(LocaleId::new(i as u32)))
            .fold(CommStats::default(), |a, b| a + b)
    }

    /// Snapshot of one locale's fault accounting.
    pub fn fault_stats_for(&self, locale: LocaleId) -> FaultStats {
        let c = &self.fault_counters[locale.index()];
        FaultStats {
            gets_attempted: c.gets_attempted.load(Ordering::Relaxed),
            puts_attempted: c.puts_attempted.load(Ordering::Relaxed),
            ons_attempted: c.ons_attempted.load(Ordering::Relaxed),
            gets_failed: c.gets_failed.load(Ordering::Relaxed),
            puts_failed: c.puts_failed.load(Ordering::Relaxed),
            ons_failed: c.ons_failed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
        }
    }

    /// Fault accounting summed over all locales.
    pub fn fault_totals(&self) -> FaultStats {
        (0..self.fault_counters.len())
            .map(|i| self.fault_stats_for(LocaleId::new(i as u32)))
            .fold(FaultStats::default(), |a, b| a + b)
    }

    /// Reset every counter to zero (between benchmark phases).
    pub fn reset(&self) {
        for c in self.per_locale.iter() {
            c.gets.store(0, Ordering::Relaxed);
            c.puts.store(0, Ordering::Relaxed);
            c.remote_executes.store(0, Ordering::Relaxed);
            c.local_accesses.store(0, Ordering::Relaxed);
            c.bytes_moved.store(0, Ordering::Relaxed);
        }
        for c in self.fault_counters.iter() {
            c.gets_attempted.store(0, Ordering::Relaxed);
            c.puts_attempted.store(0, Ordering::Relaxed);
            c.ons_attempted.store(0, Ordering::Relaxed);
            c.gets_failed.store(0, Ordering::Relaxed);
            c.puts_failed.store(0, Ordering::Relaxed);
            c.ons_failed.store(0, Ordering::Relaxed);
            c.retries.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(n: usize) -> CommLayer {
        CommLayer::new(n, LatencyModel::None)
    }

    #[test]
    fn counters_attribute_to_initiator() {
        let c = layer(3);
        c.record_get(LocaleId::new(1), LocaleId::new(2), 8).unwrap();
        c.record_put(LocaleId::new(1), LocaleId::new(0), 16)
            .unwrap();
        c.record_on(LocaleId::new(2), LocaleId::new(0)).unwrap();
        let l1 = c.stats_for(LocaleId::new(1));
        assert_eq!(l1.gets, 1);
        assert_eq!(l1.puts, 1);
        assert_eq!(l1.bytes_moved, 24);
        let l2 = c.stats_for(LocaleId::new(2));
        assert_eq!(l2.remote_executes, 1);
        let l0 = c.stats_for(LocaleId::new(0));
        assert_eq!(l0, CommStats::default());
    }

    #[test]
    fn total_sums_all_locales() {
        let c = layer(2);
        c.record_get(LocaleId::new(0), LocaleId::new(1), 4).unwrap();
        c.record_get(LocaleId::new(1), LocaleId::new(0), 4).unwrap();
        c.record_local(LocaleId::new(0));
        let t = c.total();
        assert_eq!(t.gets, 2);
        assert_eq!(t.local_accesses, 1);
        assert_eq!(t.remote_ops(), 2);
    }

    #[test]
    fn locality_fraction() {
        let c = layer(2);
        for _ in 0..3 {
            c.record_local(LocaleId::new(0));
        }
        c.record_get(LocaleId::new(0), LocaleId::new(1), 1).unwrap();
        assert!((c.total().locality() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn locality_with_no_traffic_is_one() {
        assert_eq!(layer(1).total().locality(), 1.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = layer(2);
        c.record_get(LocaleId::new(0), LocaleId::new(1), 4).unwrap();
        c.record_local(LocaleId::new(1));
        c.reset();
        assert_eq!(c.total(), CommStats::default());
    }

    #[test]
    fn latency_model_delays() {
        let m = LatencyModel::SpinNanos(500);
        assert_eq!(m.delay_for(0), Duration::from_nanos(500));
        let lin = LatencyModel::Linear {
            base_nanos: 100,
            per_kb_nanos: 10,
        };
        assert_eq!(lin.delay_for(0), Duration::from_nanos(100));
        assert_eq!(lin.delay_for(1), Duration::from_nanos(110));
        assert_eq!(lin.delay_for(2048), Duration::from_nanos(120));
        assert_eq!(LatencyModel::None.delay_for(1 << 20), Duration::ZERO);
    }

    #[test]
    fn spin_for_actually_waits() {
        let start = Instant::now();
        spin_for(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn send_lowers_composite_messages_to_wire_ops() {
        let c = layer(2);
        let (a, b) = (LocaleId::new(0), LocaleId::new(1));
        c.send(a, b, CommMessage::LockAcquire).unwrap();
        let s = c.stats_for(a);
        assert_eq!(s.gets, 1, "lock acquire reads the lock word");
        assert_eq!(s.puts, 1, "…and writes it back");
        assert_eq!(s.bytes_moved, 16);
        c.send(a, b, CommMessage::LockRelease).unwrap();
        assert_eq!(c.stats_for(a).puts, 2);
        assert_eq!(c.stats_for(a).bytes_moved, 24);
        c.send(
            a,
            b,
            CommMessage::Collective {
                kind: crate::transport::CollectiveKind::Reduce,
                bytes: 32,
            },
        )
        .unwrap();
        assert_eq!(c.stats_for(a).gets, 2, "a reduce leg is a GET");
    }

    #[test]
    fn stats_are_identical_across_backends() {
        let run = |kind: TransportKind| {
            let c = CommLayer::with_transport(
                3,
                LatencyModel::None,
                FaultPlan::disabled(),
                kind,
                MeshConfig::default(),
            );
            assert_eq!(c.transport().kind(), kind);
            let (a, b, z) = (LocaleId::new(0), LocaleId::new(1), LocaleId::new(2));
            c.send(a, b, CommMessage::Get { bytes: 64 }).unwrap();
            c.send(b, z, CommMessage::Put { bytes: 8 }).unwrap();
            c.send(z, a, CommMessage::RemoteExec).unwrap();
            c.send(a, z, CommMessage::LockAcquire).unwrap();
            c.record_local(a);
            (c.total(), c.fault_totals())
        };
        let shmem = run(TransportKind::Shmem);
        let mesh = run(TransportKind::Mesh);
        assert_eq!(shmem, mesh, "the facade owns accounting, not the backend");
        assert_eq!(shmem.0.gets, 2);
        assert_eq!(shmem.0.puts, 2);
        assert_eq!(shmem.0.remote_executes, 1);
        assert_eq!(shmem.0.bytes_moved, 64 + 8 + 16);
    }

    #[test]
    fn stats_add() {
        let a = CommStats {
            gets: 1,
            puts: 2,
            remote_executes: 3,
            local_accesses: 4,
            bytes_moved: 5,
        };
        let b = a;
        let s = a + b;
        assert_eq!(s.gets, 2);
        assert_eq!(s.puts, 4);
        assert_eq!(s.remote_executes, 6);
        assert_eq!(s.local_accesses, 8);
        assert_eq!(s.bytes_moved, 10);
    }
}
