#![warn(missing_docs)]

//! # rcuarray-runtime — a simulated Chapel-like multi-locale runtime
//!
//! The RCUArray paper (Jenkins, IPDPSW 2018) implements its array in the
//! Chapel language and evaluates it on a 32-node Cray XC-50. The algorithms
//! depend on a small set of runtime services rather than on Chapel itself:
//!
//! * **locales** — logical nodes of a cluster, each with its own memory;
//! * **tasks** — lightweight threads that always know which locale they are
//!   executing on, plus the `coforall loc in Locales do on loc` idiom that
//!   runs a task on every locale in parallel;
//! * **privatization** — one shallow copy of an object per locale, reachable
//!   through a privatization id (`Pid`) without communication;
//! * **communication** — implicit PUT/GET when a task touches memory that
//!   lives on another locale, and remote-execution (`on` blocks);
//! * **cluster-wide locks** and **sync variables**.
//!
//! This crate provides all of those as an in-process simulation. Locales are
//! logical; tasks are OS threads carrying a thread-local locale context; all
//! cross-locale traffic goes through an instrumented [`comm::CommLayer`]
//! which counts PUTs/GETs/remote-executions per locale pair and can inject a
//! configurable latency so that remote accesses cost more than local ones —
//! the property the paper's evaluation exercises.
//!
//! Nothing in this crate knows about RCU; it is a pure substrate. See the
//! `rcuarray` crate for the paper's contribution built on top of it.
//!
//! ## Quick tour
//!
//! ```
//! use rcuarray_runtime::{Cluster, Topology};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let cluster = Cluster::new(Topology::new(4, 2));
//! let hits = AtomicUsize::new(0);
//! // Run one task on every locale, in parallel.
//! cluster.coforall_locales(|loc| {
//!     assert_eq!(rcuarray_runtime::task::current_locale(), loc);
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 4);
//! ```

pub mod collectives;
pub mod comm;
pub mod dist;
pub mod fault;
pub mod global_lock;
pub mod locale;
pub mod membership;
pub mod privatization;
pub mod sync_var;
pub mod task;
pub mod topology;
pub mod transport;

pub use collectives::{all_reduce, broadcast, reduce, ClusterBarrier};
pub use comm::{CommLayer, CommStats, FaultStats, LatencyModel};
pub use dist::{BlockCyclicDist, BlockDist, RoundRobinCounter};
pub use fault::{CommError, FaultAction, FaultEvent, FaultPlan, OpKind, RetryPolicy};
pub use global_lock::{GlobalLock, GlobalLockGuard};
pub use locale::{Locale, LocaleId};
pub use membership::{LocaleHealth, Membership, MembershipView};
pub use privatization::{Pid, PrivHandle, PrivTable};
pub use sync_var::SyncVar;
pub use task::{current_locale, TaskScope};
pub use topology::Topology;
pub use transport::{
    CollectiveKind, CommMessage, LinkStats, MeshConfig, MeshTransport, ShmemTransport, Transport,
    TransportKind,
};

use std::sync::Arc;

/// A simulated cluster: the root object of the runtime.
///
/// A `Cluster` owns the topology (how many locales, how many tasks per
/// locale the evaluation should spawn), the communication layer, the
/// privatization table and the per-locale bookkeeping. It is always shared
/// behind an [`Arc`]; every distributed data structure in this workspace
/// holds a clone.
pub struct Cluster {
    topology: Topology,
    locales: Box<[Locale]>,
    comm: CommLayer,
    privatization: PrivTable,
    membership: Membership,
}

/// Step-by-step construction of a [`Cluster`]: topology, latency model,
/// fault plan and transport backend. Obtained from [`Cluster::builder`].
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    topology: Option<Topology>,
    latency: LatencyModel,
    fault_plan: FaultPlan,
    backend: Option<TransportKind>,
    mesh: MeshConfig,
}

impl ClusterBuilder {
    /// Set the topology (locales × tasks per locale).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Shorthand: `n` locales, one task per locale.
    pub fn locales(mut self, n: usize) -> Self {
        self.topology = Some(Topology::new(n, 1));
        self
    }

    /// Slow remote accesses down by `latency`.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Install a fault plan; without this call the cluster is fault-free.
    pub fn fault_plan(mut self, plan: fault::FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Select the transport backend. Without this call the
    /// `RCUARRAY_BACKEND` environment variable decides (default: shmem),
    /// so the whole test suite can be re-run on the mesh without touching
    /// a single call site.
    pub fn backend(mut self, kind: TransportKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Tune the mesh backend (ignored by shmem).
    pub fn mesh_config(mut self, cfg: MeshConfig) -> Self {
        self.mesh = cfg;
        self
    }

    /// Build the cluster. Defaults: 1 locale, no latency, no faults, the
    /// `RCUARRAY_BACKEND` transport (shmem when unset).
    pub fn build(self) -> Arc<Cluster> {
        let topology = self.topology.unwrap_or_else(|| Topology::new(1, 1));
        let n = topology.num_locales();
        assert!(
            n <= fault::MAX_FAULT_LOCALES,
            "fault tracking supports at most {} locales",
            fault::MAX_FAULT_LOCALES
        );
        let locales = (0..n)
            .map(|i| Locale::new(LocaleId::new(i as u32)))
            .collect();
        let backend = self.backend.unwrap_or_else(TransportKind::from_env);
        Arc::new(Cluster {
            locales,
            comm: CommLayer::with_transport(n, self.latency, self.fault_plan, backend, self.mesh),
            privatization: PrivTable::new(),
            topology,
            membership: Membership::new(n),
        })
    }
}

impl Cluster {
    /// Start building a cluster (topology / latency / fault plan).
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Create a cluster with the given topology and no injected
    /// communication latency.
    pub fn new(topology: Topology) -> Arc<Self> {
        Self::with_latency(topology, LatencyModel::None)
    }

    /// Create a cluster whose remote accesses are slowed by `latency`.
    pub fn with_latency(topology: Topology, latency: LatencyModel) -> Arc<Self> {
        Self::builder().topology(topology).latency(latency).build()
    }

    /// Convenience constructor: `n` locales, one task per locale.
    pub fn with_locales(n: usize) -> Arc<Self> {
        Self::new(Topology::new(n, 1))
    }

    /// The cluster topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of locales in the cluster.
    #[inline]
    pub fn num_locales(&self) -> usize {
        self.topology.num_locales()
    }

    /// All locales, in id order.
    #[inline]
    pub fn locales(&self) -> &[Locale] {
        &self.locales
    }

    /// One locale by id. Panics if out of range.
    #[inline]
    pub fn locale(&self, id: LocaleId) -> &Locale {
        &self.locales[id.index()]
    }

    /// The communication layer (counters + latency injection).
    #[inline]
    pub fn comm(&self) -> &CommLayer {
        &self.comm
    }

    /// The privatization table.
    #[inline]
    pub fn privatization(&self) -> &PrivTable {
        &self.privatization
    }

    /// The installed fault plan (disabled unless built with one).
    #[inline]
    pub fn fault(&self) -> &FaultPlan {
        self.comm.fault()
    }

    /// Which transport backend this cluster's communication rides on.
    #[inline]
    pub fn backend(&self) -> TransportKind {
        self.comm.transport().kind()
    }

    /// The membership detector (everyone `Up` until probes say otherwise).
    #[inline]
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Run one heartbeat round from the current task's locale: send a
    /// 1-byte probe to every other locale through the comm facade (so
    /// probes experience the same faults, partitions and latency as data
    /// traffic) and feed the outcomes to the failure detector. Returns
    /// the resulting view.
    ///
    /// Detection only advances when this is called — there is no
    /// background prober, which keeps detector timing deterministic
    /// under a seeded [`FaultPlan`].
    pub fn probe_membership(&self) -> MembershipView {
        let observer = task::current_locale();
        for i in 0..self.num_locales() {
            let target = LocaleId::new(i as u32);
            if target == observer {
                // The observer is trivially reachable from itself; a
                // probe round is also proof of life for a rejoining
                // observer's own detector entry.
                self.membership.record_probe(target, true);
                continue;
            }
            let answered = self
                .comm
                .send(observer, target, CommMessage::Put { bytes: 1 })
                .is_ok();
            self.membership.record_probe(target, answered);
        }
        self.membership.view()
    }

    /// Send one typed message from the current task's locale to `target`
    /// through the comm facade. A message to the task's own locale is a
    /// no-op (nothing crosses a link, nothing is charged).
    ///
    /// This is the front door the upper layers use for composite traffic
    /// (lock acquisition, collective legs, service dispatch); plain data
    /// movement usually reads better as
    /// [`try_get_from`](Self::try_get_from)/[`try_put_to`](Self::try_put_to).
    #[inline]
    pub fn send_to(&self, target: LocaleId, msg: CommMessage) -> Result<(), CommError> {
        let from = task::current_locale();
        if from == target {
            return Ok(());
        }
        self.comm.send(from, target, msg)
    }

    /// Charge a `bytes`-byte transfer between two locales, initiated by
    /// `from` (a third-party copy, e.g. resize replication moving a block
    /// from its old home to its new one). Equal endpoints are a no-op.
    #[inline]
    pub fn copy_between(
        &self,
        from: LocaleId,
        to: LocaleId,
        bytes: usize,
    ) -> Result<(), CommError> {
        if from == to {
            return Ok(());
        }
        self.comm.send(from, to, CommMessage::Put { bytes })
    }

    /// Execute `f` "on" locale `target`, like Chapel's `on` statement.
    ///
    /// The closure runs on the current OS thread, but the task-local locale
    /// context is switched to `target` for its duration and a
    /// remote-execution is recorded (and delayed, under a latency model)
    /// when `target` differs from the calling task's locale.
    ///
    /// This path is fault-oblivious: an injected failure is charged to the
    /// accounting but the execution proceeds (legacy callers predate the
    /// fault layer). Fault-aware code uses [`try_on`](Self::try_on).
    pub fn on<R>(&self, target: LocaleId, f: impl FnOnce() -> R) -> R {
        let from = task::current_locale();
        if from != target {
            let _ = self.comm.record_on(from, target);
        }
        task::with_locale(target, f)
    }

    /// Fallible [`on`](Self::on): when the fault plan fails the remote
    /// execution, `f` does not run and the error is returned.
    pub fn try_on<R>(&self, target: LocaleId, f: impl FnOnce() -> R) -> Result<R, CommError> {
        let from = task::current_locale();
        if from != target {
            self.comm.record_on(from, target)?;
        }
        Ok(task::with_locale(target, f))
    }

    /// Run `f(locale)` once per locale, in parallel, waiting for all tasks —
    /// Chapel's `coforall loc in Locales do on loc`.
    pub fn coforall_locales<F>(&self, f: F)
    where
        F: Fn(LocaleId) + Sync,
    {
        let n = self.num_locales();
        if n == 1 {
            // Degenerate cluster: run inline, as Chapel's compiler also
            // elides the task spawn for a single-iteration coforall.
            task::with_locale(LocaleId::ZERO, || f(LocaleId::ZERO));
            return;
        }
        std::thread::scope(|s| {
            for i in 0..n {
                let loc = LocaleId::new(i as u32);
                let f = &f;
                s.spawn(move || task::with_locale(loc, || f(loc)));
            }
        });
    }

    /// Spawn `tasks_per_locale` tasks on every locale (the benchmark shape
    /// used throughout the paper's evaluation: "44 tasks per locale") and
    /// wait for all of them. `f` receives `(locale, task index on locale)`.
    pub fn forall_tasks<F>(&self, f: F)
    where
        F: Fn(LocaleId, usize) + Sync,
    {
        let per = self.topology.tasks_per_locale();
        self.spawn_tasks(per, f);
    }

    /// Spawn exactly `per_locale` tasks on every locale and wait for all.
    pub fn spawn_tasks<F>(&self, per_locale: usize, f: F)
    where
        F: Fn(LocaleId, usize) + Sync,
    {
        let n = self.num_locales();
        std::thread::scope(|s| {
            for i in 0..n {
                for t in 0..per_locale {
                    let loc = LocaleId::new(i as u32);
                    let f = &f;
                    s.spawn(move || task::with_locale(loc, || f(loc, t)));
                }
            }
        });
    }

    /// Record (and delay) a GET of `bytes` bytes by the current task from
    /// memory homed on `owner`. No-op accounting-wise when local.
    ///
    /// Fault-oblivious (failures are charged but swallowed); fault-aware
    /// code uses [`try_get_from`](Self::try_get_from).
    #[inline]
    pub fn get_from(&self, owner: LocaleId, bytes: usize) {
        let _ = self.try_get_from(owner, bytes);
    }

    /// Record (and delay) a PUT of `bytes` bytes by the current task into
    /// memory homed on `owner`. No-op accounting-wise when local.
    ///
    /// Fault-oblivious (failures are charged but swallowed); fault-aware
    /// code uses [`try_put_to`](Self::try_put_to).
    #[inline]
    pub fn put_to(&self, owner: LocaleId, bytes: usize) {
        let _ = self.try_put_to(owner, bytes);
    }

    /// Fallible [`get_from`](Self::get_from): fails when the fault plan
    /// drops the GET. Local accesses never fail.
    #[inline]
    pub fn try_get_from(&self, owner: LocaleId, bytes: usize) -> Result<(), CommError> {
        let from = task::current_locale();
        if from != owner {
            self.comm.record_get(from, owner, bytes)
        } else {
            self.comm.record_local(from);
            Ok(())
        }
    }

    /// Fallible [`put_to`](Self::put_to): fails when the fault plan drops
    /// the PUT. Local accesses never fail.
    #[inline]
    pub fn try_put_to(&self, owner: LocaleId, bytes: usize) -> Result<(), CommError> {
        let from = task::current_locale();
        if from != owner {
            self.comm.record_put(from, owner, bytes)
        } else {
            self.comm.record_local(from);
            Ok(())
        }
    }

    /// Aggregate communication statistics across all locales.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.total()
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("topology", &self.topology)
            .field("comm", &self.comm.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cluster_reports_topology() {
        let c = Cluster::new(Topology::new(8, 4));
        assert_eq!(c.num_locales(), 8);
        assert_eq!(c.topology().tasks_per_locale(), 4);
        assert_eq!(c.locales().len(), 8);
    }

    #[test]
    fn coforall_visits_every_locale_once() {
        let c = Cluster::with_locales(6);
        let seen: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        c.coforall_locales(|loc| {
            seen[loc.index()].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn forall_tasks_spawns_tasks_per_locale() {
        let c = Cluster::new(Topology::new(3, 5));
        let count = AtomicUsize::new(0);
        c.forall_tasks(|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn on_switches_locale_context_and_counts_remote_execute() {
        let c = Cluster::with_locales(4);
        task::with_locale(LocaleId::new(0), || {
            c.on(LocaleId::new(3), || {
                assert_eq!(current_locale(), LocaleId::new(3));
            });
            assert_eq!(current_locale(), LocaleId::new(0));
        });
        assert_eq!(c.comm_stats().remote_executes, 1);
    }

    #[test]
    fn on_same_locale_is_not_remote() {
        let c = Cluster::with_locales(2);
        task::with_locale(LocaleId::new(1), || {
            c.on(LocaleId::new(1), || {});
        });
        assert_eq!(c.comm_stats().remote_executes, 0);
    }

    #[test]
    fn get_put_accounting_distinguishes_local_and_remote() {
        let c = Cluster::with_locales(2);
        task::with_locale(LocaleId::new(0), || {
            c.get_from(LocaleId::new(1), 8);
            c.put_to(LocaleId::new(1), 8);
            c.get_from(LocaleId::new(0), 8);
        });
        let s = c.comm_stats();
        assert_eq!(s.gets, 1);
        assert_eq!(s.puts, 1);
        assert_eq!(s.local_accesses, 1);
        assert_eq!(s.bytes_moved, 16);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let d = Cluster::builder().build();
        assert_eq!(d.num_locales(), 1);
        assert!(!d.fault().is_enabled());
        let c = Cluster::builder()
            .locales(3)
            .latency(LatencyModel::SpinNanos(1))
            .fault_plan(FaultPlan::new(11).fail_gets(1.0))
            .build();
        assert_eq!(c.num_locales(), 3);
        assert_eq!(c.comm().latency_model(), LatencyModel::SpinNanos(1));
        assert!(c.fault().is_enabled());
    }

    #[test]
    fn try_ops_fail_under_full_fault_plan_and_legacy_ops_swallow() {
        let c = Cluster::builder()
            .locales(2)
            .fault_plan(FaultPlan::new(2).fail_all(1.0))
            .build();
        task::with_locale(LocaleId::ZERO, || {
            let other = LocaleId::new(1);
            assert!(c.try_get_from(other, 8).is_err());
            assert!(c.try_put_to(other, 8).is_err());
            assert!(c.try_on(other, || unreachable!("must not run")).is_err());
            // Local traffic never faults.
            assert!(c.try_get_from(LocaleId::ZERO, 8).is_ok());
            // Legacy paths complete, charging the failure to the initiator.
            c.get_from(other, 8);
            c.put_to(other, 8);
            let mut ran = false;
            c.on(other, || ran = true);
            assert!(ran, "fault-oblivious on still executes");
        });
        let f = c.comm().fault_stats_for(LocaleId::ZERO);
        assert_eq!(f.gets_failed, 2);
        assert_eq!(f.puts_failed, 2);
        assert_eq!(f.ons_failed, 2);
        assert_eq!(c.comm_stats().remote_ops(), 0, "nothing completed");
    }

    #[test]
    fn probe_rounds_drive_detection_and_heal_through_rejoin() {
        let c = Cluster::builder()
            .locales(3)
            .fault_plan(FaultPlan::new(5))
            .build();
        assert_eq!(c.probe_membership().num_members(), 3, "healthy cluster");
        c.fault().set_down(LocaleId::new(2), true);
        let v1 = c.probe_membership(); // miss 1 → Suspect (still a member)
        assert_eq!(
            v1.health(LocaleId::new(2)),
            membership::LocaleHealth::Suspect
        );
        assert!(v1.in_view(LocaleId::new(2)));
        let v2 = c.probe_membership(); // miss 2 → Down (evicted)
        assert_eq!(v2.health(LocaleId::new(2)), membership::LocaleHealth::Down);
        assert_eq!(v2.members(), vec![LocaleId::new(0), LocaleId::new(1)]);
        assert!(v2.epoch() > v1.epoch());
        // Heal the locale: reachable again means Rejoining, not Up.
        c.fault().set_down(LocaleId::new(2), false);
        let v3 = c.probe_membership();
        assert_eq!(
            v3.health(LocaleId::new(2)),
            membership::LocaleHealth::Rejoining
        );
        assert!(!v3.in_view(LocaleId::new(2)));
        c.membership().mark_caught_up(LocaleId::new(2));
        assert!(c.membership().is_up(LocaleId::new(2)));
        assert_eq!(c.membership().view().num_members(), 3);
    }

    #[test]
    fn probes_ride_the_comm_facade_and_are_charged() {
        let c = Cluster::builder().locales(2).build();
        let before = c.comm_stats();
        task::with_locale(LocaleId::ZERO, || {
            c.probe_membership();
        });
        let after = c.comm_stats();
        assert_eq!(after.puts, before.puts + 1, "one heartbeat per peer");
        assert_eq!(after.bytes_moved, before.bytes_moved + 1);
    }

    #[test]
    fn nested_on_restores_context() {
        let c = Cluster::with_locales(3);
        task::with_locale(LocaleId::new(0), || {
            c.on(LocaleId::new(1), || {
                c.on(LocaleId::new(2), || {
                    assert_eq!(current_locale(), LocaleId::new(2));
                });
                assert_eq!(current_locale(), LocaleId::new(1));
            });
            assert_eq!(current_locale(), LocaleId::new(0));
        });
    }
}
