//! Cluster shape: number of locales and tasks per locale.
//!
//! The paper's evaluation ran on "a subset of a Cray XC-50 cluster totaling
//! 32 nodes, each node running Intel Xeon Broadwell 44-core processors" with
//! "44 tasks per locale". [`Topology`] captures exactly those two knobs so
//! the benchmark harness can sweep them the way the figures' x-axes do.

/// The shape of a simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    num_locales: usize,
    tasks_per_locale: usize,
}

impl Topology {
    /// A topology with `num_locales` logical nodes and `tasks_per_locale`
    /// benchmark tasks on each.
    ///
    /// # Panics
    /// Panics if either argument is zero (a cluster always has at least one
    /// locale running at least one task).
    pub fn new(num_locales: usize, tasks_per_locale: usize) -> Self {
        assert!(num_locales > 0, "a cluster needs at least one locale");
        assert!(tasks_per_locale > 0, "each locale needs at least one task");
        assert!(num_locales <= u32::MAX as usize, "locale ids are 32-bit");
        Topology {
            num_locales,
            tasks_per_locale,
        }
    }

    /// The paper's testbed shape: 32 locales, 44 tasks per locale.
    ///
    /// On most development machines this oversubscribes wildly; it exists so
    /// the harness can name the original configuration.
    pub fn paper_testbed() -> Self {
        Topology::new(32, 44)
    }

    /// A shape scaled to the current host: `num_locales` locales and
    /// `max(1, available_parallelism / num_locales)` tasks per locale.
    pub fn scaled_to_host(num_locales: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Topology::new(num_locales, (cores / num_locales).max(1))
    }

    /// Number of locales (nodes).
    #[inline]
    pub fn num_locales(&self) -> usize {
        self.num_locales
    }

    /// Benchmark tasks to spawn on each locale.
    #[inline]
    pub fn tasks_per_locale(&self) -> usize {
        self.tasks_per_locale
    }

    /// Total task count across the cluster.
    #[inline]
    pub fn total_tasks(&self) -> usize {
        self.num_locales * self.tasks_per_locale
    }
}

impl Default for Topology {
    /// A single locale running a single task: the degenerate shared-memory
    /// case.
    fn default() -> Self {
        Topology::new(1, 1)
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} locale(s) x {} task(s)",
            self.num_locales, self.tasks_per_locale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tasks_is_product() {
        let t = Topology::new(4, 11);
        assert_eq!(t.total_tasks(), 44);
    }

    #[test]
    fn paper_testbed_matches_the_paper() {
        let t = Topology::paper_testbed();
        assert_eq!(t.num_locales(), 32);
        assert_eq!(t.tasks_per_locale(), 44);
        assert_eq!(t.total_tasks(), 1408);
    }

    #[test]
    #[should_panic(expected = "at least one locale")]
    fn zero_locales_rejected() {
        let _ = Topology::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_rejected() {
        let _ = Topology::new(1, 0);
    }

    #[test]
    fn scaled_to_host_never_zero() {
        let t = Topology::scaled_to_host(64);
        assert!(t.tasks_per_locale() >= 1);
    }

    #[test]
    fn default_is_one_by_one() {
        assert_eq!(Topology::default(), Topology::new(1, 1));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Topology::new(2, 3).to_string(), "2 locale(s) x 3 task(s)");
    }
}
