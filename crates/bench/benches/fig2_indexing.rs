//! Figures 2a–2d: random/sequential indexing throughput across locale
//! counts for EBRArray, QSBRArray, ChapelArray (and SyncArray for the
//! 1024-op variants, exactly as the paper includes it only there).
//!
//! Parameters are scaled down from the paper's (1M ops/task, 44
//! tasks/locale, 32 locales) so a laptop regenerates the *shape* in
//! minutes; `paper_tables --full` runs the paper-sized sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcuarray_bench::arrays::{make_array, ArrayKind};
use rcuarray_bench::runner::{run_indexing, IndexingParams};
use rcuarray_bench::workload::IndexPattern;
use rcuarray_runtime::{Cluster, Topology};
use std::time::Duration;

const TASKS_PER_LOCALE: usize = 2;
const LOCALES: [usize; 3] = [1, 2, 4];
const CAPACITY: usize = 1 << 16;

fn bench_variant(c: &mut Criterion, fig: &str, pattern: IndexPattern, ops: usize, sync: bool) {
    let mut group = c.benchmark_group(fig);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for locales in LOCALES {
        let cluster = Cluster::new(Topology::new(locales, TASKS_PER_LOCALE));
        let total_ops = (locales * TASKS_PER_LOCALE * ops) as u64;
        group.throughput(Throughput::Elements(total_ops));
        let kinds: Vec<ArrayKind> = ArrayKind::PAPER
            .into_iter()
            .filter(|k| sync || *k != ArrayKind::Sync)
            .collect();
        for kind in kinds {
            let array = make_array(kind, &cluster, 1024);
            array.resize(CAPACITY);
            let params = IndexingParams {
                tasks_per_locale: TASKS_PER_LOCALE,
                ops_per_task: ops,
                pattern,
                capacity: CAPACITY,
                checkpoint_every: None,
                read_percent: 0,
                seed: 42,
            };
            group.bench_with_input(BenchmarkId::new(kind.label(), locales), &locales, |b, _| {
                b.iter(|| run_indexing(array.as_ref(), &cluster, &params));
            });
        }
    }
    group.finish();
}

fn fig2a(c: &mut Criterion) {
    bench_variant(c, "fig2a_random_1024", IndexPattern::Random, 1024, true);
}

fn fig2b(c: &mut Criterion) {
    bench_variant(
        c,
        "fig2b_sequential_1024",
        IndexPattern::Sequential,
        1024,
        true,
    );
}

fn fig2c(c: &mut Criterion) {
    bench_variant(c, "fig2c_random_big", IndexPattern::Random, 16_384, false);
}

fn fig2d(c: &mut Criterion) {
    bench_variant(
        c,
        "fig2d_sequential_big",
        IndexPattern::Sequential,
        16_384,
        false,
    );
}

criterion_group!(fig2, fig2a, fig2b, fig2c, fig2d);
criterion_main!(fig2);
