//! Ablation: memory ordering of the EpochReaders protocol.
//!
//! §V-B blames EBR's cost on "the contention and sequential consistency
//! memory ordering of the Fetch-And-Add and Fetch-And-Sub atomic
//! operations on the EpochReaders counters". This bench separates the two
//! factors: pin/unpin cycles under `SeqCst` vs `AcqRel`+fence vs the
//! unsound-but-instructive `Relaxed` lower bound, uncontended and
//! contended.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcuarray_ebr::{EpochZone, OrderingMode, ShardedEpochZone};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn modes() -> [(&'static str, OrderingMode); 3] {
    [
        ("seqcst", OrderingMode::SeqCst),
        ("acqrel_fence", OrderingMode::AcqRelFence),
        ("relaxed_unsound", OrderingMode::Relaxed),
    ]
}

fn uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering_pin_unpin_uncontended");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, mode) in modes() {
        let zone = EpochZone::with_mode(mode);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let t = zone.pin();
                std::hint::black_box(&t);
                zone.unpin(t);
            });
        });
    }
    group.finish();
}

fn contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering_pin_unpin_contended");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, mode) in modes() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_custom(|iters| {
                let zone = EpochZone::with_mode(mode);
                let stop = AtomicBool::new(false);
                let mut elapsed = Duration::ZERO;
                std::thread::scope(|s| {
                    // Two background readers keep the counters hot.
                    for _ in 0..2 {
                        let zone = &zone;
                        let stop = &stop;
                        s.spawn(move || {
                            while !stop.load(Ordering::Relaxed) {
                                let t = zone.pin();
                                zone.unpin(t);
                            }
                        });
                    }
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        let t = zone.pin();
                        zone.unpin(t);
                    }
                    elapsed = start.elapsed();
                    stop.store(true, Ordering::Relaxed);
                });
                elapsed
            });
        });
    }
    group.finish();
}

/// The future-work sharded zone vs the base two-counter zone, contended:
/// readers spread across shard cache lines; the writer pays a longer scan.
fn sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_vs_base_contended");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for shards in [1usize, 4, 16] {
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter_custom(|iters| {
                let zone = ShardedEpochZone::new(shards);
                let stop = AtomicBool::new(false);
                let mut elapsed = Duration::ZERO;
                std::thread::scope(|s| {
                    for _ in 0..2 {
                        let zone = &zone;
                        let stop = &stop;
                        s.spawn(move || {
                            while !stop.load(Ordering::Relaxed) {
                                let t = zone.pin();
                                zone.unpin(t);
                            }
                        });
                    }
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        let t = zone.pin();
                        zone.unpin(t);
                    }
                    elapsed = start.elapsed();
                    stop.store(true, Ordering::Relaxed);
                });
                elapsed
            });
        });
    }
    group.finish();
}

criterion_group!(ordering_group, uncontended, contended, sharded);
criterion_main!(ordering_group);
