//! Ablation: the reclamation-scheme zoo.
//!
//! The same read/update workload across every variant this workspace
//! implements — EBR, QSBR, unsynchronized, sync-variable lock,
//! reader-writer lock, hazard pointers and the Dechev lock-free vector —
//! quantifying §I's qualitative comparison of synchronization strategies
//! on one data structure and one workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcuarray_bench::arrays::{make_array_config, ArrayKind};
use rcuarray_bench::runner::{run_indexing, IndexingParams};
use rcuarray_bench::workload::IndexPattern;
use rcuarray_ebr::OrderingMode;
use rcuarray_runtime::{Cluster, Topology};
use std::time::Duration;

const CAPACITY: usize = 1 << 16;
const OPS: usize = 8192;

fn zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("reclaimer_zoo_random_updates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for locales in [1usize, 2] {
        let cluster = Cluster::new(Topology::new(locales, 2));
        group.throughput(Throughput::Elements((locales * 2 * OPS) as u64));
        for kind in ArrayKind::ALL {
            // SyncArray at full op count is painfully slow by design;
            // shorten it so the bench suite stays usable.
            let ops = if kind == ArrayKind::Sync {
                OPS / 8
            } else {
                OPS
            };
            let array = make_array_config(kind, &cluster, 1024, false, OrderingMode::SeqCst);
            array.resize(CAPACITY);
            let params = IndexingParams {
                tasks_per_locale: 2,
                ops_per_task: ops,
                pattern: IndexPattern::Random,
                capacity: CAPACITY,
                checkpoint_every: None,
                read_percent: 0,
                seed: 42,
            };
            group.bench_with_input(BenchmarkId::new(kind.label(), locales), &locales, |b, _| {
                b.iter(|| run_indexing(array.as_ref(), &cluster, &params));
            });
        }
    }
    group.finish();
}

criterion_group!(zoo_group, zoo);
criterion_main!(zoo_group);
