//! Figure 4: QSBR checkpoint overhead. One locale, sequential updates,
//! a checkpoint every N operations, with EBRArray's throughput as the
//! flat baseline the paper overlays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcuarray_bench::arrays::{make_array, ArrayKind};
use rcuarray_bench::runner::{run_indexing, IndexingParams};
use rcuarray_bench::workload::IndexPattern;
use rcuarray_runtime::{Cluster, Topology};
use std::time::Duration;

const TASKS: usize = 2;
const OPS: usize = 16_384;
const CAPACITY: usize = 1 << 16;

fn params(checkpoint_every: Option<usize>) -> IndexingParams {
    IndexingParams {
        tasks_per_locale: TASKS,
        ops_per_task: OPS,
        pattern: IndexPattern::Sequential,
        capacity: CAPACITY,
        checkpoint_every,
        read_percent: 0,
        seed: 42,
    }
}

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_checkpoint_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements((TASKS * OPS) as u64));
    let cluster = Cluster::new(Topology::new(1, TASKS));

    for every in [1usize, 16, 256, 4096, OPS] {
        let array = make_array(ArrayKind::Qsbr, &cluster, 1024);
        array.resize(CAPACITY);
        group.bench_with_input(BenchmarkId::new("qsbr", every), &every, |b, &every| {
            b.iter(|| run_indexing(array.as_ref(), &cluster, &params(Some(every))));
        });
    }

    // EBR baseline: no checkpoints exist; its protocol cost is per-read.
    let ebr = make_array(ArrayKind::Ebr, &cluster, 1024);
    ebr.resize(CAPACITY);
    group.bench_function("ebr_baseline", |b| {
        b.iter(|| run_indexing(ebr.as_ref(), &cluster, &params(None)));
    });

    group.finish();
}

criterion_group!(fig4_group, fig4);
criterion_main!(fig4_group);
