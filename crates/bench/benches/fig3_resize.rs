//! Figure 3: incremental resizes (paper: 1024 resizes of +1024 elements,
//! zero capacity to ~1M). RCUArray's recycling clone avoids ChapelArray's
//! deep copy, which is where its >4x advantage comes from.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rcuarray_bench::arrays::{make_array, ArrayKind};
use rcuarray_bench::runner::{run_resize, ResizeParams};
use rcuarray_runtime::{Cluster, Topology};
use std::time::Duration;

/// Scaled: 128 resizes of +1024 per measured iteration.
const INCREMENTS: usize = 128;
const INCREMENT: usize = 1024;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_resize");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(INCREMENTS as u64));
    for locales in [1usize, 2, 4] {
        let cluster = Cluster::new(Topology::new(locales, 1));
        for kind in [ArrayKind::Ebr, ArrayKind::Qsbr, ArrayKind::Chapel] {
            group.bench_with_input(BenchmarkId::new(kind.label(), locales), &locales, |b, _| {
                b.iter_batched(
                    || make_array(kind, &cluster, INCREMENT),
                    |array| {
                        run_resize(
                            array.as_ref(),
                            &ResizeParams {
                                increments: INCREMENTS,
                                increment: INCREMENT,
                            },
                        )
                    },
                    BatchSize::PerIteration,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(fig3_group, fig3);
criterion_main!(fig3_group);
