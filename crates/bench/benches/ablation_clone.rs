//! Ablation: block *recycling* vs *deep copy* when cloning a snapshot.
//!
//! §III-C claims "recycling blocks of memory proves to be significantly
//! faster than copying by value into larger memory". This bench measures
//! both strategies on the same snapshot as the block count grows: the
//! recycling clone copies one pointer per block, the deep-copy clone
//! allocates fresh blocks and copies every element value (what a
//! Chapel-style realloc does).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcuarray::{Block, BlockRegistry, Snapshot};
use rcuarray_runtime::LocaleId;
use std::time::Duration;

const BLOCK_SIZE: usize = 1024;

fn build_snapshot(registry: &BlockRegistry<u64>, blocks: usize) -> Snapshot<u64> {
    let refs: Vec<_> = (0..blocks)
        .map(|i| registry.adopt(Block::new(LocaleId::new((i % 4) as u32), BLOCK_SIZE)))
        .collect();
    Snapshot::from_blocks(refs, 0)
}

/// The deep-copy alternative: new blocks, every value copied.
fn clone_deep(registry: &BlockRegistry<u64>, snap: &Snapshot<u64>) -> Snapshot<u64> {
    let refs: Vec<_> = snap
        .blocks()
        .iter()
        .map(|old| {
            // SAFETY: registry-owned blocks, alive for the bench.
            let old = unsafe { old.get() };
            let new = Block::new(old.home(), old.capacity());
            new.copy_from(old);
            registry.adopt(new)
        })
        .collect();
    Snapshot::from_blocks(refs, snap.version() + 1)
}

fn ablation_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_clone_recycle_vs_deepcopy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for blocks in [16usize, 128, 1024] {
        group.throughput(Throughput::Elements((blocks * BLOCK_SIZE) as u64));
        let registry = BlockRegistry::new();
        let snap = build_snapshot(&registry, blocks);

        group.bench_with_input(BenchmarkId::new("recycle", blocks), &blocks, |b, _| {
            b.iter(|| std::hint::black_box(snap.clone_recycled(&[])));
        });

        // Deep copy adopts blocks into a scratch registry per iteration so
        // memory is bounded; the adopt cost is itself part of what a
        // reallocating array pays.
        group.bench_with_input(BenchmarkId::new("deep_copy", blocks), &blocks, |b, _| {
            b.iter_with_large_drop(|| {
                let scratch = BlockRegistry::new();
                clone_deep(&scratch, &snap)
            });
        });
    }
    group.finish();
}

criterion_group!(clone_group, ablation_clone);
criterion_main!(clone_group);
