//! Ablation: the `BlockSize` constant.
//!
//! Small blocks mean finer-grained distribution and cheaper resize
//! increments but more blocks per snapshot (bigger clones); large blocks
//! amortize metadata but coarsen placement. The paper fixes
//! BlockSize = 1024; this bench shows the trade-off curve.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rcuarray::{Config, QsbrArray};
use rcuarray_bench::runner::{run_indexing, run_resize, IndexingParams, ResizeParams};
use rcuarray_bench::workload::IndexPattern;
use rcuarray_runtime::{Cluster, Topology};
use std::time::Duration;

const CAPACITY: usize = 1 << 16;

fn reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocksize_random_updates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let cluster = Cluster::new(Topology::new(2, 2));
    for bs in [64usize, 256, 1024, 4096] {
        let array = QsbrArray::<u64>::with_config(
            &cluster,
            Config {
                block_size: bs,
                account_comm: false,
                ..Config::default()
            },
        );
        array.resize(CAPACITY);
        let params = IndexingParams {
            tasks_per_locale: 2,
            ops_per_task: 8192,
            pattern: IndexPattern::Random,
            capacity: CAPACITY,
            checkpoint_every: None,
            read_percent: 0,
            seed: 42,
        };
        group.throughput(Throughput::Elements((2 * 2 * 8192) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, _| {
            b.iter(|| run_indexing(&array, &cluster, &params));
        });
    }
    group.finish();
}

fn resizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocksize_resize_to_64k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let cluster = Cluster::new(Topology::new(2, 1));
    for bs in [64usize, 256, 1024, 4096] {
        // Same total growth, increment = one block.
        let increments = CAPACITY / bs;
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter_batched(
                || {
                    QsbrArray::<u64>::with_config(
                        &cluster,
                        Config {
                            block_size: bs,
                            account_comm: false,
                            ..Config::default()
                        },
                    )
                },
                |array| {
                    run_resize(
                        &array,
                        &ResizeParams {
                            increments,
                            increment: bs,
                        },
                    )
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(blocksize_group, reads, resizes);
criterion_main!(blocksize_group);
