//! Ablation: sensitivity to injected remote-access latency.
//!
//! The simulated network charges remote PUT/GET through a configurable
//! latency model. Sweeping it shows how the gap between the privatized
//! RCUArray (mostly node-local metadata, block-cyclic data) and the
//! lock-based baselines widens as remote operations get more expensive —
//! the effect that dominates the paper's 32-node Aries numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcuarray_bench::arrays::{make_array, ArrayKind};
use rcuarray_bench::runner::{run_indexing, IndexingParams};
use rcuarray_bench::workload::IndexPattern;
use rcuarray_runtime::{Cluster, LatencyModel, Topology};
use std::time::Duration;

const CAPACITY: usize = 1 << 14;
const OPS: usize = 2048;

fn latency_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_latency_sensitivity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for latency_ns in [0u64, 200, 1000] {
        let model = if latency_ns == 0 {
            LatencyModel::None
        } else {
            LatencyModel::SpinNanos(latency_ns)
        };
        let cluster = Cluster::with_latency(Topology::new(2, 2), model);
        group.throughput(Throughput::Elements((2 * 2 * OPS) as u64));
        for kind in [ArrayKind::Qsbr, ArrayKind::Sync] {
            let array = make_array(kind, &cluster, 1024);
            array.resize(CAPACITY);
            let params = IndexingParams {
                tasks_per_locale: 2,
                ops_per_task: OPS,
                pattern: IndexPattern::Random,
                capacity: CAPACITY,
                checkpoint_every: None,
                read_percent: 0,
                seed: 42,
            };
            group.bench_with_input(
                BenchmarkId::new(kind.label(), latency_ns),
                &latency_ns,
                |b, _| {
                    b.iter(|| run_indexing(array.as_ref(), &cluster, &params));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(comm_group, latency_sweep);
criterion_main!(comm_group);
