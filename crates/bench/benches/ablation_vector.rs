//! Ablation: growable-vector designs — the paper's §VI "distributed
//! vector" on the RCUArray backbone vs the §II related-work Dechev
//! lock-free vector vs a mutex-protected `Vec`.
//!
//! Three shapes: pure concurrent pushes (growth-heavy), pure indexed
//! reads on a grown vector, and a mixed push+read workload.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use parking_lot::Mutex;
use rcuarray::Config;
use rcuarray_baselines::LockFreeVector;
use rcuarray_collections::DistVector;
use rcuarray_runtime::{Cluster, Topology};
use std::sync::Arc;
use std::time::Duration;

const PUSHES: usize = 4096;
const THREADS: usize = 2;

/// Uniform driver over the three vector designs.
trait Vecish: Send + Sync {
    fn push(&self, v: u64);
    fn get(&self, i: usize) -> u64;
    fn len(&self) -> usize;
}

impl Vecish for DistVector<u64> {
    fn push(&self, v: u64) {
        DistVector::push(self, v);
    }
    fn get(&self, i: usize) -> u64 {
        DistVector::get(self, i)
    }
    fn len(&self) -> usize {
        DistVector::len(self)
    }
}

impl Vecish for LockFreeVector<u64> {
    fn push(&self, v: u64) {
        self.push_back(v);
    }
    fn get(&self, i: usize) -> u64 {
        self.read(i)
    }
    fn len(&self) -> usize {
        LockFreeVector::len(self)
    }
}

struct MutexVec(Mutex<Vec<u64>>);

impl Vecish for MutexVec {
    fn push(&self, v: u64) {
        self.0.lock().push(v);
    }
    fn get(&self, i: usize) -> u64 {
        self.0.lock()[i]
    }
    fn len(&self) -> usize {
        self.0.lock().len()
    }
}

fn designs(cluster: &Arc<Cluster>) -> Vec<(&'static str, Box<dyn Vecish>)> {
    let cfg = Config {
        block_size: 256,
        account_comm: false,
        ..Config::default()
    };
    vec![
        (
            "DistVector",
            Box::new(DistVector::<u64>::with_config(cluster, cfg)) as Box<dyn Vecish>,
        ),
        ("LockFreeVec", Box::new(LockFreeVector::<u64>::new())),
        ("MutexVec", Box::new(MutexVec(Mutex::new(Vec::new())))),
    ]
}

fn concurrent_pushes(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_concurrent_push");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements((PUSHES * THREADS) as u64));
    let cluster = Cluster::new(Topology::new(2, 1));
    for name in ["DistVector", "LockFreeVec", "MutexVec"] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    designs(&cluster)
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .expect("known design")
                        .1
                },
                |v| {
                    std::thread::scope(|s| {
                        for t in 0..THREADS as u64 {
                            let v = &v;
                            s.spawn(move || {
                                for k in 0..PUSHES as u64 {
                                    v.push(t * PUSHES as u64 + k);
                                }
                            });
                        }
                    });
                    assert_eq!(v.len(), PUSHES * THREADS);
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn indexed_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_indexed_read");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    const READS: usize = 16_384;
    group.throughput(Throughput::Elements(READS as u64));
    let cluster = Cluster::new(Topology::new(2, 1));
    for (name, v) in designs(&cluster) {
        for k in 0..PUSHES as u64 {
            v.push(k);
        }
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..READS {
                    acc = acc.wrapping_add(v.get(i % PUSHES));
                }
                std::hint::black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(vector_group, concurrent_pushes, indexed_reads);
criterion_main!(vector_group);
