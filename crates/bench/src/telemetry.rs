//! Bench-integrated telemetry: background sampling of reclamation gauges
//! during a workload, and the `BENCH_<workload>.json` report format.
//!
//! The paper's Figure 2 discussion hinges on a trade-off the throughput
//! numbers alone do not show: how far reclamation *lags* behind retirement
//! (epoch lag) and how much garbage accumulates while it does (defer
//! backlog). A [`Sampler`] polls those gauges on a side thread while the
//! runner drives the workload, producing a time series per variant.
//! EBR reclaims synchronously inside `resize`, so its series are
//! structurally zero — the interesting EBR signal is the pin-retry
//! counter, which rides along in the embedded metrics snapshot
//! (see DESIGN.md §7).

use rcuarray_obs::HistogramSnapshot;
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One observation of the reclamation gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Milliseconds since the sampler started.
    pub t_ms: u64,
    /// `state_epoch - min_observed`: how many epochs the slowest
    /// participant trails the writer (0 for EBR: synchronous).
    pub epoch_lag: u64,
    /// Deferred reclamations not yet executed.
    pub backlog_entries: u64,
    /// Approximate bytes awaiting reclamation.
    pub backlog_bytes: u64,
}

/// A background thread polling a probe at a fixed interval.
pub struct Sampler {
    stop: Sender<()>,
    handle: JoinHandle<Vec<Sample>>,
}

impl Sampler {
    /// Spawn a sampler polling `probe` every `interval`. The probe returns
    /// `(epoch_lag, backlog_entries, backlog_bytes)`; it must not register
    /// itself as a reclamation participant (it never checkpoints).
    pub fn spawn(
        interval: Duration,
        probe: impl Fn() -> (u64, u64, u64) + Send + 'static,
    ) -> Sampler {
        let (stop, stopped) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            let mut samples = Vec::new();
            loop {
                let (epoch_lag, backlog_entries, backlog_bytes) = probe();
                samples.push(Sample {
                    t_ms: start.elapsed().as_millis() as u64,
                    epoch_lag,
                    backlog_entries,
                    backlog_bytes,
                });
                // The stop message interrupts the wait mid-interval, so a
                // long interval never delays `finish`.
                match stopped.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => continue,
                    _ => return samples,
                }
            }
        });
        Sampler { stop, handle }
    }

    /// Stop polling and collect the series (non-empty: one sample is taken
    /// before the first stop check).
    pub fn finish(self) -> Vec<Sample> {
        let _ = self.stop.send(());
        self.handle.join().expect("sampler thread panicked")
    }
}

/// Process-wide pressure-event deltas accumulated while one variant ran
/// (DESIGN.md §9): how often writers helped, were refused, or overran
/// the cap. All zeros under an unbounded [`PressureConfig`]
/// (`rcuarray_reclaim::PressureConfig`) — the default bench setup — so
/// a non-zero column always marks a deliberately bounded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureEvents {
    /// Forced (helping) drains past the high watermark.
    pub forced_drains: u64,
    /// Retirements refused at the hard byte cap.
    pub backpressure: u64,
    /// Cap overruns: blocked retires that gave up on dry quiesces.
    pub cap_overruns: u64,
}

impl PressureEvents {
    /// Current process-wide totals, for delta capture around a run.
    pub fn totals() -> PressureEvents {
        let (forced_drains, backpressure, cap_overruns) = rcuarray_reclaim::pressure_event_totals();
        PressureEvents {
            forced_drains,
            backpressure,
            cap_overruns,
        }
    }

    /// Counts accumulated since `start` (an earlier [`totals`](Self::totals)).
    pub fn since(start: PressureEvents) -> PressureEvents {
        let now = Self::totals();
        PressureEvents {
            forced_drains: now.forced_drains - start.forced_drains,
            backpressure: now.backpressure - start.backpressure,
            cap_overruns: now.cap_overruns - start.cap_overruns,
        }
    }
}

/// One array variant's result within a workload.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// Legend name (e.g. "QSBRArray", or "QSBRArray@ckpt=16").
    pub name: String,
    /// Workload throughput in operations per second.
    pub ops_per_sec: f64,
    /// Per-operation latency distribution (nanoseconds) recorded by the
    /// runner while this variant ran.
    pub latency: HistogramSnapshot,
    /// Gauge series sampled while the variant ran.
    pub samples: Vec<Sample>,
    /// Pressure events (helping drains / refusals / overruns) charged
    /// while this variant ran.
    pub pressure: PressureEvents,
    /// Reads this variant's array served from a replica because the
    /// primary's home was not `Up` (structurally 0 at RF = 1).
    pub failover_reads: u64,
    /// Bytes this variant's array copied restoring replication after
    /// locale loss (repair plus rejoin catch-up; 0 at RF = 1).
    pub rereplicated_bytes: u64,
}

impl VariantReport {
    /// Maximum observed backlog, in entries — the headline number the
    /// age/memory trade-off discussion quotes.
    pub fn peak_backlog(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.backlog_entries)
            .max()
            .unwrap_or(0)
    }

    /// Maximum observed backlog, in bytes — the high-watermark the
    /// memory-bound contract caps.
    pub fn peak_backlog_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.backlog_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Maximum observed epoch lag.
    pub fn peak_lag(&self) -> u64 {
        self.samples.iter().map(|s| s.epoch_lag).max().unwrap_or(0)
    }
}

/// Render a `BENCH_<workload>.json` document (hand-rolled JSON, matching
/// the repo's no-serde policy). `backend` is the transport the cluster
/// ran on (`shmem` | `mesh`) — a report is only comparable to another
/// report on the same backend *and* the same `replication` factor, since
/// RF > 1 adds replica fan-out to every write. `failover` is the
/// process-wide `rcuarray_failover_latency_ns` histogram captured after
/// the workload (empty at RF = 1: no primary ever dies). `metrics_json`
/// is the registry snapshot from [`rcuarray_obs::json_snapshot`] and is
/// embedded verbatim.
pub fn bench_json(
    workload: &str,
    backend: &str,
    replication: usize,
    failover: &HistogramSnapshot,
    variants: &[VariantReport],
    metrics_json: &str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"workload\":{workload:?},\"backend\":{backend:?},\
         \"replication_factor\":{replication},\
         \"failover_latency_ns\":{{\"count\":{},\"mean\":{:.3},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},\"variants\":[",
        failover.count,
        failover.mean(),
        failover.quantile(0.50),
        failover.quantile(0.90),
        failover.quantile(0.99),
        failover.max,
    ));
    for (i, v) in variants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{:?},\"ops_per_sec\":{},\"peak_epoch_lag\":{},\
             \"peak_backlog_entries\":{},\"peak_backlog_bytes\":{},\
             \"forced_drains\":{},\"backpressure_refusals\":{},\
             \"cap_overruns\":{},\"failover_reads\":{},\
             \"rereplicated_bytes\":{},\"lat_count\":{},\"lat_mean_ns\":{},\
             \"lat_p50_ns\":{},\"lat_p90_ns\":{},\"lat_p99_ns\":{},\
             \"lat_max_ns\":{},\"series\":[",
            v.name,
            v.ops_per_sec,
            v.peak_lag(),
            v.peak_backlog(),
            v.peak_backlog_bytes(),
            v.pressure.forced_drains,
            v.pressure.backpressure,
            v.pressure.cap_overruns,
            v.failover_reads,
            v.rereplicated_bytes,
            v.latency.count,
            v.latency.mean(),
            v.latency.quantile(0.50),
            v.latency.quantile(0.90),
            v.latency.quantile(0.99),
            v.latency.max,
        ));
        for (j, s) in v.samples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_ms\":{},\"epoch_lag\":{},\"backlog_entries\":{},\"backlog_bytes\":{}}}",
                s.t_ms, s.epoch_lag, s.backlog_entries, s.backlog_bytes
            ));
        }
        out.push_str("]}");
    }
    out.push_str(&format!("],\"metrics\":{metrics_json}}}"));
    out
}

/// Write the report to `BENCH_<workload>.json` in the current directory
/// and return the path.
pub fn write_bench_report(
    workload: &str,
    backend: &str,
    replication: usize,
    failover: &HistogramSnapshot,
    variants: &[VariantReport],
    metrics_json: &str,
) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::PathBuf::from(format!("BENCH_{workload}.json"));
    std::fs::write(
        &path,
        bench_json(
            workload,
            backend,
            replication,
            failover,
            variants,
            metrics_json,
        ),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_collects_and_stops() {
        let s = Sampler::spawn(Duration::from_millis(1), || (1, 2, 3));
        std::thread::sleep(Duration::from_millis(5));
        let samples = s.finish();
        assert!(!samples.is_empty());
        assert!(samples
            .iter()
            .all(|s| s.epoch_lag == 1 && s.backlog_entries == 2 && s.backlog_bytes == 3));
    }

    #[test]
    fn sampler_takes_final_observation_after_stop() {
        // Even with an interval far longer than the workload, the series
        // is non-empty: one sample is taken before the stop check.
        let s = Sampler::spawn(Duration::from_secs(60), || (0, 0, 0));
        let samples = s.finish();
        assert!(!samples.is_empty());
    }

    #[test]
    fn peaks_are_maxima() {
        let v = VariantReport {
            name: "X".into(),
            ops_per_sec: 1.0,
            latency: HistogramSnapshot::default(),
            samples: vec![
                Sample {
                    t_ms: 0,
                    epoch_lag: 1,
                    backlog_entries: 10,
                    backlog_bytes: 640,
                },
                Sample {
                    t_ms: 1,
                    epoch_lag: 5,
                    backlog_entries: 3,
                    backlog_bytes: 192,
                },
            ],
            pressure: PressureEvents::default(),
            failover_reads: 0,
            rereplicated_bytes: 0,
        };
        assert_eq!(v.peak_lag(), 5);
        assert_eq!(v.peak_backlog(), 10);
        assert_eq!(v.peak_backlog_bytes(), 640);
    }

    #[test]
    fn bench_json_shape() {
        let lat = rcuarray_obs::Histogram::new();
        lat.record(100);
        lat.record(200);
        let v = VariantReport {
            name: "QSBRArray".into(),
            ops_per_sec: 1234.5,
            latency: lat.snapshot(),
            samples: vec![Sample {
                t_ms: 0,
                epoch_lag: 2,
                backlog_entries: 7,
                backlog_bytes: 99,
            }],
            pressure: PressureEvents {
                forced_drains: 3,
                backpressure: 1,
                cap_overruns: 0,
            },
            failover_reads: 4,
            rereplicated_bytes: 8192,
        };
        let failover = rcuarray_obs::Histogram::new();
        failover.record(500);
        let json = bench_json(
            "indexing",
            "mesh",
            2,
            &failover.snapshot(),
            &[v],
            "{\"counters\":{}}",
        );
        assert!(json.starts_with("{\"workload\":\"indexing\",\"backend\":\"mesh\""));
        assert!(json.contains("\"replication_factor\":2"));
        assert!(json.contains("\"failover_latency_ns\":{\"count\":1"));
        assert!(json.contains("\"failover_reads\":4"));
        assert!(json.contains("\"rereplicated_bytes\":8192"));
        assert!(json.contains("\"peak_epoch_lag\":2"));
        assert!(json.contains("\"peak_backlog_bytes\":99"));
        assert!(json.contains("\"forced_drains\":3"));
        assert!(json.contains("\"backpressure_refusals\":1"));
        assert!(json.contains("\"cap_overruns\":0"));
        assert!(json.contains("\"lat_count\":2"));
        assert!(json.contains("\"lat_p99_ns\":"));
        assert!(json.contains("\"lat_max_ns\":200"));
        assert!(json.contains("\"backlog_bytes\":99"));
        assert!(json.contains("\"metrics\":{\"counters\":{}}"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn pressure_event_deltas_are_monotonic() {
        let before = PressureEvents::totals();
        let delta = PressureEvents::since(before);
        // Other tests in this process may bump the counters concurrently,
        // but a delta can never be negative (u64 subtraction would panic
        // in debug builds) and a fresh delta from "now" is near zero.
        assert!(delta.forced_drains <= PressureEvents::totals().forced_drains);
    }
}
