//! One object-safe facade over every array variant the harness compares.
//!
//! Names follow the paper's figures: `EBRArray`, `QSBRArray`,
//! `ChapelArray` (the unsynchronized `UnsafeArray` baseline) and
//! `SyncArray`, plus the additional comparators this reproduction
//! implements (`RwLockArray`, `HazardArray`, `LockFreeVector`).

use rcuarray::{AmortizedArray, Config, EbrArray, LeakArray, QsbrArray};
use rcuarray_baselines::{HazardArray, LockFreeVector, RwLockArray, SyncArray, UnsafeArray};
use rcuarray_ebr::OrderingMode;
use rcuarray_runtime::Cluster;
use std::sync::Arc;

/// Which array variant to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayKind {
    /// RCUArray under the TLS-free EBR scheme.
    Ebr,
    /// RCUArray under runtime QSBR.
    Qsbr,
    /// RCUArray under QSBR with a bounded per-checkpoint drain.
    Amortized,
    /// RCUArray that never reclaims: the structural upper bound through
    /// the identical code path.
    Leak,
    /// The unsynchronized Chapel block-distributed baseline.
    Chapel,
    /// The sync-variable mutual exclusion baseline.
    Sync,
    /// Reader-writer-lock comparator (§I motivation).
    RwLock,
    /// Hazard-pointer comparator (§I motivation).
    Hazard,
    /// Dechev et al. lock-free vector (§II related work).
    LockFreeVec,
}

impl ArrayKind {
    /// The four variants the paper's figures plot.
    pub const PAPER: [ArrayKind; 4] = [
        ArrayKind::Ebr,
        ArrayKind::Qsbr,
        ArrayKind::Chapel,
        ArrayKind::Sync,
    ];

    /// The four RCUArray reclamation schemes (one `RcuArray` code path,
    /// four `Scheme` instantiations).
    pub const SCHEMES: [ArrayKind; 4] = [
        ArrayKind::Ebr,
        ArrayKind::Qsbr,
        ArrayKind::Amortized,
        ArrayKind::Leak,
    ];

    /// Every variant the harness knows.
    pub const ALL: [ArrayKind; 9] = [
        ArrayKind::Ebr,
        ArrayKind::Qsbr,
        ArrayKind::Amortized,
        ArrayKind::Leak,
        ArrayKind::Chapel,
        ArrayKind::Sync,
        ArrayKind::RwLock,
        ArrayKind::Hazard,
        ArrayKind::LockFreeVec,
    ];

    /// Figure-legend name.
    pub fn label(self) -> &'static str {
        match self {
            ArrayKind::Ebr => "EBRArray",
            ArrayKind::Qsbr => "QSBRArray",
            ArrayKind::Amortized => "AmortizedArray",
            ArrayKind::Leak => "LeakArray",
            ArrayKind::Chapel => "ChapelArray",
            ArrayKind::Sync => "SyncArray",
            ArrayKind::RwLock => "RwLockArray",
            ArrayKind::Hazard => "HazardArray",
            ArrayKind::LockFreeVec => "LockFreeVec",
        }
    }

    /// Parse a legend name / short alias.
    pub fn parse(s: &str) -> Option<ArrayKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "ebr" | "ebrarray" => ArrayKind::Ebr,
            "qsbr" | "qsbrarray" => ArrayKind::Qsbr,
            "amortized" | "amortizedarray" => ArrayKind::Amortized,
            "leak" | "leakarray" => ArrayKind::Leak,
            "chapel" | "chapelarray" | "unsafe" => ArrayKind::Chapel,
            "sync" | "syncarray" => ArrayKind::Sync,
            "rwlock" | "rwlockarray" => ArrayKind::RwLock,
            "hazard" | "hazardarray" => ArrayKind::Hazard,
            "lockfree" | "lockfreevec" | "vector" => ArrayKind::LockFreeVec,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ArrayKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Object-safe operations the runners drive. Element type is fixed to
/// `u64`, matching the word-sized updates of the paper's benchmarks.
pub trait BenchArray: Send + Sync {
    /// Legend name.
    fn name(&self) -> &'static str;
    /// Read element `idx`.
    fn read(&self, idx: usize) -> u64;
    /// Update element `idx`.
    fn write(&self, idx: usize, v: u64);
    /// Grow by `additional` elements; returns new capacity.
    fn resize(&self, additional: usize) -> usize;
    /// Current capacity.
    fn capacity(&self) -> usize;
    /// Quiescence announcement (QSBR checkpoint; no-op elsewhere).
    fn checkpoint(&self);
}

macro_rules! forward_bench_array {
    ($ty:ty, $name:expr, |$self_:ident| $ckpt:block) => {
        impl BenchArray for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn read(&self, idx: usize) -> u64 {
                <$ty>::read(self, idx)
            }
            fn write(&self, idx: usize, v: u64) {
                <$ty>::write(self, idx, v)
            }
            fn resize(&self, additional: usize) -> usize {
                <$ty>::resize(self, additional)
            }
            fn capacity(&self) -> usize {
                <$ty>::capacity(self)
            }
            fn checkpoint(&self) {
                let $self_ = self;
                $ckpt
            }
        }
    };
}

forward_bench_array!(EbrArray<u64>, "EBRArray", |_s| {});
forward_bench_array!(QsbrArray<u64>, "QSBRArray", |s| {
    s.checkpoint();
});
forward_bench_array!(AmortizedArray<u64>, "AmortizedArray", |s| {
    s.checkpoint();
});
forward_bench_array!(LeakArray<u64>, "LeakArray", |_s| {});
forward_bench_array!(UnsafeArray<u64>, "ChapelArray", |_s| {});
forward_bench_array!(SyncArray<u64>, "SyncArray", |_s| {});
forward_bench_array!(RwLockArray<u64>, "RwLockArray", |_s| {});

impl BenchArray for HazardArray<u64> {
    fn name(&self) -> &'static str {
        "HazardArray"
    }
    fn read(&self, idx: usize) -> u64 {
        HazardArray::read(self, idx)
    }
    fn write(&self, idx: usize, v: u64) {
        HazardArray::write(self, idx, v)
    }
    fn resize(&self, additional: usize) -> usize {
        HazardArray::resize(self, additional)
    }
    fn capacity(&self) -> usize {
        HazardArray::capacity(self)
    }
    fn checkpoint(&self) {}
}

impl BenchArray for LockFreeVector<u64> {
    fn name(&self) -> &'static str {
        "LockFreeVec"
    }
    fn read(&self, idx: usize) -> u64 {
        LockFreeVector::read(self, idx)
    }
    fn write(&self, idx: usize, v: u64) {
        LockFreeVector::write(self, idx, v)
    }
    fn resize(&self, additional: usize) -> usize {
        self.extend_default(additional);
        self.len()
    }
    fn capacity(&self) -> usize {
        self.len()
    }
    fn checkpoint(&self) {}
}

/// Construct a variant over `cluster` with the paper's block size and
/// communication accounting enabled.
pub fn make_array(
    kind: ArrayKind,
    cluster: &Arc<Cluster>,
    block_size: usize,
) -> Box<dyn BenchArray> {
    make_array_config(kind, cluster, block_size, true, OrderingMode::SeqCst)
}

/// Construct a variant with full control over accounting and (for EBR)
/// the protocol ordering.
pub fn make_array_config(
    kind: ArrayKind,
    cluster: &Arc<Cluster>,
    block_size: usize,
    account_comm: bool,
    ordering: OrderingMode,
) -> Box<dyn BenchArray> {
    let config = Config {
        block_size,
        account_comm,
        ordering,
        ..Config::default()
    };
    match kind {
        ArrayKind::Ebr => Box::new(EbrArray::<u64>::with_config(cluster, config)),
        ArrayKind::Qsbr => Box::new(QsbrArray::<u64>::with_config(cluster, config)),
        ArrayKind::Amortized => Box::new(AmortizedArray::<u64>::with_config(cluster, config)),
        ArrayKind::Leak => Box::new(LeakArray::<u64>::with_config(cluster, config)),
        ArrayKind::Chapel => Box::new(UnsafeArray::<u64>::with_accounting(cluster, account_comm)),
        ArrayKind::Sync => Box::new(SyncArray::<u64>::with_accounting(cluster, account_comm)),
        ArrayKind::RwLock => Box::new(RwLockArray::<u64>::with_accounting(cluster, account_comm)),
        ArrayKind::Hazard => Box::new(HazardArray::<u64>::new(cluster, block_size, account_comm)),
        ArrayKind::LockFreeVec => Box::new(LockFreeVector::<u64>::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_runtime::Topology;

    #[test]
    fn every_kind_constructs_and_round_trips() {
        let cluster = Cluster::new(Topology::new(2, 1));
        for kind in ArrayKind::ALL {
            let a = make_array_config(kind, &cluster, 8, false, OrderingMode::SeqCst);
            assert_eq!(a.name(), kind.label());
            let cap = a.resize(16);
            assert!(cap >= 16, "{kind}: capacity {cap}");
            a.write(3, 99);
            assert_eq!(a.read(3), 99, "{kind}");
            a.checkpoint();
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for kind in ArrayKind::ALL {
            assert_eq!(ArrayKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ArrayKind::parse("qsbr"), Some(ArrayKind::Qsbr));
        assert_eq!(ArrayKind::parse("nope"), None);
    }

    #[test]
    fn paper_set_is_the_figure_legend() {
        let labels: Vec<&str> = ArrayKind::PAPER.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            ["EBRArray", "QSBRArray", "ChapelArray", "SyncArray"]
        );
    }
}
