//! `bench` — telemetry-integrated workload runner.
//!
//! ```text
//! bench [WORKLOAD...] [OPTIONS]
//!
//! WORKLOADS
//!   indexing     Fig. 2-style random indexing with periodic checkpoints
//!   resize       Fig. 3-style incremental resizes from zero capacity
//!   checkpoint   Fig. 4-style checkpoint-frequency sweep
//!   service      open-loop load against the serving layer, batched
//!                (max_batch=32) vs unbatched (max_batch=1)
//!   all          everything above (default)
//!
//! OPTIONS
//!   --ops N          ops per task for indexing/checkpoint  (default 20000)
//!   --increments N   resizes for the resize workload       (default 256)
//!   --sample-ms N    gauge sampling interval               (default 1)
//!   --backend B      transport backend: shmem | mesh
//!                    (default: RCUARRAY_BACKEND env, else shmem)
//!   --replication K  copies of every block incl. the primary
//!                    (default 1: the paper's placement, no replicas)
//! ```
//!
//! `--replication 2` puts the RF=1 vs RF=2 read/write cost on record:
//! every write fans out to a replica, so the throughput delta against an
//! RF=1 run of the same workload is the price of surviving a locale
//! death. Clusters are widened to at least K locales (copies live on
//! distinct locales), and the report gains `replication_factor`,
//! per-variant `failover_reads` / `rereplicated_bytes`, and the
//! process-wide failover-latency histogram — all structurally zero at
//! RF = 1 (DESIGN.md §15).
//!
//! Each workload runs all four RCUArray reclamation schemes — EBR, QSBR,
//! Amortized (budgeted QSBR drains), Leak (never frees: the structural
//! upper bound) — through the identical `RcuArray` code path and writes
//! `BENCH_<workload>.json` to the current directory: per-variant
//! throughput, a sampled time series of epoch lag and retire backlog
//! (entries and bytes), and the full metrics-registry snapshot. The probe
//! is scheme-agnostic: it reads the array's merged
//! [`ReclaimStats`](rcuarray::ReclaimStats), so EBR's series are
//! structurally zero (synchronous reclamation), the QSBR family shows the
//! checkpoint sawtooth, and Leak shows a monotone ramp — each the honest
//! description of its protocol. EBR's pin-retry pressure shows up in the
//! embedded `rcuarray_ebr_pin_retries_total` counter instead
//! (DESIGN.md §7).

use rcuarray::{AmortizedArray, Config, EbrArray, LeakArray, QsbrArray, RcuArray, Scheme};
use rcuarray_bench::runner::{run_indexing, run_resize, IndexingParams, ResizeParams, RunResult};
use rcuarray_bench::service_load::{run_service_load, ServiceLoadParams, ServiceLoadResult};
use rcuarray_bench::telemetry::{write_bench_report, PressureEvents, Sampler, VariantReport};
use rcuarray_bench::workload::IndexPattern;
use rcuarray_runtime::{Cluster, Topology, TransportKind};
use rcuarray_service::{Service, ServiceConfig};
use std::time::Duration;

struct Options {
    workloads: Vec<String>,
    ops: usize,
    increments: usize,
    sample_ms: u64,
    backend: TransportKind,
    replication: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        workloads: Vec::new(),
        ops: 20_000,
        increments: 256,
        sample_ms: 1,
        backend: TransportKind::from_env(),
        replication: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => opts.ops = args.next().expect("--ops needs a value").parse().unwrap(),
            "--increments" => {
                opts.increments = args
                    .next()
                    .expect("--increments needs a value")
                    .parse()
                    .unwrap()
            }
            "--sample-ms" => {
                opts.sample_ms = args
                    .next()
                    .expect("--sample-ms needs a value")
                    .parse()
                    .unwrap()
            }
            "--backend" => {
                opts.backend = args
                    .next()
                    .expect("--backend needs a value")
                    .parse()
                    .unwrap_or_else(|e| panic!("--backend: {e}"))
            }
            "--replication" => {
                opts.replication = args
                    .next()
                    .expect("--replication needs a value")
                    .parse()
                    .unwrap();
                assert!(
                    opts.replication >= 1,
                    "--replication counts every copy including the primary"
                );
            }
            "--help" | "-h" => {
                eprintln!("workloads: indexing resize checkpoint service all; options: --ops --increments --sample-ms --backend --replication");
                std::process::exit(0);
            }
            other => opts.workloads.push(other.to_string()),
        }
    }
    if opts.workloads.is_empty() || opts.workloads.iter().any(|w| w == "all") {
        opts.workloads = vec![
            "indexing".into(),
            "resize".into(),
            "checkpoint".into(),
            "service".into(),
        ];
    }
    opts
}

/// Run `work`, sampling the array's merged reclamation stats in the
/// background; returns the report. The probe holds an aliasing clone of
/// the array and never enters a read-side critical section or registers
/// with a QSBR domain — a sampler must observe reclamation, not gate it.
fn sampled_run<S: Scheme>(
    name: impl Into<String>,
    array: &RcuArray<u64, S>,
    sample_ms: u64,
    work: impl FnOnce() -> RunResult,
) -> VariantReport {
    let probe = array.clone();
    let sampler = Sampler::spawn(Duration::from_millis(sample_ms.max(1)), move || {
        let s = probe.stats().reclaim;
        (s.epoch_lag, s.pending, s.pending_bytes)
    });
    // Pressure events are process-wide; variants run sequentially, so a
    // delta around the run attributes them to this variant.
    let pressure_before = PressureEvents::totals();
    let result = work();
    // Availability counters are per-array, so the run's totals ARE this
    // variant's (both structurally zero at replication_factor = 1).
    let avail = array.stats();
    VariantReport {
        name: name.into(),
        ops_per_sec: result.ops_per_sec,
        latency: result.latency,
        samples: sampler.finish(),
        pressure: PressureEvents::since(pressure_before),
        failover_reads: avail.failover_reads,
        rereplicated_bytes: avail.rereplicated_bytes,
    }
}

/// Build the bench cluster on the selected transport backend. Widened to
/// at least `--replication` locales: every copy of a block lives on a
/// distinct locale, so RF = 2 needs two of them even for the one-locale
/// checkpoint sweep.
fn bench_cluster(opts: &Options, locales: usize, cores: usize) -> std::sync::Arc<Cluster> {
    Cluster::builder()
        .topology(Topology::new(locales.max(opts.replication), cores))
        .backend(opts.backend)
        .build()
}

fn bench_config(opts: &Options) -> Config {
    Config {
        block_size: 1024,
        account_comm: true,
        replication_factor: opts.replication,
        ..Config::default()
    }
}

fn indexing(opts: &Options) {
    let params = IndexingParams {
        tasks_per_locale: 2,
        ops_per_task: opts.ops,
        pattern: IndexPattern::Random,
        capacity: 1 << 14,
        // Periodic checkpoints: without them the QSBR backlog only grows
        // and the lag gauge never resets — the series would show a ramp,
        // not the paper's sawtooth.
        checkpoint_every: Some(256),
        read_percent: 0,
        seed: 0xC0FFEE,
    };
    let cluster = bench_cluster(opts, 2, 2);
    let mut variants = Vec::new();

    let ebr = EbrArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("EBRArray", &ebr, opts.sample_ms, || {
        run_indexing(&ebr, &cluster, &params)
    }));

    let qsbr = QsbrArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("QSBRArray", &qsbr, opts.sample_ms, || {
        run_indexing(&qsbr, &cluster, &params)
    }));

    let amortized = AmortizedArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run(
        "AmortizedArray",
        &amortized,
        opts.sample_ms,
        || run_indexing(&amortized, &cluster, &params),
    ));

    let leak = LeakArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("LeakArray", &leak, opts.sample_ms, || {
        run_indexing(&leak, &cluster, &params)
    }));

    finish("indexing", opts, variants);
}

fn resize(opts: &Options) {
    let params = ResizeParams {
        increments: opts.increments,
        increment: 256,
    };
    let cluster = bench_cluster(opts, 2, 2);
    let mut variants = Vec::new();

    let ebr = EbrArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("EBRArray", &ebr, opts.sample_ms, || {
        run_resize(&ebr, &params)
    }));

    let qsbr = QsbrArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("QSBRArray", &qsbr, opts.sample_ms, || {
        run_resize(&qsbr, &params)
    }));

    let amortized = AmortizedArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run(
        "AmortizedArray",
        &amortized,
        opts.sample_ms,
        || run_resize(&amortized, &params),
    ));

    let leak = LeakArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("LeakArray", &leak, opts.sample_ms, || {
        run_resize(&leak, &params)
    }));

    finish("resize", opts, variants);
}

fn checkpoint(opts: &Options) {
    let base = IndexingParams {
        tasks_per_locale: 2,
        ops_per_task: opts.ops.min(10_000),
        pattern: IndexPattern::Sequential,
        capacity: 1 << 13,
        checkpoint_every: None,
        read_percent: 0,
        seed: 0xC0FFEE,
    };
    let cluster = bench_cluster(opts, 1, 2);
    let mut variants = Vec::new();

    // Checkpoint-free baselines: Fig. 4 reuses the EBR indexing number as
    // a flat line; Leak adds the no-reclamation-at-all upper bound.
    let ebr = EbrArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("EBRArray", &ebr, opts.sample_ms, || {
        run_indexing(&ebr, &cluster, &base)
    }));

    let leak = LeakArray::<u64>::with_config(&cluster, bench_config(opts));
    variants.push(sampled_run("LeakArray", &leak, opts.sample_ms, || {
        run_indexing(&leak, &cluster, &base)
    }));

    for every in [1usize, 16, 256] {
        let params = IndexingParams {
            checkpoint_every: Some(every),
            ..base
        };

        let qsbr = QsbrArray::<u64>::with_config(&cluster, bench_config(opts));
        variants.push(sampled_run(
            format!("QSBRArray@ckpt={every}"),
            &qsbr,
            opts.sample_ms,
            || run_indexing(&qsbr, &cluster, &params),
        ));

        let amortized = AmortizedArray::<u64>::with_config(&cluster, bench_config(opts));
        variants.push(sampled_run(
            format!("AmortizedArray@ckpt={every}"),
            &amortized,
            opts.sample_ms,
            || run_indexing(&amortized, &cluster, &params),
        ));
    }

    finish("checkpoint", opts, variants);
}

/// Service config for one batching variant. `max_batch = 1` is the
/// unbatched control: every request is its own batch (and its own guard
/// pin), so the amortization win shows up as the throughput gap and in
/// the `rcuarray_service_pins_total` / `..requests_total` ratio.
fn service_cfg(max_batch: usize) -> ServiceConfig {
    ServiceConfig {
        // Deep enough to admit the whole open-loop flood: with refusals
        // out of the picture, wall time is the server's drain time and
        // the batched-vs-unbatched gap is pure amortization.
        queue_capacity: 1 << 16,
        max_batch,
        max_delay: if max_batch == 1 {
            Duration::ZERO
        } else {
            Duration::from_micros(200)
        },
        // Generous deadline: this workload measures amortized throughput,
        // not shedding (the SLO tests cover that).
        deadline: Duration::from_secs(30),
        ..ServiceConfig::default()
    }
}

/// Run one scheme × batching variant of the service workload.
fn service_variant<S: Scheme>(
    name: String,
    array: RcuArray<u64, S>,
    max_batch: usize,
    opts: &Options,
    p: &ServiceLoadParams,
) -> VariantReport {
    array.resize(p.capacity);
    let svc = Service::start(array, service_cfg(max_batch));
    let mut tally: Option<ServiceLoadResult> = None;
    let report = sampled_run(name, svc.array(), opts.sample_ms, || {
        let r = run_service_load(&svc, p);
        let run = RunResult {
            ops_per_sec: r.ops_per_sec,
            latency: r.latency.clone(),
        };
        tally = Some(r);
        run
    });
    svc.shutdown();
    let t = tally.expect("load generator ran");
    println!(
        "   service {:<22} served {}  overloaded {}  shed {}  failed {}",
        report.name, t.served, t.overloaded, t.shed, t.failed
    );
    report
}

fn service(opts: &Options) {
    let p = ServiceLoadParams {
        clients: 4,
        requests_per_client: opts.ops.clamp(1, 8192),
        read_percent: 80,
        capacity: 1 << 14,
        seed: 0xC0FFEE,
    };
    let cluster = bench_cluster(opts, 2, 2);
    let mut variants = Vec::new();

    for max_batch in [32usize, 1] {
        variants.push(service_variant(
            format!("EBRArray@batch={max_batch}"),
            EbrArray::<u64>::with_config(&cluster, bench_config(opts)),
            max_batch,
            opts,
            &p,
        ));
        variants.push(service_variant(
            format!("QSBRArray@batch={max_batch}"),
            QsbrArray::<u64>::with_config(&cluster, bench_config(opts)),
            max_batch,
            opts,
            &p,
        ));
    }

    // The amortization headline the report exists to show.
    let snap = rcuarray_obs::snapshot();
    let pins = snap.counter("rcuarray_service_pins_total").unwrap_or(0);
    let requests = snap.counter("rcuarray_service_requests_total").unwrap_or(0);
    println!("   service guard pins {pins} / requests {requests}");

    finish("service", opts, variants);
}

fn finish(workload: &str, opts: &Options, variants: Vec<VariantReport>) {
    let snap = rcuarray_obs::snapshot();
    // Lazily interned: absent (not zero) until the first failover read,
    // so an RF=1 run reports an empty histogram.
    let failover = snap
        .histogram("rcuarray_failover_latency_ns")
        .cloned()
        .unwrap_or_default();
    let metrics = rcuarray_obs::json_snapshot();
    let path = write_bench_report(
        workload,
        opts.backend.name(),
        opts.replication,
        &failover,
        &variants,
        &metrics,
    )
    .unwrap_or_else(|e| panic!("writing BENCH_{workload}.json: {e}"));
    for v in &variants {
        println!(
            "{workload:>10} {:<22} {:>12.0} ops/s  lat p50/p99/max {}/{}/{} ns  \
             peak lag {}  peak backlog {} ({} B)  forced drains {}",
            v.name,
            v.ops_per_sec,
            v.latency.quantile(0.50),
            v.latency.quantile(0.99),
            v.latency.max,
            v.peak_lag(),
            v.peak_backlog(),
            v.peak_backlog_bytes(),
            v.pressure.forced_drains
        );
    }
    println!("{workload:>10} wrote {}", path.display());
}

fn main() {
    let opts = parse_args();
    println!(
        "transport backend: {}  replication factor: {}",
        opts.backend, opts.replication
    );
    for w in opts.workloads.clone() {
        match w.as_str() {
            "indexing" => indexing(&opts),
            "resize" => resize(&opts),
            "checkpoint" => checkpoint(&opts),
            "service" => service(&opts),
            other => {
                eprintln!(
                    "unknown workload '{other}' (try indexing, resize, checkpoint, service, all)"
                )
            }
        }
    }
}
