//! `paper_tables` — regenerate the series of every figure in the
//! RCUArray paper's evaluation (§V) and print them as tables.
//!
//! ```text
//! paper_tables [FIGURE...] [OPTIONS]
//!
//! FIGURES
//!   fig2a   Random indexing, 1024 ops/task   (EBR/QSBR/Chapel/Sync)
//!   fig2b   Sequential indexing, 1024 ops/task
//!   fig2c   Random indexing, many ops/task   (Sync excluded, like the paper)
//!   fig2d   Sequential indexing, many ops/task
//!   fig3    1024 incremental resizes, 0 -> ~1M elements
//!   fig4    QSBR checkpoint-frequency sweep (single locale)
//!   all     everything above (default)
//!
//! OPTIONS
//!   --locales L1,L2,..   locale counts to sweep      (default 1,2,4,8)
//!   --tasks N            tasks per locale            (default 4)
//!   --ops N              ops/task for fig2c/fig2d    (default 65536)
//!   --increments N       resizes for fig3            (default 1024)
//!   --quick              tiny parameters (CI smoke)
//!   --full               the paper's exact op counts (1M ops/task)
//!   --extras             add RwLock/Hazard/LockFreeVec comparators
//!   --latency NS         inject NS nanoseconds per remote op
//!   --json               emit JSON instead of tables
//! ```

use rcuarray_bench::arrays::{make_array, ArrayKind};
use rcuarray_bench::report::{Series, Table};
use rcuarray_bench::runner::{
    run_checkpoint_sweep, run_indexing, run_resize, IndexingParams, ResizeParams,
};
use rcuarray_bench::workload::IndexPattern;
use rcuarray_runtime::{Cluster, LatencyModel, Topology};
use std::io::Write;
use std::sync::Arc;

/// Mirrors every output line into `target/paper_tables_output.txt`, so a
/// run leaves a reviewable artifact without a shell redirect polluting
/// the repo root (the root path is git-ignored; the archive lives under
/// `target/` like every other build product).
struct Tee {
    file: Option<std::io::BufWriter<std::fs::File>>,
}

impl Tee {
    fn create() -> Tee {
        let path = std::path::Path::new("target").join("paper_tables_output.txt");
        let file = std::fs::create_dir_all("target")
            .and_then(|()| std::fs::File::create(&path))
            .map(std::io::BufWriter::new);
        match file {
            Ok(f) => Tee { file: Some(f) },
            Err(e) => {
                eprintln!("note: not archiving output ({}: {e})", path.display());
                Tee { file: None }
            }
        }
    }

    fn line(&mut self, s: impl std::fmt::Display) {
        println!("{s}");
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{s}");
        }
    }
}

#[derive(Debug, Clone)]
struct Options {
    figures: Vec<String>,
    locales: Vec<usize>,
    tasks: usize,
    big_ops: usize,
    increments: usize,
    extras: bool,
    latency: LatencyModel,
    json: bool,
    /// Repetitions per cell for the short (1024-op) figures; the best of
    /// N is reported, suppressing scheduler noise on oversubscribed
    /// hosts.
    reps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            figures: vec![],
            locales: vec![1, 2, 4, 8],
            tasks: 4,
            big_ops: 65_536,
            increments: 1024,
            extras: false,
            latency: LatencyModel::None,
            json: false,
            reps: 5,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--locales" => {
                let v = args.next().expect("--locales needs a value");
                opts.locales = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad locale count"))
                    .collect();
            }
            "--tasks" => opts.tasks = args.next().expect("--tasks needs a value").parse().unwrap(),
            "--ops" => opts.big_ops = args.next().expect("--ops needs a value").parse().unwrap(),
            "--increments" => {
                opts.increments = args
                    .next()
                    .expect("--increments needs a value")
                    .parse()
                    .unwrap()
            }
            "--quick" => {
                opts.locales = vec![1, 2];
                opts.tasks = 2;
                opts.big_ops = 4096;
                opts.increments = 64;
            }
            "--full" => {
                opts.big_ops = 1_000_000;
                opts.increments = 1024;
            }
            "--extras" => opts.extras = true,
            "--latency" => {
                let ns: u64 = args
                    .next()
                    .expect("--latency needs nanoseconds")
                    .parse()
                    .unwrap();
                opts.latency = LatencyModel::SpinNanos(ns);
            }
            "--json" => opts.json = true,
            "--reps" => opts.reps = args.next().expect("--reps needs a value").parse().unwrap(),
            "--help" | "-h" => {
                eprintln!(
                    "figures: fig2a fig2b fig2c fig2d fig3 fig4 all; options: \
                     --locales --tasks --ops --increments --quick --full \
                     --extras --latency --json"
                );
                std::process::exit(0);
            }
            other => opts.figures.push(other.to_string()),
        }
    }
    const DEFAULT_FIGURES: [&str; 6] = ["fig2a", "fig2b", "fig2c", "fig2d", "fig3", "fig4"];
    if opts.figures.is_empty() {
        opts.figures = DEFAULT_FIGURES.iter().map(|s| s.to_string()).collect();
    } else if let Some(pos) = opts.figures.iter().position(|f| f == "all") {
        // Expand "all" in place, keeping any extra figures (e.g. readmix).
        opts.figures
            .splice(pos..=pos, DEFAULT_FIGURES.iter().map(|s| s.to_string()));
    }
    opts
}

fn cluster_for(opts: &Options, locales: usize) -> Arc<Cluster> {
    Cluster::with_latency(Topology::new(locales, opts.tasks), opts.latency)
}

fn kinds_for(opts: &Options, include_sync: bool) -> Vec<ArrayKind> {
    let mut kinds: Vec<ArrayKind> = ArrayKind::PAPER
        .into_iter()
        .filter(|k| include_sync || *k != ArrayKind::Sync)
        .collect();
    // The post-paper schemes ride along in every figure: Amortized bounds
    // checkpoint cost, Leak is the reclamation-free upper bound through
    // the identical RcuArray code path.
    kinds.extend([ArrayKind::Amortized, ArrayKind::Leak]);
    if opts.extras {
        kinds.extend([ArrayKind::RwLock, ArrayKind::Hazard, ArrayKind::LockFreeVec]);
    }
    kinds
}

fn emit(opts: &Options, tee: &mut Tee, table: &Table) {
    if opts.json {
        tee.line(table.to_json());
    } else {
        tee.line(table);
    }
}

/// Figures 2a–2d: indexing throughput vs locale count.
fn fig2(
    opts: &Options,
    tee: &mut Tee,
    name: &str,
    pattern: IndexPattern,
    ops_per_task: usize,
    include_sync: bool,
) {
    let title = format!(
        "Fig. {name}: {} indexing, {ops_per_task} ops/task, {} tasks/locale",
        match pattern {
            IndexPattern::Random => "random",
            IndexPattern::Sequential => "sequential",
        },
        opts.tasks
    );
    let mut table = Table::new(title, "locales", opts.locales.clone());
    for kind in kinds_for(opts, include_sync) {
        let mut series = Series::new(kind.label());
        for &l in &opts.locales {
            let cluster = cluster_for(opts, l);
            let array = make_array(kind, &cluster, 1024);
            let params = IndexingParams {
                tasks_per_locale: opts.tasks,
                ops_per_task,
                pattern,
                capacity: 1 << 20,
                checkpoint_every: None,
                read_percent: 0,
                seed: 0xC0FFEE,
            };
            // Short runs (the 1024-op figures) are noisy at sub-ms cell
            // times; report the best of `reps` passes.
            let reps = if ops_per_task <= 4096 { opts.reps } else { 1 };
            let best = (0..reps.max(1))
                .map(|_| run_indexing(array.as_ref(), &cluster, &params).ops_per_sec)
                .fold(0.0f64, f64::max);
            series.push(l, best);
        }
        table.push_series(series);
    }
    emit(opts, tee, &table);
    if !opts.json {
        if let Some(x) = opts.locales.last().copied() {
            if let Some(r) = table.ratio_at("EBRArray", "ChapelArray", x) {
                tee.line(format!(
                    "   EBRArray / ChapelArray @ {x} locales: {:.1}% (paper: 2-40%)",
                    r * 100.0
                ));
            }
            if let Some(r) = table.ratio_at("QSBRArray", "ChapelArray", x) {
                tee.line(format!(
                    "   QSBRArray / ChapelArray @ {x} locales: {r:.2}x (paper: ~1x, up to 1.5x seq)"
                ));
            }
            tee.line("");
        }
    }
}

/// Figure 3: incremental resize throughput vs locale count.
fn fig3(opts: &Options, tee: &mut Tee) {
    let title = format!(
        "Fig. 3: {} resizes of +1024 elements (0 -> {} total)",
        opts.increments,
        opts.increments * 1024
    );
    let mut table = Table::new(title, "locales", opts.locales.clone());
    // SyncArray is excluded in the paper's Fig. 3 as well ("due to
    // required runtime", §V footnote 15).
    let mut kinds = vec![
        ArrayKind::Ebr,
        ArrayKind::Qsbr,
        ArrayKind::Amortized,
        ArrayKind::Leak,
        ArrayKind::Chapel,
    ];
    if opts.extras {
        kinds.extend([ArrayKind::RwLock, ArrayKind::Hazard, ArrayKind::LockFreeVec]);
    }
    for kind in kinds {
        let mut series = Series::new(kind.label());
        for &l in &opts.locales {
            let cluster = cluster_for(opts, l);
            let array = make_array(kind, &cluster, 1024);
            let params = ResizeParams {
                increments: opts.increments,
                increment: 1024,
            };
            series.push(l, run_resize(array.as_ref(), &params).ops_per_sec);
        }
        table.push_series(series);
    }
    emit(opts, tee, &table);
    if !opts.json {
        if let Some(x) = opts.locales.last().copied() {
            if let Some(r) = table.ratio_at("QSBRArray", "ChapelArray", x) {
                tee.line(format!(
                    "   QSBRArray / ChapelArray resize @ {x} locales: {r:.1}x (paper: >4x)"
                ));
            }
            if let Some(r) = table.ratio_at("EBRArray", "ChapelArray", x) {
                tee.line(format!(
                    "   EBRArray  / ChapelArray resize @ {x} locales: {r:.1}x (paper: >4x)"
                ));
            }
            tee.line("");
        }
    }
}

/// Extension figure: read/update mix sweep across the reclaimer zoo.
/// The paper's workloads are pure updates; this sweep shows where each
/// design's read-side cost dominates as the mix shifts read-heavy.
fn readmix(opts: &Options, tee: &mut Tee) {
    let mixes = [0usize, 50, 90, 99];
    let title = format!(
        "Ext: read-mix sweep, 2 locales, {} tasks, {} ops/task",
        opts.tasks, opts.big_ops
    );
    let mut table = Table::new(title, "reads %", mixes.to_vec());
    let cluster = cluster_for(opts, 2);
    for kind in [
        ArrayKind::Ebr,
        ArrayKind::Qsbr,
        ArrayKind::Chapel,
        ArrayKind::RwLock,
        ArrayKind::Hazard,
    ] {
        let mut series = Series::new(kind.label());
        for &mix in &mixes {
            let array = make_array(kind, &cluster, 1024);
            let params = IndexingParams {
                tasks_per_locale: opts.tasks,
                ops_per_task: opts.big_ops,
                pattern: IndexPattern::Random,
                capacity: 1 << 20,
                checkpoint_every: None,
                read_percent: mix as u8,
                seed: 0xC0FFEE,
            };
            series.push(
                mix,
                run_indexing(array.as_ref(), &cluster, &params).ops_per_sec,
            );
        }
        table.push_series(series);
    }
    emit(opts, tee, &table);
}

/// Figure 4: checkpoint-frequency sweep at one locale, EBR as baseline.
fn fig4(opts: &Options, tee: &mut Tee) {
    let ops = opts.big_ops;
    let frequencies: Vec<usize> = [1usize, 10, 100, 1_000, 10_000, 100_000, 1_000_000]
        .into_iter()
        .filter(|&f| f <= ops)
        .collect();
    let title = format!(
        "Fig. 4: QSBR checkpoint overhead, 1 locale, {} tasks, {ops} ops/task",
        opts.tasks
    );
    let mut table = Table::new(title, "ops/ckpt", frequencies.clone());
    let cluster = cluster_for(opts, 1);

    let base = IndexingParams {
        tasks_per_locale: opts.tasks,
        ops_per_task: ops,
        pattern: IndexPattern::Sequential,
        capacity: 1 << 20,
        checkpoint_every: None,
        read_percent: 0,
        seed: 0xC0FFEE,
    };
    let mut qsbr = Series::new("QSBR");
    for (every, tput) in run_checkpoint_sweep(
        || make_array(ArrayKind::Qsbr, &cluster, 1024),
        &cluster,
        &base,
        &frequencies,
    ) {
        qsbr.push(every, tput);
    }
    table.push_series(qsbr);

    // "The performance gathered from previous benchmarks for EBRArray in
    // Figure 2d are reused here and inserted as a baseline" (§V-B).
    let ebr_array = make_array(ArrayKind::Ebr, &cluster, 1024);
    let ebr_tput = run_indexing(ebr_array.as_ref(), &cluster, &base).ops_per_sec;
    let mut ebr = Series::new("EBR");
    for &f in &frequencies {
        ebr.push(f, ebr_tput);
    }
    table.push_series(ebr);

    emit(opts, tee, &table);
    if !opts.json {
        if let Some(r) = table.ratio_at("QSBR", "EBR", frequencies[0]) {
            tee.line(format!(
                "   QSBR@1-op-checkpoints / EBR: {r:.2}x (paper: QSBR exceeds EBR \
                 even at one op per checkpoint)\n"
            ));
        }
    }
}

fn main() {
    let opts = parse_args();
    let mut tee = Tee::create();
    if !opts.json {
        tee.line(format!(
            "host: {} hardware thread(s) | latency model: {:?} | locales {:?} x {} tasks",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            opts.latency,
            opts.locales,
            opts.tasks
        ));
        tee.line(
            "note: absolute numbers are host-dependent; compare *shapes* \
             against the paper (see EXPERIMENTS.md)\n",
        );
    }
    for fig in opts.figures.clone() {
        match fig.as_str() {
            "fig2a" => fig2(&opts, &mut tee, "2a", IndexPattern::Random, 1024, true),
            "fig2b" => fig2(&opts, &mut tee, "2b", IndexPattern::Sequential, 1024, true),
            "fig2c" => fig2(
                &opts,
                &mut tee,
                "2c",
                IndexPattern::Random,
                opts.big_ops,
                false,
            ),
            "fig2d" => fig2(
                &opts,
                &mut tee,
                "2d",
                IndexPattern::Sequential,
                opts.big_ops,
                false,
            ),
            "fig3" => fig3(&opts, &mut tee),
            "fig4" => fig4(&opts, &mut tee),
            "readmix" => readmix(&opts, &mut tee),
            other => eprintln!("unknown figure '{other}' (try fig2a..fig4, readmix, or all)"),
        }
    }
}
