//! Measured benchmark loops, spawning the paper's "N tasks per locale"
//! shape through the simulated cluster.

use crate::arrays::BenchArray;
use crate::workload::{IndexPattern, IndexStream};
use rcuarray_runtime::Cluster;
use std::sync::Arc;
use std::time::Instant;

/// Parameters of a Figure-2-style indexing run.
#[derive(Debug, Clone, Copy)]
pub struct IndexingParams {
    /// Tasks spawned on every locale (paper: 44).
    pub tasks_per_locale: usize,
    /// Update operations per task (paper: 1024 or 1M).
    pub ops_per_task: usize,
    /// Random or sequential indices.
    pub pattern: IndexPattern,
    /// Array capacity the run indexes into.
    pub capacity: usize,
    /// `Some(n)`: invoke a checkpoint after every `n` operations
    /// (Figure 4). `None`: never checkpoint (the paper's QSBRArray
    /// "best-case").
    pub checkpoint_every: Option<usize>,
    /// Percentage of operations that are reads (0–100). The paper's
    /// figures use pure updates (`0`); the extended reclaimer-zoo
    /// ablation sweeps this to show where read-optimized designs pull
    /// ahead.
    pub read_percent: u8,
    /// PRNG seed for the random pattern.
    pub seed: u64,
}

impl Default for IndexingParams {
    fn default() -> Self {
        IndexingParams {
            tasks_per_locale: 4,
            ops_per_task: 1024,
            pattern: IndexPattern::Random,
            capacity: 1 << 20,
            checkpoint_every: None,
            read_percent: 0,
            seed: 0xC0FFEE,
        }
    }
}

/// Run an indexing benchmark: every task performs `ops_per_task` update
/// operations against `array`. Returns throughput in operations/second.
///
/// The array is grown to `capacity` first (outside the timed region).
pub fn run_indexing(array: &dyn BenchArray, cluster: &Arc<Cluster>, p: &IndexingParams) -> f64 {
    assert!(p.capacity > 0 && p.ops_per_task > 0 && p.tasks_per_locale > 0);
    if array.capacity() < p.capacity {
        array.resize(p.capacity - array.capacity());
    }
    let total_ops = (cluster.num_locales() * p.tasks_per_locale * p.ops_per_task) as f64;

    let start = Instant::now();
    cluster.spawn_tasks(p.tasks_per_locale, |loc, task| {
        let task_id = (loc.index() * p.tasks_per_locale + task) as u64;
        let mut stream = IndexStream::new(p.pattern, p.capacity, p.seed, task_id);
        // Deterministic read/write interleave from the percentage: every
        // op whose counter lands below read_percent (mod 100) reads.
        let rp = p.read_percent.min(100) as usize;
        let mut sink = 0u64;
        match p.checkpoint_every {
            None => {
                for k in 0..p.ops_per_task {
                    let idx = stream.next_index();
                    if k % 100 < rp {
                        sink = sink.wrapping_add(array.read(idx));
                    } else {
                        array.write(idx, k as u64);
                    }
                }
            }
            Some(every) => {
                let every = every.max(1);
                for k in 0..p.ops_per_task {
                    let idx = stream.next_index();
                    if k % 100 < rp {
                        sink = sink.wrapping_add(array.read(idx));
                    } else {
                        array.write(idx, k as u64);
                    }
                    if (k + 1) % every == 0 {
                        array.checkpoint();
                    }
                }
            }
        }
        std::hint::black_box(sink);
    });
    let elapsed = start.elapsed().as_secs_f64();
    total_ops / elapsed
}

/// Parameters of the Figure 3 resize benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ResizeParams {
    /// Number of resize operations (paper: 1024).
    pub increments: usize,
    /// Elements added per resize (paper: 1024, one block).
    pub increment: usize,
}

impl Default for ResizeParams {
    fn default() -> Self {
        ResizeParams {
            increments: 1024,
            increment: 1024,
        }
    }
}

/// Run the resize benchmark: `increments` sequential resizes of
/// `increment` elements, "starting with zero-capacity". Returns
/// throughput in resize operations/second.
pub fn run_resize(array: &dyn BenchArray, p: &ResizeParams) -> f64 {
    assert_eq!(array.capacity(), 0, "Fig. 3 starts from an empty array");
    let start = Instant::now();
    for _ in 0..p.increments {
        array.resize(p.increment);
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Reclaim whatever the resizes deferred so runs don't accumulate.
    array.checkpoint();
    p.increments as f64 / elapsed
}

/// Figure 4: sweep checkpoint frequency on a QSBR-style array. For each
/// `ops_per_checkpoint` value, runs `base` with `checkpoint_every` set and
/// returns `(ops_per_checkpoint, ops_per_sec)` points.
pub fn run_checkpoint_sweep(
    make: impl Fn() -> Box<dyn BenchArray>,
    cluster: &Arc<Cluster>,
    base: &IndexingParams,
    frequencies: &[usize],
) -> Vec<(usize, f64)> {
    frequencies
        .iter()
        .map(|&every| {
            let array = make();
            let p = IndexingParams {
                checkpoint_every: Some(every),
                ..*base
            };
            (every, run_indexing(array.as_ref(), cluster, &p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrays::{make_array_config, ArrayKind};
    use rcuarray_ebr::OrderingMode;
    use rcuarray_runtime::Topology;

    fn quick_cluster() -> Arc<Cluster> {
        Cluster::new(Topology::new(2, 1))
    }

    fn quick_params() -> IndexingParams {
        IndexingParams {
            tasks_per_locale: 2,
            ops_per_task: 200,
            capacity: 512,
            ..IndexingParams::default()
        }
    }

    #[test]
    fn indexing_runs_every_paper_variant() {
        let cluster = quick_cluster();
        for kind in ArrayKind::PAPER {
            let a = make_array_config(kind, &cluster, 64, false, OrderingMode::SeqCst);
            let tput = run_indexing(a.as_ref(), &cluster, &quick_params());
            assert!(tput > 0.0, "{kind} produced no throughput");
            assert!(a.capacity() >= 512);
        }
    }

    #[test]
    fn sequential_pattern_runs() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        let p = IndexingParams {
            pattern: IndexPattern::Sequential,
            ..quick_params()
        };
        assert!(run_indexing(a.as_ref(), &cluster, &p) > 0.0);
    }

    #[test]
    fn read_mix_runs_and_counts_all_ops() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        for rp in [0u8, 50, 90, 100] {
            let p = IndexingParams {
                read_percent: rp,
                ..quick_params()
            };
            assert!(run_indexing(a.as_ref(), &cluster, &p) > 0.0, "rp={rp}");
        }
    }

    #[test]
    fn checkpointed_run_reclaims() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        let p = IndexingParams {
            checkpoint_every: Some(10),
            ..quick_params()
        };
        assert!(run_indexing(a.as_ref(), &cluster, &p) > 0.0);
    }

    #[test]
    fn resize_benchmark_counts_increments() {
        let cluster = quick_cluster();
        for kind in [ArrayKind::Qsbr, ArrayKind::Chapel] {
            let a = make_array_config(kind, &cluster, 64, false, OrderingMode::SeqCst);
            let p = ResizeParams {
                increments: 16,
                increment: 64,
            };
            let tput = run_resize(a.as_ref(), &p);
            assert!(tput > 0.0);
            assert_eq!(a.capacity(), 16 * 64, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "empty array")]
    fn resize_benchmark_requires_fresh_array() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        a.resize(64);
        run_resize(a.as_ref(), &ResizeParams::default());
    }

    #[test]
    fn checkpoint_sweep_returns_one_point_per_frequency() {
        let cluster = quick_cluster();
        let base = quick_params();
        let points = run_checkpoint_sweep(
            || make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst),
            &cluster,
            &base,
            &[1, 10, 100],
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].0, 1);
        assert!(points.iter().all(|&(_, t)| t > 0.0));
    }
}
