//! Measured benchmark loops, spawning the paper's "N tasks per locale"
//! shape through the simulated cluster.

use crate::arrays::BenchArray;
use crate::workload::{IndexPattern, IndexStream};
use rcuarray_obs::{Histogram, HistogramSnapshot};
use rcuarray_runtime::Cluster;
use std::sync::Arc;
use std::time::Instant;

/// Outcome of one measured run: aggregate throughput plus the per-op
/// latency distribution (nanoseconds), recorded op-by-op into a shared
/// log-bucketed histogram so every `BENCH_*.json` variant carries its
/// tail, not just its mean.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload throughput in operations per second.
    pub ops_per_sec: f64,
    /// Per-operation latency histogram, in nanoseconds.
    pub latency: HistogramSnapshot,
}

/// Parameters of a Figure-2-style indexing run.
#[derive(Debug, Clone, Copy)]
pub struct IndexingParams {
    /// Tasks spawned on every locale (paper: 44).
    pub tasks_per_locale: usize,
    /// Update operations per task (paper: 1024 or 1M).
    pub ops_per_task: usize,
    /// Random or sequential indices.
    pub pattern: IndexPattern,
    /// Array capacity the run indexes into.
    pub capacity: usize,
    /// `Some(n)`: invoke a checkpoint after every `n` operations
    /// (Figure 4). `None`: never checkpoint (the paper's QSBRArray
    /// "best-case").
    pub checkpoint_every: Option<usize>,
    /// Percentage of operations that are reads (0–100). The paper's
    /// figures use pure updates (`0`); the extended reclaimer-zoo
    /// ablation sweeps this to show where read-optimized designs pull
    /// ahead.
    pub read_percent: u8,
    /// PRNG seed for the random pattern.
    pub seed: u64,
}

impl Default for IndexingParams {
    fn default() -> Self {
        IndexingParams {
            tasks_per_locale: 4,
            ops_per_task: 1024,
            pattern: IndexPattern::Random,
            capacity: 1 << 20,
            checkpoint_every: None,
            read_percent: 0,
            seed: 0xC0FFEE,
        }
    }
}

/// Run an indexing benchmark: every task performs `ops_per_task` update
/// operations against `array`. Returns throughput plus the per-op
/// latency histogram.
///
/// The array is grown to `capacity` first (outside the timed region).
pub fn run_indexing(
    array: &dyn BenchArray,
    cluster: &Arc<Cluster>,
    p: &IndexingParams,
) -> RunResult {
    assert!(p.capacity > 0 && p.ops_per_task > 0 && p.tasks_per_locale > 0);
    if array.capacity() < p.capacity {
        array.resize(p.capacity - array.capacity());
    }
    let total_ops = (cluster.num_locales() * p.tasks_per_locale * p.ops_per_task) as f64;
    // Shared log-bucketed histogram: record() is a handful of relaxed
    // atomics, cheap enough to time every op without a per-task merge.
    let latency = Histogram::new();

    let start = Instant::now();
    cluster.spawn_tasks(p.tasks_per_locale, |loc, task| {
        let task_id = (loc.index() * p.tasks_per_locale + task) as u64;
        let mut stream = IndexStream::new(p.pattern, p.capacity, p.seed, task_id);
        // Deterministic read/write interleave from the percentage: every
        // op whose counter lands below read_percent (mod 100) reads.
        let rp = p.read_percent.min(100) as usize;
        let mut sink = 0u64;
        match p.checkpoint_every {
            None => {
                for k in 0..p.ops_per_task {
                    let idx = stream.next_index();
                    let t0 = Instant::now();
                    if k % 100 < rp {
                        sink = sink.wrapping_add(array.read(idx));
                    } else {
                        array.write(idx, k as u64);
                    }
                    latency.record(t0.elapsed().as_nanos() as u64);
                }
            }
            Some(every) => {
                let every = every.max(1);
                for k in 0..p.ops_per_task {
                    let idx = stream.next_index();
                    let t0 = Instant::now();
                    if k % 100 < rp {
                        sink = sink.wrapping_add(array.read(idx));
                    } else {
                        array.write(idx, k as u64);
                    }
                    latency.record(t0.elapsed().as_nanos() as u64);
                    if (k + 1) % every == 0 {
                        array.checkpoint();
                    }
                }
            }
        }
        std::hint::black_box(sink);
    });
    let elapsed = start.elapsed().as_secs_f64();
    RunResult {
        ops_per_sec: total_ops / elapsed,
        latency: latency.snapshot(),
    }
}

/// Parameters of the Figure 3 resize benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ResizeParams {
    /// Number of resize operations (paper: 1024).
    pub increments: usize,
    /// Elements added per resize (paper: 1024, one block).
    pub increment: usize,
}

impl Default for ResizeParams {
    fn default() -> Self {
        ResizeParams {
            increments: 1024,
            increment: 1024,
        }
    }
}

/// Run the resize benchmark: `increments` sequential resizes of
/// `increment` elements, "starting with zero-capacity". Returns
/// throughput plus the per-resize latency histogram.
pub fn run_resize(array: &dyn BenchArray, p: &ResizeParams) -> RunResult {
    assert_eq!(array.capacity(), 0, "Fig. 3 starts from an empty array");
    let latency = Histogram::new();
    let start = Instant::now();
    for _ in 0..p.increments {
        let t0 = Instant::now();
        array.resize(p.increment);
        latency.record(t0.elapsed().as_nanos() as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Reclaim whatever the resizes deferred so runs don't accumulate.
    array.checkpoint();
    RunResult {
        ops_per_sec: p.increments as f64 / elapsed,
        latency: latency.snapshot(),
    }
}

/// Figure 4: sweep checkpoint frequency on a QSBR-style array. For each
/// `ops_per_checkpoint` value, runs `base` with `checkpoint_every` set and
/// returns `(ops_per_checkpoint, ops_per_sec)` points.
pub fn run_checkpoint_sweep(
    make: impl Fn() -> Box<dyn BenchArray>,
    cluster: &Arc<Cluster>,
    base: &IndexingParams,
    frequencies: &[usize],
) -> Vec<(usize, f64)> {
    frequencies
        .iter()
        .map(|&every| {
            let array = make();
            let p = IndexingParams {
                checkpoint_every: Some(every),
                ..*base
            };
            (every, run_indexing(array.as_ref(), cluster, &p).ops_per_sec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrays::{make_array_config, ArrayKind};
    use rcuarray_ebr::OrderingMode;
    use rcuarray_runtime::Topology;

    fn quick_cluster() -> Arc<Cluster> {
        Cluster::new(Topology::new(2, 1))
    }

    fn quick_params() -> IndexingParams {
        IndexingParams {
            tasks_per_locale: 2,
            ops_per_task: 200,
            capacity: 512,
            ..IndexingParams::default()
        }
    }

    #[test]
    fn indexing_runs_every_paper_variant() {
        let cluster = quick_cluster();
        let p = quick_params();
        let total = cluster.num_locales() * p.tasks_per_locale * p.ops_per_task;
        for kind in ArrayKind::PAPER {
            let a = make_array_config(kind, &cluster, 64, false, OrderingMode::SeqCst);
            let r = run_indexing(a.as_ref(), &cluster, &p);
            assert!(r.ops_per_sec > 0.0, "{kind} produced no throughput");
            assert_eq!(
                r.latency.count, total as u64,
                "{kind}: every op must land in the latency histogram"
            );
            assert!(r.latency.quantile(0.99) >= r.latency.quantile(0.50));
            assert!(a.capacity() >= 512);
        }
    }

    #[test]
    fn sequential_pattern_runs() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        let p = IndexingParams {
            pattern: IndexPattern::Sequential,
            ..quick_params()
        };
        assert!(run_indexing(a.as_ref(), &cluster, &p).ops_per_sec > 0.0);
    }

    #[test]
    fn read_mix_runs_and_counts_all_ops() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        for rp in [0u8, 50, 90, 100] {
            let p = IndexingParams {
                read_percent: rp,
                ..quick_params()
            };
            let r = run_indexing(a.as_ref(), &cluster, &p);
            assert!(r.ops_per_sec > 0.0, "rp={rp}");
            assert_eq!(
                r.latency.count as usize,
                cluster.num_locales() * p.tasks_per_locale * p.ops_per_task,
                "rp={rp}: reads and writes both count"
            );
        }
    }

    #[test]
    fn checkpointed_run_reclaims() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        let p = IndexingParams {
            checkpoint_every: Some(10),
            ..quick_params()
        };
        assert!(run_indexing(a.as_ref(), &cluster, &p).ops_per_sec > 0.0);
    }

    #[test]
    fn resize_benchmark_counts_increments() {
        let cluster = quick_cluster();
        for kind in [ArrayKind::Qsbr, ArrayKind::Chapel] {
            let a = make_array_config(kind, &cluster, 64, false, OrderingMode::SeqCst);
            let p = ResizeParams {
                increments: 16,
                increment: 64,
            };
            let r = run_resize(a.as_ref(), &p);
            assert!(r.ops_per_sec > 0.0);
            assert_eq!(r.latency.count, 16, "one latency sample per resize");
            assert_eq!(a.capacity(), 16 * 64, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "empty array")]
    fn resize_benchmark_requires_fresh_array() {
        let cluster = quick_cluster();
        let a = make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst);
        a.resize(64);
        run_resize(a.as_ref(), &ResizeParams::default());
    }

    #[test]
    fn checkpoint_sweep_returns_one_point_per_frequency() {
        let cluster = quick_cluster();
        let base = quick_params();
        let points = run_checkpoint_sweep(
            || make_array_config(ArrayKind::Qsbr, &cluster, 64, false, OrderingMode::SeqCst),
            &cluster,
            &base,
            &[1, 10, 100],
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].0, 1);
        assert!(points.iter().all(|&(_, t)| t > 0.0));
    }
}
