//! Output formatting for `paper_tables`: the series the paper plots,
//! rendered as aligned text tables (JSON rendering is hand-rolled below,
//! keeping the harness free of external serialization dependencies).

/// One line of a figure: a named series of `(x, ops/sec)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name (e.g. "QSBRArray").
    pub name: String,
    /// `(x, throughput)` points, x typically the locale count.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: usize, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn at(&self, x: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| px == x)
            .map(|&(_, y)| y)
    }
}

/// A rendered figure: a title, an x-axis label and several series over the
/// same x values.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure title (e.g. "Fig. 2a Random Indexing (1024 ops/task)").
    pub title: String,
    /// X-axis label (e.g. "locales").
    pub x_label: String,
    /// X values, in row order.
    pub xs: Vec<usize>,
    /// One column per array variant.
    pub series: Vec<Series>,
}

impl Table {
    /// An empty table over the given x values.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, xs: Vec<usize>) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            xs,
            series: Vec::new(),
        }
    }

    /// Add a series (must cover the table's x values; missing cells render
    /// as "-").
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Ratio `a / b` at `x` — the harness uses this to report the paper's
    /// headline factors (e.g. "EBR at N% of ChapelArray").
    pub fn ratio_at(&self, a: &str, b: &str, x: usize) -> Option<f64> {
        let ya = self.series.iter().find(|s| s.name == a)?.at(x)?;
        let yb = self.series.iter().find(|s| s.name == b)?.at(x)?;
        if yb == 0.0 {
            None
        } else {
            Some(ya / yb)
        }
    }

    /// Minimal JSON rendering (hand-rolled; avoids a serde_json
    /// dependency for one output path).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"title\":{:?},\"x_label\":{:?},\"series\":[",
            self.title, self.x_label
        ));
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":{:?},\"points\":[", s.name));
            for (j, (x, y)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{x},{y}]"));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Human format for a throughput cell.
pub fn fmt_throughput(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e9 {
        format!("{:.2}G", ops_per_sec / 1e9)
    } else if ops_per_sec >= 1e6 {
        format!("{:.2}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}k", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        // Header.
        let mut widths = vec![self.x_label.len().max(7)];
        for s in &self.series {
            widths.push(s.name.len().max(10));
        }
        write!(f, "{:>w$}", self.x_label, w = widths[0])?;
        for (i, s) in self.series.iter().enumerate() {
            write!(f, "  {:>w$}", s.name, w = widths[i + 1])?;
        }
        writeln!(f)?;
        // Rows.
        for &x in &self.xs {
            write!(f, "{:>w$}", x, w = widths[0])?;
            for (i, s) in self.series.iter().enumerate() {
                let cell = s.at(x).map(fmt_throughput).unwrap_or_else(|| "-".into());
                write!(f, "  {:>w$}", cell, w = widths[i + 1])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Fig X", "locales", vec![1, 2, 4]);
        let mut a = Series::new("QSBRArray");
        a.push(1, 1e6);
        a.push(2, 2e6);
        a.push(4, 4e6);
        let mut b = Series::new("EBRArray");
        b.push(1, 5e5);
        b.push(2, 4e5);
        t.push_series(a);
        t.push_series(b);
        t
    }

    #[test]
    fn series_at_lookup() {
        let t = sample_table();
        assert_eq!(t.series[0].at(2), Some(2e6));
        assert_eq!(t.series[1].at(4), None);
    }

    #[test]
    fn ratio_at_computes() {
        let t = sample_table();
        let r = t.ratio_at("EBRArray", "QSBRArray", 2).unwrap();
        assert!((r - 0.2).abs() < 1e-9);
        assert!(t.ratio_at("EBRArray", "QSBRArray", 4).is_none());
        assert!(t.ratio_at("Nope", "QSBRArray", 1).is_none());
    }

    #[test]
    fn display_renders_all_rows_and_dashes() {
        let out = sample_table().to_string();
        assert!(out.contains("Fig X"));
        assert!(out.contains("QSBRArray"));
        assert!(out.contains("1.00M"));
        assert!(out.contains('-'), "missing cell must render as dash");
        assert_eq!(out.lines().count(), 5); // title + header + 3 rows
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_throughput(3.2e9), "3.20G");
        assert_eq!(fmt_throughput(1.5e6), "1.50M");
        assert_eq!(fmt_throughput(2500.0), "2.5k");
        assert_eq!(fmt_throughput(42.0), "42");
    }
}
