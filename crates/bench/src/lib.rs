#![warn(missing_docs)]

//! # rcuarray-bench — the harness that regenerates every figure
//!
//! The paper's evaluation (§V) consists of Figures 2a–d (random/sequential
//! indexing at 1024 and 1M ops per task), Figure 3 (1024 incremental
//! resizes to ~1M elements) and Figure 4 (QSBR checkpoint-frequency
//! sweep). This crate provides:
//!
//! * [`workload`] — the index streams the benchmarks drive arrays with;
//! * [`arrays`] — one object-safe facade over every array variant
//!   (EBRArray, QSBRArray, ChapelArray/UnsafeArray, SyncArray, plus the
//!   extra comparators RwLockArray, HazardArray, LockFreeVector);
//! * [`runner`] — measured loops for the indexing, resize and checkpoint
//!   workloads, spawning the paper's "N tasks per locale" shape through
//!   the simulated cluster;
//! * [`service_load`] — an open-loop load generator for the serving
//!   layer (`rcuarray-service`), feeding the `service` workload;
//! * [`report`] — series/table formatting for `paper_tables` output;
//! * [`telemetry`] — background gauge sampling and the
//!   `BENCH_<workload>.json` report the `bench` binary emits.
//!
//! Criterion benches under `benches/` regenerate each figure
//! statistically; the `paper_tables` binary prints the same rows/series
//! the paper plots (x = locales, y = operations per second).

pub mod arrays;
pub mod report;
pub mod runner;
pub mod service_load;
pub mod telemetry;
pub mod workload;

pub use arrays::{make_array, ArrayKind, BenchArray};
pub use report::{Series, Table};
pub use runner::{
    run_checkpoint_sweep, run_indexing, run_resize, IndexingParams, ResizeParams, RunResult,
};
pub use service_load::{run_service_load, ServiceLoadParams, ServiceLoadResult};
pub use telemetry::{bench_json, write_bench_report, Sample, Sampler, VariantReport};
pub use workload::{sequential_indices, shuffled_indices, IndexPattern, IndexStream};
