//! Open-loop load generator for the serving layer (DESIGN.md §11).
//!
//! Closed-loop clients (submit, wait, repeat) hide queueing delay: a
//! slow server throttles its own load and the measured latency flatters
//! it (coordinated omission). This generator is open-loop in the
//! operative sense — every client fires its whole request schedule
//! *without waiting for responses*, so arrival pressure is independent
//! of service speed — then settles the outstanding tickets in
//! submission order and records each request's admission-to-completion
//! latency. Refused (`Overloaded`) and shed requests still resolve a
//! ticket and are tallied separately; only successfully served requests
//! count toward throughput.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcuarray::{Element, Scheme};
use rcuarray_obs::{Histogram, HistogramSnapshot};
use rcuarray_service::{Request, Response, Service};
use std::time::{Duration, Instant};

/// Shape of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLoadParams {
    /// Concurrent client threads firing schedules.
    pub clients: usize,
    /// Requests each client submits before settling its tickets.
    pub requests_per_client: usize,
    /// Percentage of requests that are Gets (the rest are Puts).
    pub read_percent: u8,
    /// Index range the requests target (the array must already cover it).
    pub capacity: usize,
    /// PRNG seed; each client derives a distinct stream.
    pub seed: u64,
}

impl Default for ServiceLoadParams {
    fn default() -> Self {
        ServiceLoadParams {
            clients: 4,
            requests_per_client: 4096,
            read_percent: 80,
            capacity: 1 << 14,
            seed: 0xC0FFEE,
        }
    }
}

/// Tally of one open-loop run.
#[derive(Debug, Clone)]
pub struct ServiceLoadResult {
    /// Successfully served requests per second of wall time.
    pub ops_per_sec: f64,
    /// Admission-to-completion latency (ns) of every resolved request.
    pub latency: HistogramSnapshot,
    /// Requests answered with a value / write ack.
    pub served: u64,
    /// Requests refused at admission (`Response::Overloaded`).
    pub overloaded: u64,
    /// Requests dropped past their deadline (`Response::Shed`).
    pub shed: u64,
    /// Requests that failed in execution.
    pub failed: u64,
}

impl ServiceLoadResult {
    /// Every submitted request resolved into exactly one tally bucket.
    pub fn total(&self) -> u64 {
        self.served + self.overloaded + self.shed + self.failed
    }
}

/// Drive `service` with `p.clients` open-loop threads and settle every
/// ticket. Panics if a ticket fails to resolve within 60 seconds — an
/// unresolved ticket is a wedged service, not a slow one.
pub fn run_service_load<T, S>(service: &Service<T, S>, p: &ServiceLoadParams) -> ServiceLoadResult
where
    T: Element + From<u64>,
    S: Scheme,
{
    assert!(p.clients > 0 && p.requests_per_client > 0 && p.capacity > 0);
    let latency = Histogram::new();
    let served = rcuarray_obs::Counter::default();
    let overloaded = rcuarray_obs::Counter::default();
    let shed = rcuarray_obs::Counter::default();
    let failed = rcuarray_obs::Counter::default();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..p.clients {
            let client = service.client();
            let latency = &latency;
            let (served, overloaded, shed, failed) = (&served, &overloaded, &shed, &failed);
            scope.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(p.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let rp = p.read_percent.min(100) as u64;
                // Fire the whole schedule without waiting: arrivals are
                // decoupled from completions.
                let mut outstanding = Vec::with_capacity(p.requests_per_client);
                for _ in 0..p.requests_per_client {
                    let idx = rng.random_range(0..p.capacity);
                    let req = if rng.random_range(0..100u64) < rp {
                        Request::Get { idx }
                    } else {
                        Request::Put {
                            idx,
                            value: T::from(idx as u64),
                        }
                    };
                    let t0 = Instant::now();
                    outstanding.push((client.submit(req), t0));
                }
                // Settle in submission order (the per-queue service is
                // FIFO, so the head ticket is always the oldest
                // outstanding one).
                for (ticket, t0) in outstanding {
                    let resp = ticket
                        .wait_timeout(Duration::from_secs(60))
                        .unwrap_or_else(|_| panic!("service wedged: ticket never resolved"));
                    latency.record(t0.elapsed().as_nanos() as u64);
                    match resp {
                        Response::Value(_) | Response::Done { .. } => served.add(1),
                        Response::Overloaded { .. } => overloaded.add(1),
                        Response::Shed { .. } => shed.add(1),
                        _ => failed.add(1),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    ServiceLoadResult {
        ops_per_sec: served.value() as f64 / elapsed,
        latency: latency.snapshot(),
        served: served.value(),
        overloaded: overloaded.value(),
        shed: shed.value(),
        failed: failed.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray::QsbrArray;
    use rcuarray_runtime::{Cluster, Topology};
    use rcuarray_service::ServiceConfig;

    fn quick_params() -> ServiceLoadParams {
        ServiceLoadParams {
            clients: 2,
            requests_per_client: 200,
            capacity: 256,
            ..ServiceLoadParams::default()
        }
    }

    #[test]
    fn open_loop_settles_every_ticket() {
        let cluster = Cluster::new(Topology::new(2, 1));
        let array: QsbrArray<u64> = QsbrArray::new(&cluster);
        array.resize(256);
        let service = Service::start(
            array,
            ServiceConfig {
                queue_capacity: 64,
                deadline: Duration::from_secs(30),
                ..ServiceConfig::default()
            },
        );
        let p = quick_params();
        let r = run_service_load(&service, &p);
        service.shutdown();

        assert_eq!(
            r.total(),
            (p.clients * p.requests_per_client) as u64,
            "every request resolves into exactly one bucket: {r:?}"
        );
        assert_eq!(r.latency.count, r.total(), "every resolution is timed");
        assert!(r.served > 0, "some requests must be served: {r:?}");
        assert!(r.ops_per_sec > 0.0);
        assert_eq!(r.failed, 0, "no faults are armed: {r:?}");
    }

    #[test]
    fn tiny_queue_refuses_some_of_the_flood() {
        let cluster = Cluster::new(Topology::new(1, 1));
        let array: QsbrArray<u64> = QsbrArray::new(&cluster);
        array.resize(256);
        let service = Service::start(
            array,
            ServiceConfig {
                queue_capacity: 2,
                deadline: Duration::from_secs(30),
                ..ServiceConfig::default()
            },
        );
        let r = run_service_load(&service, &quick_params());
        service.shutdown();
        assert!(
            r.overloaded > 0,
            "a 2-deep queue under a 400-request flood must refuse: {r:?}"
        );
        assert!(r.served > 0, "refusal must not starve service: {r:?}");
    }
}
