//! Index streams for the Figure 2 indexing benchmarks.
//!
//! §V-A: tasks "perform update operations … on randomized and sequential
//! indices of the array". Random streams are generated per task from a
//! deterministic seed so runs are reproducible; sequential streams start
//! at a per-task offset and walk the array with wraparound, which is the
//! cache-friendly, predictable pattern where the paper's QSBRArray
//! overtakes ChapelArray (Fig. 2d).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which index pattern a benchmark drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPattern {
    /// Uniformly random indices (Fig. 2a / 2c).
    Random,
    /// Per-task sequential walk with wraparound (Fig. 2b / 2d).
    Sequential,
}

impl IndexPattern {
    /// Short label used in series names ("rand" / "seq").
    pub fn label(self) -> &'static str {
        match self {
            IndexPattern::Random => "rand",
            IndexPattern::Sequential => "seq",
        }
    }
}

impl std::fmt::Display for IndexPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A lazily generated stream of indices into `[0, capacity)`.
///
/// Streaming (rather than materializing a `Vec`) keeps the 1M-ops-per-task
/// configurations from allocating gigabytes and keeps the measured loop's
/// memory traffic on the *array*, not the workload.
#[derive(Debug, Clone)]
pub enum IndexStream {
    /// PRNG-driven uniform indices.
    Random {
        /// Per-task deterministic generator.
        rng: StdRng,
        /// Exclusive index bound.
        capacity: usize,
    },
    /// `start, start+1, …` mod capacity.
    Sequential {
        /// Next index to yield.
        next: usize,
        /// Exclusive index bound (wraps).
        capacity: usize,
    },
}

impl IndexStream {
    /// A stream for `pattern`, deterministic in `(seed, task_id)`.
    pub fn new(pattern: IndexPattern, capacity: usize, seed: u64, task_id: u64) -> Self {
        assert!(capacity > 0, "cannot index an empty array");
        match pattern {
            IndexPattern::Random => IndexStream::Random {
                // Distinct, well-mixed stream per task.
                rng: StdRng::seed_from_u64(seed ^ task_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                capacity,
            },
            IndexPattern::Sequential => IndexStream::Sequential {
                // Tasks start at spread offsets so they do not convoy on
                // the same block.
                next: (task_id as usize).wrapping_mul(capacity / 64 + 1) % capacity,
                capacity,
            },
        }
    }

    /// Next index.
    #[inline]
    pub fn next_index(&mut self) -> usize {
        match self {
            IndexStream::Random { rng, capacity } => rng.random_range(0..*capacity),
            IndexStream::Sequential { next, capacity } => {
                let i = *next;
                *next = (i + 1) % *capacity;
                i
            }
        }
    }
}

/// Materialize `n` sequential indices starting at `start` (test helper).
pub fn sequential_indices(start: usize, n: usize, capacity: usize) -> Vec<usize> {
    (0..n).map(|k| (start + k) % capacity).collect()
}

/// Materialize `n` random indices from the deterministic stream
/// (test helper).
pub fn shuffled_indices(seed: u64, n: usize, capacity: usize) -> Vec<usize> {
    let mut s = IndexStream::new(IndexPattern::Random, capacity, seed, 0);
    (0..n).map(|_| s.next_index()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_stream_is_deterministic_per_seed_and_task() {
        let a = shuffled_indices(7, 100, 1000);
        let b = shuffled_indices(7, 100, 1000);
        assert_eq!(a, b);
        let c = shuffled_indices(8, 100, 1000);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn random_tasks_get_distinct_streams() {
        let mut t0 = IndexStream::new(IndexPattern::Random, 1 << 20, 1, 0);
        let mut t1 = IndexStream::new(IndexPattern::Random, 1 << 20, 1, 1);
        let a: Vec<usize> = (0..50).map(|_| t0.next_index()).collect();
        let b: Vec<usize> = (0..50).map(|_| t1.next_index()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn random_indices_in_bounds() {
        for idx in shuffled_indices(3, 10_000, 257) {
            assert!(idx < 257);
        }
    }

    #[test]
    fn sequential_wraps() {
        assert_eq!(sequential_indices(8, 4, 10), vec![8, 9, 0, 1]);
    }

    #[test]
    fn sequential_stream_matches_helper() {
        let mut s = IndexStream::new(IndexPattern::Sequential, 10, 0, 0);
        let first = s.next_index();
        let got: Vec<usize> = std::iter::once(first)
            .chain((0..3).map(|_| s.next_index()))
            .collect();
        assert_eq!(got, sequential_indices(first, 4, 10));
    }

    #[test]
    fn sequential_tasks_start_at_spread_offsets() {
        let mut a = IndexStream::new(IndexPattern::Sequential, 1024, 0, 0);
        let mut b = IndexStream::new(IndexPattern::Sequential, 1024, 0, 1);
        assert_ne!(a.next_index(), b.next_index());
    }

    #[test]
    #[should_panic(expected = "empty array")]
    fn zero_capacity_rejected() {
        IndexStream::new(IndexPattern::Random, 0, 0, 0);
    }

    #[test]
    fn labels() {
        assert_eq!(IndexPattern::Random.label(), "rand");
        assert_eq!(IndexPattern::Sequential.to_string(), "seq");
    }
}
