//! Per-thread participant records: the "thread-specific metadata" of
//! Algorithm 2, reachable by other threads through the registry (the
//! paper's `TLSList`) for the minimum-epoch scan.

use crate::defer_list::DeferList;
use rcuarray_analysis::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::UnsafeCell;

/// One thread's QSBR participation state.
///
/// The `observed`/`parked`/`retired` fields are read by *other* threads
/// during checkpoints; the defer list is strictly owner-accessed (that is
/// the paper's lock-freedom argument), which is why it sits in an
/// [`UnsafeCell`] behind an `unsafe` accessor rather than a lock.
pub struct ThreadRecord {
    /// The newest `StateEpoch` this thread has promised quiescence up to.
    observed: AtomicU64,
    /// Parked threads are skipped by the minimum scan: an idle thread
    /// holds no protected references by contract.
    parked: AtomicBool,
    /// Set when the owning thread exited; the registry prunes retired
    /// records lazily.
    retired: AtomicBool,
    /// Owner-only LIFO defer list.
    defer: UnsafeCell<DeferList>,
}

// SAFETY: `observed`/`parked`/`retired` are atomics; `defer` is only
// accessed through `defer_mut`, whose contract restricts it to the owning
// thread (or to the single thread holding the registry's exclusive
// teardown path).
unsafe impl Sync for ThreadRecord {}
unsafe impl Send for ThreadRecord {}

impl ThreadRecord {
    /// A fresh record that has observed `initial_epoch`.
    ///
    /// Registration is itself a quiescence point: the new thread cannot
    /// hold references to anything retired before it joined.
    pub fn new(initial_epoch: u64) -> Self {
        ThreadRecord {
            observed: AtomicU64::new(initial_epoch),
            parked: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            defer: UnsafeCell::new(DeferList::new()),
        }
    }

    /// The epoch this thread last observed.
    #[inline]
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Acquire)
    }

    /// Publish a new observed epoch — the thread's promise that "it has
    /// become entirely quiescent of the state described by" anything
    /// earlier.
    #[inline]
    pub fn observe(&self, epoch: u64) {
        debug_assert!(
            epoch >= self.observed.load(Ordering::Relaxed),
            "observed epochs must be monotone"
        );
        // Release: everything this thread did with older snapshots
        // happens-before another thread trusting this announcement.
        self.observed.store(epoch, Ordering::Release);
    }

    /// Whether the thread is parked (idle, excluded from the minimum).
    #[inline]
    pub fn is_parked(&self) -> bool {
        self.parked.load(Ordering::Acquire)
    }

    /// Mark parked / unparked.
    #[inline]
    pub fn set_parked(&self, parked: bool) {
        self.parked.store(parked, Ordering::Release);
    }

    /// Whether the owning thread has exited.
    #[inline]
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// Mark the record as belonging to an exited thread.
    #[inline]
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Whether the minimum-epoch scan should consider this record.
    #[inline]
    pub fn participates(&self) -> bool {
        !self.is_parked() && !self.is_retired()
    }

    /// Mutable access to the owner-only defer list.
    ///
    /// # Safety
    /// Only the thread that owns this record may call this while the
    /// record is live; after [`retire`](Self::retire) has been *observed*
    /// (e.g. under the registry's write lock), the retiring path may call
    /// it once to drain leftovers. Concurrent calls are undefined
    /// behaviour.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn defer_mut(&self) -> &mut DeferList {
        unsafe { &mut *self.defer.get() }
    }

    /// Number of pending defers (owner thread only — see
    /// [`defer_mut`](Self::defer_mut)).
    ///
    /// # Safety
    /// Same contract as [`defer_mut`](Self::defer_mut).
    pub unsafe fn pending(&self) -> usize {
        unsafe { (*self.defer.get()).len() }
    }

    /// Approximate bytes pending on the defer list (owner thread only).
    ///
    /// # Safety
    /// Same contract as [`defer_mut`](Self::defer_mut).
    pub unsafe fn pending_bytes(&self) -> usize {
        unsafe { (*self.defer.get()).bytes() }
    }
}

impl std::fmt::Debug for ThreadRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRecord")
            .field("observed", &self.observed())
            .field("parked", &self.is_parked())
            .field("retired", &self.is_retired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_participates() {
        let r = ThreadRecord::new(7);
        assert_eq!(r.observed(), 7);
        assert!(r.participates());
    }

    #[test]
    fn observe_is_monotone() {
        let r = ThreadRecord::new(0);
        r.observe(3);
        r.observe(3);
        r.observe(9);
        assert_eq!(r.observed(), 9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone")]
    fn observe_backwards_asserts() {
        let r = ThreadRecord::new(5);
        r.observe(4);
    }

    #[test]
    fn parked_records_do_not_participate() {
        let r = ThreadRecord::new(0);
        r.set_parked(true);
        assert!(!r.participates());
        r.set_parked(false);
        assert!(r.participates());
    }

    #[test]
    fn retired_records_do_not_participate() {
        let r = ThreadRecord::new(0);
        r.retire();
        assert!(!r.participates());
    }

    #[test]
    fn defer_list_is_reachable_by_owner() {
        let r = ThreadRecord::new(0);
        // SAFETY: we are the owning thread in this test.
        unsafe {
            r.defer_mut().push(1, || {});
            assert_eq!(r.pending(), 1);
            drop(r.defer_mut().take_all());
            assert_eq!(r.pending(), 0);
        }
    }
}
