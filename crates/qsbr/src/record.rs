//! Per-thread participant records: the "thread-specific metadata" of
//! Algorithm 2, reachable by other threads through the registry (the
//! paper's `TLSList`) for the minimum-epoch scan.

use crate::defer_list::DeferList;
use rcuarray_analysis::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::UnsafeCell;

/// One thread's QSBR participation state.
///
/// The `observed`/`parked`/`retired`/`quarantined` fields are read by
/// *other* threads during checkpoints. The defer list is owner-accessed
/// on every hot path (that is the paper's lock-freedom argument), but
/// robustness needs one cold exception: quarantining a stalled thread
/// seizes its chain from the detecting thread. Exclusion is a single
/// `defer_busy` flag — an uncontended swap+store for the owner, and a
/// *try*-acquire for the stealer (an owner mid-operation is making
/// progress and is by definition not stalled).
pub struct ThreadRecord {
    /// The newest `StateEpoch` this thread has promised quiescence up to.
    observed: AtomicU64,
    /// The domain tick at which this thread last made protocol progress
    /// (observed an epoch). Stall detection compares it against the
    /// domain's monotonic tick counter — never wall clock, so detection
    /// stays deterministic under the checker.
    progress_stamp: AtomicU64,
    /// Parked threads are skipped by the minimum scan: an idle thread
    /// holds no protected references by contract.
    parked: AtomicBool,
    /// Set when the owning thread exited; the registry prunes retired
    /// records lazily.
    retired: AtomicBool,
    /// Set by stall detection: a quarantined (force-parked) thread is
    /// skipped by the minimum scan and its defer chain has been orphaned.
    /// Cleared by the owner at its next defer/checkpoint, which re-joins
    /// as if freshly registered.
    quarantined: AtomicBool,
    /// Exclusion flag over `defer` (see type docs).
    defer_busy: AtomicBool,
    /// LIFO defer list, accessed only while holding `defer_busy`.
    defer: UnsafeCell<DeferList>,
}

// SAFETY: all fields but `defer` are atomics; `defer` is only reachable
// through `DeferGuard`, which holds the `defer_busy` exclusion flag for
// its lifetime.
unsafe impl Sync for ThreadRecord {}
unsafe impl Send for ThreadRecord {}

impl ThreadRecord {
    /// A fresh record that has observed `initial_epoch`.
    ///
    /// Registration is itself a quiescence point: the new thread cannot
    /// hold references to anything retired before it joined.
    pub fn new(initial_epoch: u64) -> Self {
        ThreadRecord {
            observed: AtomicU64::new(initial_epoch),
            progress_stamp: AtomicU64::new(0),
            parked: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            quarantined: AtomicBool::new(false),
            defer_busy: AtomicBool::new(false),
            defer: UnsafeCell::new(DeferList::new()),
        }
    }

    /// The epoch this thread last observed.
    #[inline]
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Acquire)
    }

    /// Publish a new observed epoch — the thread's promise that "it has
    /// become entirely quiescent of the state described by" anything
    /// earlier.
    #[inline]
    pub fn observe(&self, epoch: u64) {
        debug_assert!(
            epoch >= self.observed.load(Ordering::Relaxed),
            "observed epochs must be monotone"
        );
        // Release: everything this thread did with older snapshots
        // happens-before another thread trusting this announcement.
        self.observed.store(epoch, Ordering::Release);
    }

    /// The domain tick at which this thread last stamped progress.
    #[inline]
    pub fn progress_stamp(&self) -> u64 {
        self.progress_stamp.load(Ordering::Acquire)
    }

    /// Stamp protocol progress at domain tick `tick`.
    #[inline]
    pub fn stamp_progress(&self, tick: u64) {
        self.progress_stamp.store(tick, Ordering::Release);
    }

    /// Whether the thread is parked (idle, excluded from the minimum).
    #[inline]
    pub fn is_parked(&self) -> bool {
        self.parked.load(Ordering::Acquire)
    }

    /// Mark parked / unparked.
    #[inline]
    pub fn set_parked(&self, parked: bool) {
        self.parked.store(parked, Ordering::Release);
    }

    /// Whether the owning thread has exited.
    #[inline]
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// Mark the record as belonging to an exited thread.
    #[inline]
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Whether stall detection has force-parked this thread.
    #[inline]
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// Mark quarantined. Call only while holding the record's
    /// [`DeferGuard`] so the owner cannot race the chain seizure.
    #[inline]
    pub fn set_quarantined(&self, quarantined: bool) {
        self.quarantined.store(quarantined, Ordering::Release);
    }

    /// Clear the quarantine flag, returning whether it was set. Owner
    /// rejoin path; call while holding the record's [`DeferGuard`].
    #[inline]
    pub fn take_quarantined(&self) -> bool {
        self.quarantined.swap(false, Ordering::AcqRel)
    }

    /// Whether the minimum-epoch scan should consider this record.
    #[inline]
    pub fn participates(&self) -> bool {
        !self.is_parked() && !self.is_retired() && !self.is_quarantined()
    }

    /// Exclusive access to the defer list, spin-acquiring the exclusion
    /// flag. Contention exists only against the (cold, try-only)
    /// quarantine seizure, so the owner's acquisition is one uncontended
    /// atomic swap in practice.
    #[inline]
    pub fn lock_defer(&self) -> DeferGuard<'_> {
        while self.defer_busy.swap(true, Ordering::Acquire) {
            rcuarray_analysis::thread::yield_now();
        }
        DeferGuard { record: self }
    }

    /// Non-blocking [`lock_defer`](Self::lock_defer) for the quarantine
    /// path: an owner mid-operation is making progress, so a failed
    /// acquisition means "not stalled — skip".
    #[inline]
    pub fn try_lock_defer(&self) -> Option<DeferGuard<'_>> {
        if self.defer_busy.swap(true, Ordering::Acquire) {
            return None;
        }
        Some(DeferGuard { record: self })
    }

    /// Number of pending defers (acquires the exclusion flag briefly).
    pub fn pending(&self) -> usize {
        self.lock_defer().len()
    }

    /// Approximate bytes pending on the defer list.
    pub fn pending_bytes(&self) -> usize {
        self.lock_defer().bytes()
    }
}

/// Exclusive access to a record's defer list, released on drop.
pub struct DeferGuard<'a> {
    record: &'a ThreadRecord,
}

impl std::ops::Deref for DeferGuard<'_> {
    type Target = DeferList;
    #[inline]
    fn deref(&self) -> &DeferList {
        // SAFETY: we hold `defer_busy`, the sole exclusion token.
        unsafe { &*self.record.defer.get() }
    }
}

impl std::ops::DerefMut for DeferGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut DeferList {
        // SAFETY: we hold `defer_busy`, the sole exclusion token.
        unsafe { &mut *self.record.defer.get() }
    }
}

impl Drop for DeferGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.record.defer_busy.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for ThreadRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRecord")
            .field("observed", &self.observed())
            .field("parked", &self.is_parked())
            .field("retired", &self.is_retired())
            .field("quarantined", &self.is_quarantined())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_participates() {
        let r = ThreadRecord::new(7);
        assert_eq!(r.observed(), 7);
        assert!(r.participates());
    }

    #[test]
    fn observe_is_monotone() {
        let r = ThreadRecord::new(0);
        r.observe(3);
        r.observe(3);
        r.observe(9);
        assert_eq!(r.observed(), 9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone")]
    fn observe_backwards_asserts() {
        let r = ThreadRecord::new(5);
        r.observe(4);
    }

    #[test]
    fn parked_records_do_not_participate() {
        let r = ThreadRecord::new(0);
        r.set_parked(true);
        assert!(!r.participates());
        r.set_parked(false);
        assert!(r.participates());
    }

    #[test]
    fn retired_records_do_not_participate() {
        let r = ThreadRecord::new(0);
        r.retire();
        assert!(!r.participates());
    }

    #[test]
    fn quarantined_records_do_not_participate() {
        let r = ThreadRecord::new(0);
        r.set_quarantined(true);
        assert!(!r.participates());
        assert!(r.take_quarantined(), "flag was set");
        assert!(!r.take_quarantined(), "flag consumed");
        assert!(r.participates());
    }

    #[test]
    fn progress_stamp_round_trips() {
        let r = ThreadRecord::new(0);
        assert_eq!(r.progress_stamp(), 0);
        r.stamp_progress(42);
        assert_eq!(r.progress_stamp(), 42);
    }

    #[test]
    fn defer_list_is_reachable_through_the_guard() {
        let r = ThreadRecord::new(0);
        r.lock_defer().push(1, || {});
        assert_eq!(r.pending(), 1);
        drop(r.lock_defer().take_all());
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn try_lock_defer_fails_while_held() {
        let r = ThreadRecord::new(0);
        let g = r.lock_defer();
        assert!(r.try_lock_defer().is_none(), "flag is exclusive");
        drop(g);
        assert!(r.try_lock_defer().is_some());
    }
}
