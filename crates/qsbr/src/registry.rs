//! The registry of participating threads: the paper's `TLSList`, "a linked
//! list" through which "all threads act as participants and keep track of
//! their own thread-specific metadata".
//!
//! Checkpoints scan it to find "the minimum observed epoch of all threads"
//! (Algorithm 2 lines 6–8). Registration and thread exit are rare, so the
//! list lives under a read-write lock: the hot scan takes the shared side.

use crate::defer_list::DeferChain;
use crate::record::ThreadRecord;
use rcuarray_analysis::sync::{Mutex, RwLock};
use rcuarray_reclaim::StallPolicy;
use std::sync::Arc;

/// An orphaned defer chain left behind by an exited thread, tagged with
/// the largest safe epoch it contains (its head's epoch): the whole chain
/// is reclaimable once the minimum observed epoch reaches that.
struct Orphan {
    max_epoch: u64,
    chain: DeferChain,
}

/// The domain-wide thread registry.
#[derive(Default)]
pub struct Registry {
    records: RwLock<Vec<Arc<ThreadRecord>>>,
    orphans: Mutex<Vec<Orphan>>,
    /// Lock-free mirror of `orphans.len()`, so the checkpoint hot path
    /// can skip orphan processing without touching the mutex.
    orphan_count: rcuarray_analysis::atomic::AtomicUsize,
    /// Currently quarantined (force-parked) participants.
    quarantined_count: rcuarray_analysis::atomic::AtomicUsize,
    /// Total quarantine events since the domain was created.
    quarantines_total: rcuarray_analysis::atomic::AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a new participant that has observed `initial_epoch`.
    /// Prunes records of exited threads while it holds the write lock.
    pub fn register(&self, initial_epoch: u64) -> Arc<ThreadRecord> {
        let record = Arc::new(ThreadRecord::new(initial_epoch));
        let mut records = self.records.write();
        records.retain(|r| !r.is_retired());
        records.push(Arc::clone(&record));
        record
    }

    /// Remove a participant at thread exit. Any reclamations still pending
    /// on its defer list are handed to the orphan list so they are neither
    /// leaked nor freed early.
    ///
    /// The record is retired *before* its defer list is drained; the drain
    /// holds the record's exclusion flag, so a concurrent quarantine scan
    /// either finished first (the list is already empty) or skips the
    /// record.
    pub fn unregister(&self, record: &Arc<ThreadRecord>) {
        record.retire();
        let leftovers = {
            let mut defer = record.lock_defer();
            if record.take_quarantined() {
                // Exited while quarantined: its chain was already orphaned
                // by the detector; just settle the gauge.
                self.quarantined_count
                    .fetch_sub(1, rcuarray_analysis::atomic::Ordering::AcqRel);
            }
            defer.take_all()
        };
        self.adopt(leftovers);
        self.records.write().retain(|r| !Arc::ptr_eq(r, record));
    }

    /// Adopt a defer chain whose owner can no longer process it (thread
    /// exit or parking).
    pub fn adopt(&self, chain: DeferChain) {
        if chain.is_empty() {
            return;
        }
        // The chain head carries the largest epoch (descending order,
        // Lemma 4); conservatively gate the whole chain on it.
        let max_epoch = chain_max_epoch(&chain);
        let mut orphans = self.orphans.lock();
        orphans.push(Orphan { max_epoch, chain });
        self.orphan_count
            .store(orphans.len(), rcuarray_analysis::atomic::Ordering::Release);
    }

    /// Whether any orphaned chains are pending (lock-free check).
    #[inline]
    pub fn has_orphans(&self) -> bool {
        self.orphan_count
            .load(rcuarray_analysis::atomic::Ordering::Acquire)
            != 0
    }

    /// The minimum observed epoch over all *participating* threads
    /// (Algorithm 2 lines 6–8), or `fallback` when no thread participates
    /// (then everything retired so far is reclaimable).
    pub fn min_observed(&self, fallback: u64) -> u64 {
        let records = self.records.read();
        records
            .iter()
            .filter(|r| r.participates())
            .map(|r| r.observed())
            .min()
            .unwrap_or(fallback)
    }

    /// Reclaim every orphaned chain whose epochs are all `<= min_epoch`.
    /// Returns `(entries freed, approximate bytes freed)`.
    pub fn reclaim_orphans(&self, min_epoch: u64) -> (usize, usize) {
        self.reclaim_orphans_budgeted(min_epoch, usize::MAX)
    }

    /// [`reclaim_orphans`](Self::reclaim_orphans) with a bounded drain:
    /// eligible chains are reclaimed whole, one at a time, only while
    /// fewer than `budget` entries have been freed — so the overshoot is
    /// at most the last chain's length, not the whole orphan backlog.
    pub fn reclaim_orphans_budgeted(&self, min_epoch: u64, budget: usize) -> (usize, usize) {
        self.reclaim_orphans_budgeted_bytes(min_epoch, budget, usize::MAX)
    }

    /// [`reclaim_orphans_budgeted`](Self::reclaim_orphans_budgeted) with an
    /// additional *byte* budget: chains stop draining once either
    /// `budget` entries or `byte_budget` bytes have been freed (the last
    /// chain may overshoot both by its own size).
    pub fn reclaim_orphans_budgeted_bytes(
        &self,
        min_epoch: u64,
        budget: usize,
        byte_budget: usize,
    ) -> (usize, usize) {
        // try_lock: orphan reclamation is best-effort housekeeping; a
        // contended checkpoint should not serialize on it.
        let Some(mut orphans) = self.orphans.try_lock() else {
            return (0, 0);
        };
        let mut freed = 0;
        let mut freed_bytes = 0;
        orphans.retain_mut(|o| {
            if freed >= budget || freed_bytes >= byte_budget || o.max_epoch > min_epoch {
                return true;
            }
            let chain = std::mem::replace(&mut o.chain, DeferChain::empty());
            freed_bytes += chain.bytes();
            freed += chain.reclaim_all();
            false
        });
        self.orphan_count
            .store(orphans.len(), rcuarray_analysis::atomic::Ordering::Release);
        (freed, freed_bytes)
    }

    /// Quarantine every participant that `policy` declares stalled:
    /// `state_epoch - observed >= lag_epochs` *and* no progress stamp for
    /// `patience` ticks (`now_tick - stamp >= patience`). A quarantined
    /// record stops gating the minimum scan and its defer chain moves to
    /// the orphan list (safe to seize: the detector holds the record's
    /// exclusion flag; an owner mid-operation fails the try-lock and is,
    /// by making progress, not stalled). Returns how many were
    /// quarantined.
    ///
    /// Semantics are exactly force-park: the domain asserts the stalled
    /// thread holds no protected references, the same contract
    /// [`park`](crate::QsbrDomain::park) places on a thread voluntarily.
    /// Thresholds must be chosen so only dead/idle readers trip them —
    /// see DESIGN.md §9.
    pub fn quarantine_stalled(
        &self,
        state_epoch: u64,
        now_tick: u64,
        policy: StallPolicy,
    ) -> usize {
        if !policy.detects_lag() {
            return 0;
        }
        let mut quarantined = 0;
        let records = self.records.read();
        for r in records.iter() {
            if !r.participates() {
                continue;
            }
            if state_epoch.saturating_sub(r.observed()) < policy.lag_epochs {
                continue;
            }
            if now_tick.saturating_sub(r.progress_stamp()) < policy.patience {
                continue;
            }
            let Some(mut defer) = r.try_lock_defer() else {
                continue; // owner mid-operation: progressing, not stalled
            };
            // Re-check under the flag: the owner may have checkpointed
            // between the scan above and our acquisition.
            if state_epoch.saturating_sub(r.observed()) < policy.lag_epochs {
                continue;
            }
            r.set_quarantined(true);
            let chain = defer.take_all();
            drop(defer);
            self.adopt(chain);
            quarantined += 1;
        }
        if quarantined > 0 {
            use rcuarray_analysis::atomic::Ordering;
            self.quarantined_count
                .fetch_add(quarantined, Ordering::AcqRel);
            self.quarantines_total
                .fetch_add(quarantined as u64, Ordering::AcqRel);
        }
        quarantined
    }

    /// Settle the quarantine gauge when an owner re-joins (cleared its own
    /// quarantine flag at a defer/checkpoint).
    pub fn note_rejoin(&self) {
        self.quarantined_count
            .fetch_sub(1, rcuarray_analysis::atomic::Ordering::AcqRel);
    }

    /// Participants currently quarantined.
    pub fn num_quarantined(&self) -> usize {
        self.quarantined_count
            .load(rcuarray_analysis::atomic::Ordering::Acquire)
    }

    /// Total quarantine events since creation.
    pub fn quarantines_total(&self) -> u64 {
        self.quarantines_total
            .load(rcuarray_analysis::atomic::Ordering::Acquire)
    }

    /// Number of live (non-retired) participants.
    pub fn num_participants(&self) -> usize {
        self.records
            .read()
            .iter()
            .filter(|r| !r.is_retired())
            .count()
    }

    /// Number of orphaned chains awaiting reclamation.
    pub fn num_orphans(&self) -> usize {
        self.orphans.lock().len()
    }

    /// Run `f` for each participating record (diagnostics).
    pub fn for_each_participant(&self, mut f: impl FnMut(&ThreadRecord)) {
        for r in self.records.read().iter() {
            if r.participates() {
                f(r);
            }
        }
    }
}

fn chain_max_epoch(chain: &DeferChain) -> u64 {
    chain.head_epoch().unwrap_or(0)
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("participants", &self.num_participants())
            .field("orphans", &self.num_orphans())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defer_list::DeferList;
    use rcuarray_analysis::atomic::{AtomicUsize, Ordering};

    #[test]
    fn register_and_min() {
        let reg = Registry::new();
        let a = reg.register(5);
        let b = reg.register(9);
        assert_eq!(reg.min_observed(100), 5);
        a.observe(20);
        assert_eq!(reg.min_observed(100), 9);
        b.observe(30);
        assert_eq!(reg.min_observed(100), 20);
        assert_eq!(reg.num_participants(), 2);
    }

    #[test]
    fn min_with_no_participants_is_fallback() {
        let reg = Registry::new();
        assert_eq!(reg.min_observed(42), 42);
    }

    #[test]
    fn parked_threads_excluded_from_min() {
        let reg = Registry::new();
        let a = reg.register(1);
        let _b = reg.register(10);
        a.set_parked(true);
        assert_eq!(reg.min_observed(99), 10);
    }

    #[test]
    fn unregister_moves_defers_to_orphans() {
        let reg = Registry::new();
        let freed = Arc::new(AtomicUsize::new(0));
        let a = reg.register(0);
        let f2 = Arc::clone(&freed);
        a.lock_defer().push(3, move || {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        reg.unregister(&a);
        assert_eq!(reg.num_participants(), 0);
        assert_eq!(reg.num_orphans(), 1);
        assert_eq!(freed.load(Ordering::SeqCst), 0, "not freed early");
        // No participants: fallback min allows reclamation.
        assert_eq!(reg.reclaim_orphans(3), (1, 0));
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        assert_eq!(reg.num_orphans(), 0);
    }

    #[test]
    fn orphans_respect_min_epoch() {
        let reg = Registry::new();
        let mut list = DeferList::new();
        list.push(7, || {});
        reg.adopt(list.take_all());
        assert_eq!(reg.reclaim_orphans(6), (0, 0), "min below chain epoch");
        assert_eq!(reg.num_orphans(), 1);
        assert_eq!(reg.reclaim_orphans(7), (1, 0));
    }

    #[test]
    fn budgeted_orphan_reclaim_stops_between_chains() {
        let reg = Registry::new();
        // Three eligible single-entry chains.
        for _ in 0..3 {
            let mut list = DeferList::new();
            list.push(1, || {});
            reg.adopt(list.take_all());
        }
        assert_eq!(reg.num_orphans(), 3);
        // Budget 1: exactly one chain drains; the others wait.
        assert_eq!(reg.reclaim_orphans_budgeted(1, 1), (1, 0));
        assert_eq!(reg.num_orphans(), 2);
        // Budget 0 frees nothing.
        assert_eq!(reg.reclaim_orphans_budgeted(1, 0), (0, 0));
        assert_eq!(reg.num_orphans(), 2);
        // Unbudgeted drains the rest.
        assert_eq!(reg.reclaim_orphans(1), (2, 0));
        assert_eq!(reg.num_orphans(), 0);
    }

    #[test]
    fn adopt_empty_chain_is_noop() {
        let reg = Registry::new();
        let mut list = DeferList::new();
        reg.adopt(list.take_all());
        assert_eq!(reg.num_orphans(), 0);
    }

    #[test]
    fn register_prunes_retired_records() {
        let reg = Registry::new();
        let a = reg.register(0);
        a.retire(); // simulate exit without full unregister
        let _b = reg.register(0);
        assert_eq!(reg.num_participants(), 1);
    }

    #[test]
    fn quarantine_stalled_orphans_the_chain_and_unblocks_the_min() {
        let reg = Registry::new();
        let freed = Arc::new(AtomicUsize::new(0));
        let stalled = reg.register(0); // lags forever
        let writer = reg.register(0);
        let f2 = Arc::clone(&freed);
        stalled.lock_defer().push(1, move || {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        writer.observe(10);
        assert_eq!(reg.min_observed(10), 0, "stalled record gates the min");
        // Below both thresholds: nothing happens.
        assert_eq!(reg.quarantine_stalled(10, 0, StallPolicy::after(100, 0)), 0);
        assert_eq!(reg.quarantine_stalled(10, 0, StallPolicy::after(4, 5)), 0);
        // Lag 10 >= 4 and 5 ticks of no progress: quarantined.
        assert_eq!(reg.quarantine_stalled(10, 5, StallPolicy::after(4, 5)), 1);
        assert!(stalled.is_quarantined());
        assert_eq!(reg.num_quarantined(), 1);
        assert_eq!(reg.quarantines_total(), 1);
        assert_eq!(reg.min_observed(10), 10, "min no longer gated");
        // Its chain was orphaned, gated on its own epochs, and now frees.
        assert_eq!(reg.num_orphans(), 1);
        assert_eq!(reg.reclaim_orphans(10), (1, 0));
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        // A second scan is idempotent: quarantined records do not
        // participate.
        assert_eq!(reg.quarantine_stalled(10, 9, StallPolicy::after(4, 5)), 0);
    }

    #[test]
    fn quarantine_skips_records_with_the_defer_flag_held() {
        let reg = Registry::new();
        let stalled = reg.register(0);
        let _busy = stalled.lock_defer(); // owner "mid-operation"
        assert_eq!(
            reg.quarantine_stalled(100, 100, StallPolicy::after(1, 0)),
            0,
            "an owner holding its flag is progressing, not stalled"
        );
        assert!(!stalled.is_quarantined());
    }

    #[test]
    fn disabled_policy_never_quarantines() {
        let reg = Registry::new();
        let _r = reg.register(0);
        assert_eq!(
            reg.quarantine_stalled(u64::MAX - 1, u64::MAX - 1, StallPolicy::disabled()),
            0
        );
    }

    #[test]
    fn unregister_while_quarantined_settles_the_gauge() {
        let reg = Registry::new();
        let r = reg.register(0);
        assert_eq!(reg.quarantine_stalled(10, 10, StallPolicy::after(1, 1)), 1);
        assert_eq!(reg.num_quarantined(), 1);
        reg.unregister(&r);
        assert_eq!(reg.num_quarantined(), 0);
        assert_eq!(reg.quarantines_total(), 1, "the total is monotone");
    }

    #[test]
    fn byte_budgeted_orphan_reclaim_stops_at_the_byte_cap() {
        let reg = Registry::new();
        for _ in 0..3 {
            let mut list = DeferList::new();
            list.push_with_bytes(1, 100, || {});
            reg.adopt(list.take_all());
        }
        // 100-byte chains against a 150-byte budget: the first chain
        // drains, its 100 bytes stand, the second would cross — but the
        // cut is per chain, so exactly two chains fit before `>= 150`.
        let (n, b) = reg.reclaim_orphans_budgeted_bytes(1, usize::MAX, 150);
        assert_eq!((n, b), (2, 200), "second chain overshoots, third waits");
        assert_eq!(reg.num_orphans(), 1);
        let (n, b) = reg.reclaim_orphans_budgeted_bytes(1, usize::MAX, usize::MAX);
        assert_eq!((n, b), (1, 100));
    }

    #[test]
    fn for_each_participant_visits_live_only() {
        let reg = Registry::new();
        let a = reg.register(0);
        let _b = reg.register(0);
        a.set_parked(true);
        let mut n = 0;
        reg.for_each_participant(|_| n += 1);
        assert_eq!(n, 1);
    }
}
