//! The registry of participating threads: the paper's `TLSList`, "a linked
//! list" through which "all threads act as participants and keep track of
//! their own thread-specific metadata".
//!
//! Checkpoints scan it to find "the minimum observed epoch of all threads"
//! (Algorithm 2 lines 6–8). Registration and thread exit are rare, so the
//! list lives under a read-write lock: the hot scan takes the shared side.

use crate::defer_list::DeferChain;
use crate::record::ThreadRecord;
use rcuarray_analysis::sync::{Mutex, RwLock};
use std::sync::Arc;

/// An orphaned defer chain left behind by an exited thread, tagged with
/// the largest safe epoch it contains (its head's epoch): the whole chain
/// is reclaimable once the minimum observed epoch reaches that.
struct Orphan {
    max_epoch: u64,
    chain: DeferChain,
}

/// The domain-wide thread registry.
#[derive(Default)]
pub struct Registry {
    records: RwLock<Vec<Arc<ThreadRecord>>>,
    orphans: Mutex<Vec<Orphan>>,
    /// Lock-free mirror of `orphans.len()`, so the checkpoint hot path
    /// can skip orphan processing without touching the mutex.
    orphan_count: rcuarray_analysis::atomic::AtomicUsize,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a new participant that has observed `initial_epoch`.
    /// Prunes records of exited threads while it holds the write lock.
    pub fn register(&self, initial_epoch: u64) -> Arc<ThreadRecord> {
        let record = Arc::new(ThreadRecord::new(initial_epoch));
        let mut records = self.records.write();
        records.retain(|r| !r.is_retired());
        records.push(Arc::clone(&record));
        record
    }

    /// Remove a participant at thread exit. Any reclamations still pending
    /// on its defer list are handed to the orphan list so they are neither
    /// leaked nor freed early.
    ///
    /// # Safety-relevant ordering
    /// The record is retired *before* its defer list is drained, and the
    /// drain happens on the exiting thread itself, so the owner-only
    /// contract of [`ThreadRecord::defer_mut`] holds.
    pub fn unregister(&self, record: &Arc<ThreadRecord>) {
        record.retire();
        // SAFETY: called by the owning thread during its exit; no other
        // accessor exists (the registry only reads atomics).
        let leftovers = unsafe { record.defer_mut().take_all() };
        self.adopt(leftovers);
        self.records.write().retain(|r| !Arc::ptr_eq(r, record));
    }

    /// Adopt a defer chain whose owner can no longer process it (thread
    /// exit or parking).
    pub fn adopt(&self, chain: DeferChain) {
        if chain.is_empty() {
            return;
        }
        // The chain head carries the largest epoch (descending order,
        // Lemma 4); conservatively gate the whole chain on it.
        let max_epoch = chain_max_epoch(&chain);
        let mut orphans = self.orphans.lock();
        orphans.push(Orphan { max_epoch, chain });
        self.orphan_count
            .store(orphans.len(), rcuarray_analysis::atomic::Ordering::Release);
    }

    /// Whether any orphaned chains are pending (lock-free check).
    #[inline]
    pub fn has_orphans(&self) -> bool {
        self.orphan_count
            .load(rcuarray_analysis::atomic::Ordering::Acquire)
            != 0
    }

    /// The minimum observed epoch over all *participating* threads
    /// (Algorithm 2 lines 6–8), or `fallback` when no thread participates
    /// (then everything retired so far is reclaimable).
    pub fn min_observed(&self, fallback: u64) -> u64 {
        let records = self.records.read();
        records
            .iter()
            .filter(|r| r.participates())
            .map(|r| r.observed())
            .min()
            .unwrap_or(fallback)
    }

    /// Reclaim every orphaned chain whose epochs are all `<= min_epoch`.
    /// Returns `(entries freed, approximate bytes freed)`.
    pub fn reclaim_orphans(&self, min_epoch: u64) -> (usize, usize) {
        self.reclaim_orphans_budgeted(min_epoch, usize::MAX)
    }

    /// [`reclaim_orphans`](Self::reclaim_orphans) with a bounded drain:
    /// eligible chains are reclaimed whole, one at a time, only while
    /// fewer than `budget` entries have been freed — so the overshoot is
    /// at most the last chain's length, not the whole orphan backlog.
    pub fn reclaim_orphans_budgeted(&self, min_epoch: u64, budget: usize) -> (usize, usize) {
        // try_lock: orphan reclamation is best-effort housekeeping; a
        // contended checkpoint should not serialize on it.
        let Some(mut orphans) = self.orphans.try_lock() else {
            return (0, 0);
        };
        let mut freed = 0;
        let mut freed_bytes = 0;
        orphans.retain_mut(|o| {
            if freed >= budget || o.max_epoch > min_epoch {
                return true;
            }
            let chain = std::mem::replace(&mut o.chain, DeferChain::empty());
            freed_bytes += chain.bytes();
            freed += chain.reclaim_all();
            false
        });
        self.orphan_count
            .store(orphans.len(), rcuarray_analysis::atomic::Ordering::Release);
        (freed, freed_bytes)
    }

    /// Number of live (non-retired) participants.
    pub fn num_participants(&self) -> usize {
        self.records
            .read()
            .iter()
            .filter(|r| !r.is_retired())
            .count()
    }

    /// Number of orphaned chains awaiting reclamation.
    pub fn num_orphans(&self) -> usize {
        self.orphans.lock().len()
    }

    /// Run `f` for each participating record (diagnostics).
    pub fn for_each_participant(&self, mut f: impl FnMut(&ThreadRecord)) {
        for r in self.records.read().iter() {
            if r.participates() {
                f(r);
            }
        }
    }
}

fn chain_max_epoch(chain: &DeferChain) -> u64 {
    chain.head_epoch().unwrap_or(0)
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("participants", &self.num_participants())
            .field("orphans", &self.num_orphans())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defer_list::DeferList;
    use rcuarray_analysis::atomic::{AtomicUsize, Ordering};

    #[test]
    fn register_and_min() {
        let reg = Registry::new();
        let a = reg.register(5);
        let b = reg.register(9);
        assert_eq!(reg.min_observed(100), 5);
        a.observe(20);
        assert_eq!(reg.min_observed(100), 9);
        b.observe(30);
        assert_eq!(reg.min_observed(100), 20);
        assert_eq!(reg.num_participants(), 2);
    }

    #[test]
    fn min_with_no_participants_is_fallback() {
        let reg = Registry::new();
        assert_eq!(reg.min_observed(42), 42);
    }

    #[test]
    fn parked_threads_excluded_from_min() {
        let reg = Registry::new();
        let a = reg.register(1);
        let _b = reg.register(10);
        a.set_parked(true);
        assert_eq!(reg.min_observed(99), 10);
    }

    #[test]
    fn unregister_moves_defers_to_orphans() {
        let reg = Registry::new();
        let freed = Arc::new(AtomicUsize::new(0));
        let a = reg.register(0);
        let f2 = Arc::clone(&freed);
        // SAFETY: this test thread owns the record.
        unsafe {
            a.defer_mut().push(3, move || {
                f2.fetch_add(1, Ordering::SeqCst);
            });
        }
        reg.unregister(&a);
        assert_eq!(reg.num_participants(), 0);
        assert_eq!(reg.num_orphans(), 1);
        assert_eq!(freed.load(Ordering::SeqCst), 0, "not freed early");
        // No participants: fallback min allows reclamation.
        assert_eq!(reg.reclaim_orphans(3), (1, 0));
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        assert_eq!(reg.num_orphans(), 0);
    }

    #[test]
    fn orphans_respect_min_epoch() {
        let reg = Registry::new();
        let mut list = DeferList::new();
        list.push(7, || {});
        reg.adopt(list.take_all());
        assert_eq!(reg.reclaim_orphans(6), (0, 0), "min below chain epoch");
        assert_eq!(reg.num_orphans(), 1);
        assert_eq!(reg.reclaim_orphans(7), (1, 0));
    }

    #[test]
    fn budgeted_orphan_reclaim_stops_between_chains() {
        let reg = Registry::new();
        // Three eligible single-entry chains.
        for _ in 0..3 {
            let mut list = DeferList::new();
            list.push(1, || {});
            reg.adopt(list.take_all());
        }
        assert_eq!(reg.num_orphans(), 3);
        // Budget 1: exactly one chain drains; the others wait.
        assert_eq!(reg.reclaim_orphans_budgeted(1, 1), (1, 0));
        assert_eq!(reg.num_orphans(), 2);
        // Budget 0 frees nothing.
        assert_eq!(reg.reclaim_orphans_budgeted(1, 0), (0, 0));
        assert_eq!(reg.num_orphans(), 2);
        // Unbudgeted drains the rest.
        assert_eq!(reg.reclaim_orphans(1), (2, 0));
        assert_eq!(reg.num_orphans(), 0);
    }

    #[test]
    fn adopt_empty_chain_is_noop() {
        let reg = Registry::new();
        let mut list = DeferList::new();
        reg.adopt(list.take_all());
        assert_eq!(reg.num_orphans(), 0);
    }

    #[test]
    fn register_prunes_retired_records() {
        let reg = Registry::new();
        let a = reg.register(0);
        a.retire(); // simulate exit without full unregister
        let _b = reg.register(0);
        assert_eq!(reg.num_participants(), 1);
    }

    #[test]
    fn for_each_participant_visits_live_only() {
        let reg = Registry::new();
        let a = reg.register(0);
        let _b = reg.register(0);
        a.set_parked(true);
        let mut n = 0;
        reg.for_each_participant(|_| n += 1);
        assert_eq!(n, 1);
    }
}
