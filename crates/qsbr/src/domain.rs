//! The QSBR domain: the public `QSBR_Defer` / `QSBR_Checkpoint` API of
//! Algorithm 2, plus thread registration, parking and statistics.
//!
//! The paper installs one instance of this machinery inside Chapel's
//! runtime. Here a [`QsbrDomain`] is an explicit, clonable handle (tests
//! and multiple independent structures can run isolated domains); threads
//! register lazily on first use through thread-local storage and
//! unregister automatically at thread exit, handing unprocessed defer
//! entries to the domain's orphan list.

use crate::defer_list::DeferChain;
use crate::record::ThreadRecord;
use crate::registry::Registry;
use crate::state::StateEpoch;
use rcuarray_analysis::atomic::{AtomicU64, Ordering};
use rcuarray_obs::{LazyCounter, LazyGauge, LazyHistogram};
use rcuarray_reclaim::{PressureConfig, StallPolicy};
use std::cell::RefCell;
use std::sync::{Arc, Weak};

/// Monotonic domain-id source, used as the TLS lookup key.
static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

// Registry-level telemetry (see DESIGN.md §7). Backlog and lag gauges
// are set by the most recently *reclaiming* checkpoint: the fast path
// (nothing pending) must stay at one load + one store + two checks.
static OBS_DEFERS: LazyCounter = LazyCounter::new("rcuarray_qsbr_defers_total", "QSBR_Defer calls");
static OBS_CHECKPOINTS: LazyCounter =
    LazyCounter::new("rcuarray_qsbr_checkpoints_total", "QSBR_Checkpoint calls");
static OBS_RECLAIMED: LazyCounter = LazyCounter::new(
    "rcuarray_qsbr_reclaimed_total",
    "deferred reclamations executed",
);
static OBS_RECLAIMED_BYTES: LazyCounter = LazyCounter::new(
    "rcuarray_qsbr_reclaimed_bytes_total",
    "approximate bytes reclaimed at checkpoints",
);
static OBS_CHECKPOINT_NS: LazyHistogram = LazyHistogram::new(
    "rcuarray_qsbr_checkpoint_ns",
    "latency of reclaiming (slow-path) checkpoints, ns",
);
static OBS_EPOCH_LAG: LazyGauge = LazyGauge::new(
    "rcuarray_qsbr_epoch_lag",
    "state epoch minus min observed epoch at the last reclaiming checkpoint",
);
static OBS_BACKLOG_ENTRIES: LazyGauge = LazyGauge::new(
    "rcuarray_qsbr_defer_backlog_entries",
    "deferred reclamations still pending after the last reclaiming checkpoint",
);
static OBS_BACKLOG_BYTES: LazyGauge = LazyGauge::new(
    "rcuarray_qsbr_defer_backlog_bytes",
    "approximate bytes still pending after the last reclaiming checkpoint",
);
static OBS_QUARANTINED: LazyGauge = LazyGauge::new(
    "rcuarray_qsbr_quarantined_readers",
    "participants currently force-parked by stall detection",
);
static OBS_QUARANTINES: LazyCounter = LazyCounter::new(
    "rcuarray_qsbr_quarantines_total",
    "stalled participants force-parked by stall detection",
);
static OBS_REJOINS: LazyCounter = LazyCounter::new(
    "rcuarray_qsbr_rejoins_total",
    "quarantined participants that resumed participation",
);

struct DomainInner {
    id: u64,
    state: StateEpoch,
    registry: Registry,
    defers: AtomicU64,
    defer_bytes: AtomicU64,
    checkpoints: AtomicU64,
    reclaimed: AtomicU64,
    reclaimed_bytes: AtomicU64,
    /// The robustness clock: bumped by every reclaiming (slow-path)
    /// checkpoint, never by wall time, so stall detection replays
    /// identically under the deterministic checker.
    ticks: AtomicU64,
    /// [`StallPolicy`] fields, atomically reconfigurable (`u64::MAX` =
    /// detection off, the default).
    stall_lag: AtomicU64,
    stall_patience: AtomicU64,
    /// [`PressureConfig`] fields (`u64::MAX` = unbounded, the default).
    cap_bytes: AtomicU64,
    watermark_bytes: AtomicU64,
}

/// Counters describing a domain's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// `defer` calls made.
    pub defers: u64,
    /// `checkpoint` calls made.
    pub checkpoints: u64,
    /// Deferred reclamations actually executed.
    pub reclaimed: u64,
    /// Deferred reclamations not yet executed (approximate: orphan chains
    /// are counted whole).
    pub pending: u64,
    /// Approximate bytes awaiting reclamation (sum of the size hints
    /// passed to [`QsbrDomain::defer_with_bytes`], minus what has been
    /// reclaimed).
    pub pending_bytes: u64,
    /// Participants currently force-parked by stall detection.
    pub quarantined: u64,
    /// Cumulative quarantine events since the domain was created.
    pub quarantines: u64,
}

/// A QSBR reclamation domain.
///
/// Cloning is cheap and clones share the same domain. See the
/// [crate docs](crate) for the protocol and its contract.
#[derive(Clone)]
pub struct QsbrDomain {
    inner: Arc<DomainInner>,
}

impl Default for QsbrDomain {
    fn default() -> Self {
        Self::new()
    }
}

struct TlsEntry {
    domain_id: u64,
    domain: Weak<DomainInner>,
    record: Arc<ThreadRecord>,
}

/// Thread-local registrations; the wrapper's `Drop` is the thread-exit
/// hook Chapel's runtime gives the paper for free.
struct TlsState {
    entries: Vec<TlsEntry>,
}

impl Drop for TlsState {
    fn drop(&mut self) {
        for entry in self.entries.drain(..) {
            if let Some(domain) = entry.domain.upgrade() {
                // Normal path: hand leftovers to the domain's orphans.
                domain.registry.unregister(&entry.record);
            }
            // Domain already gone: dropping the record runs its remaining
            // reclaimers via `DeferList::drop` — nothing can still be
            // reading data protected by a destroyed domain.
        }
    }
}

thread_local! {
    static TLS: RefCell<TlsState> = const { RefCell::new(TlsState { entries: Vec::new() }) };
    /// One-slot registration cache: the id of the domain this thread most
    /// recently confirmed registration with. Lets the read hot path verify
    /// participation with a single TLS load + compare instead of a
    /// `RefCell` borrow and a vector scan.
    static LAST_REGISTERED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

impl QsbrDomain {
    /// A fresh, empty domain at state epoch 0.
    pub fn new() -> Self {
        QsbrDomain {
            inner: Arc::new(DomainInner {
                id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
                state: StateEpoch::new(),
                registry: Registry::new(),
                defers: AtomicU64::new(0),
                defer_bytes: AtomicU64::new(0),
                checkpoints: AtomicU64::new(0),
                reclaimed: AtomicU64::new(0),
                reclaimed_bytes: AtomicU64::new(0),
                ticks: AtomicU64::new(0),
                stall_lag: AtomicU64::new(u64::MAX),
                stall_patience: AtomicU64::new(u64::MAX),
                cap_bytes: AtomicU64::new(u64::MAX),
                watermark_bytes: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Install a stall policy; [`StallPolicy::disabled`] (the default)
    /// restores the classic never-quarantine protocol.
    pub fn set_stall_policy(&self, policy: StallPolicy) {
        self.inner
            .stall_lag
            .store(policy.lag_epochs, Ordering::SeqCst);
        self.inner
            .stall_patience
            .store(policy.patience, Ordering::SeqCst);
    }

    /// The currently installed stall policy.
    pub fn stall_policy(&self) -> StallPolicy {
        StallPolicy {
            lag_epochs: self.inner.stall_lag.load(Ordering::SeqCst),
            patience: self.inner.stall_patience.load(Ordering::SeqCst),
        }
    }

    /// Install a backlog byte budget; [`PressureConfig::unbounded`] (the
    /// default) disables it. Consumed by the [`Reclaim`] impls'
    /// `pressure()` override, which drives `try_retire` backpressure.
    ///
    /// [`Reclaim`]: rcuarray_reclaim::Reclaim
    pub fn set_pressure(&self, pressure: PressureConfig) {
        pressure.validate();
        self.inner
            .cap_bytes
            .store(pressure.max_backlog_bytes, Ordering::SeqCst);
        self.inner
            .watermark_bytes
            .store(pressure.high_watermark, Ordering::SeqCst);
    }

    /// The currently installed backlog budget.
    pub fn pressure_config(&self) -> PressureConfig {
        PressureConfig {
            max_backlog_bytes: self.inner.cap_bytes.load(Ordering::SeqCst),
            high_watermark: self.inner.watermark_bytes.load(Ordering::SeqCst),
        }
    }

    /// The robustness clock: how many reclaiming checkpoints the domain
    /// has run. Stall patience is measured against this, never wall time.
    pub fn tick(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// This domain's unique id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Current global state epoch.
    pub fn state_epoch(&self) -> u64 {
        self.inner.state.read()
    }

    /// The calling thread's record in this domain, registering on first
    /// use. Registration observes the current state epoch: joining is a
    /// quiescence point.
    fn record(&self) -> Arc<ThreadRecord> {
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(e) = tls.entries.iter().find(|e| e.domain_id == self.inner.id) {
                return Arc::clone(&e.record);
            }
            let record = self.inner.registry.register(self.inner.state.read());
            // A fresh thread starts with full patience: its progress clock
            // begins *now*, not at domain creation.
            record.stamp_progress(self.inner.ticks.load(Ordering::Relaxed));
            tls.entries.push(TlsEntry {
                domain_id: self.inner.id,
                domain: Arc::downgrade(&self.inner),
                record: Arc::clone(&record),
            });
            record
        })
    }

    /// Explicitly register the calling thread (otherwise lazy).
    pub fn register_current_thread(&self) {
        let _ = self.record();
    }

    /// Guarantee the calling thread participates in this domain, with a
    /// fast path of one thread-local load when it already does.
    ///
    /// Readers of QSBR-protected structures call this before every access:
    /// an *unregistered* thread is invisible to the minimum-epoch scan and
    /// therefore unprotected. In the paper this cost does not exist
    /// because Chapel's runtime threads are participants by construction;
    /// the one-slot cache keeps our equivalent at a couple of nanoseconds.
    #[inline]
    pub fn ensure_registered(&self) {
        let id = self.inner.id;
        if LAST_REGISTERED.with(|c| c.get()) == id {
            return;
        }
        let _ = self.record();
        LAST_REGISTERED.with(|c| c.set(id));
    }

    /// `QSBR_Defer` (Algorithm 2 lines 1–3): retire `reclaim`, to run once
    /// every participating thread has observed a state newer than now.
    ///
    /// Bumps the global state epoch, observes the new value on the calling
    /// thread's record, and pushes `(reclaim, new_epoch)` onto its LIFO
    /// defer list. Nothing is freed here; freeing happens at checkpoints.
    pub fn defer(&self, reclaim: impl FnOnce() + Send + 'static) {
        self.defer_with_bytes(0, reclaim);
    }

    /// [`defer`](Self::defer) with an approximate payload size. The size
    /// feeds the backlog-bytes telemetry (`DomainStats::pending_bytes`
    /// and the `rcuarray_qsbr_defer_backlog_bytes` gauge), making the
    /// age/memory trade-off of deferred reclamation observable.
    pub fn defer_with_bytes(&self, bytes: usize, reclaim: impl FnOnce() + Send + 'static) {
        let record = self.record();
        let epoch = self.inner.state.bump();
        let rejoined;
        {
            // The guard covers observe + push so stall detection can never
            // seize the chain between the two.
            let mut defer = record.lock_defer();
            rejoined = record.take_quarantined();
            record.observe(epoch);
            record.stamp_progress(self.inner.ticks.load(Ordering::Relaxed));
            defer.push_with_bytes(epoch, bytes, reclaim);
        }
        if rejoined {
            self.inner.registry.note_rejoin();
            OBS_REJOINS.inc();
        }
        self.inner.defers.fetch_add(1, Ordering::Relaxed);
        self.inner
            .defer_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        OBS_DEFERS.inc();
    }

    /// Convenience: retire a value, deferring its `Drop`. The value's
    /// shallow size feeds the backlog-bytes telemetry.
    pub fn defer_drop<T: Send + 'static>(&self, value: T) {
        self.defer_with_bytes(std::mem::size_of::<T>(), move || drop(value));
    }

    /// `QSBR_Checkpoint` (Algorithm 2 lines 4–13): announce quiescence and
    /// reclaim everything now provably unreachable. Returns how many
    /// deferred reclamations ran.
    ///
    /// # Contract
    /// The calling thread must hold **no** references to QSBR-protected
    /// data acquired before this call: "it is not safe to dereference any
    /// memory managed by QSBR if it has been acquired prior to a
    /// checkpoint" (paper §III-B).
    pub fn checkpoint(&self) -> usize {
        self.checkpoint_impl(usize::MAX, usize::MAX)
    }

    /// [`checkpoint`](Self::checkpoint) with a bounded drain: announce
    /// quiescence exactly as a full checkpoint does, but execute at most
    /// `budget` deferred reclamations from this thread's own list —
    /// specifically the *oldest* ones — leaving the rest for later calls
    /// (DEBRA-style amortization: no single checkpoint pays for an
    /// unbounded backlog).
    ///
    /// Orphaned chains (from exited or parked threads) are adopted whole
    /// and reclaimed whole, one chain at a time, only while budget remains
    /// after the local drain; the last chain reclaimed may therefore
    /// overshoot the budget by its own length, but further chains wait for
    /// later calls. `budget == 0` is a pure quiescence announcement that
    /// frees nothing.
    ///
    /// The same contract as [`checkpoint`](Self::checkpoint) applies: the
    /// calling thread must hold no references to protected data acquired
    /// before this call.
    pub fn checkpoint_budgeted(&self, budget: usize) -> usize {
        self.checkpoint_impl(budget, usize::MAX)
    }

    /// [`checkpoint_budgeted`](Self::checkpoint_budgeted) with an
    /// additional *byte* budget: the drain stops once the freed entries'
    /// size hints reach `byte_budget` (overshooting by at most one entry),
    /// so a bounded drain composes with [`PressureConfig`]'s byte caps —
    /// what the cap measures is what the drain retires against.
    pub fn checkpoint_budgeted_bytes(&self, budget: usize, byte_budget: usize) -> usize {
        self.checkpoint_impl(budget, byte_budget)
    }

    /// The one checkpoint engine behind [`checkpoint`](Self::checkpoint)
    /// and its budgeted variants: announce quiescence, rejoin after
    /// quarantine, detect stalls, then drain within the given budgets.
    fn checkpoint_impl(&self, budget: usize, byte_budget: usize) -> usize {
        let record = self.record();
        // Observe the current state: a promise of quiescence of any
        // earlier state (lines 4–5). The defer guard spans the observe so
        // stall detection can never quarantine a thread mid-checkpoint.
        let observed = self.inner.state.read();
        let (rejoined, pending) = {
            let defer = record.lock_defer();
            let rejoined = record.take_quarantined();
            record.observe(observed);
            record.stamp_progress(self.inner.ticks.load(Ordering::Relaxed));
            (rejoined, defer.len())
        };
        if rejoined {
            self.inner.registry.note_rejoin();
            OBS_REJOINS.inc();
        }
        self.inner.checkpoints.fetch_add(1, Ordering::Relaxed);
        OBS_CHECKPOINTS.inc();
        // Fast path: nothing to reclaim here (or a zero budget — a pure
        // quiescence announcement). The announcement above is the
        // checkpoint's semantic payload; the scan and split only matter
        // when this thread has pending defers or orphans exist. This keeps
        // high-frequency checkpoints (Fig. 4's every-op case) to an epoch
        // load, the uncontended defer-flag swap and a few cheap checks.
        if budget == 0 || byte_budget == 0 || (pending == 0 && !self.inner.registry.has_orphans()) {
            return 0;
        }
        // Slow (reclaiming) path: measured — fast-path checkpoints never
        // touch the clock, so Fig. 4's every-op case stays cheap.
        let t0 = rcuarray_obs::enabled().then(std::time::Instant::now);
        // Reclaiming checkpoints are the robustness clock.
        let now = self.inner.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        record.stamp_progress(now);
        // Find the smallest (safest) epoch over all participants
        // (lines 6–8).
        let mut min = self.inner.registry.min_observed(observed);
        // Stall detection: when the minimum trails the state epoch past
        // the policy's lag threshold, quarantine whoever exhausted their
        // patience and recompute the minimum without them.
        let policy = self.stall_policy();
        if policy.detects_lag() && observed.saturating_sub(min) >= policy.lag_epochs {
            let q = self
                .inner
                .registry
                .quarantine_stalled(observed, now, policy);
            if q > 0 {
                OBS_QUARANTINES.add(q as u64);
                min = self.inner.registry.min_observed(observed);
            }
        }
        // Split our defer list at the safe boundary and reclaim
        // (lines 9–13), within budget.
        let chain: DeferChain =
            record
                .lock_defer()
                .pop_less_equal_budgeted(min, budget, byte_budget);
        let mut freed_bytes = chain.bytes() as u64;
        let mut freed = chain.reclaim_all();
        if freed < budget && self.inner.registry.has_orphans() {
            let (n, b) = self.inner.registry.reclaim_orphans_budgeted_bytes(
                min,
                budget - freed,
                byte_budget.saturating_sub(freed_bytes as usize),
            );
            freed += n;
            freed_bytes += b as u64;
        }
        // Lag and backlog after this reclaim: how far the slowest
        // participant trails the state epoch, and what that delay
        // keeps alive (the Fig. 2 read-cost/backlog trade-off).
        self.record_reclaim(freed, freed_bytes, min, t0);
        freed
    }

    /// Shared slow-path accounting for reclaiming checkpoints: counters,
    /// then the backlog/lag gauges when telemetry is enabled.
    fn record_reclaim(
        &self,
        freed: usize,
        freed_bytes: u64,
        min: u64,
        t0: Option<std::time::Instant>,
    ) {
        self.inner
            .reclaimed
            .fetch_add(freed as u64, Ordering::Relaxed);
        self.inner
            .reclaimed_bytes
            .fetch_add(freed_bytes, Ordering::Relaxed);
        OBS_RECLAIMED.add(freed as u64);
        OBS_RECLAIMED_BYTES.add(freed_bytes);
        if let Some(t0) = t0 {
            OBS_CHECKPOINT_NS.record(t0.elapsed().as_nanos() as u64);
            OBS_EPOCH_LAG.set(self.inner.state.read().saturating_sub(min) as i64);
            let s = self.stats();
            OBS_BACKLOG_ENTRIES.set(s.pending as i64);
            OBS_BACKLOG_BYTES.set(s.pending_bytes as i64);
            OBS_QUARANTINED.set(self.inner.registry.num_quarantined() as i64);
        }
    }

    /// Park the calling thread: flush what can be freed, hand the rest to
    /// the orphan list, and stop participating in the minimum scan. An
    /// idle thread must not gate other threads' reclamation (paper: parking
    /// "is used to cleanup its own DeferList \[and\] notify of its
    /// quiescence").
    pub fn park(&self) {
        let record = self.record();
        // A checkpoint first: frees everything already safe.
        self.checkpoint();
        // Whatever remains waits for *other* threads; it cannot stay on a
        // parked record (nobody would process it), so the domain adopts it.
        let leftovers = record.lock_defer().take_all();
        self.inner.registry.adopt(leftovers);
        record.set_parked(true);
    }

    /// Unpark the calling thread. Re-observes the current state epoch
    /// before the thread may touch protected data again.
    pub fn unpark(&self) {
        let record = self.record();
        record.set_parked(false);
        record.observe(self.inner.state.read());
        record.stamp_progress(self.inner.ticks.load(Ordering::Relaxed));
    }

    /// Whether the calling thread is currently parked in this domain.
    pub fn is_parked(&self) -> bool {
        self.record().is_parked()
    }

    /// The epoch the calling thread last observed.
    pub fn observed_epoch(&self) -> u64 {
        self.record().observed()
    }

    /// The minimum observed epoch across participants (diagnostics).
    pub fn min_observed(&self) -> u64 {
        self.inner.registry.min_observed(self.inner.state.read())
    }

    /// Pending defers on the calling thread's own list.
    pub fn pending_local(&self) -> usize {
        self.record().pending()
    }

    /// Participants currently force-parked by stall detection.
    pub fn num_quarantined(&self) -> usize {
        self.inner.registry.num_quarantined()
    }

    /// Number of registered, live participants.
    pub fn num_participants(&self) -> usize {
        self.inner.registry.num_participants()
    }

    /// Activity counters.
    pub fn stats(&self) -> DomainStats {
        let defers = self.inner.defers.load(Ordering::Relaxed);
        let reclaimed = self.inner.reclaimed.load(Ordering::Relaxed);
        let defer_bytes = self.inner.defer_bytes.load(Ordering::Relaxed);
        let reclaimed_bytes = self.inner.reclaimed_bytes.load(Ordering::Relaxed);
        DomainStats {
            defers,
            checkpoints: self.inner.checkpoints.load(Ordering::Relaxed),
            reclaimed,
            pending: defers.saturating_sub(reclaimed),
            pending_bytes: defer_bytes.saturating_sub(reclaimed_bytes),
            quarantined: self.inner.registry.num_quarantined() as u64,
            quarantines: self.inner.registry.quarantines_total(),
        }
    }
}

impl std::fmt::Debug for QsbrDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QsbrDomain")
            .field("id", &self.inner.id)
            .field("state_epoch", &self.state_epoch())
            .field("participants", &self.num_participants())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn counter_defer(d: &QsbrDomain, c: &Arc<AtomicUsize>) {
        let c = Arc::clone(c);
        d.defer(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn single_thread_defer_then_checkpoint_frees() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        counter_defer(&d, &c);
        assert_eq!(c.load(Ordering::SeqCst), 0, "defer must not free eagerly");
        assert_eq!(d.checkpoint(), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn defer_bumps_state_epoch() {
        let d = QsbrDomain::new();
        assert_eq!(d.state_epoch(), 0);
        d.defer(|| {});
        assert_eq!(d.state_epoch(), 1);
        assert_eq!(d.observed_epoch(), 1);
    }

    #[test]
    fn lagging_thread_blocks_reclamation() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        let ready = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        let d2 = d.clone();
        let ready2 = Arc::clone(&ready);
        let release2 = Arc::clone(&release);
        let lagger = rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread(); // observes epoch 0, never checkpoints
            ready2.wait();
            release2.wait();
            d2.checkpoint(); // finally quiesces
        });

        ready.wait();
        counter_defer(&d, &c); // safe epoch 1 > lagger's observed 0
        let freed = d.checkpoint();
        assert_eq!(freed, 0, "lagging thread must gate reclamation");
        assert_eq!(c.load(Ordering::SeqCst), 0);

        release.wait();
        lagger.join().unwrap();
        assert_eq!(d.checkpoint(), 1, "after lagger quiesces, entry frees");
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parked_thread_does_not_block_reclamation() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        let parked = Arc::new(Barrier::new(2));
        let done = Arc::new(Barrier::new(2));

        let d2 = d.clone();
        let parked2 = Arc::clone(&parked);
        let done2 = Arc::clone(&done);
        let t = rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread();
            d2.park();
            parked2.wait();
            done2.wait();
            d2.unpark();
        });

        parked.wait();
        counter_defer(&d, &c);
        assert_eq!(d.checkpoint(), 1, "parked thread is skipped by the min");
        assert_eq!(c.load(Ordering::SeqCst), 1);
        done.wait();
        t.join().unwrap();
    }

    #[test]
    fn park_hands_leftovers_to_orphans_and_they_free() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        let deferred = Arc::new(Barrier::new(2));
        let parked = Arc::new(Barrier::new(2));

        // Main thread lags so the worker's own checkpoint can't free.
        d.register_current_thread();

        let d2 = d.clone();
        let c2 = Arc::clone(&c);
        let deferred2 = Arc::clone(&deferred);
        let parked2 = Arc::clone(&parked);
        let t = rcuarray_analysis::thread::spawn(move || {
            counter_defer(&d2, &c2);
            deferred2.wait();
            d2.park(); // cannot free (main lags): entry goes to orphans
            parked2.wait();
        });

        deferred.wait();
        parked.wait();
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 0);
        // Main quiesces: orphaned entry becomes reclaimable.
        let freed = d.checkpoint();
        assert_eq!(freed, 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn thread_exit_orphans_pending_defers() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        d.register_current_thread(); // lagging main gates the worker

        let d2 = d.clone();
        let c2 = Arc::clone(&c);
        rcuarray_analysis::thread::spawn(move || {
            counter_defer(&d2, &c2);
            // exits without checkpointing
        })
        .join()
        .unwrap();

        assert_eq!(c.load(Ordering::SeqCst), 0, "exit must not free early");
        assert_eq!(d.checkpoint(), 1, "orphan freed once main quiesces");
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_track_activity() {
        let d = QsbrDomain::new();
        d.defer(|| {});
        d.defer(|| {});
        d.checkpoint();
        let s = d.stats();
        assert_eq!(s.defers, 2);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.reclaimed, 2);
        assert_eq!(s.pending, 0);
    }

    #[test]
    fn byte_hints_flow_into_pending_bytes() {
        let d = QsbrDomain::new();
        d.defer_with_bytes(4096, || {});
        d.defer_with_bytes(1024, || {});
        assert_eq!(d.stats().pending_bytes, 5120);
        d.checkpoint();
        assert_eq!(d.stats().pending_bytes, 0);
    }

    #[test]
    fn defer_drop_accounts_shallow_size() {
        let d = QsbrDomain::new();
        d.defer_drop([0u8; 64]);
        assert_eq!(d.stats().pending_bytes, 64);
        d.checkpoint();
        assert_eq!(d.stats().pending_bytes, 0);
    }

    #[test]
    fn clones_share_the_domain() {
        let d = QsbrDomain::new();
        let d2 = d.clone();
        assert_eq!(d.id(), d2.id());
        d.defer(|| {});
        assert_eq!(d2.stats().defers, 1);
    }

    #[test]
    fn independent_domains_do_not_interfere() {
        let a = QsbrDomain::new();
        let b = QsbrDomain::new();
        assert_ne!(a.id(), b.id());
        let c = Arc::new(AtomicUsize::new(0));
        counter_defer(&a, &c);
        // A checkpoint on `b` must not free `a`'s entry.
        b.checkpoint();
        assert_eq!(c.load(Ordering::SeqCst), 0);
        a.checkpoint();
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_threads_defer_and_checkpoint_everything_frees() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        const THREADS: usize = 4;
        const OPS: usize = 500;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let d = d.clone();
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..OPS {
                        let c2 = Arc::clone(&c);
                        d.defer(move || {
                            c2.fetch_add(1, Ordering::SeqCst);
                        });
                        if i % 16 == 0 {
                            d.checkpoint();
                        }
                    }
                    // Threads exit; leftovers orphaned.
                });
            }
        });
        // All workers exited. Their TLS destructors (which orphan
        // leftovers) may still be running when `scope` returns, so poll.
        for _ in 0..1000 {
            d.checkpoint();
            if c.load(Ordering::SeqCst) == THREADS * OPS {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(c.load(Ordering::SeqCst), THREADS * OPS);
        assert_eq!(d.stats().pending, 0);
    }

    #[test]
    fn defer_drop_runs_value_drop() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        d.defer_drop(Canary(Arc::clone(&c)));
        d.checkpoint();
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn is_parked_reflects_state() {
        let d = QsbrDomain::new();
        assert!(!d.is_parked());
        d.park();
        assert!(d.is_parked());
        d.unpark();
        assert!(!d.is_parked());
    }

    #[test]
    fn budgeted_checkpoint_drains_incrementally() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            counter_defer(&d, &c);
        }
        assert_eq!(d.checkpoint_budgeted(2), 2);
        assert_eq!(c.load(Ordering::SeqCst), 2);
        assert_eq!(d.stats().pending, 3);
        assert_eq!(d.checkpoint_budgeted(2), 2);
        assert_eq!(d.checkpoint_budgeted(2), 1, "final partial batch");
        assert_eq!(c.load(Ordering::SeqCst), 5);
        assert_eq!(d.stats().pending, 0);
        assert_eq!(d.checkpoint_budgeted(2), 0, "drained");
    }

    #[test]
    fn budgeted_checkpoint_zero_budget_announces_but_frees_nothing() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        counter_defer(&d, &c);
        assert_eq!(d.checkpoint_budgeted(0), 0);
        assert_eq!(c.load(Ordering::SeqCst), 0);
        assert_eq!(d.stats().checkpoints, 1, "still counts as a checkpoint");
        // The zero-budget call still observed the state epoch, so a later
        // budgeted call frees normally.
        assert_eq!(d.checkpoint_budgeted(8), 1);
    }

    #[test]
    fn budgeted_checkpoint_respects_lagging_threads() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        let ready = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        let d2 = d.clone();
        let ready2 = Arc::clone(&ready);
        let release2 = Arc::clone(&release);
        let lagger = rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread();
            ready2.wait();
            release2.wait();
            d2.checkpoint();
        });

        ready.wait();
        counter_defer(&d, &c);
        assert_eq!(
            d.checkpoint_budgeted(100),
            0,
            "budget cannot override safety"
        );
        release.wait();
        lagger.join().unwrap();
        assert_eq!(d.checkpoint_budgeted(100), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn budgeted_checkpoint_byte_accounting_matches_partial_drain() {
        let d = QsbrDomain::new();
        d.defer_with_bytes(100, || {});
        d.defer_with_bytes(30, || {});
        d.defer_with_bytes(7, || {});
        assert_eq!(d.checkpoint_budgeted(1), 1);
        // The oldest entry (100 bytes) went first.
        assert_eq!(d.stats().pending_bytes, 37);
        d.checkpoint();
        assert_eq!(d.stats().pending_bytes, 0);
    }

    #[test]
    fn checkpoint_with_nothing_pending_is_cheap_and_zero() {
        let d = QsbrDomain::new();
        assert_eq!(d.checkpoint(), 0);
        assert_eq!(d.stats().checkpoints, 1);
    }

    #[test]
    fn byte_budgeted_checkpoint_bounds_the_drain() {
        let d = QsbrDomain::new();
        for _ in 0..4 {
            d.defer_with_bytes(40, || {});
        }
        // 100 bytes fit the two oldest entries (80 bytes); the third
        // would cross the budget.
        assert_eq!(d.checkpoint_budgeted_bytes(usize::MAX, 100), 2);
        assert_eq!(d.stats().pending_bytes, 80);
        // An oversized entry still frees (one-entry slack: progress
        // is guaranteed).
        assert_eq!(d.checkpoint_budgeted_bytes(usize::MAX, 1), 1);
        d.checkpoint();
        assert_eq!(d.stats().pending_bytes, 0);
    }

    #[test]
    fn stalled_reader_is_quarantined_and_reclamation_proceeds() {
        let d = QsbrDomain::new();
        d.set_stall_policy(rcuarray_reclaim::StallPolicy::after(1, 2));
        let c = Arc::new(AtomicUsize::new(0));
        let registered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        let d2 = d.clone();
        let registered2 = Arc::clone(&registered);
        let release2 = Arc::clone(&release);
        let staller = rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread(); // observes epoch 0, then stalls
            registered2.wait();
            release2.wait();
            // Woken after quarantine: the next checkpoint rejoins.
            d2.checkpoint();
            d2.stats()
        });

        registered.wait();
        counter_defer(&d, &c);
        // The staller gates the min; with patience 2, a few reclaiming
        // checkpoints (each advances the tick) quarantine it and the
        // backlog drains.
        let mut freed = 0;
        for _ in 0..16 {
            freed += d.checkpoint();
            if freed > 0 {
                break;
            }
        }
        assert_eq!(freed, 1, "quarantine must unblock reclamation");
        assert_eq!(c.load(Ordering::SeqCst), 1);
        let s = d.stats();
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.quarantines, 1);

        release.wait();
        let after = staller.join().unwrap();
        assert_eq!(after.quarantined, 0, "rejoin settles the gauge");
        assert_eq!(after.quarantines, 1, "history is preserved");
    }

    #[test]
    fn quarantined_thread_rejoins_and_gates_again() {
        let d = QsbrDomain::new();
        // Patience 2: the single post-rejoin checkpoint below must not
        // re-quarantine the worker on its first tick of lag.
        d.set_stall_policy(rcuarray_reclaim::StallPolicy::after(1, 2));
        let c = Arc::new(AtomicUsize::new(0));
        let stalled = Arc::new(Barrier::new(2));
        let rejoin = Arc::new(Barrier::new(2));
        let rejoined = Arc::new(Barrier::new(2));
        let done = Arc::new(Barrier::new(2));

        let d2 = d.clone();
        let (s2, rj2, rjd2, done2) = (
            Arc::clone(&stalled),
            Arc::clone(&rejoin),
            Arc::clone(&rejoined),
            Arc::clone(&done),
        );
        let t = rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread();
            s2.wait();
            rj2.wait();
            d2.checkpoint(); // rejoin: observes current epoch
            rjd2.wait();
            done2.wait(); // stalls again at the rejoined epoch
            d2.checkpoint();
        });

        stalled.wait();
        counter_defer(&d, &c);
        while d.num_quarantined() == 0 {
            d.checkpoint();
        }
        assert_eq!(c.load(Ordering::SeqCst), 1);
        rejoin.wait();
        rejoined.wait();
        assert_eq!(d.num_quarantined(), 0);
        // The rejoined thread participates again: a new defer is gated by
        // it until patience runs out once more.
        counter_defer(&d, &c);
        assert_eq!(
            d.checkpoint(),
            0,
            "a rejoined participant gates reclamation again"
        );
        done.wait();
        t.join().unwrap();
        d.checkpoint();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn disabled_stall_policy_preserves_classic_gating() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        let ready = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        let d2 = d.clone();
        let (ready2, release2) = (Arc::clone(&ready), Arc::clone(&release));
        let lagger = rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread();
            ready2.wait();
            release2.wait();
            d2.checkpoint();
        });

        ready.wait();
        counter_defer(&d, &c);
        for _ in 0..32 {
            assert_eq!(d.checkpoint(), 0, "no policy, no quarantine — ever");
        }
        assert_eq!(d.stats().quarantines, 0);
        release.wait();
        lagger.join().unwrap();
        assert_eq!(d.checkpoint(), 1);
    }

    #[test]
    fn pressure_config_round_trips() {
        let d = QsbrDomain::new();
        assert!(!d.pressure_config().is_bounded());
        d.set_pressure(rcuarray_reclaim::PressureConfig::bounded(4096));
        assert_eq!(d.pressure_config().max_backlog_bytes, 4096);
        assert_eq!(d.pressure_config().high_watermark, 2048);
    }
}
