//! The per-thread defer list: a LIFO singly-linked list of
//! `(reclaimer, safe-epoch)` entries, sorted by safe epoch in descending
//! order from the head (paper Lemma 4), split at checkpoints by
//! [`DeferList::pop_less_equal`] (Algorithm 2 line 9).
//!
//! The paper represents entries as the triple `(m, e, t)`; the insertion
//! time `t` "is only used to prove correctness of the design and is not
//! required in the actual implementation" (footnote 6), so entries here
//! are `(m, e)` where `m` is an arbitrary reclamation closure — QSBR is a
//! "general-purpose memory reclamation device" for *arbitrary* data.

type Reclaimer = Box<dyn FnOnce() + Send>;

struct Node {
    epoch: u64,
    /// Approximate payload size awaiting reclamation (telemetry only:
    /// backlog-bytes gauges; 0 when the caller gave no size hint).
    bytes: usize,
    reclaim: Option<Reclaimer>,
    next: Option<Box<Node>>,
}

/// A thread-owned LIFO list of deferred reclamations.
///
/// Only the owning thread pushes and splits (the paper: "insertions are
/// handled sequentially on the same thread"), which is what makes the
/// structure lock-free: no other thread ever touches it.
#[derive(Default)]
pub struct DeferList {
    head: Option<Box<Node>>,
    len: usize,
    bytes: usize,
}

impl DeferList {
    /// An empty list.
    pub fn new() -> Self {
        DeferList::default()
    }

    /// Number of pending entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate bytes pending across all entries (sum of the size
    /// hints passed to [`push_with_bytes`](Self::push_with_bytes)).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Push an entry at the head (LIFO, Algorithm 2 line 3).
    ///
    /// # Panics
    /// Panics (debug builds) if `epoch` is smaller than the head's epoch:
    /// safe epochs derive from the monotonic `StateEpoch`, so successive
    /// pushes must be non-decreasing — that is what keeps the list sorted
    /// descending (Lemma 4; property-tested in this crate's proptests).
    pub fn push(&mut self, epoch: u64, reclaim: impl FnOnce() + Send + 'static) {
        self.push_with_bytes(epoch, 0, reclaim);
    }

    /// [`push`](Self::push) with an approximate payload size, so backlog
    /// gauges can report unreclaimed *memory*, not just entry counts
    /// (the age/memory trade-off axis of the paper's Fig. 2 discussion).
    pub fn push_with_bytes(
        &mut self,
        epoch: u64,
        bytes: usize,
        reclaim: impl FnOnce() + Send + 'static,
    ) {
        debug_assert!(
            self.head.as_ref().is_none_or(|h| epoch >= h.epoch),
            "defer epochs must be non-decreasing (Lemma 4)"
        );
        let node = Box::new(Node {
            epoch,
            bytes,
            reclaim: Some(Box::new(reclaim)),
            next: self.head.take(),
        });
        self.head = Some(node);
        self.len += 1;
        self.bytes += bytes;
    }

    /// Split off every entry with `safe epoch <= min_epoch`
    /// (Algorithm 2 line 9).
    ///
    /// Because the list is sorted descending from the head, the reclaimable
    /// entries form a *suffix*: walk until the first node with
    /// `epoch <= min_epoch`, cut there, and hand the suffix back as a
    /// [`DeferChain`] whose drop runs the reclaimers.
    pub fn pop_less_equal(&mut self, min_epoch: u64) -> DeferChain {
        // Fast path: entire list reclaimable (head has the max epoch).
        match &self.head {
            None => return DeferChain::empty(),
            Some(h) if h.epoch <= min_epoch => {
                return self.take_all();
            }
            _ => {}
        }
        // Walk the kept prefix counting it, then cut.
        let mut kept = 1usize;
        let mut cursor: &mut Box<Node> = self.head.as_mut().expect("non-empty checked above");
        let mut kept_bytes = cursor.bytes;
        loop {
            match cursor.next {
                Some(ref n) if n.epoch > min_epoch => {
                    kept += 1;
                    kept_bytes += n.bytes;
                    cursor = cursor.next.as_mut().expect("matched Some");
                }
                _ => break,
            }
        }
        let suffix = cursor.next.take();
        let cut = self.len - kept;
        let cut_bytes = self.bytes - kept_bytes;
        self.len = kept;
        self.bytes = kept_bytes;
        DeferChain {
            head: suffix,
            len: cut,
            bytes: cut_bytes,
        }
    }

    /// [`pop_less_equal`](Self::pop_less_equal) with a drain budget: cut at
    /// most `budget` entries, and specifically the **oldest** ones (the
    /// tail), leaving any newer reclaimable entries in place.
    ///
    /// This is the DEBRA-style amortization primitive: a checkpoint that
    /// must stay cheap frees a bounded amount of backlog per call instead
    /// of the entire reclaimable suffix. Cutting from the tail keeps the
    /// kept portion a *prefix* of the original list, so the
    /// descending-epoch invariant (Lemma 4) is preserved untouched.
    pub fn pop_less_equal_budget(&mut self, min_epoch: u64, budget: usize) -> DeferChain {
        self.pop_less_equal_budgeted(min_epoch, budget, usize::MAX)
    }

    /// [`pop_less_equal_budget`](Self::pop_less_equal_budget) with an
    /// additional **byte** budget: the cut stops once the freed entries'
    /// cumulative size hints would exceed `byte_budget` — but always
    /// frees at least one reclaimable entry, so a single oversized entry
    /// cannot wedge the drain (it overshoots by its own size instead:
    /// the same "one retire of slack" contract `PressureConfig` gives).
    pub fn pop_less_equal_budgeted(
        &mut self,
        min_epoch: u64,
        budget: usize,
        byte_budget: usize,
    ) -> DeferChain {
        if budget == 0 || byte_budget == 0 || self.head.is_none() {
            return DeferChain::empty();
        }
        // The reclaimable entries form a contiguous tail suffix (the list
        // is sorted descending from the head); collect its sizes in
        // head→tail order.
        let mut suffix_bytes: Vec<usize> = Vec::new();
        let mut cur = self.head.as_deref();
        while let Some(n) = cur {
            if n.epoch <= min_epoch {
                suffix_bytes.push(n.bytes);
            }
            cur = n.next.as_deref();
        }
        let suffix_len = suffix_bytes.len();
        if suffix_len == 0 {
            return DeferChain::empty();
        }
        // Oldest entries sit at the tail: grow the cut from the back of
        // the suffix while both budgets hold, guaranteeing at least one.
        let mut take = 0usize;
        let mut taken_bytes = 0usize;
        for &b in suffix_bytes.iter().rev() {
            if take >= budget {
                break;
            }
            if take > 0 && taken_bytes.saturating_add(b) > byte_budget {
                break;
            }
            take += 1;
            taken_bytes = taken_bytes.saturating_add(b);
        }
        let keep = self.len - take;
        if keep == 0 {
            return self.take_all();
        }
        // Walk to the last kept node and cut there: everything after it is
        // the `take` oldest entries.
        let mut cursor: &mut Box<Node> = self.head.as_mut().expect("non-empty checked above");
        let mut kept_bytes = cursor.bytes;
        for _ in 1..keep {
            cursor = cursor.next.as_mut().expect("keep < len");
            kept_bytes += cursor.bytes;
        }
        let suffix = cursor.next.take();
        let cut = self.len - keep;
        let cut_bytes = self.bytes - kept_bytes;
        self.len = keep;
        self.bytes = kept_bytes;
        DeferChain {
            head: suffix,
            len: cut,
            bytes: cut_bytes,
        }
    }

    /// Take the whole list (used when parking or orphaning at thread exit).
    pub fn take_all(&mut self) -> DeferChain {
        let chain = DeferChain {
            head: self.head.take(),
            len: self.len,
            bytes: self.bytes,
        };
        self.len = 0;
        self.bytes = 0;
        chain
    }

    /// The safe epochs from head to tail (descending). For tests.
    pub fn epochs(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(n) = cur {
            out.push(n.epoch);
            cur = n.next.as_deref();
        }
        out
    }

    /// The smallest safe epoch still pending (the tail), if any.
    pub fn oldest_epoch(&self) -> Option<u64> {
        self.epochs().last().copied()
    }
}

impl Drop for DeferList {
    fn drop(&mut self) {
        // A dropped list runs its reclaimers: leaking retired memory on
        // teardown would defeat the whole point.
        drop(self.take_all());
    }
}

impl std::fmt::Debug for DeferList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferList")
            .field("len", &self.len)
            .field("epochs", &self.epochs())
            .finish()
    }
}

/// A detached chain of defer entries whose reclaimers run on drop
/// (Algorithm 2 lines 10–13).
pub struct DeferChain {
    head: Option<Box<Node>>,
    len: usize,
    bytes: usize,
}

impl DeferChain {
    /// An empty chain.
    pub fn empty() -> Self {
        DeferChain {
            head: None,
            len: 0,
            bytes: 0,
        }
    }

    /// Approximate payload bytes carried by this chain's entries.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The safe epoch of the head entry — the chain's maximum, since
    /// chains inherit the defer list's descending order.
    #[inline]
    pub fn head_epoch(&self) -> Option<u64> {
        self.head.as_ref().map(|n| n.epoch)
    }

    /// Number of entries in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Run all reclaimers now; returns how many ran.
    pub fn reclaim_all(mut self) -> usize {
        self.run()
    }

    fn run(&mut self) -> usize {
        let mut count = 0;
        // Iteratively unlink to keep drop non-recursive for long chains.
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            if let Some(reclaim) = node.reclaim.take() {
                reclaim();
                count += 1;
            }
            cur = node.next.take();
        }
        self.len = 0;
        self.bytes = 0;
        count
    }
}

impl Drop for DeferChain {
    fn drop(&mut self) {
        self.run();
    }
}

impl std::fmt::Debug for DeferChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferChain")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counting(counter: &Arc<AtomicUsize>) -> impl FnOnce() + Send + 'static {
        let c = Arc::clone(counter);
        move || {
            c.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn push_orders_descending_from_head() {
        let mut l = DeferList::new();
        l.push(1, || {});
        l.push(3, || {});
        l.push(3, || {});
        l.push(7, || {});
        assert_eq!(l.epochs(), vec![7, 3, 3, 1]);
        assert_eq!(l.len(), 4);
        assert_eq!(l.oldest_epoch(), Some(1));
    }

    #[test]
    fn pop_less_equal_cuts_suffix_only() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut l = DeferList::new();
        for e in [1u64, 2, 5, 9] {
            l.push(e, counting(&c));
        }
        let chain = l.pop_less_equal(4);
        assert_eq!(chain.len(), 2); // epochs 1 and 2
        assert_eq!(l.epochs(), vec![9, 5]);
        drop(chain);
        assert_eq!(c.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn pop_less_equal_takes_everything_when_min_is_large() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut l = DeferList::new();
        for e in [1u64, 2, 3] {
            l.push(e, counting(&c));
        }
        let n = l.pop_less_equal(100).reclaim_all();
        assert_eq!(n, 3);
        assert!(l.is_empty());
        assert_eq!(c.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn pop_less_equal_takes_nothing_when_min_too_small() {
        let mut l = DeferList::new();
        l.push(5, || {});
        l.push(6, || {});
        let chain = l.pop_less_equal(4);
        assert!(chain.is_empty());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn pop_on_empty_list() {
        let mut l = DeferList::new();
        assert!(l.pop_less_equal(10).is_empty());
    }

    #[test]
    fn equal_epoch_boundary_is_inclusive() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut l = DeferList::new();
        l.push(4, counting(&c));
        l.push(5, counting(&c));
        drop(l.pop_less_equal(4));
        assert_eq!(c.load(Ordering::SeqCst), 1, "epoch == min must reclaim");
        assert_eq!(l.epochs(), vec![5]);
    }

    #[test]
    fn take_all_empties_and_runs_on_drop() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut l = DeferList::new();
        for e in 1..=5u64 {
            l.push(e, counting(&c));
        }
        let chain = l.take_all();
        assert!(l.is_empty());
        assert_eq!(chain.len(), 5);
        drop(chain);
        assert_eq!(c.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn dropping_list_runs_pending_reclaimers() {
        let c = Arc::new(AtomicUsize::new(0));
        {
            let mut l = DeferList::new();
            l.push(1, counting(&c));
            l.push(2, counting(&c));
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn long_chain_drop_does_not_overflow_stack() {
        let mut l = DeferList::new();
        for e in 0..200_000u64 {
            l.push(e, || {});
        }
        drop(l); // must not recurse per node
    }

    #[test]
    fn repeated_splits_preserve_order() {
        let mut l = DeferList::new();
        for e in 1..=10u64 {
            l.push(e, || {});
        }
        drop(l.pop_less_equal(3));
        assert_eq!(l.epochs(), vec![10, 9, 8, 7, 6, 5, 4]);
        drop(l.pop_less_equal(7));
        assert_eq!(l.epochs(), vec![10, 9, 8]);
        l.push(11, || {});
        assert_eq!(l.epochs(), vec![11, 10, 9, 8]);
    }

    #[test]
    fn byte_accounting_follows_splits() {
        let mut l = DeferList::new();
        l.push_with_bytes(1, 100, || {});
        l.push_with_bytes(2, 30, || {});
        l.push(3, || {}); // no size hint: counts as 0 bytes
        assert_eq!(l.bytes(), 130);
        let chain = l.pop_less_equal(1);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.bytes(), 100);
        assert_eq!(l.bytes(), 30);
        let rest = l.take_all();
        assert_eq!(rest.bytes(), 30);
        assert_eq!(l.bytes(), 0);
    }

    #[test]
    fn full_split_moves_all_bytes() {
        let mut l = DeferList::new();
        l.push_with_bytes(1, 8, || {});
        l.push_with_bytes(5, 16, || {});
        let chain = l.pop_less_equal(100);
        assert_eq!(chain.bytes(), 24);
        assert_eq!(l.bytes(), 0);
    }

    #[test]
    fn budgeted_pop_takes_oldest_entries_first() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut l = DeferList::new();
        for e in [1u64, 2, 3, 4, 5] {
            l.push(e, counting(&c));
        }
        // Everything is reclaimable, but budget 2 must free only the two
        // oldest (epochs 1 and 2) and keep the rest in order.
        let chain = l.pop_less_equal_budget(100, 2);
        assert_eq!(chain.len(), 2);
        drop(chain);
        assert_eq!(c.load(Ordering::SeqCst), 2);
        assert_eq!(l.epochs(), vec![5, 4, 3]);
        // Subsequent pushes still satisfy the descending invariant.
        l.push(6, counting(&c));
        assert_eq!(l.epochs(), vec![6, 5, 4, 3]);
    }

    #[test]
    fn budgeted_pop_respects_min_epoch_boundary() {
        let mut l = DeferList::new();
        for e in [1u64, 2, 8, 9] {
            l.push(e, || {});
        }
        // Only epochs <= 2 are reclaimable; a large budget must not cross
        // the safety boundary.
        let chain = l.pop_less_equal_budget(2, 10);
        assert_eq!(chain.len(), 2);
        assert_eq!(l.epochs(), vec![9, 8]);
    }

    #[test]
    fn budgeted_pop_with_zero_budget_is_noop() {
        let mut l = DeferList::new();
        l.push(1, || {});
        assert!(l.pop_less_equal_budget(100, 0).is_empty());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn budgeted_pop_drains_whole_list_when_budget_covers_it() {
        let mut l = DeferList::new();
        l.push_with_bytes(1, 8, || {});
        l.push_with_bytes(2, 16, || {});
        let chain = l.pop_less_equal_budget(100, 2);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.bytes(), 24);
        assert!(l.is_empty());
        assert_eq!(l.bytes(), 0);
    }

    #[test]
    fn budgeted_pop_byte_accounting_follows_the_cut() {
        let mut l = DeferList::new();
        l.push_with_bytes(1, 100, || {});
        l.push_with_bytes(2, 30, || {});
        l.push_with_bytes(3, 7, || {});
        let chain = l.pop_less_equal_budget(100, 1);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.bytes(), 100, "oldest entry carries 100 bytes");
        assert_eq!(l.bytes(), 37);
    }

    #[test]
    fn byte_budgeted_pop_stops_at_the_byte_cap() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut l = DeferList::new();
        for (e, b) in [(1u64, 40usize), (2, 40), (3, 40), (4, 40)] {
            l.push_with_bytes(e, b, counting(&c));
        }
        // Everything reclaimable; 100-byte budget fits the two oldest
        // (80 bytes), the third would cross.
        let chain = l.pop_less_equal_budgeted(100, usize::MAX, 100);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.bytes(), 80);
        drop(chain);
        assert_eq!(c.load(Ordering::SeqCst), 2);
        assert_eq!(l.epochs(), vec![4, 3]);
    }

    #[test]
    fn byte_budgeted_pop_always_frees_one_oversized_entry() {
        let mut l = DeferList::new();
        l.push_with_bytes(1, 1000, || {});
        l.push_with_bytes(2, 1000, || {});
        // A 1-byte budget cannot fit any entry, but progress is
        // guaranteed: the oldest frees anyway (one-entry slack).
        let chain = l.pop_less_equal_budgeted(100, usize::MAX, 1);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.bytes(), 1000);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn byte_budgeted_pop_respects_the_entry_budget_too() {
        let mut l = DeferList::new();
        for e in 1..=4u64 {
            l.push_with_bytes(e, 1, || {});
        }
        let chain = l.pop_less_equal_budgeted(100, 3, usize::MAX);
        assert_eq!(chain.len(), 3, "entry budget still binds");
        assert_eq!(l.epochs(), vec![4]);
    }

    #[test]
    fn byte_budgeted_pop_zero_byte_budget_is_noop() {
        let mut l = DeferList::new();
        l.push_with_bytes(1, 8, || {});
        assert!(l.pop_less_equal_budgeted(100, usize::MAX, 0).is_empty());
        assert_eq!(l.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_epoch_push_asserts() {
        let mut l = DeferList::new();
        l.push(5, || {});
        l.push(4, || {});
    }
}
