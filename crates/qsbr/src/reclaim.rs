//! The unified [`Reclaim`] trait implemented natively on [`QsbrDomain`],
//! plus [`AmortizedReclaim`] — the same protocol with a bounded
//! per-quiesce drain (DEBRA-style amortization).
//!
//! * Guard = `()`: QSBR reads are free by construction; `read_lock` only
//!   guarantees the calling thread participates in the minimum-epoch scan
//!   (an unregistered reader would be invisible and therefore
//!   unprotected).
//! * Retire = `QSBR_Defer`: push onto the calling thread's defer list,
//!   freed at a later quiescence point.
//! * Quiesce = `QSBR_Checkpoint`: announce quiescence and drain what is
//!   provably unreachable — everything for [`QsbrDomain`], at most
//!   `budget` entries for [`AmortizedReclaim`].

use crate::domain::QsbrDomain;
use rcuarray_reclaim::{PressureConfig, Reclaim, ReclaimStats, Retired};

/// Map a domain's counters into the scheme-neutral stats vocabulary.
///
/// QSBR counters live on the shared domain, not per handle, so the stats
/// are flagged `domain_wide`: merging per-locale clones takes the max
/// instead of summing the same numbers N times.
fn domain_stats(domain: &QsbrDomain, name_advances_from_checkpoints: bool) -> ReclaimStats {
    let s = domain.stats();
    ReclaimStats {
        guards: 0,
        guard_retries: 0,
        advances: if name_advances_from_checkpoints {
            s.checkpoints
        } else {
            0
        },
        retired: s.defers,
        reclaimed: s.reclaimed,
        pending: s.pending,
        pending_bytes: s.pending_bytes,
        // How far the slowest participant trails the state epoch right
        // now. Computed registry-side: probing stats must not register
        // the calling thread as a participant.
        epoch_lag: domain.state_epoch().saturating_sub(domain.min_observed()),
        // Cumulative quarantine events: every one is a participant the
        // domain declared stalled and force-parked.
        stalled: s.quarantines,
        // QSBR guards are free tokens; nothing to release on unwind.
        guard_panics: 0,
        domain_wide: true,
    }
}

impl Reclaim for QsbrDomain {
    type Guard<'a> = ();

    #[inline]
    fn read_lock(&self) -> Self::Guard<'_> {
        self.ensure_registered();
    }

    fn retire(&self, retired: Retired) {
        let (bytes, run) = retired.into_parts();
        self.defer_with_bytes(bytes, run);
    }

    #[inline]
    fn quiesce(&self) -> usize {
        self.checkpoint()
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        false
    }

    #[inline]
    fn name(&self) -> &'static str {
        "qsbr"
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        domain_stats(self, true)
    }

    #[inline]
    fn pressure(&self) -> PressureConfig {
        self.pressure_config()
    }
}

/// QSBR with a bounded per-quiesce drain budget.
///
/// A plain QSBR checkpoint pays for the *entire* reclaimable backlog at
/// once, so a thread that checkpoints rarely takes a latency spike
/// proportional to how long it deferred. `AmortizedReclaim` caps that
/// cost: each [`quiesce`](Reclaim::quiesce) frees at most `budget`
/// entries (the oldest first) totalling at most `byte_budget` bytes,
/// spreading reclamation across calls — the amortization idea of DEBRA
/// (Brown, PODC 2015) expressed through the same [`QsbrDomain`]
/// machinery via [`QsbrDomain::checkpoint_budgeted_bytes`].
///
/// The byte budget is what makes the drain compose with
/// [`PressureConfig`]: both the cap and the drain are denominated in the
/// same byte hints, so "drain until under the watermark" terminates in a
/// predictable number of quiesces regardless of entry sizes.
#[derive(Clone, Debug)]
pub struct AmortizedReclaim {
    domain: QsbrDomain,
    budget: usize,
    byte_budget: usize,
}

impl AmortizedReclaim {
    /// A fresh domain draining at most `budget` entries per quiesce.
    /// A zero budget is clamped to 1: a quiesce that can never free
    /// anything would leak by construction.
    pub fn new(budget: usize) -> Self {
        Self::with_domain(QsbrDomain::new(), budget)
    }

    /// Wrap an existing (possibly shared) domain with a drain budget.
    pub fn with_domain(domain: QsbrDomain, budget: usize) -> Self {
        Self::with_budgets(domain, budget, usize::MAX)
    }

    /// Wrap an existing domain with both an entry and a byte budget per
    /// quiesce. Zero budgets are clamped to 1 / one-entry slack: a
    /// quiesce that can never free anything would leak by construction.
    pub fn with_budgets(domain: QsbrDomain, budget: usize, byte_budget: usize) -> Self {
        AmortizedReclaim {
            domain,
            budget: budget.max(1),
            byte_budget: byte_budget.max(1),
        }
    }

    /// The underlying shared domain.
    pub fn domain(&self) -> &QsbrDomain {
        &self.domain
    }

    /// The per-quiesce drain budget, in entries.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The per-quiesce drain budget, in bytes (`usize::MAX` = unbounded).
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }
}

impl Reclaim for AmortizedReclaim {
    type Guard<'a> = ();

    #[inline]
    fn read_lock(&self) -> Self::Guard<'_> {
        self.domain.ensure_registered();
    }

    fn retire(&self, retired: Retired) {
        let (bytes, run) = retired.into_parts();
        self.domain.defer_with_bytes(bytes, run);
    }

    #[inline]
    fn quiesce(&self) -> usize {
        self.domain
            .checkpoint_budgeted_bytes(self.budget, self.byte_budget)
    }

    #[inline]
    fn guards_reads(&self) -> bool {
        false
    }

    #[inline]
    fn name(&self) -> &'static str {
        "amortized"
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        domain_stats(&self.domain, true)
    }

    #[inline]
    fn pressure(&self) -> PressureConfig {
        self.domain.pressure_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn retire_counting(r: &impl Reclaim, c: &Arc<AtomicUsize>) {
        let c = Arc::clone(c);
        r.retire(Retired::with_bytes(64, move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
    }

    #[test]
    fn qsbr_retire_defers_until_quiesce() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        retire_counting(&d, &c);
        assert_eq!(c.load(Ordering::SeqCst), 0, "retire must not free eagerly");
        assert_eq!(d.quiesce(), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
        assert!(!d.guards_reads());
        assert_eq!(Reclaim::name(&d), "qsbr");
    }

    #[test]
    fn qsbr_stats_are_domain_wide_with_byte_hints() {
        let d = QsbrDomain::new();
        let c = Arc::new(AtomicUsize::new(0));
        retire_counting(&d, &c);
        let s = d.reclaim_stats();
        assert!(s.domain_wide);
        assert_eq!(s.retired, 1);
        assert_eq!(s.pending, 1);
        assert_eq!(s.pending_bytes, 64);
        d.quiesce();
        let s = d.reclaim_stats();
        assert_eq!(s.reclaimed, 1);
        assert_eq!(s.pending, 0);
        assert_eq!(s.pending_bytes, 0);
    }

    #[test]
    fn qsbr_epoch_lag_tracks_the_slowest_participant() {
        let d = QsbrDomain::new();
        d.register_current_thread();
        d.defer(|| {});
        d.defer(|| {});
        // Sole participant observed every bump, so lag is zero.
        assert_eq!(d.reclaim_stats().epoch_lag, 0);
        let d2 = d.clone();
        rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread();
            // Exits immediately; main keeps deferring below.
        })
        .join()
        .unwrap();
        d.defer(|| {});
        // Lag reflects registry state without registering the prober.
        let _ = d.reclaim_stats().epoch_lag;
    }

    #[test]
    fn amortized_quiesce_caps_the_drain() {
        let a = AmortizedReclaim::new(2);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            retire_counting(&a, &c);
        }
        assert_eq!(a.quiesce(), 2);
        assert_eq!(a.quiesce(), 2);
        assert_eq!(a.quiesce(), 1);
        assert_eq!(a.quiesce(), 0);
        assert_eq!(c.load(Ordering::SeqCst), 5, "everything frees eventually");
        assert_eq!(a.name(), "amortized");
        assert!(!a.guards_reads());
    }

    #[test]
    fn amortized_shares_a_domain_with_plain_qsbr() {
        let d = QsbrDomain::new();
        let a = AmortizedReclaim::with_domain(d.clone(), 1);
        let c = Arc::new(AtomicUsize::new(0));
        retire_counting(&a, &c);
        // A full checkpoint through the shared domain drains the entry the
        // amortized handle retired.
        assert_eq!(d.checkpoint(), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
        assert!(a.reclaim_stats().domain_wide);
        assert_eq!(a.budget(), 1);
    }

    #[test]
    fn amortized_zero_budget_is_clamped() {
        let a = AmortizedReclaim::new(0);
        assert_eq!(a.budget(), 1, "budget 0 would leak by construction");
        let c = Arc::new(AtomicUsize::new(0));
        retire_counting(&a, &c);
        assert_eq!(a.quiesce(), 1);
    }

    #[test]
    fn amortized_byte_budget_bounds_each_quiesce() {
        let a = AmortizedReclaim::with_budgets(QsbrDomain::new(), usize::MAX, 100);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            retire_counting(&a, &c); // 64 bytes each
        }
        // 100 bytes fit one 64-byte entry; the second would cross.
        assert_eq!(a.quiesce(), 1);
        assert_eq!(a.quiesce(), 1);
        assert_eq!(a.byte_budget(), 100);
        while a.quiesce() > 0 {}
        assert_eq!(c.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn qsbr_pressure_flows_through_the_trait() {
        let d = QsbrDomain::new();
        d.set_pressure(rcuarray_reclaim::PressureConfig::bounded(256));
        assert_eq!(Reclaim::pressure(&d).max_backlog_bytes, 256);
        let a = AmortizedReclaim::with_domain(d.clone(), 4);
        assert_eq!(
            a.pressure().max_backlog_bytes,
            256,
            "shared domain, shared cap"
        );
    }

    #[test]
    fn qsbr_try_retire_backpressures_under_a_stalled_reader() {
        let d = QsbrDomain::new();
        d.set_pressure(rcuarray_reclaim::PressureConfig {
            max_backlog_bytes: 200,
            high_watermark: 100,
        });
        let gate = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        let d2 = d.clone();
        let (g2, r2) = (Arc::clone(&gate), Arc::clone(&release));
        let staller = rcuarray_analysis::thread::spawn(move || {
            d2.register_current_thread();
            g2.wait();
            r2.wait();
            d2.checkpoint();
        });
        gate.wait();
        // Fill to the cap: the stalled reader gates every drain attempt.
        assert!(d.try_retire(Retired::with_bytes(200, || {})).is_ok());
        let err = d
            .try_retire(Retired::with_bytes(8, || {}))
            .expect_err("cap reached and nothing can drain");
        err.into_retired().run();
        // The reader quiesces: backpressure lifts.
        release.wait();
        staller.join().unwrap();
        assert!(d.try_retire(Retired::with_bytes(8, || {})).is_ok());
        d.checkpoint();
        assert_eq!(d.reclaim_stats().pending, 0);
    }

    #[test]
    fn read_lock_registers_the_calling_thread() {
        let d = QsbrDomain::new();
        let d2 = d.clone();
        rcuarray_analysis::thread::spawn(move || {
            d2.read_lock(); // guard is a free () token; registration is the effect
            assert!(d2.num_participants() >= 1);
        })
        .join()
        .unwrap();
    }
}
