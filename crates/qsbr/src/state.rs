//! The global `StateEpoch`: "an atomic monotonically increasing counter …
//! that denotes the epoch as a state of the entire system" (paper §III-B).

use rcuarray_analysis::atomic::{AtomicU64, Ordering};

/// The system-state epoch counter.
///
/// The paper's footnote 5 warns that "if e′ = e + 1 were to result in
/// overflow, the algorithm would be subject to undefined behavior" —
/// unlike the EBR side, QSBR epochs must *not* wrap, because defer-list
/// ordering (Lemma 4) and the safe-epoch comparison (Lemma 5) rely on
/// unwrapped magnitudes. At one defer per nanosecond a 64-bit counter
/// lasts ~584 years, so [`StateEpoch::bump`] asserts non-overflow rather
/// than handling it.
#[derive(Debug, Default)]
pub struct StateEpoch {
    epoch: AtomicU64,
}

impl StateEpoch {
    /// A counter starting at zero.
    pub fn new() -> Self {
        StateEpoch::default()
    }

    /// Read the current state epoch (`StateEpoch.read()`, Algorithm 2
    /// line 5). `Acquire`: a thread observing epoch `e` must also see every
    /// unlink that was published before `e` was minted.
    #[inline]
    pub fn read(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the state: `StateEpoch.fetchAdd(1) + 1` (Algorithm 2
    /// line 2). Returns the *new* epoch, which becomes the safe epoch of
    /// the memory being retired.
    #[inline]
    pub fn bump(&self) -> u64 {
        let old = self.epoch.fetch_add(1, Ordering::AcqRel);
        assert_ne!(
            old,
            u64::MAX,
            "StateEpoch overflow: QSBR epochs must never wrap (paper footnote 5)"
        );
        old + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(StateEpoch::new().read(), 0);
    }

    #[test]
    fn bump_returns_new_value() {
        let s = StateEpoch::new();
        assert_eq!(s.bump(), 1);
        assert_eq!(s.bump(), 2);
        assert_eq!(s.read(), 2);
    }

    #[test]
    fn bumps_from_many_threads_are_unique() {
        let s = StateEpoch::new();
        let mut seen: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| (0..1000).map(|_| s.bump()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4000, "every bump must mint a distinct epoch");
        assert_eq!(s.read(), 4000);
    }
}
