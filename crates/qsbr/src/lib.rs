#![warn(missing_docs)]

//! # rcuarray-qsbr — runtime-level Quiescent-State-Based Reclamation
//!
//! This crate implements the QSBR scheme of §III-B of *RCUArray* (Jenkins,
//! IPDPSW 2018): a general-purpose memory-reclamation service the paper
//! embeds in *Chapel's runtime* (which, unlike Chapel code, has access to
//! thread-local storage). It is "decoupled from RCU … extended to make use
//! of epochs in a manner similar to EBR" and "can be used to perform
//! memory reclamation on arbitrary data".
//!
//! ## The scheme (Algorithm 2)
//!
//! * A global, monotonically increasing **`StateEpoch`** denotes the state
//!   of the entire system.
//! * Every participating thread owns a record with an **observed epoch**
//!   and a LIFO **defer list**, all records reachable through a registry
//!   (`TLSList`).
//! * [`QsbrDomain::defer`] (`QSBR_Defer`): bump the `StateEpoch` from `e`
//!   to `e+1`, observe `e+1`, and push the retired object onto the calling
//!   thread's defer list tagged with that *safe epoch*.
//! * [`QsbrDomain::checkpoint`] (`QSBR_Checkpoint`): observe the current
//!   `StateEpoch` — a promise of quiescence of any earlier state — compute
//!   the minimum observed epoch over all threads, then split the defer
//!   list and reclaim every entry whose safe epoch is `<=` that minimum.
//!
//! Because each thread reclaims from its *own* list, reclamation is
//! parallel and lock-free on the defer path (paper: "memory reclamation
//! can be performed in a parallel-safe manner … traversed to determine
//! which objects are safe for memory reclamation in a lockless manner").
//!
//! Reads of QSBR-protected data cost **nothing**: no barriers, no
//! announcements. The price is the contract — a thread must not hold
//! references to protected data across its own checkpoint, defer, park, or
//! registration, and checkpoints must be placed by the application
//! ("strategic placement of checkpoints is required"). Figure 4 of the
//! paper, reproduced in `rcuarray-bench`, measures exactly how checkpoint
//! frequency trades throughput against reclamation latency.
//!
//! ## Park / unpark
//!
//! The paper notes "support for parking and unparking of threads which
//! occurs when a thread is idle" — a parked thread cleans its own defer
//! list, notifies its quiescence, and stops participating in the minimum.
//! [`QsbrDomain::park`]/[`QsbrDomain::unpark`] implement that, and thread
//! exit hands any undeleted defer entries to a domain-wide orphan list so
//! nothing leaks.
//!
//! ## Robustness (DESIGN.md §9)
//!
//! A participant that stops checkpointing gates reclamation forever in
//! the classic protocol. With a [`StallPolicy`] installed
//! ([`QsbrDomain::set_stall_policy`]), a reclaiming checkpoint that sees
//! the minimum trail the state epoch past the policy's lag threshold
//! *quarantines* the straggler: its defer chain is orphaned and it stops
//! participating in the minimum (force-park semantics — the domain
//! asserts a stalled thread holds no protected references, the same
//! contract `park` states). The quarantined thread rejoins automatically
//! at its next defer or checkpoint. A [`PressureConfig`]
//! ([`QsbrDomain::set_pressure`]) additionally bounds the defer backlog
//! in bytes through the unified trait's `try_retire` path.
//!
//! ## Example
//!
//! ```
//! use rcuarray_qsbr::QsbrDomain;
//! use std::sync::Arc;
//!
//! let domain = Arc::new(QsbrDomain::new());
//! // Retire an object: freed at some later checkpoint, once every
//! // participating thread has observed a newer state.
//! let big = vec![0u8; 1024];
//! domain.defer(move || drop(big));
//! // This thread is the only participant, so its own checkpoint suffices.
//! domain.checkpoint();
//! assert_eq!(domain.stats().reclaimed, 1);
//! ```

pub mod defer_list;
pub mod domain;
pub mod reclaim;
pub mod record;
pub mod registry;
pub mod state;

pub use defer_list::{DeferChain, DeferList};
pub use domain::{DomainStats, QsbrDomain};
pub use reclaim::AmortizedReclaim;
pub use record::{DeferGuard, ThreadRecord};
pub use registry::Registry;
pub use state::StateEpoch;

// The unified reclamation vocabulary, re-exported so QSBR consumers need
// only this crate.
pub use rcuarray_reclaim::{
    Backpressure, PressureConfig, Reclaim, ReclaimStats, Retired, StallPolicy,
};
