//! QSBR churn tests: threads that register, defer, checkpoint, park and
//! exit in adversarial patterns, checking the exactly-once reclamation
//! accounting end to end.

use rcuarray_analysis::atomic::{AtomicUsize, Ordering};
use rcuarray_qsbr::QsbrDomain;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Drain helper: thread-exit hand-off is asynchronous (TLS destructors),
/// so poll until pending hits zero.
fn drain(domain: &QsbrDomain) {
    for _ in 0..2000 {
        domain.checkpoint();
        if domain.stats().pending == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("domain failed to drain: {:?}", domain.stats());
}

#[test]
fn waves_of_short_lived_threads() {
    let domain = QsbrDomain::new();
    let freed = Arc::new(AtomicUsize::new(0));
    const WAVES: usize = 5;
    const THREADS: usize = 4;
    const DEFERS: usize = 50;
    for _ in 0..WAVES {
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let domain = domain.clone();
                let freed = Arc::clone(&freed);
                s.spawn(move || {
                    for k in 0..DEFERS {
                        let f = Arc::clone(&freed);
                        domain.defer(move || {
                            f.fetch_add(1, Ordering::SeqCst);
                        });
                        if k % 10 == 9 {
                            domain.checkpoint();
                        }
                    }
                });
            }
        });
    }
    drain(&domain);
    assert_eq!(freed.load(Ordering::SeqCst), WAVES * THREADS * DEFERS);
    let stats = domain.stats();
    assert_eq!(stats.reclaimed, stats.defers);
}

#[test]
fn parked_majority_never_blocks_a_lone_worker() {
    let domain = QsbrDomain::new();
    let parked = Arc::new(Barrier::new(5));
    let release = Arc::new(Barrier::new(5));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let domain = domain.clone();
        let parked = Arc::clone(&parked);
        let release = Arc::clone(&release);
        handles.push(rcuarray_analysis::thread::spawn(move || {
            domain.register_current_thread();
            domain.park();
            parked.wait();
            release.wait();
            domain.unpark();
        }));
    }
    parked.wait();
    // Four parked participants; the lone active thread must reclaim its
    // own defers with nothing but its own checkpoints.
    let freed = Arc::new(AtomicUsize::new(0));
    for _ in 0..100 {
        let f = Arc::clone(&freed);
        domain.defer(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        domain.checkpoint();
    }
    assert_eq!(
        freed.load(Ordering::SeqCst),
        100,
        "parked threads gated reclamation"
    );
    release.wait();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn park_unpark_cycles_interleaved_with_defers() {
    let domain = QsbrDomain::new();
    let freed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        // A thread that oscillates between active and parked.
        let d1 = domain.clone();
        s.spawn(move || {
            for _ in 0..50 {
                d1.park();
                d1.unpark();
                d1.checkpoint();
            }
        });
        // A thread that defers continuously.
        let d2 = domain.clone();
        let freed = Arc::clone(&freed);
        s.spawn(move || {
            for _ in 0..500 {
                let f = Arc::clone(&freed);
                d2.defer(move || {
                    f.fetch_add(1, Ordering::SeqCst);
                });
                d2.checkpoint();
            }
        });
    });
    drain(&domain);
    assert_eq!(freed.load(Ordering::SeqCst), 500);
}

#[test]
fn reclamation_order_is_never_early() {
    // Each deferred closure records the state epoch at *execution* time;
    // it must be >= its safe epoch (it can never run while some thread
    // still sits below it).
    let domain = QsbrDomain::new();
    let violations = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let domain = domain.clone();
            let violations = Arc::clone(&violations);
            s.spawn(move || {
                for k in 0..300 {
                    let safe_epoch = domain.state_epoch() + 1;
                    let d = domain.clone();
                    let v = Arc::clone(&violations);
                    domain.defer(move || {
                        // min_observed at execution must have reached the
                        // entry's safe epoch.
                        if d.min_observed() < safe_epoch {
                            v.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                    if k % 7 == 0 {
                        domain.checkpoint();
                    }
                }
            });
        }
    });
    drain(&domain);
    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "entries ran before their safe epoch"
    );
}

#[test]
fn two_domains_interleaved_on_the_same_threads() {
    let a = QsbrDomain::new();
    let b = QsbrDomain::new();
    let freed_a = Arc::new(AtomicUsize::new(0));
    let freed_b = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let a = a.clone();
            let b = b.clone();
            let fa = Arc::clone(&freed_a);
            let fb = Arc::clone(&freed_b);
            s.spawn(move || {
                for k in 0..200 {
                    if k % 2 == 0 {
                        let f = Arc::clone(&fa);
                        a.defer(move || {
                            f.fetch_add(1, Ordering::SeqCst);
                        });
                    } else {
                        let f = Arc::clone(&fb);
                        b.defer(move || {
                            f.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    if k % 11 == 0 {
                        a.checkpoint();
                        b.checkpoint();
                    }
                }
            });
        }
    });
    drain(&a);
    drain(&b);
    assert_eq!(freed_a.load(Ordering::SeqCst), 300);
    assert_eq!(freed_b.load(Ordering::SeqCst), 300);
}
