//! Finite-state model of the paper's QSBR (Algorithm 2).
//!
//! An updater thread repeatedly replaces a shared object version,
//! deferring the old version's free tagged with the new state epoch
//! (`QSBR_Defer`); reader threads acquire references to the current
//! version and later pass a quiescent point (`QSBR_Checkpoint`), which
//! observes the state epoch, computes the minimum observed epoch over all
//! threads, and frees defer entries with `safe_epoch <= min` (Lemma 5).
//!
//! The safety property: *no thread holds a reference to a freed version*.
//!
//! Mutations:
//! * [`QsbrModel::ignore_minimum`] — the checkpoint frees using only the
//!   *local* observed epoch instead of the cross-thread minimum. The
//!   checker produces the obvious use-after-free.
//! * [`QsbrModel::hold_across_checkpoint`] — a reader keeps its reference
//!   across its own checkpoint, violating the paper's stated contract
//!   ("it is not safe to dereference any memory managed by QSBR if it has
//!   been acquired prior to a checkpoint"). The checker shows the
//!   contract is load-bearing, not advisory.

use crate::explorer::Model;

/// Maximum defer entries the updater can have outstanding — bounded by
/// the number of updates.
const MAX_DEFERS: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DeferEntry {
    version: u8,
    safe_epoch: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ReaderT {
    observed: u8,
    held: Option<u8>,
    ops_left: u8,
}

/// Full QSBR system state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QsbrState {
    state_epoch: u8,
    current_version: u8,
    freed: u16, // bitmask of freed versions
    updater_observed: u8,
    updates_left: u8,
    defers: [Option<DeferEntry>; MAX_DEFERS],
    readers: [ReaderT; 2],
}

/// A schedulable step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QsbrAction {
    /// Updater: replace the current version and defer the old one's free
    /// (`QSBR_Defer`: bump StateEpoch, observe it, push entry).
    Update,
    /// Updater: checkpoint its own defer list.
    UpdaterCheckpoint,
    /// Reader `i`: acquire a reference to the current version.
    Acquire(usize),
    /// Reader `i`: use the held reference (the dereference the safety
    /// property protects).
    Use(usize),
    /// Reader `i`: drop the reference (still pre-quiescence).
    Release(usize),
    /// Reader `i`: pass a quiescent point (`QSBR_Checkpoint`).
    Checkpoint(usize),
}

/// The model, parameterized by size and mutations.
#[derive(Debug, Clone)]
pub struct QsbrModel {
    /// Updates the updater performs.
    pub updates: u8,
    /// Acquire/use/release/checkpoint rounds per reader.
    pub ops_per_reader: u8,
    /// MUTATION: free with the local observed epoch, not the minimum.
    pub ignore_minimum: bool,
    /// MUTATION: readers keep the held reference across their checkpoint.
    pub hold_across_checkpoint: bool,
}

impl Default for QsbrModel {
    fn default() -> Self {
        QsbrModel {
            updates: 3,
            ops_per_reader: 2,
            ignore_minimum: false,
            hold_across_checkpoint: false,
        }
    }
}

impl QsbrModel {
    fn min_observed(&self, s: &QsbrState) -> u8 {
        // All threads participate: both readers and the updater
        // (registration is unconditional in this model, like threads in
        // Chapel's runtime).
        s.readers
            .iter()
            .map(|r| r.observed)
            .chain(std::iter::once(s.updater_observed))
            .min()
            .expect("nonempty")
    }

    fn run_checkpoint(&self, s: &mut QsbrState, min: u8) {
        for slot in s.defers.iter_mut() {
            if let Some(d) = *slot {
                if d.safe_epoch <= min {
                    s.freed |= 1 << d.version;
                    *slot = None;
                }
            }
        }
    }
}

impl Model for QsbrModel {
    type State = QsbrState;
    type Action = QsbrAction;

    fn initial(&self) -> Vec<QsbrState> {
        vec![QsbrState {
            state_epoch: 0,
            current_version: 0,
            freed: 0,
            updater_observed: 0,
            updates_left: self.updates,
            defers: [None; MAX_DEFERS],
            readers: [
                ReaderT {
                    observed: 0,
                    held: None,
                    ops_left: self.ops_per_reader,
                },
                ReaderT {
                    observed: 0,
                    held: None,
                    ops_left: self.ops_per_reader,
                },
            ],
        }]
    }

    fn actions(&self, s: &QsbrState) -> Vec<QsbrAction> {
        let mut acts = Vec::new();
        if s.updates_left > 0 && s.defers.iter().any(|d| d.is_none()) {
            acts.push(QsbrAction::Update);
        }
        if s.defers.iter().any(|d| d.is_some()) {
            acts.push(QsbrAction::UpdaterCheckpoint);
        }
        for (i, r) in s.readers.iter().enumerate() {
            match r.held {
                None if r.ops_left > 0 => acts.push(QsbrAction::Acquire(i)),
                Some(_) => {
                    acts.push(QsbrAction::Use(i));
                    acts.push(QsbrAction::Release(i));
                }
                None => {}
            }
            // A checkpoint is legal at any time the thread is between
            // dereferences (and, under the buggy mutation, even while
            // holding).
            if r.held.is_none() || self.hold_across_checkpoint {
                acts.push(QsbrAction::Checkpoint(i));
            }
        }
        acts
    }

    fn step(&self, s: &QsbrState, a: &QsbrAction) -> QsbrState {
        let mut s = *s;
        match *a {
            QsbrAction::Update => {
                // QSBR_Defer lines 1-3: bump, observe, push.
                let old = s.current_version;
                s.current_version += 1;
                s.state_epoch += 1;
                s.updater_observed = s.state_epoch;
                let slot = s
                    .defers
                    .iter_mut()
                    .find(|d| d.is_none())
                    .expect("enabled only with a free slot");
                *slot = Some(DeferEntry {
                    version: old,
                    safe_epoch: s.state_epoch,
                });
                s.updates_left -= 1;
            }
            QsbrAction::UpdaterCheckpoint => {
                s.updater_observed = s.state_epoch;
                let min = if self.ignore_minimum {
                    s.updater_observed
                } else {
                    self.min_observed(&s)
                };
                self.run_checkpoint(&mut s, min);
            }
            QsbrAction::Acquire(i) => {
                s.readers[i].held = Some(s.current_version);
            }
            QsbrAction::Use(_i) => {
                // The dereference itself; safety checked in `check`.
            }
            QsbrAction::Release(i) => {
                s.readers[i].held = None;
                s.readers[i].ops_left -= 1;
            }
            QsbrAction::Checkpoint(i) => {
                if !self.hold_across_checkpoint {
                    debug_assert!(s.readers[i].held.is_none());
                }
                s.readers[i].observed = s.state_epoch;
                let min = if self.ignore_minimum {
                    s.readers[i].observed
                } else {
                    self.min_observed(&s)
                };
                self.run_checkpoint(&mut s, min);
            }
        }
        s
    }

    fn check(&self, s: &QsbrState) -> Result<(), String> {
        for (i, r) in s.readers.iter().enumerate() {
            if let Some(v) = r.held {
                if s.freed & (1 << v) != 0 {
                    return Err(format!(
                        "reader {i} holds freed version {v} (observed epoch {})",
                        r.observed
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::explore;

    #[test]
    fn qsbr_is_safe_across_every_interleaving() {
        let stats = explore(&QsbrModel::default(), 5_000_000).expect_ok();
        assert!(stats.states > 1_000, "exploration too small to mean much");
    }

    #[test]
    fn larger_configuration_still_safe() {
        let m = QsbrModel {
            updates: 4,
            ops_per_reader: 3,
            ..QsbrModel::default()
        };
        explore(&m, 20_000_000).expect_ok();
    }

    #[test]
    fn freeing_without_the_minimum_is_caught() {
        // Lemma 5's hypothesis matters: using only the local observed
        // epoch frees entries a lagging thread still references.
        let m = QsbrModel {
            ignore_minimum: true,
            ..QsbrModel::default()
        };
        let (reason, trace) = explore(&m, 5_000_000).expect_violation();
        assert!(reason.contains("freed version"), "{reason}");
        assert!(!trace.is_empty());
    }

    #[test]
    fn holding_a_reference_across_ones_own_checkpoint_is_caught() {
        // The paper's §III-B contract, shown to be load-bearing: "it is
        // not safe to dereference any memory managed by QSBR if it has
        // been acquired prior to a checkpoint".
        let m = QsbrModel {
            hold_across_checkpoint: true,
            ..QsbrModel::default()
        };
        let (reason, _) = explore(&m, 5_000_000).expect_violation();
        assert!(reason.contains("freed version"), "{reason}");
    }

    #[test]
    fn no_update_means_nothing_ever_freed() {
        let m = QsbrModel {
            updates: 0,
            ops_per_reader: 2,
            ..QsbrModel::default()
        };
        let stats = explore(&m, 1_000_000).expect_ok();
        assert!(stats.states > 10);
    }
}
