#![warn(missing_docs)]

//! # rcuarray-model — exhaustive protocol model checking
//!
//! The paper argues the correctness of its two reclamation protocols with
//! proof sketches (Lemmas 1–6). Proof sketches have a failure mode:
//! missing interleavings. This crate re-states the protocols as explicit
//! finite-state machines and **exhaustively explores every interleaving**
//! of their concurrent steps, asserting the safety property directly:
//!
//! * [`ebr_model`] — the TLS-free EBR protocol of Algorithm 1: readers
//!   (read epoch → increment parity counter → verify → dereference →
//!   decrement) racing a writer (publish → advance → drain → reclaim),
//!   with the epoch modeled as a **2-bit wrapping counter** so the
//!   overflow case of Lemma 2 is inside the explored space, not an
//!   argument. The invariant: *no reader ever dereferences a reclaimed
//!   snapshot*.
//! * [`qsbr_model`] — QSBR of Algorithm 2: threads acquire references,
//!   retire versions, and checkpoint; the invariant is Lemma 5's — *an
//!   entry is only freed when every thread has observed an epoch at least
//!   as new as its safe epoch*, expressed as "no thread holds a freed
//!   version".
//!
//! The explorer ([`explore`]) is a plain BFS over the reachable state
//! graph with memoization; models are kept small enough (a few thousand
//! states) that exploration is exhaustive and fast. Each model also has a
//! **mutation test**: deleting the protocol step the paper's correctness
//! hinges on (the reader's verify; the checkpoint's minimum) must make
//! the checker produce a counterexample — evidence the checker can
//! actually see the bugs it claims to rule out.

pub mod ebr_model;
pub mod explorer;
pub mod qsbr_model;

pub use explorer::{explore, CheckOutcome, Explored, Model};
