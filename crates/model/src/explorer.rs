//! A small exhaustive state-space explorer: breadth-first search over
//! every interleaving of a model's enabled actions, with memoization and
//! counterexample traces.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A finite-state concurrent system under test.
pub trait Model: Sized {
    /// A system state. Must be small and hashable; the explorer memoizes
    /// visited states.
    type State: Clone + Eq + Hash;
    /// An action label (e.g. "reader 0: verify"). Used in traces.
    type Action: Clone + std::fmt::Debug;

    /// The initial state(s).
    fn initial(&self) -> Vec<Self::State>;

    /// All actions enabled in `state`. An empty result means the state is
    /// terminal. Blocking steps (e.g. a writer waiting on a counter) are
    /// modeled by simply not being enabled.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Apply `action` to `state`.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// The safety property. `Err(reason)` marks a violating state.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// Result of an exploration.
#[derive(Debug)]
pub enum CheckOutcome<M: Model> {
    /// Every reachable state satisfies the property.
    Ok(Explored),
    /// A violating state was found; the trace of actions reaching it is
    /// included (shortest, by BFS order).
    Violation {
        /// Why `check` failed.
        reason: String,
        /// Action sequence from an initial state to the violation.
        trace: Vec<M::Action>,
        /// Exploration statistics up to the violation.
        stats: Explored,
    },
}

impl<M: Model> CheckOutcome<M> {
    /// Unwrap the OK case, panicking with the counterexample otherwise.
    pub fn expect_ok(self) -> Explored {
        match self {
            CheckOutcome::Ok(stats) => stats,
            CheckOutcome::Violation { reason, trace, .. } => {
                panic!("model violated: {reason}\ntrace: {trace:#?}")
            }
        }
    }

    /// Unwrap the violation case, panicking if the model was clean.
    pub fn expect_violation(self) -> (String, Vec<M::Action>) {
        match self {
            CheckOutcome::Ok(stats) => panic!(
                "expected a violation but all {} states were safe",
                stats.states
            ),
            CheckOutcome::Violation { reason, trace, .. } => (reason, trace),
        }
    }

    /// True when no violation was found.
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckOutcome::Ok(_))
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// States with no enabled action.
    pub terminal_states: usize,
}

/// Exhaustively explore `model` up to `max_states` distinct states
/// (a safety valve against accidentally infinite models; exceeding it
/// panics so a truncated exploration can never masquerade as a proof).
pub fn explore<M: Model>(model: &M, max_states: usize) -> CheckOutcome<M> {
    // Parent links for counterexample reconstruction: each reached state
    // maps to the (predecessor, action) that first produced it.
    type ParentMap<M> =
        HashMap<<M as Model>::State, Option<(<M as Model>::State, <M as Model>::Action)>>;
    let mut parent: ParentMap<M> = HashMap::new();
    let mut queue: VecDeque<M::State> = VecDeque::new();
    let mut transitions = 0usize;
    let mut terminal_states = 0usize;

    let trace_to = |parent: &ParentMap<M>, state: &M::State| {
        let mut trace = Vec::new();
        let mut cur = state.clone();
        while let Some(Some((prev, act))) = parent.get(&cur) {
            trace.push(act.clone());
            cur = prev.clone();
        }
        trace.reverse();
        trace
    };

    for init in model.initial() {
        if parent.insert(init.clone(), None).is_none() {
            if let Err(reason) = model.check(&init) {
                return CheckOutcome::Violation {
                    reason,
                    trace: Vec::new(),
                    stats: Explored {
                        states: parent.len(),
                        transitions,
                        terminal_states,
                    },
                };
            }
            queue.push_back(init);
        }
    }

    while let Some(state) = queue.pop_front() {
        let actions = model.actions(&state);
        if actions.is_empty() {
            terminal_states += 1;
            continue;
        }
        for action in actions {
            let next = model.step(&state, &action);
            transitions += 1;
            if parent.contains_key(&next) {
                continue;
            }
            parent.insert(next.clone(), Some((state.clone(), action)));
            assert!(
                parent.len() <= max_states,
                "state space exceeded {max_states} states; exploration would be partial"
            );
            if let Err(reason) = model.check(&next) {
                let trace = trace_to(&parent, &next);
                return CheckOutcome::Violation {
                    reason,
                    trace,
                    stats: Explored {
                        states: parent.len(),
                        transitions,
                        terminal_states,
                    },
                };
            }
            queue.push_back(next);
        }
    }

    CheckOutcome::Ok(Explored {
        states: parent.len(),
        transitions,
        terminal_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: two counters incremented to a bound; violation when
    /// their sum hits a forbidden value.
    struct Counters {
        bound: u8,
        forbidden_sum: Option<u8>,
    }

    impl Model for Counters {
        type State = (u8, u8);
        type Action = usize; // which counter

        fn initial(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }

        fn actions(&self, s: &(u8, u8)) -> Vec<usize> {
            let mut a = Vec::new();
            if s.0 < self.bound {
                a.push(0);
            }
            if s.1 < self.bound {
                a.push(1);
            }
            a
        }

        fn step(&self, s: &(u8, u8), a: &usize) -> (u8, u8) {
            let mut s = *s;
            if *a == 0 {
                s.0 += 1;
            } else {
                s.1 += 1;
            }
            s
        }

        fn check(&self, s: &(u8, u8)) -> Result<(), String> {
            if Some(s.0 + s.1) == self.forbidden_sum {
                Err(format!("sum reached {}", s.0 + s.1))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn explores_full_grid() {
        let m = Counters {
            bound: 3,
            forbidden_sum: None,
        };
        let stats = explore(&m, 1000).expect_ok();
        assert_eq!(stats.states, 16, "4x4 grid");
        assert_eq!(stats.terminal_states, 1, "only (3,3) is terminal");
    }

    #[test]
    fn finds_shortest_counterexample() {
        let m = Counters {
            bound: 5,
            forbidden_sum: Some(3),
        };
        let (reason, trace) = explore(&m, 10_000).expect_violation();
        assert!(reason.contains("sum reached 3"));
        assert_eq!(trace.len(), 3, "BFS yields a shortest trace");
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn state_cap_is_enforced() {
        let m = Counters {
            bound: 100,
            forbidden_sum: None,
        };
        let _ = explore(&m, 10);
    }

    #[test]
    fn violation_in_initial_state_has_empty_trace() {
        let m = Counters {
            bound: 1,
            forbidden_sum: Some(0),
        };
        let (_, trace) = explore(&m, 100).expect_violation();
        assert!(trace.is_empty());
    }
}
