//! Finite-state model of the paper's TLS-free EBR protocol (Algorithm 1).
//!
//! One writer (serialized by the write lock, as the paper requires)
//! performs `writes` clone-publish-advance-drain-reclaim cycles; `R`
//! readers each perform `reads` read-side critical sections using the
//! two-counter read–increment–verify protocol. The epoch is a **wrapping
//! counter mod [`EPOCH_MOD`]** so integer overflow (Lemma 2) is part of
//! the explored space. The safety property is the memory-safety core of
//! Lemmas 1–3: *a reader holding a snapshot reference never holds a
//! reclaimed snapshot*.
//!
//! Three mutations are provided, all caught by the checker:
//! * [`EbrModel::skip_verify`] — drop the reader's verification read
//!   (Algorithm 1 line 13). The checker finds the paper's own scenario:
//!   a writer misses the reader's increment and a *later* writer reclaims
//!   the snapshot under it.
//! * [`EbrModel::skip_drain`] — the writer reclaims without waiting for
//!   readers (line 7). Immediately unsafe.
//! * [`EbrModel::early_snapshot_load`] — load the snapshot pointer
//!   *before* the increment+verify rather than after. This looks like a
//!   harmless strengthening of Lemma 3 (the reader announces before any
//!   writer could free what it loaded — it either gets drained-for or
//!   retries), and it is indeed safe **for any single writer cycle**. The
//!   checker finds the subtle break: across a full **epoch wrap**
//!   (`EPOCH_MOD` writer cycles), the verification read spuriously passes
//!   — the epoch has returned to the observed value — and the
//!   early-loaded snapshot has been reclaimed generations ago. The
//!   standard protocol survives the same spurious pass because it loads
//!   the snapshot *after* verification, so a stale-epoch-matching reader
//!   still holds the *current* snapshot (this is the unstated load-order
//!   assumption inside the paper's Lemma 2 proof sketch). The order of
//!   lines 13–14 is load-bearing.

use crate::explorer::Model;

/// Epoch counter modulus: 4 keeps wrap-around reachable in a few writes
/// while preserving the only property the protocol uses — parity
/// alternation across increments, including at the wrap.
pub const EPOCH_MOD: u8 = 4;

/// Program counter of the single writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WriterPc {
    /// Between write operations (holding nothing).
    Idle,
    /// New snapshot published; epoch not yet advanced.
    Published,
    /// Epoch advanced; waiting to drain the old parity.
    Advanced,
}

/// Program counter of a reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReaderPc {
    /// Between read operations.
    Idle,
    /// Epoch loaded into `e` (line 10).
    GotEpoch,
    /// Counter `readers[e % 2]` incremented (line 12).
    Incremented,
    /// Verification passed (line 13); snapshot not yet loaded.
    Verified,
    /// Snapshot reference in hand (between lines 14's load and its use).
    HoldingRef,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Writer {
    pc: WriterPc,
    writes_left: u8,
    old_epoch: u8,
    old_snap: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Reader {
    pc: ReaderPc,
    reads_left: u8,
    e: u8,
    idx: u8,
    snap: u8,
}

/// A full protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EbrState {
    epoch: u8,
    counters: [u8; 2],
    /// Id of the currently published snapshot.
    published: u8,
    /// Bitmask of reclaimed snapshot ids.
    reclaimed: u16,
    writer: Writer,
    readers: [Reader; 2],
}

/// A schedulable step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EbrAction {
    /// Writer: clone + publish the new snapshot (lines 1–4).
    WriterPublish,
    /// Writer: `GlobalEpoch.fetchAdd(1)` (line 5).
    WriterAdvance,
    /// Writer: observe the old parity drained and reclaim (lines 7–8).
    /// Only enabled when the counter is zero — the wait *is* the guard.
    WriterReclaim,
    /// Reader `i`: load the epoch (line 10).
    ReaderLoadEpoch(usize),
    /// Reader `i`: increment its parity counter (line 12).
    ReaderIncrement(usize),
    /// Reader `i`: verification read (line 13) — branches internally.
    ReaderVerify(usize),
    /// Reader `i`: load the snapshot pointer (start of line 14).
    ReaderLoadSnapshot(usize),
    /// Reader `i`: finish — decrement and go idle (line 15).
    ReaderFinish(usize),
}

/// The model, parameterized by size and mutations.
#[derive(Debug, Clone)]
pub struct EbrModel {
    /// Writer cycles to perform. ≥ `EPOCH_MOD` guarantees the epoch wraps
    /// inside the exploration.
    pub writes: u8,
    /// Read-side critical sections per reader.
    pub reads_per_reader: u8,
    /// Initial epoch (start near the wrap to cover it early too).
    pub initial_epoch: u8,
    /// MUTATION: reader skips the verification read.
    pub skip_verify: bool,
    /// MUTATION: writer reclaims without draining.
    pub skip_drain: bool,
    /// MUTATION: reader loads the snapshot pointer at `GotEpoch` time
    /// instead of after verification. Unsafe across an epoch wrap — see
    /// the [module docs](self).
    pub early_snapshot_load: bool,
}

impl Default for EbrModel {
    fn default() -> Self {
        EbrModel {
            writes: EPOCH_MOD + 1, // guarantees wrap-around coverage
            reads_per_reader: 2,
            initial_epoch: 0,
            skip_verify: false,
            skip_drain: false,
            early_snapshot_load: false,
        }
    }
}

impl Model for EbrModel {
    type State = EbrState;
    type Action = EbrAction;

    fn initial(&self) -> Vec<EbrState> {
        vec![EbrState {
            epoch: self.initial_epoch % EPOCH_MOD,
            counters: [0, 0],
            published: 0,
            reclaimed: 0,
            writer: Writer {
                pc: WriterPc::Idle,
                writes_left: self.writes,
                old_epoch: 0,
                old_snap: 0,
            },
            readers: [
                Reader {
                    pc: ReaderPc::Idle,
                    reads_left: self.reads_per_reader,
                    e: 0,
                    idx: 0,
                    snap: 0,
                },
                Reader {
                    pc: ReaderPc::Idle,
                    reads_left: self.reads_per_reader,
                    e: 0,
                    idx: 0,
                    snap: 0,
                },
            ],
        }]
    }

    fn actions(&self, s: &EbrState) -> Vec<EbrAction> {
        let mut acts = Vec::new();
        match s.writer.pc {
            WriterPc::Idle if s.writer.writes_left > 0 => acts.push(EbrAction::WriterPublish),
            WriterPc::Published => acts.push(EbrAction::WriterAdvance),
            // The drain loop: reclaiming is enabled once the old parity
            // is empty (or unconditionally under the unsound mutation).
            WriterPc::Advanced
                if self.skip_drain || s.counters[(s.writer.old_epoch % 2) as usize] == 0 =>
            {
                acts.push(EbrAction::WriterReclaim);
            }
            _ => {}
        }
        for (i, r) in s.readers.iter().enumerate() {
            match r.pc {
                ReaderPc::Idle if r.reads_left > 0 => acts.push(EbrAction::ReaderLoadEpoch(i)),
                ReaderPc::GotEpoch => acts.push(EbrAction::ReaderIncrement(i)),
                ReaderPc::Incremented => acts.push(EbrAction::ReaderVerify(i)),
                ReaderPc::Verified => acts.push(EbrAction::ReaderLoadSnapshot(i)),
                ReaderPc::HoldingRef => acts.push(EbrAction::ReaderFinish(i)),
                _ => {}
            }
        }
        acts
    }

    fn step(&self, s: &EbrState, a: &EbrAction) -> EbrState {
        let mut s = *s;
        match *a {
            EbrAction::WriterPublish => {
                s.writer.old_snap = s.published;
                s.published += 1; // fresh snapshot id
                s.writer.pc = WriterPc::Published;
            }
            EbrAction::WriterAdvance => {
                s.writer.old_epoch = s.epoch;
                s.epoch = (s.epoch + 1) % EPOCH_MOD; // wrapping fetch-add
                s.writer.pc = WriterPc::Advanced;
            }
            EbrAction::WriterReclaim => {
                s.reclaimed |= 1 << s.writer.old_snap;
                s.writer.writes_left -= 1;
                s.writer.pc = WriterPc::Idle;
            }
            EbrAction::ReaderLoadEpoch(i) => {
                let r = &mut s.readers[i];
                r.e = s.epoch;
                if self.early_snapshot_load {
                    r.snap = s.published;
                }
                r.pc = ReaderPc::GotEpoch;
            }
            EbrAction::ReaderIncrement(i) => {
                let idx = (s.readers[i].e % 2) as usize;
                s.counters[idx] += 1;
                s.readers[i].idx = idx as u8;
                s.readers[i].pc = ReaderPc::Incremented;
            }
            EbrAction::ReaderVerify(i) => {
                let passed = self.skip_verify || s.readers[i].e == s.epoch;
                if passed {
                    s.readers[i].pc = if self.early_snapshot_load {
                        // Snapshot already in hand.
                        ReaderPc::HoldingRef
                    } else {
                        ReaderPc::Verified
                    };
                } else {
                    // Undo and retry (lines 17, 9).
                    s.counters[s.readers[i].idx as usize] -= 1;
                    s.readers[i].pc = ReaderPc::Idle;
                }
            }
            EbrAction::ReaderLoadSnapshot(i) => {
                s.readers[i].snap = s.published;
                s.readers[i].pc = ReaderPc::HoldingRef;
            }
            EbrAction::ReaderFinish(i) => {
                s.counters[s.readers[i].idx as usize] -= 1;
                s.readers[i].reads_left -= 1;
                s.readers[i].pc = ReaderPc::Idle;
            }
        }
        s
    }

    fn check(&self, s: &EbrState) -> Result<(), String> {
        for (i, r) in s.readers.iter().enumerate() {
            if r.pc == ReaderPc::HoldingRef && s.reclaimed & (1 << r.snap) != 0 {
                return Err(format!(
                    "reader {i} holds reclaimed snapshot {} (epoch {}, parity {})",
                    r.snap, r.e, r.idx
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::explore;

    #[test]
    fn protocol_is_safe_across_every_interleaving_including_wrap() {
        // writes = EPOCH_MOD + 1 forces the epoch through the wrap.
        let stats = explore(&EbrModel::default(), 2_000_000).expect_ok();
        assert!(stats.states > 1_000, "exploration too small to mean much");
    }

    #[test]
    fn safe_from_every_initial_epoch() {
        for e0 in 0..EPOCH_MOD {
            let m = EbrModel {
                initial_epoch: e0,
                ..EbrModel::default()
            };
            explore(&m, 2_000_000).expect_ok();
        }
    }

    #[test]
    fn early_snapshot_load_is_broken_by_epoch_wrap() {
        // The checker's best find: loading the snapshot before the verify
        // is safe for any single writer cycle (Lemma 3 territory), but
        // across a full epoch wrap the verify spuriously passes and the
        // early-loaded snapshot is generations-old garbage. The line
        // 13-before-14 order in Algorithm 1 is what makes Lemma 2's
        // overflow argument go through.
        let m = EbrModel {
            early_snapshot_load: true,
            ..EbrModel::default()
        };
        let (reason, trace) = explore(&m, 2_000_000).expect_violation();
        assert!(reason.contains("reclaimed snapshot"), "{reason}");
        // The counterexample must span a full wrap: at least EPOCH_MOD
        // writer advances appear in the trace.
        let advances = trace
            .iter()
            .filter(|a| matches!(a, EbrAction::WriterAdvance))
            .count();
        assert!(
            advances >= EPOCH_MOD as usize,
            "violation requires a full epoch wrap, saw {advances} advances"
        );
    }

    #[test]
    fn early_snapshot_load_is_safe_below_the_wrap() {
        // Confirms the same mutation is *safe* when the epoch cannot wrap
        // (fewer writer cycles than the modulus): the bug is strictly an
        // overflow interaction.
        let m = EbrModel {
            early_snapshot_load: true,
            writes: EPOCH_MOD - 1,
            ..EbrModel::default()
        };
        explore(&m, 2_000_000).expect_ok();
    }

    #[test]
    fn dropping_the_verify_step_is_caught() {
        let m = EbrModel {
            skip_verify: true,
            ..EbrModel::default()
        };
        let (reason, trace) = explore(&m, 2_000_000).expect_violation();
        assert!(reason.contains("reclaimed snapshot"), "{reason}");
        // The counterexample needs at least: reader loads epoch, writer
        // runs a full cycle plus, reader increments late, etc.
        assert!(trace.len() >= 6, "suspiciously short trace: {trace:?}");
    }

    #[test]
    fn dropping_the_drain_is_caught() {
        let m = EbrModel {
            skip_drain: true,
            ..EbrModel::default()
        };
        let (reason, _) = explore(&m, 2_000_000).expect_violation();
        assert!(reason.contains("reclaimed snapshot"), "{reason}");
    }

    #[test]
    fn single_reader_single_write_is_tiny_and_safe() {
        let m = EbrModel {
            writes: 1,
            reads_per_reader: 1,
            ..EbrModel::default()
        };
        let stats = explore(&m, 100_000).expect_ok();
        assert!(stats.terminal_states >= 1);
    }
}
