//! rcuarray-analysis: the concurrency analysis layer.
//!
//! Three pieces, mirroring the issue that motivated them:
//!
//! 1. **A sync facade** ([`atomic`], [`sync`], [`thread`], [`cell`]).
//!    The concurrency crates (`rcuarray-ebr`, `rcuarray-qsbr`,
//!    `rcuarray`, parts of `rcuarray-runtime`) import their atomics,
//!    locks and thread spawns from here instead of `std`/`parking_lot`.
//!    Without the `check` feature the facade re-exports the plain types
//!    (zero cost). With `check`, every operation becomes a scheduling
//!    point of the deterministic checker — against the *real* shipped
//!    code, not a model of it.
//!
//! 2. **A deterministic checker** ([`checker`], with [`sched`] and
//!    [`clock`]): seeded-random and PCT schedules with bounded
//!    preemptions, serialized execution of registered threads, and
//!    vector-clock happens-before race detection over instrumented
//!    accesses. Every report carries the seed that replays it. With
//!    `Policy::Dpor` ([`dpor`]) the sampler is replaced by exhaustive
//!    source-DPOR exploration with sleep-set pruning, and failures carry
//!    a minimized, replayable serialized schedule instead of a seed. A
//!    shadow-heap oracle ([`shadow`]) tracks retire → reclaim lifecycles
//!    by fresh id and turns use-after-reclaim, double-retire and
//!    double-reclaim into deterministic reports, plus leak accounting at
//!    session end.
//!
//! 3. **A source lint** ([`lint`], `cargo run -p rcuarray-analysis --bin
//!    lint`): every `unsafe` site must carry a `SAFETY:`/`# Safety`
//!    justification, `Ordering::Relaxed` and bare `std::sync::atomic` /
//!    `std::thread::spawn` are confined to explicit allowlists.
//!
//! See DESIGN.md §6 for the architecture and README "Checking" for the
//! commands.

pub mod atomic;
pub mod cell;
#[cfg(feature = "check")]
pub mod checker;
pub mod clock;
#[cfg(feature = "check")]
pub mod dpor;
pub mod lint;
pub mod sched;
#[cfg(feature = "check")]
pub mod shadow;
pub mod sync;
pub mod thread;

pub use cell::CheckedCell;
pub use sched::Policy;
pub use sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "check")]
pub use checker::{
    BudgetAbort, Checker, Config, Race, RaceKind, ReplayToken, Report, ShadowLeak, ShadowViolation,
};
#[cfg(feature = "check")]
pub use dpor::{parse_schedule, serialize_schedule, DporReport};
#[cfg(feature = "check")]
pub use shadow::{ShadowId, ShadowKind, TrackedCell};
