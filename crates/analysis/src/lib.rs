//! rcuarray-analysis: the concurrency analysis layer.
//!
//! Three pieces, mirroring the issue that motivated them:
//!
//! 1. **A sync facade** ([`atomic`], [`sync`], [`thread`], [`cell`]).
//!    The concurrency crates (`rcuarray-ebr`, `rcuarray-qsbr`,
//!    `rcuarray`, parts of `rcuarray-runtime`) import their atomics,
//!    locks and thread spawns from here instead of `std`/`parking_lot`.
//!    Without the `check` feature the facade re-exports the plain types
//!    (zero cost). With `check`, every operation becomes a scheduling
//!    point of the deterministic checker — against the *real* shipped
//!    code, not a model of it.
//!
//! 2. **A deterministic checker** ([`checker`], with [`sched`] and
//!    [`clock`]): seeded-random and PCT schedules with bounded
//!    preemptions, serialized execution of registered threads, and
//!    vector-clock happens-before race detection over instrumented
//!    accesses. Every report carries the seed that replays it.
//!
//! 3. **A source lint** ([`lint`], `cargo run -p rcuarray-analysis --bin
//!    lint`): every `unsafe` site must carry a `SAFETY:`/`# Safety`
//!    justification, `Ordering::Relaxed` and bare `std::sync::atomic` /
//!    `std::thread::spawn` are confined to explicit allowlists.
//!
//! See DESIGN.md §6 for the architecture and README "Checking" for the
//! commands.

pub mod atomic;
pub mod cell;
#[cfg(feature = "check")]
pub mod checker;
pub mod clock;
pub mod lint;
pub mod sched;
pub mod sync;
pub mod thread;

pub use cell::CheckedCell;
pub use sched::Policy;
pub use sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "check")]
pub use checker::{Checker, Config, Race, RaceKind, Report};
