//! Deterministic schedule generation for the checker.
//!
//! Two schedule families, both fully determined by a `u64` seed so every
//! interleaving the checker explores can be replayed from its seed:
//!
//! * [`Policy::Random`] — seeded uniform choice with a bias toward letting
//!   the current thread keep running (bounding gratuitous preemption, as
//!   in `rr`'s chaos mode / shuttle's random scheduler).
//! * [`Policy::Pct`] — PCT-style priority scheduling (Burckhardt et al.,
//!   "A Randomized Scheduler with Probabilistic Guarantees of Finding
//!   Bugs"): random static priorities plus `depth - 1` priority change
//!   points sampled over the step budget; always runs the
//!   highest-priority runnable thread.
//!
//! A third mode, [`Policy::Dpor`], is not seeded sampling at all: it is
//! exhaustive exploration by source-DPOR (see [`crate::dpor`] when the
//! `check` feature is on). Schedules are derived from backtrack sets,
//! pruned by sleep sets, and every reported failure carries the exact
//! serialized schedule rather than a seed.

/// How the checker picks the next thread at each scheduling point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Seeded uniform choice with preemption bounding.
    Random,
    /// PCT with the given bug depth `d` (number of ordering constraints;
    /// `d - 1` priority change points are inserted).
    Pct { depth: usize },
    /// Exhaustive source-DPOR exploration: backtrack sets from a
    /// dependence relation over the recorded trace, sleep sets to prune
    /// redundant interleavings, and an optional preemption bound
    /// (`Config::preemption_bound`). `Config::iterations` becomes the
    /// execution budget; `Report::dpor` reports explored / pruned /
    /// remaining. Counterexamples carry a replayable serialized schedule.
    Dpor,
}

/// SplitMix64: tiny, high-quality, and trivially reproducible. Good
/// enough for schedule generation; never used for cryptography.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without perturbing other seeds.
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n must be non-zero).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num / denom`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.next_u64() % denom < num
    }
}

/// Sample `count` distinct priority change points in `1..=budget`,
/// sorted ascending. Fewer are returned when the budget is small.
pub fn sample_change_points(rng: &mut Rng, count: usize, budget: usize) -> Vec<usize> {
    if budget == 0 || count == 0 {
        return Vec::new();
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count.min(budget) {
        points.push(1 + rng.below(budget));
    }
    points.sort_unstable();
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
        }
    }

    #[test]
    fn change_points_sorted_dedup_in_budget() {
        let mut r = Rng::new(9);
        let pts = sample_change_points(&mut r, 5, 100);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert!(pts.iter().all(|&p| (1..=100).contains(&p)));
    }
}
