//! The thread facade.
//!
//! Without `check`, plain re-exports of `std::thread`. With `check`,
//! [`spawn`] registers the child with the calling thread's checker
//! session (when there is one), so the child's instrumented operations
//! join the deterministic schedule; `yield_now` and `sleep` become
//! scheduling points inside sessions. `scope` stays the std scope in
//! both modes — scoped threads run uninstrumented (they fall through),
//! which keeps existing scoped tests working unmodified.

#[cfg(not(feature = "check"))]
pub use std::thread::{scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

#[cfg(feature = "check")]
pub use checked::{sleep, spawn, yield_now, JoinHandle};

#[cfg(feature = "check")]
pub use std::thread::{scope, Scope, ScopedJoinHandle};

#[cfg(feature = "check")]
mod checked {
    use crate::checker;
    use std::time::Duration;

    /// Yield: a scheduling point inside a session, a real yield outside.
    pub fn yield_now() {
        if checker::in_session() {
            checker::yield_step();
        } else {
            std::thread::yield_now();
        }
    }

    /// Sleep: inside a session this is a handful of scheduling points
    /// (sessions model time logically and never stall the schedule);
    /// outside, a real sleep.
    pub fn sleep(dur: Duration) {
        if checker::in_session() {
            for _ in 0..4 {
                checker::yield_step();
            }
        } else {
            std::thread::sleep(dur);
        }
    }

    /// Drop-in for `std::thread::JoinHandle`. For checked threads,
    /// joining is itself scheduled (the joiner blocks in the schedule
    /// until the child finishes) and the value travels through a shared
    /// slot: the child's OS thread stays alive until the iteration ends
    /// (so its TLS destructors cannot interleave with checked code), so
    /// joining the OS thread itself would deadlock the schedule.
    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    enum Inner<T> {
        Plain(std::thread::JoinHandle<T>),
        Checked {
            result: std::sync::Arc<std::sync::Mutex<Option<T>>>,
            session: std::sync::Arc<crate::checker::Session>,
            child: usize,
        },
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Plain(h) => h.join(),
                Inner::Checked {
                    result,
                    session,
                    child,
                } => {
                    while !checker::join_poll(&session, child) {}
                    let v = result.lock().unwrap_or_else(|e| e.into_inner()).take();
                    match v {
                        Some(v) => Ok(v),
                        // The closure was unwound: by the session abort
                        // (step budget / stop-on-first-race) or by its own
                        // panic. The original payload, if any, is re-raised
                        // by the checker at the end of the run.
                        None => Err(Box::new(
                            "checked thread did not complete (panicked or session aborted)",
                        )),
                    }
                }
            }
        }

        pub fn is_finished(&self) -> bool {
            match &self.inner {
                Inner::Plain(h) => h.is_finished(),
                Inner::Checked { session, child, .. } => checker::peek_finished(session, *child),
            }
        }
    }

    /// Drop-in for `std::thread::spawn`. When the caller belongs to a
    /// checker session, the child is registered before this returns, so
    /// scheduling decisions remain deterministic.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match checker::prepare_spawn() {
            None => JoinHandle {
                inner: Inner::Plain(std::thread::spawn(f)),
            },
            Some(prep) => {
                let sess = prep.session.clone();
                let child = prep.child;
                let result = std::sync::Arc::new(std::sync::Mutex::new(None));
                let slot = result.clone();
                // The OS handle is intentionally dropped (detached): the
                // thread parks until the iteration completes and exits on
                // its own; the session tracks its lifecycle.
                std::thread::spawn(move || {
                    checker::run_child(prep, move || {
                        let v = f();
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    });
                });
                checker::await_parked(&sess, child);
                JoinHandle {
                    inner: Inner::Checked {
                        result,
                        session: sess,
                        child,
                    },
                }
            }
        }
    }
}
