//! Repo lint entry point: `cargo run -p rcuarray-analysis --bin lint`.
//!
//! Lints `.rs` files under the given roots (default: `crates` and `src`
//! relative to the workspace root). Exits 1 when any violation is found.

use rcuarray_analysis::lint;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        // Resolve the workspace root from this crate's manifest dir so
        // the binary works from any cwd (cargo run sets the cwd to the
        // invocation dir, not the workspace).
        let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .expect("workspace root");
        ["crates", "src"]
            .iter()
            .map(|d| ws.join(d))
            .filter(|p| p.exists())
            .collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    match lint::lint_paths(&roots) {
        Ok((violations, files)) => {
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                eprintln!("lint: {files} files clean");
            } else {
                eprintln!("lint: {} violation(s) in {files} files", violations.len());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("lint: error walking sources: {e}");
            std::process::exit(2);
        }
    }
}
