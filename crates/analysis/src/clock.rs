//! Vector clocks for happens-before race detection.
//!
//! Each checked thread carries a [`VectorClock`]; every synchronization
//! object (atomic location, mutex, condvar) carries one too. An access by
//! thread `t` happens-before an access by thread `u` iff `u`'s clock at
//! its access dominates `t`'s component at `t`'s access. Two conflicting
//! plain-data accesses that are not ordered either way are a data race
//! (the FastTrack formulation, kept in full-vector form for clarity —
//! checked runs involve a handful of threads, so the O(n) joins are
//! irrelevant).

/// A grow-on-demand vector of per-thread logical timestamps.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct VectorClock {
    v: Vec<u64>,
}

impl VectorClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for thread `i` (0 when never set).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.v.get(i).copied().unwrap_or(0)
    }

    /// Set component `i` to `val`.
    pub fn set(&mut self, i: usize, val: u64) {
        if self.v.len() <= i {
            self.v.resize(i + 1, 0);
        }
        self.v[i] = val;
    }

    /// Advance thread `i`'s own component by one and return the new value.
    pub fn tick(&mut self, i: usize) -> u64 {
        let next = self.get(i) + 1;
        self.set(i, next);
        next
    }

    /// Pointwise maximum: after `self.join(o)`, `self` dominates both
    /// inputs. This is the effect of an acquire observing a release.
    pub fn join(&mut self, other: &VectorClock) {
        if self.v.len() < other.v.len() {
            self.v.resize(other.v.len(), 0);
        }
        for (s, o) in self.v.iter_mut().zip(other.v.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Forget everything (used when a relaxed store breaks a release
    /// sequence: later acquire loads gain no edges from it).
    pub fn clear(&mut self) {
        self.v.clear();
    }

    /// True when `self` dominates `other` pointwise (`other` ≤ `self`).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        (0..other.v.len().max(self.v.len())).all(|i| self.get(i) >= other.get(i))
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        self.v.iter().all(|&x| x == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_dominated_by_all() {
        let z = VectorClock::new();
        let mut c = VectorClock::new();
        c.tick(3);
        assert!(c.dominates(&z));
        assert!(!z.dominates(&c));
        assert!(z.is_zero());
    }

    #[test]
    fn tick_advances_component() {
        let mut c = VectorClock::new();
        assert_eq!(c.tick(1), 1);
        assert_eq!(c.tick(1), 2);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 3);
        b.set(1, 7);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (5, 7, 1));
        assert!(a.dominates(&b));
    }

    #[test]
    fn concurrent_clocks_incomparable() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }
}
