//! The atomics facade.
//!
//! Without the `check` feature this module re-exports `std::sync::atomic`
//! wholesale — zero cost, identical types. With `check` enabled, each
//! atomic type becomes a thin wrapper that routes every operation through
//! the deterministic checker when (and only when) the calling thread is
//! registered with a live session; otherwise the operation falls through
//! to the plain one, so instrumented-but-idle builds behave identically.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "check"))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicI16, AtomicI32, AtomicI64, AtomicI8, AtomicIsize, AtomicPtr,
    AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
};

#[cfg(feature = "check")]
pub use checked::{
    fence, AtomicBool, AtomicI16, AtomicI32, AtomicI64, AtomicI8, AtomicIsize, AtomicPtr,
    AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
};

#[cfg(feature = "check")]
mod checked {
    use super::Ordering;
    use crate::checker::{self, LocSlot};

    /// Instrumented memory fence.
    #[inline]
    pub fn fence(order: Ordering) {
        checker::fence_op(order);
        std::sync::atomic::fence(order);
    }

    macro_rules! common_atomic {
        ($name:ident, $std:ident, $t:ty) => {
            /// Instrumented drop-in for the std atomic of the same name.
            pub struct $name {
                inner: std::sync::atomic::$std,
                meta: LocSlot,
            }

            impl $name {
                pub const fn new(v: $t) -> Self {
                    $name {
                        inner: std::sync::atomic::$std::new(v),
                        meta: LocSlot::new(),
                    }
                }

                #[inline]
                #[track_caller]
                pub fn load(&self, order: Ordering) -> $t {
                    checker::atomic_load(&self.meta, order, || self.inner.load(order))
                }

                #[inline]
                #[track_caller]
                pub fn store(&self, val: $t, order: Ordering) {
                    checker::atomic_store(&self.meta, order, || self.inner.store(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn swap(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.swap(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    checker::atomic_cas(&self.meta, success, failure, || {
                        self.inner.compare_exchange(current, new, success, failure)
                    })
                }

                #[inline]
                #[track_caller]
                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    checker::atomic_cas(&self.meta, success, failure, || {
                        self.inner
                            .compare_exchange_weak(current, new, success, failure)
                    })
                }

                /// Mirrors `std`'s CAS loop, with every attempt visible
                /// to the scheduler.
                #[track_caller]
                pub fn fetch_update(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    mut f: impl FnMut($t) -> Option<$t>,
                ) -> Result<$t, $t> {
                    let mut prev = self.load(fetch_order);
                    while let Some(next) = f(prev) {
                        match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                            Ok(x) => return Ok(x),
                            Err(next_prev) => prev = next_prev,
                        }
                    }
                    Err(prev)
                }

                #[inline]
                pub fn get_mut(&mut self) -> &mut $t {
                    self.inner.get_mut()
                }

                #[inline]
                pub fn into_inner(self) -> $t {
                    self.inner.into_inner()
                }
            }

            impl From<$t> for $name {
                fn from(v: $t) -> Self {
                    Self::new(v)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // Uninstrumented peek, like std's Debug impl.
                    std::fmt::Debug::fmt(&self.inner.load(Ordering::Relaxed), f)
                }
            }
        };
    }

    macro_rules! int_atomic {
        ($name:ident, $std:ident, $t:ty) => {
            common_atomic!($name, $std, $t);

            impl $name {
                #[inline]
                #[track_caller]
                pub fn fetch_add(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.fetch_add(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn fetch_sub(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.fetch_sub(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn fetch_and(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.fetch_and(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn fetch_or(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.fetch_or(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn fetch_xor(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.fetch_xor(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn fetch_max(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.fetch_max(val, order))
                }

                #[inline]
                #[track_caller]
                pub fn fetch_min(&self, val: $t, order: Ordering) -> $t {
                    checker::atomic_rmw(&self.meta, order, || self.inner.fetch_min(val, order))
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0)
                }
            }
        };
    }

    int_atomic!(AtomicU8, AtomicU8, u8);
    int_atomic!(AtomicU16, AtomicU16, u16);
    int_atomic!(AtomicU32, AtomicU32, u32);
    int_atomic!(AtomicU64, AtomicU64, u64);
    int_atomic!(AtomicUsize, AtomicUsize, usize);
    int_atomic!(AtomicI8, AtomicI8, i8);
    int_atomic!(AtomicI16, AtomicI16, i16);
    int_atomic!(AtomicI32, AtomicI32, i32);
    int_atomic!(AtomicI64, AtomicI64, i64);
    int_atomic!(AtomicIsize, AtomicIsize, isize);

    common_atomic!(AtomicBool, AtomicBool, bool);

    impl AtomicBool {
        #[inline]
        #[track_caller]
        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            checker::atomic_rmw(&self.meta, order, || self.inner.fetch_and(val, order))
        }

        #[inline]
        #[track_caller]
        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            checker::atomic_rmw(&self.meta, order, || self.inner.fetch_or(val, order))
        }

        #[inline]
        #[track_caller]
        pub fn fetch_xor(&self, val: bool, order: Ordering) -> bool {
            checker::atomic_rmw(&self.meta, order, || self.inner.fetch_xor(val, order))
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    /// Instrumented drop-in for `std::sync::atomic::AtomicPtr`.
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
        meta: LocSlot,
    }

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr {
                inner: std::sync::atomic::AtomicPtr::new(p),
                meta: LocSlot::new(),
            }
        }

        #[inline]
        #[track_caller]
        pub fn load(&self, order: Ordering) -> *mut T {
            checker::atomic_load(&self.meta, order, || self.inner.load(order))
        }

        #[inline]
        #[track_caller]
        pub fn store(&self, val: *mut T, order: Ordering) {
            checker::atomic_store(&self.meta, order, || self.inner.store(val, order))
        }

        #[inline]
        #[track_caller]
        pub fn swap(&self, val: *mut T, order: Ordering) -> *mut T {
            checker::atomic_rmw(&self.meta, order, || self.inner.swap(val, order))
        }

        #[inline]
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            checker::atomic_cas(&self.meta, success, failure, || {
                self.inner.compare_exchange(current, new, success, failure)
            })
        }

        #[inline]
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }

        #[inline]
        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.inner.load(Ordering::Relaxed), f)
        }
    }
}
